//! A std-only stand-in for `proptest`.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset the estimator property tests use: the [`proptest!`] macro
//! with `name in <range>` bindings over numeric [`Range`] strategies,
//! plus [`prop_assert!`]. Each property runs [`CASES`] seeded
//! pseudo-random cases; the stream is deterministic per test name, so
//! failures reproduce.

use std::ops::Range;

/// Cases per property (proptest's default).
pub const CASES: u32 = 256;

/// A deterministic per-test RNG (SplitMix64 over the test-name hash).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the test name so every test draws its own stream.
    pub fn new(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value source for one macro binding.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// Asserts inside a property; mirrors `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// Declares property tests: each `name in strategy` binding is drawn
/// fresh for every case.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::new(stringify!($name));
                for __case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        /// Draws stay inside their ranges.
        #[test]
        fn ranges_respected(x in 2.0f64..3.0, n in 1u32..10) {
            prop_assert!((2.0..3.0).contains(&x), "x = {x}");
            prop_assert!((1..10).contains(&n));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::new("t");
        let mut b = TestRng::new("t");
        assert_eq!((0.0f64..1.0).sample(&mut a), (0.0f64..1.0).sample(&mut b));
    }
}
