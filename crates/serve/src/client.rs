//! A blocking client for the daemon's JSON-lines protocol.
//!
//! One [`ServeClient`] owns one TCP connection and issues requests
//! serially (the protocol is strictly request/response per connection);
//! open several clients for concurrency — the throughput bench and the
//! integration tests do.

use crate::protocol::{Request, WireOptions};
use gpa_json::Json;
use gpa_pipeline::AnalysisJob;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Default read/write timeout: long enough for a cold 21-app analysis,
/// short enough that a wedged daemon cannot hang `gpa request` forever.
const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// A typed peer/daemon call failure, so callers can tell a retryable
/// stale pooled socket from a fatal transport error.
///
/// A connection parked in a pool can be closed by the far end at any
/// time (idle reaping, a restart); the first request on it then fails
/// even though the peer is healthy. That failure is
/// [`ClientError::StaleConnection`] — retry on a fresh connection
/// without spending retry budget. A failure on a *fresh* connection is
/// [`ClientError::Io`]: the peer (or the path to it) is actually
/// misbehaving, and retrying costs budget.
#[derive(Debug)]
pub enum ClientError {
    /// A pooled connection failed on reuse; retry on a fresh one.
    StaleConnection(io::Error),
    /// A fresh connection failed: dial, write, read, or deadline.
    Io(io::Error),
}

impl ClientError {
    /// Whether retrying (on a fresh connection) is expected to help
    /// without the peer itself recovering.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ClientError::StaleConnection(_))
    }

    /// The underlying transport error.
    pub fn as_io(&self) -> &io::Error {
        match self {
            ClientError::StaleConnection(e) | ClientError::Io(e) => e,
        }
    }

    /// Unwraps into the underlying transport error.
    pub fn into_io(self) -> io::Error {
        match self {
            ClientError::StaleConnection(e) | ClientError::Io(e) => e,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::StaleConnection(e) => write!(f, "stale pooled connection: {e}"),
            ClientError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(self.as_io())
    }
}

/// A connected daemon client.
///
/// The request and response buffers live on the client and are reused
/// across calls, so a long-lived connection issuing thousands of
/// requests (the bench, a forwarding shard) does not allocate per
/// frame.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Reused outgoing frame buffer (`frame` + newline, one write).
    out: String,
    /// Reused incoming line buffer; [`ServeClient::request_line`]
    /// returns a borrow of it.
    line: String,
}

/// A parsed daemon response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Whether the request succeeded.
    pub ok: bool,
    /// Whether the body came from the report store.
    pub cached: bool,
    /// The `result` body (success) — compact-rendered this is
    /// byte-identical across cached and computed responses.
    pub result: Option<Json>,
    /// The error message (failure).
    pub error: Option<String>,
}

impl Response {
    fn from_frame(frame: &str) -> io::Result<Response> {
        let doc = Json::parse(frame).map_err(invalid)?;
        let ok = doc.field("ok").and_then(Json::as_bool).map_err(invalid)?;
        let cached = doc.get("cached").map_or(Ok(false), Json::as_bool).map_err(invalid)?;
        Ok(Response {
            ok,
            cached,
            result: doc.get("result").cloned(),
            error: doc.get("error").and_then(|e| e.as_str().ok()).map(str::to_string),
        })
    }

    /// Unwraps the success body.
    ///
    /// # Errors
    ///
    /// Maps a daemon-side error message into [`io::ErrorKind::Other`].
    pub fn into_result(self) -> io::Result<Json> {
        if self.ok {
            self.result.ok_or_else(|| invalid("response missing `result`"))
        } else {
            Err(io::Error::other(self.error.unwrap_or_else(|| "unspecified error".to_string())))
        }
    }
}

fn invalid(e: impl ToString) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

impl ServeClient {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::finish_connect(TcpStream::connect(addr)?)
    }

    /// Connects with a bound on the connection attempt itself (and the
    /// same default I/O timeouts), so dialing a dead peer costs one
    /// bounded stall instead of the kernel's SYN retry schedule.
    ///
    /// # Errors
    ///
    /// Address resolution failure, or a connection error/timeout.
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Self> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolves to nothing")
        })?;
        Self::finish_connect(TcpStream::connect_timeout(&addr, timeout)?)
    }

    fn finish_connect(writer: TcpStream) -> io::Result<Self> {
        // Frames are small and strictly request/response; Nagle +
        // delayed ACK would add ~40ms per round trip.
        writer.set_nodelay(true)?;
        writer.set_read_timeout(Some(DEFAULT_IO_TIMEOUT))?;
        writer.set_write_timeout(Some(DEFAULT_IO_TIMEOUT))?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(ServeClient { reader, writer, out: String::new(), line: String::new() })
    }

    /// Overrides the read/write timeouts ([`None`] blocks forever —
    /// what a client deliberately waiting out a long `sleep` op wants).
    ///
    /// # Errors
    ///
    /// Propagates `setsockopt` failures.
    pub fn set_timeouts(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.writer.set_read_timeout(timeout)?;
        self.writer.set_write_timeout(timeout)
    }

    /// Sends one raw frame and reads one response line (borrowed from
    /// the client's reused buffer — copy it out to keep it past the
    /// next call).
    ///
    /// # Errors
    ///
    /// I/O failure (including a timeout, surfaced as
    /// `WouldBlock`/`TimedOut`), or the daemon closing the connection.
    pub fn request_line(&mut self, frame: &str) -> io::Result<&str> {
        debug_assert!(!frame.contains('\n'), "frames are single lines");
        self.out.clear();
        self.out.push_str(frame);
        self.out.push('\n');
        self.writer.write_all(self.out.as_bytes())?;
        self.writer.flush()?;
        self.line.clear();
        if self.reader.read_line(&mut self.line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed connection"));
        }
        Ok(&self.line)
    }

    /// Sends a typed request and parses the response.
    ///
    /// # Errors
    ///
    /// I/O failure or a malformed response frame.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        let line = self.request_line(&request.to_wire())?;
        Response::from_frame(line)
    }

    /// `analyze`: profile-and-advise `(app, variant)` on the daemon
    /// with default options (schema v1).
    ///
    /// # Errors
    ///
    /// I/O failure or a malformed response frame.
    pub fn analyze(&mut self, app: &str, variant: usize) -> io::Result<Response> {
        self.analyze_with(app, variant, &WireOptions::default())
    }

    /// [`ServeClient::analyze`] with an explicit negotiated schema and
    /// advice options.
    ///
    /// # Errors
    ///
    /// I/O failure or a malformed response frame.
    pub fn analyze_with(
        &mut self,
        app: &str,
        variant: usize,
        options: &WireOptions,
    ) -> io::Result<Response> {
        self.request(&Request::Analyze {
            job: AnalysisJob::new(app, variant),
            options: options.clone(),
        })
    }

    /// `analyze_profile`: advise on a locally gathered profile document
    /// with default options (schema v1).
    ///
    /// # Errors
    ///
    /// I/O failure or a malformed response frame.
    pub fn analyze_profile(
        &mut self,
        app: &str,
        variant: usize,
        profile: &Json,
    ) -> io::Result<Response> {
        self.analyze_profile_with(app, variant, profile, &WireOptions::default())
    }

    /// [`ServeClient::analyze_profile`] with an explicit negotiated
    /// schema and advice options.
    ///
    /// # Errors
    ///
    /// I/O failure or a malformed response frame.
    pub fn analyze_profile_with(
        &mut self,
        app: &str,
        variant: usize,
        profile: &Json,
        options: &WireOptions,
    ) -> io::Result<Response> {
        let frame =
            crate::protocol::analyze_profile_frame(app, variant, &profile.compact(), options);
        let line = self.request_line(&frame)?;
        Response::from_frame(line)
    }

    /// `profile_begin`: opens a chunked profile upload for
    /// `(app, variant)`. Returns the daemon-assigned upload id.
    ///
    /// # Errors
    ///
    /// I/O failure, a malformed response frame, or a daemon-side error.
    pub fn profile_begin(
        &mut self,
        app: &str,
        variant: usize,
        options: &WireOptions,
    ) -> io::Result<u64> {
        let response = self.request(&Request::ProfileBegin {
            job: AnalysisJob::new(app, variant),
            options: options.clone(),
        })?;
        let body = response.into_result()?;
        let id = body
            .field("upload_id")
            .and_then(Json::as_u64)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        Ok(id)
    }

    /// `profile_chunk`: adds one profile chunk (a `KernelProfile`
    /// document, typically covering a PC subrange) to an open upload.
    ///
    /// # Errors
    ///
    /// I/O failure or a malformed response frame.
    pub fn profile_chunk(&mut self, upload_id: u64, profile: &Json) -> io::Result<Response> {
        let frame = crate::protocol::profile_chunk_frame(upload_id, &profile.compact());
        let line = self.request_line(&frame)?;
        Response::from_frame(line)
    }

    /// `profile_end`: finalizes an upload — the daemon advises on the
    /// merged profile and answers exactly like `analyze_profile` of the
    /// merged document.
    ///
    /// # Errors
    ///
    /// I/O failure or a malformed response frame.
    pub fn profile_end(&mut self, upload_id: u64) -> io::Result<Response> {
        self.request(&Request::ProfileEnd { upload_id })
    }

    /// `profile_abort`: discards an open upload without analyzing it,
    /// freeing its per-connection slot.
    ///
    /// # Errors
    ///
    /// I/O failure or a malformed response frame.
    pub fn profile_abort(&mut self, upload_id: u64) -> io::Result<Response> {
        self.request(&Request::ProfileAbort { upload_id })
    }

    /// Drives a whole chunked upload: `profile_begin`, one
    /// `profile_chunk` per document, `profile_end`. Any daemon-side
    /// rejection along the way surfaces as an error — and aborts the
    /// upload first, so a failed attempt does not hold one of the
    /// connection's bounded upload slots.
    ///
    /// # Errors
    ///
    /// I/O failure, a malformed frame, or a rejected begin/chunk/end
    /// (e.g. an empty `chunks` slice).
    pub fn analyze_profile_chunked(
        &mut self,
        app: &str,
        variant: usize,
        chunks: &[Json],
        options: &WireOptions,
    ) -> io::Result<Response> {
        let upload_id = self.profile_begin(app, variant, options)?;
        for chunk in chunks {
            let accepted =
                self.profile_chunk(upload_id, chunk).and_then(|response| response.into_result());
            if let Err(e) = accepted {
                let _ = self.profile_abort(upload_id);
                return Err(e);
            }
        }
        let response = self.profile_end(upload_id)?;
        if !response.ok {
            // Backpressure rejections leave the upload alive daemon-side
            // so a manual retry can work; this helper gives up instead,
            // so abort (best-effort — for already-consumed ids the abort
            // is a harmless unknown-id error) and surface the failure as
            // the error the doc promises, not an ok-false body.
            let _ = self.profile_abort(upload_id);
            return Err(io::Error::other(
                response.error.unwrap_or_else(|| "unspecified error".to_string()),
            ));
        }
        Ok(response)
    }

    /// `status`: the daemon's metrics snapshot.
    ///
    /// # Errors
    ///
    /// I/O failure or a malformed response frame.
    pub fn status(&mut self) -> io::Result<Response> {
        self.request(&Request::Status)
    }

    /// `shutdown`: asks the daemon to stop.
    ///
    /// # Errors
    ///
    /// I/O failure or a malformed response frame.
    pub fn shutdown(&mut self) -> io::Result<Response> {
        self.request(&Request::Shutdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_error_classifies_retryability() {
        let stale =
            ClientError::StaleConnection(io::Error::new(io::ErrorKind::UnexpectedEof, "eof"));
        let fresh = ClientError::Io(io::Error::new(io::ErrorKind::ConnectionRefused, "refused"));
        assert!(stale.is_retryable());
        assert!(!fresh.is_retryable());
        assert!(stale.to_string().contains("stale pooled connection"));
        assert_eq!(fresh.as_io().kind(), io::ErrorKind::ConnectionRefused);
        assert_eq!(stale.into_io().kind(), io::ErrorKind::UnexpectedEof);
    }
}
