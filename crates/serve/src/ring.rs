//! Consistent hashing over the cluster's members: which shard owns
//! which content address.
//!
//! Every member is projected onto a `u64` ring at [`VNODES`] points
//! (virtual nodes smooth the keyspace split); a key belongs to the
//! member owning the first point at or clockwise-after the key's hash.
//! All shards build the ring from the same sorted member list, so they
//! agree on ownership without any coordination traffic — and because
//! the hash is over member *addresses* and content *addresses* only,
//! adding a member remaps just the slices it takes over (the classic
//! consistent-hashing property, pinned by a test below).
//!
//! Replication pairs with ownership through [`Ring::successor`]: a
//! member's hot store entries are copied to the next member of the
//! canonical (sorted) roster, so a restarted shard can warm its cache
//! from one well-known neighbor instead of only its disk tier. Roster
//! order — not point order — keeps the replication graph a single
//! cycle covering every member (clockwise-from-first-point can strand
//! a member with no replica source when vnode points interleave
//! unluckily).

use crate::store::fingerprint;

/// Virtual nodes per member. 64 points keeps the largest/smallest
/// ownership share within a small factor for realistic cluster sizes
/// while the ring stays a few hundred entries — binary-searched, so
/// lookup cost is irrelevant next to a single request parse.
pub const VNODES: usize = 64;

/// A ring point for `key`: the FNV fingerprint pushed through a
/// splitmix64-style finalizer. FNV-1a alone barely diffuses its last
/// few input bytes into the high bits, and ring ordering is dominated
/// by exactly those bits — sequential vnode labels (`addr#0`,
/// `addr#1`, …) then clump together and ownership shares swing wildly
/// (a 2-member ring could strand one member with almost no keyspace).
/// The finalizer's avalanche spreads the points evenly, and it is a
/// pure function of the fingerprint, so every shard still derives the
/// identical ring from the same roster.
fn point(key: &str) -> u64 {
    let mut h = fingerprint(key);
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// The hash ring: sorted points mapping to member indices.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point, member index)` sorted by point.
    points: Vec<(u64, usize)>,
    /// Member addresses, sorted and deduplicated — the canonical
    /// cluster roster every shard must share.
    members: Vec<String>,
}

impl Ring {
    /// Builds the ring over the given member addresses. Members are
    /// sorted and deduplicated first, so every shard that was handed
    /// the same roster (in any order) builds the identical ring.
    pub fn new(members: impl IntoIterator<Item = String>) -> Ring {
        let mut members: Vec<String> = members.into_iter().collect();
        members.sort_unstable();
        members.dedup();
        let mut points = Vec::with_capacity(members.len() * VNODES);
        for (idx, member) in members.iter().enumerate() {
            for vnode in 0..VNODES {
                points.push((point(&format!("{member}#{vnode}")), idx));
            }
        }
        // Ties (two members hashing a vnode to the same point) resolve
        // by member index, i.e. lexicographic address order — still
        // deterministic on every shard.
        points.sort_unstable();
        Ring { points, members }
    }

    /// The canonical (sorted, deduplicated) member roster.
    pub fn members(&self) -> &[String] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member owning `key`: the first ring point at or after the
    /// key's hash, wrapping at the top of the `u64` space.
    ///
    /// # Panics
    ///
    /// On an empty ring (a cluster has at least its own shard).
    pub fn owner(&self, key: &str) -> &str {
        assert!(!self.points.is_empty(), "ownership query on an empty ring");
        let hash = point(key);
        let idx = match self.points.binary_search(&(hash, 0)) {
            Ok(i) => i,
            Err(i) if i == self.points.len() => 0, // wrap past the top
            Err(i) => i,
        };
        &self.members[self.points[idx].1]
    }

    /// `member`'s replication target: the next member of the canonical
    /// sorted roster, wrapping at the end — one cycle through every
    /// member, so each shard has exactly one replica source and one
    /// target. `None` for unknown members and single-member rings
    /// (nothing to replicate to).
    pub fn successor(&self, member: &str) -> Option<&str> {
        let me = self.members.iter().position(|m| m == member)?;
        if self.members.len() < 2 {
            return None;
        }
        Some(self.members[(me + 1) % self.members.len()].as_str())
    }
}

/// The live, epoch-versioned membership roster a [`Ring`] is derived
/// from.
///
/// Every mutation ([`Roster::join`], [`Roster::leave`]) bumps a
/// monotonic epoch; [`Roster::adopt`] merges a peer's view by a simple
/// newest-wins rule, so shards that exchange rosters in any order
/// converge on the same member list without a coordinator. Equal
/// epochs tie-break on the lexicographically larger member list —
/// arbitrary, but identical on every shard, which is all convergence
/// needs (a shard that lost the tie re-adds itself, bumping the epoch
/// past the tie).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Roster {
    epoch: u64,
    /// Sorted, deduplicated member addresses.
    members: Vec<String>,
}

impl Roster {
    /// A fresh roster at epoch 1 over the given members (sorted and
    /// deduplicated, like [`Ring::new`]).
    pub fn new(members: impl IntoIterator<Item = String>) -> Roster {
        let mut members: Vec<String> = members.into_iter().collect();
        members.sort_unstable();
        members.dedup();
        Roster { epoch: 1, members }
    }

    /// The current epoch. Strictly increases across every local
    /// mutation and never decreases across [`Roster::adopt`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The canonical (sorted, deduplicated) member list.
    pub fn members(&self) -> &[String] {
        &self.members
    }

    /// Whether `addr` is a member.
    pub fn contains(&self, addr: &str) -> bool {
        self.members.binary_search_by(|m| m.as_str().cmp(addr)).is_ok()
    }

    /// Adds a member; bumps the epoch and returns `true` only if the
    /// roster actually changed.
    pub fn join(&mut self, addr: &str) -> bool {
        match self.members.binary_search_by(|m| m.as_str().cmp(addr)) {
            Ok(_) => false,
            Err(at) => {
                self.members.insert(at, addr.to_string());
                self.epoch += 1;
                true
            }
        }
    }

    /// Removes a member; bumps the epoch and returns `true` only if the
    /// roster actually changed.
    pub fn leave(&mut self, addr: &str) -> bool {
        match self.members.binary_search_by(|m| m.as_str().cmp(addr)) {
            Ok(at) => {
                self.members.remove(at);
                self.epoch += 1;
                true
            }
            Err(_) => false,
        }
    }

    /// Merges a peer's roster view: a strictly newer epoch wins
    /// outright; an equal epoch with a lexicographically larger member
    /// list wins the tie. Returns `true` if this roster changed.
    ///
    /// The epoch after an adopt is `max(local, remote)` — never
    /// smaller — which keeps [`Roster::epoch`] monotonic on every
    /// shard no matter the gossip order.
    pub fn adopt(&mut self, epoch: u64, members: &[String]) -> bool {
        let mut theirs: Vec<String> = members.to_vec();
        theirs.sort_unstable();
        theirs.dedup();
        let wins = epoch > self.epoch || epoch == self.epoch && theirs > self.members;
        if !wins {
            return false;
        }
        self.epoch = self.epoch.max(epoch);
        self.members = theirs;
        true
    }

    /// The consistent-hash ring over the current members.
    pub fn ring(&self) -> Ring {
        Ring::new(self.members.iter().cloned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("analyze\0app-{i}\00\0s1")).collect()
    }

    #[test]
    fn every_key_has_exactly_one_owner_and_all_members_own_something() {
        let members = ["127.0.0.1:7071", "127.0.0.1:7072", "127.0.0.1:7073"];
        let ring = Ring::new(members.iter().map(ToString::to_string));
        let mut counts = std::collections::HashMap::new();
        for key in keys(1000) {
            *counts.entry(ring.owner(&key).to_string()).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), members.len(), "every member owns a slice: {counts:?}");
        for (member, count) in &counts {
            assert!(*count >= 100, "{member} owns a degenerate share: {counts:?}");
        }
    }

    #[test]
    fn ownership_shares_stay_balanced_across_port_varied_rosters() {
        // Regression: without the finalizing mixer over the FNV
        // fingerprint, sequential vnode labels clump and some 2-member
        // rings strand one side with a near-empty keyspace share.
        let sample = keys(64);
        for port in (30000..30200).step_by(7) {
            let a = format!("127.0.0.1:{port}");
            let b = format!("127.0.0.1:{}", port + 1);
            let ring = Ring::new([a.clone(), b.clone()]);
            let owned = sample.iter().filter(|k| ring.owner(k) == a).count();
            assert!((6..=58).contains(&owned), "{a}/{b}: degenerate split {owned}/64");
        }
    }

    #[test]
    fn roster_order_and_duplicates_do_not_change_the_ring() {
        let a = Ring::new(["b".to_string(), "a".to_string(), "c".to_string()]);
        let b = Ring::new(["c".to_string(), "a".to_string(), "b".to_string(), "a".to_string()]);
        assert_eq!(a.members(), b.members());
        for key in keys(200) {
            assert_eq!(a.owner(&key), b.owner(&key));
        }
    }

    #[test]
    fn adding_a_member_only_remaps_keys_onto_the_new_member() {
        let old = Ring::new(["a".to_string(), "b".to_string(), "c".to_string()]);
        let new = Ring::new(["a".to_string(), "b".to_string(), "c".to_string(), "d".to_string()]);
        let (mut moved, mut stayed) = (0usize, 0usize);
        for key in keys(1000) {
            let (before, after) = (old.owner(&key), new.owner(&key));
            if before == after {
                stayed += 1;
            } else {
                assert_eq!(after, "d", "a remapped key may only move to the new member");
                moved += 1;
            }
        }
        assert!(moved > 0, "the new member took over some keys");
        assert!(stayed > moved, "most keys did not move");
    }

    #[test]
    fn successor_is_a_distinct_member_and_covers_the_ring() {
        let ring = Ring::new(["a".to_string(), "b".to_string(), "c".to_string()]);
        for member in ring.members() {
            let succ = ring.successor(member).expect("multi-member rings have successors");
            assert_ne!(succ, member);
        }
        // Following successors visits every member (the replication
        // graph is one cycle, so no shard is left without a replica
        // source).
        let mut seen = std::collections::HashSet::new();
        let mut at = "a";
        for _ in 0..ring.len() {
            seen.insert(at);
            at = ring.successor(at).unwrap();
        }
        assert_eq!(seen.len(), ring.len());
    }

    #[test]
    fn degenerate_rings() {
        let solo = Ring::new(["only".to_string()]);
        assert_eq!(solo.owner("anything"), "only");
        assert!(solo.successor("only").is_none(), "nobody to replicate to");
        assert!(solo.successor("stranger").is_none());
        assert!(!solo.is_empty());
        assert!(Ring::new(std::iter::empty()).is_empty());
    }

    #[test]
    fn roster_mutations_bump_the_epoch_only_on_change() {
        let mut roster = Roster::new(["a".to_string(), "b".to_string()]);
        assert_eq!(roster.epoch(), 1);
        assert!(roster.join("c"));
        assert_eq!(roster.epoch(), 2);
        assert!(!roster.join("c"), "re-joining a member is a no-op");
        assert_eq!(roster.epoch(), 2);
        assert!(roster.leave("a"));
        assert_eq!(roster.epoch(), 3);
        assert!(!roster.leave("a"), "leaving twice is a no-op");
        assert_eq!(roster.epoch(), 3);
        assert_eq!(roster.members(), ["b", "c"]);
    }

    #[test]
    fn one_member_ring_after_a_leave_owns_everything() {
        let mut roster = Roster::new(["a".to_string(), "b".to_string()]);
        assert!(roster.leave("b"));
        let ring = roster.ring();
        for key in keys(50) {
            assert_eq!(ring.owner(&key), "a");
        }
        assert!(ring.successor("a").is_none(), "a solo survivor has no replication target");
        // Even the last member can drain; the derived ring is empty and
        // ownership queries must be guarded by the caller.
        assert!(roster.leave("a"));
        assert!(roster.ring().is_empty());
        assert_eq!(roster.epoch(), 3);
    }

    #[test]
    fn adopt_takes_newer_epochs_and_breaks_ties_deterministically() {
        let mut roster = Roster::new(["a".to_string(), "b".to_string()]);
        // Older and identical views are ignored.
        assert!(!roster.adopt(0, &["z".to_string()]));
        assert!(!roster.adopt(1, &["a".to_string(), "b".to_string()]));
        assert_eq!(roster.epoch(), 1);
        // A newer epoch wins outright.
        assert!(roster.adopt(4, &["a".to_string(), "c".to_string()]));
        assert_eq!(roster.epoch(), 4);
        assert_eq!(roster.members(), ["a", "c"]);
        // An equal epoch tie-breaks on the larger member list, the same
        // way on both sides of the exchange.
        let mut left = Roster::new(["a".to_string(), "x".to_string()]);
        let mut right = Roster::new(["a".to_string(), "y".to_string()]);
        let (le, lm) = (left.epoch(), left.members().to_vec());
        let (re, rm) = (right.epoch(), right.members().to_vec());
        assert!(left.adopt(re, &rm), "the smaller list adopts");
        assert!(!right.adopt(le, &lm), "the larger list stands");
        assert_eq!(left.members(), right.members());
    }

    /// The convergence protocol the server runs: adopt the peer's view,
    /// then re-add yourself if the adopted roster dropped you.
    fn exchange(mine: &mut Roster, me: &str, theirs: &Roster) {
        mine.adopt(theirs.epoch(), theirs.members());
        if !mine.contains(me) {
            mine.join(me);
        }
    }

    #[test]
    fn concurrent_joins_converge_after_an_exchange() {
        let base = ["a".to_string(), "b".to_string()];
        let mut at_a = Roster::new(base.clone());
        let mut at_b = Roster::new(base);
        at_a.join("x"); // x joined through a...
        at_b.join("y"); // ...while y joined through b
        for _ in 0..3 {
            let (snap_a, snap_b) = (at_a.clone(), at_b.clone());
            exchange(&mut at_a, "x", &snap_b);
            exchange(&mut at_b, "y", &snap_a);
        }
        assert_eq!(at_a, at_b);
        assert_eq!(at_a.members(), ["a", "b", "x", "y"]);
    }

    proptest! {
        /// Random join/leave churn: the epoch strictly increases on
        /// every change, the member list stays sorted and unique, and
        /// every key has exactly one owner in every epoch (two replicas
        /// of the roster derive identical ownership).
        #[test]
        fn epoch_monotone_and_ownership_unambiguous_under_churn(seed in 0u64..u64::MAX) {
            let mut lcg = seed | 1;
            let mut draw = || {
                lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                lcg >> 33
            };
            let mut roster = Roster::new(["s0".to_string(), "s1".to_string()]);
            for _ in 0..12 {
                let epoch_before = roster.epoch();
                let member = format!("s{}", draw() % 6);
                let changed = if draw() % 2 == 0 {
                    roster.join(&member)
                } else {
                    roster.leave(&member)
                };
                prop_assert!(if changed {
                    roster.epoch() == epoch_before + 1
                } else {
                    roster.epoch() == epoch_before
                });
                let members = roster.members().to_vec();
                let mut sorted = members.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(&members, &sorted, "members stay sorted and unique");
                if members.is_empty() {
                    continue;
                }
                let (ring, replica) = (roster.ring(), roster.clone().ring());
                for key in keys(20) {
                    let owner = ring.owner(&key);
                    prop_assert!(members.iter().any(|m| m == owner));
                    prop_assert_eq!(owner, replica.owner(&key), "replicas agree on ownership");
                }
            }
        }
    }
}
