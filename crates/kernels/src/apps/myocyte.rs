//! `rodinia/myocyte` — `solver_2`.
//!
//! Two Table 3 rows:
//!
//! 1. **Fast Math** (1.19× / est 1.13×): the ODE right-hand side calls
//!    the precise exponential repeatedly.
//! 2. **Function Split** (1.02× / est 1.03×): the solver body is enormous
//!    — it overflows the instruction cache, so every timestep re-misses
//!    the same lines. Splitting the body into two halves, each iterated
//!    separately, lets each half fit.

use crate::data::ParamBlock;
use crate::dsl::Asm;
use crate::{App, KernelSpec, Params, Stage};
use gpa_arch::LaunchConfig;

/// Builds the myocyte app entry.
pub fn app() -> App {
    App {
        name: "rodinia/myocyte",
        kernel: "solver_2",
        stages: vec![
            Stage { name: "Fast Math", optimizer: "GPUFastMathOptimizer" },
            Stage { name: "Function Spliting", optimizer: "GPUFunctionSplitOptimizer" },
        ],
        build,
    }
}

/// Instructions of straight-line ODE arithmetic per half body.
const HALF_BODY: usize = 420;
/// Exponential evaluations per half body.
const EXPS: usize = 4;

fn emit_nv_expf(a: &mut Asm) {
    a.func("__nv_expf");
    a.line("device_functions.h", 742);
    a.i("FMUL R42, R40, 1.4427 {S:4}");
    a.i("MOV32I R41, 0x3f800000 {S:1}");
    for _ in 0..7 {
        a.i("FFMA R41, R41, R42, 0.43 {S:4}");
    }
    a.i("RET {S:5}");
    a.endfunc();
}

/// A slab of rotating-accumulator FMA arithmetic (the flattened ODE
/// right-hand side).
fn emit_body_half(a: &mut Asm, count: usize, salt: u32) {
    for i in 0..count {
        let acc = 30 + ((i as u32 + salt) % 4);
        let c = 1.0 + ((i as u32 + salt) % 7) as f64 * 1e-4;
        a.i(format!("FFMA R{acc}, R{acc}, {c:.4}, 0.0001 {{S:4}}"));
    }
}

fn body_with_exps(a: &mut Asm, fast: bool, salt: u32) {
    let chunk = HALF_BODY / EXPS;
    for e in 0..EXPS {
        exp_call(a, fast);
        emit_body_half(a, chunk, salt + e as u32);
    }
}

fn exp_call(a: &mut Asm, fast: bool) {
    a.i("FMUL R40, R30, -0.05 {S:4}");
    if fast {
        a.i("FMUL R40, R40, 1.4427 {S:4}");
        a.i("MUFU.EX2 R41, R40 {W:B3, S:1}");
        a.i("NOP {WT:[B3], S:1}");
    } else {
        a.i("CAL __nv_expf {S:5}");
    }
    a.i("FFMA R30, R41, 0.01, R30 {S:4}");
}

fn build(variant: usize, p: &Params) -> KernelSpec {
    let timesteps = 4 * p.scale;
    let fast = variant >= 1;
    let split = variant >= 2;
    let mut a = Asm::module("myocyte");
    a.kernel("solver_2");
    a.line("myocyte_kernel.cu", 25);
    a.global_tid();
    a.param_u64(4, 0); // initial state
    a.addr(6, 4, 0, 2);
    a.i("LDG.E.32 R30, [R6:R7] {W:B0, S:1}");
    a.i("NOP {WT:[B0], S:1}");
    a.i("MOV32I R17, 0 {S:1}");
    if split {
        // Two half-sized loops: each body fits the instruction cache.
        a.label("step_loop_a");
        body_with_exps(&mut a, fast, 0);
        a.i("IADD R17, R17, 1 {S:4}");
        a.i(format!("ISETP.LT.AND P1, R17, {timesteps} {{S:2}}"));
        a.i("@P1 BRA step_loop_a {S:5}");
        a.i("MOV32I R17, 0 {S:1}");
        a.label("step_loop_b");
        body_with_exps(&mut a, fast, 13);
        a.i("IADD R17, R17, 1 {S:4}");
        a.i(format!("ISETP.LT.AND P2, R17, {timesteps} {{S:2}}"));
        a.i("@P2 BRA step_loop_b {S:5}");
    } else {
        // One megaloop whose body overflows the i-cache.
        a.label("step_loop");
        body_with_exps(&mut a, fast, 0);
        body_with_exps(&mut a, fast, 13);
        a.i("IADD R17, R17, 1 {S:4}");
        a.i(format!("ISETP.LT.AND P1, R17, {timesteps} {{S:2}}"));
        a.i("@P1 BRA step_loop {S:5}");
    }
    a.param_u64(28, 8);
    a.addr(34, 28, 0, 2);
    a.i("STG.E.32 [R34:R35], R30 {R:B5, S:2}");
    a.i("EXIT {WT:[B5], S:1}");
    a.endfunc();
    if !fast {
        emit_nv_expf(&mut a);
    }
    let module = a.build();

    let blocks = p.sms;
    let threads: u32 = 128;
    let n = blocks * threads;
    KernelSpec {
        module,
        entry: "solver_2".into(),
        launch: LaunchConfig::new(blocks, threads),
        setup: Box::new(move |gpu| {
            let mut rng = crate::data::rng(0x5057_0013);
            let state = gpu.global_mut().alloc(4 * n as u64);
            gpu.global_mut()
                .write_bytes(state, &crate::data::f32_bytes(&mut rng, n as usize, 0.1, 1.0));
            let out = gpu.global_mut().alloc(4 * n as u64);
            let mut pb = ParamBlock::new();
            pb.push_u64(state);
            pb.push_u64(out);
            pb.finish()
        }),
        const_bank1: None,
    }
}
