//! The daemon: a `TcpListener` accept loop, per-connection reader
//! threads, and a bounded worker pool over one shared [`Session`].
//!
//! Threading model:
//!
//! * one **accept** thread hands each connection to its own reader
//!   thread (connections are few; requests are the unit of work);
//! * each **connection** thread parses frames, answers `status` /
//!   cache hits inline, and pushes analysis work onto a bounded queue —
//!   when the queue is full the request is *rejected with an error*
//!   (explicit backpressure, never unbounded growth);
//! * `workers` **worker** threads pop the queue and run the analysis on
//!   the shared [`Session`], so module/CFG/structure artifacts are
//!   built once and reused across every request; computed bodies go
//!   into the content-addressed [`ReportStore`].
//!
//! Shutdown (the `shutdown` op, or [`ServerHandle::shutdown`]) is
//! cooperative: the flag flips, idle workers wake and drain the queue,
//! open sockets are shut down so reader threads fall out of `read_line`,
//! and a dummy connect unblocks `accept`.

use crate::metrics::Metrics;
use crate::protocol::{self, Request, WireOptions, DEFAULT_ADDR, MAX_REQUEST_BYTES};
use crate::store::ReportStore;
use gpa_json::Json;
use gpa_pipeline::{AnalysisJob, Session};
use gpa_sampling::KernelProfile;
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Daemon configuration (CLI flags map onto this 1:1).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Worker-pool width.
    pub workers: usize,
    /// Bounded request-queue capacity (backpressure threshold).
    pub queue: usize,
    /// In-memory report-store capacity (entries, LRU-evicted).
    pub store_capacity: usize,
    /// Optional on-disk report persistence directory.
    pub persist_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: DEFAULT_ADDR.to_string(),
            workers: std::thread::available_parallelism().map_or(2, |n| n.get()),
            queue: 64,
            store_capacity: 128,
            persist_dir: None,
        }
    }
}

impl ServerConfig {
    /// A loopback config on an ephemeral port (tests, benches).
    pub fn ephemeral() -> Self {
        ServerConfig { addr: "127.0.0.1:0".to_string(), ..ServerConfig::default() }
    }
}

/// One queued analysis request and the channel its frame goes back on.
struct Work {
    request: Request,
    reply: mpsc::Sender<String>,
}

/// Open chunked uploads are scoped to one connection: abandoned uploads
/// die with the socket instead of leaking daemon-global state, and ids
/// never collide across clients.
const MAX_UPLOADS_PER_CONNECTION: usize = 8;

/// Hard cap on chunks per upload. Each accepted chunk can add up to one
/// frame's worth of PC entries to the retained merge, so without a cap
/// a client could grow daemon memory one 8 MiB frame at a time.
const MAX_CHUNKS_PER_UPLOAD: u64 = 64;

/// Hard cap on distinct PCs in an upload's running merge — the actual
/// retained-memory bound (chunks with disjoint PC keys accumulate).
/// Far above any real program's instruction count.
const MAX_UPLOAD_PCS: usize = 1 << 18;

/// Daemon-global cap on PC entries retained across *all* open uploads
/// on *all* connections — the per-upload/per-connection caps bound one
/// client, this bounds the fleet (a swarm of connections each parking
/// maximal uploads would otherwise grow daemon memory without limit).
const MAX_TOTAL_UPLOAD_PCS: usize = 1 << 21;

/// One open chunked upload: the target job, the advice options fixed at
/// `profile_begin`, and the running merge (never the individual
/// chunks).
struct Upload {
    job: AnalysisJob,
    options: WireOptions,
    merged: Option<KernelProfile>,
    chunks: u64,
}

/// Per-connection request state (chunked uploads in flight).
#[derive(Default)]
struct ConnState {
    uploads: HashMap<u64, Upload>,
    next_upload_id: u64,
}

/// Whether the connection keeps reading after a response.
enum Control {
    Continue,
    Shutdown,
}

struct Shared {
    session: Arc<Session>,
    store: ReportStore,
    metrics: Metrics,
    queue: Mutex<VecDeque<Work>>,
    available: Condvar,
    queue_capacity: usize,
    workers: usize,
    persisted: bool,
    shutting_down: AtomicBool,
    next_conn_id: AtomicU64,
    conns: Mutex<Vec<(u64, TcpStream)>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    local_addr: SocketAddr,
    /// PC entries currently retained by open uploads, daemon-wide
    /// (see [`MAX_TOTAL_UPLOAD_PCS`]). Approximate accounting —
    /// relaxed atomics — is fine for a resource budget.
    upload_pcs: AtomicU64,
}

/// A running daemon: its address and the threads behind it.
///
/// Dropping the handle shuts the daemon down and joins every thread;
/// [`ServerHandle::join`] blocks until something else (normally a
/// client's `shutdown` op) stops it.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Binds and starts the daemon.
///
/// # Errors
///
/// When the address cannot be bound or the persist directory cannot be
/// created.
pub fn serve(session: Arc<Session>, config: ServerConfig) -> io::Result<ServerHandle> {
    let store = ReportStore::new(config.store_capacity, config.persist_dir.clone())?;
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    let workers = config.workers.max(1);
    let shared = Arc::new(Shared {
        session,
        store,
        metrics: Metrics::new(),
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        queue_capacity: config.queue.max(1),
        workers,
        persisted: config.persist_dir.is_some(),
        shutting_down: AtomicBool::new(false),
        next_conn_id: AtomicU64::new(0),
        conns: Mutex::new(Vec::new()),
        conn_threads: Mutex::new(Vec::new()),
        local_addr,
        upload_pcs: AtomicU64::new(0),
    });
    let worker_handles = (0..workers)
        .map(|i| {
            let sh = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("gpa-serve-worker-{i}"))
                .spawn(move || worker_loop(&sh))
        })
        .collect::<io::Result<Vec<_>>>()?;
    let accept = {
        let sh = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("gpa-serve-accept".to_string())
            .spawn(move || accept_loop(&sh, &listener))?
    };
    Ok(ServerHandle { shared, accept: Some(accept), workers: worker_handles })
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Initiates shutdown programmatically (idempotent; equivalent to a
    /// client's `shutdown` op).
    pub fn shutdown(&self) {
        trigger_shutdown(&self.shared);
    }

    /// Blocks until the daemon has fully stopped: the accept loop has
    /// exited, the queue is drained, and every thread is joined.
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        let conns = std::mem::take(&mut *self.shared.conn_threads.lock().expect("conn threads"));
        for h in conns {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        trigger_shutdown(&self.shared);
        self.join_inner();
    }
}

fn trigger_shutdown(shared: &Shared) {
    if shared.shutting_down.swap(true, Ordering::AcqRel) {
        return;
    }
    // Wake idle workers so they observe the flag (under the lock, so a
    // worker between its empty-check and its wait cannot miss it).
    {
        let _guard = shared.queue.lock().expect("queue lock");
        shared.available.notify_all();
    }
    // Unblock the accept loop.
    let _ = TcpStream::connect(shared.local_addr);
    // Kick live connections out of their blocking reads. Responses
    // already written are still delivered (FIN follows queued data).
    for (_, conn) in shared.conns.lock().expect("conns lock").drain(..) {
        let _ = conn.shutdown(std::net::Shutdown::Both);
    }
}

/// Joins connection threads that have already finished, so a long-lived
/// daemon serving many short connections does not accumulate handles.
fn reap_finished_connections(shared: &Shared) {
    let mut threads = shared.conn_threads.lock().expect("conn threads");
    let mut i = 0;
    while i < threads.len() {
        if threads[i].is_finished() {
            let _ = threads.swap_remove(i).join();
        } else {
            i += 1;
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutting_down.load(Ordering::Acquire) {
                    break;
                }
                shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
                // See ServeClient::connect: small frames, no Nagle.
                let _ = stream.set_nodelay(true);
                let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
                if let Ok(clone) = stream.try_clone() {
                    shared.conns.lock().expect("conns lock").push((conn_id, clone));
                }
                reap_finished_connections(shared);
                let sh = Arc::clone(shared);
                if let Ok(handle) = std::thread::Builder::new()
                    .name("gpa-serve-conn".to_string())
                    .spawn(move || connection_loop(&sh, conn_id, stream))
                {
                    shared.conn_threads.lock().expect("conn threads").push(handle);
                }
            }
            Err(_) => {
                if shared.shutting_down.load(Ordering::Acquire) {
                    break;
                }
                // Transient accept errors (e.g. EMFILE): back off briefly
                // instead of spinning.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn connection_loop(shared: &Arc<Shared>, conn_id: u64, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        shared.conns.lock().expect("conns lock").retain(|(id, _)| *id != conn_id);
        return;
    };
    let mut writer = stream;
    let mut reader = BufReader::new(read_half).take(MAX_REQUEST_BYTES);
    let mut line = String::new();
    let mut state = ConnState::default();
    loop {
        line.clear();
        reader.set_limit(MAX_REQUEST_BYTES);
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        if !line.ends_with('\n') && reader.limit() == 0 {
            // The frame hit the size cap without a newline; the stream
            // cannot be resynced, so answer and hang up.
            let frame = protocol::error_frame(&format!(
                "request exceeds {MAX_REQUEST_BYTES} bytes; closing connection"
            ));
            let _ = writeln!(writer, "{frame}");
            break;
        }
        if line.trim().is_empty() {
            continue;
        }
        let (response, control) = handle_line(shared, &mut state, &line);
        if writeln!(writer, "{response}").and_then(|()| writer.flush()).is_err() {
            break;
        }
        if matches!(control, Control::Shutdown) {
            trigger_shutdown(shared);
            break;
        }
    }
    // Abandoned uploads die with the connection — return their share of
    // the daemon-wide retained-PC budget.
    for upload in state.uploads.values() {
        release_upload_pcs(shared, upload);
    }
    // Deregister this connection's dup'd socket so a long-lived daemon
    // does not hold one CLOSE_WAIT fd per past client.
    shared.conns.lock().expect("conns lock").retain(|(id, _)| *id != conn_id);
}

fn handle_line(shared: &Shared, state: &mut ConnState, line: &str) -> (String, Control) {
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(msg) => {
            shared.metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return (protocol::error_frame(&msg), Control::Continue);
        }
    };
    shared.metrics.count_op(&request);
    let request = match request {
        Request::Status => {
            return (protocol::ok_frame(false, &status_body(shared).compact()), Control::Continue)
        }
        Request::Shutdown => {
            return (protocol::ok_frame(false, "{\"shutting_down\":true}"), Control::Shutdown)
        }
        // Upload bookkeeping is answered inline by the connection
        // thread; only the finalized merge consumes a worker slot, as a
        // synthesized `analyze_profile` request.
        Request::ProfileBegin { job, options } => {
            return (upload_begin(shared, state, job, options), Control::Continue)
        }
        Request::ProfileChunk { upload_id, profile } => {
            return (upload_chunk(shared, state, upload_id, profile), Control::Continue)
        }
        Request::ProfileAbort { upload_id } => {
            return (upload_abort(shared, state, upload_id), Control::Continue)
        }
        Request::ProfileEnd { upload_id } => {
            return (upload_end(shared, state, upload_id), Control::Continue)
        }
        other => other,
    };
    if let Some(key) = request.cache_key() {
        if let Some(body) = shared.store.get(&key) {
            return (protocol::ok_frame(true, &body), Control::Continue);
        }
    }
    (dispatch(shared, request).into_frame(), Control::Continue)
}

/// `profile_begin`: opens an upload slot after validating (and warming)
/// the job's module artifacts, so a typo'd app or out-of-range variant
/// fails before the client streams megabytes of chunks.
fn upload_begin(
    shared: &Shared,
    state: &mut ConnState,
    job: AnalysisJob,
    options: WireOptions,
) -> String {
    if state.uploads.len() >= MAX_UPLOADS_PER_CONNECTION {
        return protocol::error_frame(&format!(
            "too many open uploads on this connection (limit {MAX_UPLOADS_PER_CONNECTION}); \
             finish one with profile_end first"
        ));
    }
    if let Err(e) = shared.session.artifacts(&job) {
        return protocol::job_error_frame(&e);
    }
    let id = state.next_upload_id;
    state.next_upload_id += 1;
    state.uploads.insert(id, Upload { job, options, merged: None, chunks: 0 });
    protocol::ok_frame(false, &format!("{{\"upload_id\":{id}}}"))
}

/// `profile_chunk`: folds one chunk into the upload's running merge.
/// Every rejection (chunk-count cap, per-upload or daemon-wide PC
/// budget, merge mismatch) leaves the upload in its previous, usable
/// state.
fn upload_chunk(
    shared: &Shared,
    state: &mut ConnState,
    upload_id: u64,
    profile: Box<KernelProfile>,
) -> String {
    let Some(upload) = state.uploads.get_mut(&upload_id) else {
        return protocol::error_frame(&format!("unknown upload id {upload_id}"));
    };
    if upload.chunks >= MAX_CHUNKS_PER_UPLOAD {
        return protocol::error_frame(&format!(
            "upload {upload_id} already holds {MAX_CHUNKS_PER_UPLOAD} chunks \
             (the limit); send profile_end"
        ));
    }
    // The documented bound is on *distinct* PCs in the running merge,
    // so count only this chunk's genuinely new keys (replay-style
    // chunks overlap heavily).
    let (merged_pcs, new_pcs) = match &upload.merged {
        None => (0, profile.pcs.len()),
        Some(acc) => {
            (acc.pcs.len(), profile.pcs.keys().filter(|pc| !acc.pcs.contains_key(pc)).count())
        }
    };
    if merged_pcs + new_pcs > MAX_UPLOAD_PCS {
        return protocol::error_frame(&format!(
            "upload {upload_id} would exceed {MAX_UPLOAD_PCS} merged PCs"
        ));
    }
    if shared.upload_pcs.load(Ordering::Relaxed) + new_pcs as u64 > MAX_TOTAL_UPLOAD_PCS as u64 {
        return protocol::error_frame(&format!(
            "daemon-wide upload budget of {MAX_TOTAL_UPLOAD_PCS} retained PCs exhausted; \
             retry later"
        ));
    }
    match &mut upload.merged {
        None => upload.merged = Some(*profile),
        Some(acc) => {
            if let Err(e) = acc.merge_in(&profile) {
                return protocol::error_frame(&format!("chunk does not merge: {e}"));
            }
        }
    }
    upload.chunks += 1;
    shared.upload_pcs.fetch_add(new_pcs as u64, Ordering::Relaxed);
    protocol::ok_frame(false, &format!("{{\"received\":{}}}", upload.chunks))
}

/// `profile_abort`: discards an open upload and releases its share of
/// the daemon-wide PC budget.
fn upload_abort(shared: &Shared, state: &mut ConnState, upload_id: u64) -> String {
    match state.uploads.remove(&upload_id) {
        Some(upload) => {
            release_upload_pcs(shared, &upload);
            protocol::ok_frame(false, "{\"aborted\":true}")
        }
        None => protocol::error_frame(&format!("unknown upload id {upload_id}")),
    }
}

/// `profile_end`: finalizes an upload as a synthesized
/// `analyze_profile` of the merged document — same body, same content
/// address, so chunked and whole submissions share one report-store
/// entry. A backpressure rejection restores the upload (the "retry
/// later" advice must be followable); success and cache hits release
/// its budget share.
fn upload_end(shared: &Shared, state: &mut ConnState, upload_id: u64) -> String {
    let Some(upload) = state.uploads.remove(&upload_id) else {
        return protocol::error_frame(&format!("unknown upload id {upload_id}"));
    };
    let Upload { job, options, merged, chunks } = upload;
    let Some(profile) = merged else {
        return protocol::error_frame(&format!(
            "upload {upload_id} has no chunks; send profile_chunk before profile_end"
        ));
    };
    let retained_pcs = profile.pcs.len() as u64;
    let canon = profile.to_doc().compact();
    let request = Request::AnalyzeProfile { job, profile: Box::new(profile), canon, options };
    if let Some(key) = request.cache_key() {
        if let Some(body) = shared.store.get(&key) {
            shared.upload_pcs.fetch_sub(retained_pcs, Ordering::Relaxed);
            return protocol::ok_frame(true, &body);
        }
    }
    match dispatch(shared, request) {
        Dispatched::Replied(frame) => {
            shared.upload_pcs.fetch_sub(retained_pcs, Ordering::Relaxed);
            frame
        }
        Dispatched::Rejected { request, frame } => {
            if let Request::AnalyzeProfile { job, profile, options, .. } = request {
                state
                    .uploads
                    .insert(upload_id, Upload { job, options, merged: Some(*profile), chunks });
            }
            frame
        }
    }
}

/// Returns an upload's retained PCs to the daemon-wide budget.
fn release_upload_pcs(shared: &Shared, upload: &Upload) {
    if let Some(merged) = &upload.merged {
        shared.upload_pcs.fetch_sub(merged.pcs.len() as u64, Ordering::Relaxed);
    }
}

/// The outcome of [`dispatch`]: a reply frame, or a backpressure
/// rejection that hands the request back so stateful callers
/// (`profile_end`) can preserve what it was built from.
enum Dispatched {
    /// A worker (or the rejection path of a worker-less op) answered.
    Replied(String),
    /// The queue was full or the daemon is shutting down; the request
    /// never entered the queue.
    Rejected {
        /// The request, returned unconsumed.
        request: Request,
        /// The error frame to send.
        frame: String,
    },
}

impl Dispatched {
    fn into_frame(self) -> String {
        match self {
            Dispatched::Replied(frame) | Dispatched::Rejected { frame, .. } => frame,
        }
    }
}

/// Pushes a request onto the bounded queue and waits for its frame;
/// rejects immediately when the queue is at capacity.
fn dispatch(shared: &Shared, request: Request) -> Dispatched {
    let (reply, result) = mpsc::channel();
    {
        let mut queue = shared.queue.lock().expect("queue lock");
        if shared.shutting_down.load(Ordering::Acquire) {
            return Dispatched::Rejected {
                request,
                frame: protocol::error_frame("server is shutting down"),
            };
        }
        if queue.len() >= shared.queue_capacity {
            drop(queue);
            shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            return Dispatched::Rejected {
                request,
                frame: protocol::error_frame(&format!(
                    "request queue full ({} pending, capacity {}); retry later",
                    shared.queue_capacity, shared.queue_capacity
                )),
            };
        }
        queue.push_back(Work { request, reply });
        shared.metrics.note_enqueued();
        shared.available.notify_one();
    }
    Dispatched::Replied(match result.recv() {
        Ok(frame) => frame,
        Err(_) => protocol::error_frame("internal error: worker abandoned the request"),
    })
}

fn worker_loop(shared: &Shared) {
    loop {
        let work = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(work) = queue.pop_front() {
                    shared.metrics.note_dequeued();
                    break Some(work);
                }
                if shared.shutting_down.load(Ordering::Acquire) {
                    break None;
                }
                queue = shared.available.wait(queue).expect("queue lock");
            }
        };
        let Some(work) = work else { break };
        let frame = execute(shared, work.request);
        // The connection may already be gone; that only means nobody is
        // waiting for this frame.
        let _ = work.reply.send(frame);
    }
}

/// Runs one dequeued request on the shared session. Successful bodies
/// go into the report store under the request's content address.
fn execute(shared: &Shared, request: Request) -> String {
    let key = request.cache_key();
    match request {
        Request::Analyze { job, options } => {
            match shared.session.run_one_request_repeat(&job, &options.request, options.repeat) {
                Ok(outcome) => {
                    let body = protocol::analyze_body(&outcome, options.schema).compact();
                    let stored = shared.store.insert(&key.expect("analyze is cacheable"), &body);
                    protocol::ok_frame(false, &stored)
                }
                Err(e) => {
                    shared.metrics.analysis_errors.fetch_add(1, Ordering::Relaxed);
                    protocol::job_error_frame(&e)
                }
            }
        }
        Request::AnalyzeProfile { job, profile, options, .. } => {
            match shared.session.advise_profile_request(&job, &profile, &options.request) {
                Ok(report) => {
                    let body =
                        protocol::profile_body(&job, &profile, &report, options.schema).compact();
                    let stored =
                        shared.store.insert(&key.expect("analyze_profile is cacheable"), &body);
                    protocol::ok_frame(false, &stored)
                }
                Err(e) => {
                    shared.metrics.analysis_errors.fetch_add(1, Ordering::Relaxed);
                    protocol::job_error_frame(&e)
                }
            }
        }
        Request::Sleep { ms } => {
            std::thread::sleep(Duration::from_millis(ms));
            protocol::ok_frame(false, &format!("{{\"slept_ms\":{ms}}}"))
        }
        // Handled inline by the connection thread; never queued.
        Request::Status
        | Request::Shutdown
        | Request::ProfileBegin { .. }
        | Request::ProfileChunk { .. }
        | Request::ProfileEnd { .. }
        | Request::ProfileAbort { .. } => {
            protocol::error_frame("internal error: control op reached the worker pool")
        }
    }
}

fn status_body(shared: &Shared) -> Json {
    let m = &shared.metrics;
    let st = shared.store.stats();
    Json::object()
        .with("uptime_ms", m.uptime_ms())
        .with("workers", shared.workers)
        .with(
            "schemas",
            Json::Arr(
                protocol::SCHEMA_VERSIONS.iter().map(|&v| Json::from(u64::from(v))).collect(),
            ),
        )
        .with("connections", m.connections.load(Ordering::Relaxed))
        .with("ops", m.ops_json())
        .with(
            "queue",
            Json::object()
                .with("depth", m.queue_depth.load(Ordering::Relaxed))
                .with("peak", m.queue_peak.load(Ordering::Relaxed))
                .with("capacity", shared.queue_capacity)
                .with("rejected", m.rejected.load(Ordering::Relaxed)),
        )
        .with(
            "store",
            Json::object()
                .with("entries", st.entries)
                .with("capacity", st.capacity)
                .with("hits", st.hits)
                .with("disk_hits", st.disk_hits)
                .with("misses", st.misses)
                .with("evictions", st.evictions)
                .with("persist_errors", st.persist_errors)
                .with("persisted", shared.persisted),
        )
        .with(
            "errors",
            Json::object()
                .with("protocol", m.protocol_errors.load(Ordering::Relaxed))
                .with("analysis", m.analysis_errors.load(Ordering::Relaxed)),
        )
}
