//! Quickstart: write a kernel, profile it, and print GPA's advice.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use gpa::arch::{ArchConfig, LaunchConfig};
use gpa::core::{report, Advisor};
use gpa::sampling::Profiler;
use gpa::sim::{GpuSim, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A pointer-chasing kernel: each loop iteration loads a value and
    // consumes it immediately — the classic code-reordering target.
    let module = gpa::isa::parse_module(
        r#"
.module quickstart
.kernel chase
.line chase.cu 10
  S2R R0, SR_TID.X {W:B0, S:1}
  MOV R2, c[0][0] {S:1}
  MOV R3, c[0][4] {S:1}
  SHL R1, R0, 2 {WT:[B0], S:2}
  IADD R2:R3, R2:R3, R1 {S:2}
  MOV32I R6, 0 {S:1}
  MOV32I R7, 0 {S:1}
.line chase.cu 14
loop:
  LDG.E.32 R4, [R2:R3] {W:B1, S:1}
  IADD R7, R7, R4 {WT:[B1], S:4}
  IADD R2:R3, R2:R3, 512 {S:2}
  IADD R6, R6, 1 {S:4}
  ISETP.LT.AND P0, R6, 64 {S:2}
  @P0 BRA loop {S:5}
.line chase.cu 18
  STG.E.32 [R2:R3], R7 {R:B2, S:1}
  EXIT {WT:[B2], S:1}
.endfunc
"#,
    )?;

    // A small Volta-like device; sampling period 127 cycles.
    let arch = ArchConfig::small(2);
    let mut cfg = SimConfig::default();
    cfg.sampling_period = 127;
    let mut profiler = Profiler::new(GpuSim::new(arch.clone(), cfg));

    // Host-side setup: one buffer, its address as the kernel parameter.
    let buf = profiler.gpu_mut().global_mut().alloc(4 * 64 * 512);
    let params: Vec<u8> = buf.to_le_bytes().to_vec();

    let (profile, result) =
        profiler.profile(&module, "chase", &LaunchConfig::new(4, 64), &params)?;
    println!(
        "kernel ran {} cycles, {} instructions, {} samples\n",
        result.cycles,
        result.issued,
        profile.total_samples
    );

    let advice = Advisor::new().advise(&module, &profile, &arch);
    print!("{}", report::render(&advice, 3));
    Ok(())
}
