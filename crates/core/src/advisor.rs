//! The advisor: orchestrates blame → match → estimate → rank.
//!
//! The public surface is typed end to end (advice schema v2):
//!
//! * [`Advisor`] holds an [`OptimizerRegistry`] (typed catalog) and
//!   default [`AdviceRequest`] options, built via [`AdvisorBuilder`];
//! * every `advise*` call can be scoped by a per-call [`AdviceRequest`]
//!   (top-k, category/optimizer filters, minimum speedup, hotspot
//!   budget, evidence on/off), so one shared advisor serves
//!   heterogeneous callers;
//! * the produced [`AdviceReport`] carries [`SCHEMA_VERSION`], and each
//!   [`AdviceItem`] carries its [`OptimizerId`], the estimator inputs
//!   that produced its speedup, structured [`Hint`]s, and source-region
//!   attribution for its hotspots.

use crate::blamer::{BlamedEdge, ModuleBlame};
use crate::estimators::{
    parallel_speedup, residual_elimination_speedup, scoped_latency_hiding_speedup,
    stall_elimination_speedup, ParallelParams,
};
use crate::optimizers::{
    Hint, Hotspot, Optimizer, OptimizerCategory, OptimizerId, OptimizerRegistry,
};
use gpa_arch::{ArchConfig, LatencyTable};
use gpa_isa::Module;
use gpa_sampling::{KernelProfile, StallReason};
use gpa_structure::{ProgramStructure, Scope};

/// The advice schema version this crate produces (see
/// `docs/advice-schema.md` for the versioning policy).
pub const SCHEMA_VERSION: u32 = 2;

/// Estimated speedups below this default threshold are dropped from the
/// report (an [`AdviceRequest`] can override it).
pub const DEFAULT_MIN_SPEEDUP: f64 = 1.001;

/// Default number of hotspots kept per advice item.
pub const DEFAULT_HOTSPOTS: usize = 5;

/// Everything an optimizer may inspect.
pub struct AnalysisCtx<'a> {
    /// The kernel's module (virtual CUBIN).
    pub module: &'a Module,
    /// Static program structure.
    pub structure: &'a ProgramStructure,
    /// The PC-sampling profile.
    pub profile: &'a KernelProfile,
    /// Machine description.
    pub arch: &'a ArchConfig,
    /// Latency tables.
    pub latency: &'a LatencyTable,
    /// Blame analysis.
    pub blame: &'a ModuleBlame,
}

impl<'a> AnalysisCtx<'a> {
    /// Absolute PC of an instruction.
    pub fn pc_of(&self, func: usize, idx: usize) -> u64 {
        self.module.functions[func].pc_of(idx)
    }

    /// The instruction at `(func, idx)`.
    pub fn instr(&self, func: usize, idx: usize) -> &gpa_isa::Instruction {
        &self.module.functions[func].instrs[idx]
    }

    /// All blamed edges as `(function, edge)`.
    pub fn blamed_edges(&self) -> impl Iterator<Item = (usize, &BlamedEdge)> {
        self.blame.edges()
    }

    /// Total samples `T`.
    pub fn total_samples(&self) -> f64 {
        self.profile.total_samples as f64
    }

    /// Active samples within a scope (Eq. 5's `Σ A`, since a scope's
    /// blocks include all scopes nested inside it).
    pub fn active_in_scope(&self, scope: Scope) -> f64 {
        self.profile
            .pcs
            .iter()
            .filter(|(pc, _)| self.structure.scope_contains(scope, **pc))
            .map(|(_, st)| st.active_total() as f64)
            .sum()
    }

    /// Observed (unattributed) stalls of one reason at one PC.
    pub fn stalls_at(&self, pc: u64, reason: StallReason) -> f64 {
        self.profile.pc(pc).map_or(0.0, |st| st.stalls(reason) as f64)
    }

    /// Whether a PC lies in CUDA-math-library code (by containing function
    /// or inline stack).
    pub fn is_math_pc(&self, pc: u64) -> bool {
        if let Some((f, _)) = self.structure.locate(pc) {
            if f.is_math_function() {
                return true;
            }
        }
        self.structure
            .inline_stack_of(self.module, pc)
            .iter()
            .any(|fr| fr.callee.starts_with("__nv_") || fr.callee.starts_with("__internal_"))
    }
}

/// A source-annotated def/use location in the report.
#[derive(Debug, Clone, PartialEq)]
pub struct LocationReport {
    /// Absolute PC.
    pub pc: u64,
    /// Containing function.
    pub function: String,
    /// Source file, when line info exists.
    pub file: Option<String>,
    /// Source line.
    pub line: Option<u32>,
    /// Enclosing scope description (e.g. `Loop at x.cu:30 in k`).
    pub scope: String,
}

/// Source-region attribution for a hotspot: the program region (innermost
/// scope) its stalled instruction belongs to, as a function, a PC range,
/// and (when line info exists) a source-line range.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionReport {
    /// Containing function symbol.
    pub function: String,
    /// First PC of the region.
    pub pc_begin: u64,
    /// One past the last PC of the region.
    pub pc_end: u64,
    /// Source file, when line info exists.
    pub file: Option<String>,
    /// First source line of the region.
    pub line_begin: Option<u32>,
    /// Last source line of the region.
    pub line_end: Option<u32>,
    /// Human-readable scope description (e.g. `Loop at x.cu:30 in k`).
    pub scope: String,
}

/// One ranked hotspot in an advice item.
#[derive(Debug, Clone, PartialEq)]
pub struct HotspotReport {
    /// Blamed (source) location.
    pub def: Option<LocationReport>,
    /// Stalled location.
    pub use_: LocationReport,
    /// The program region the stalled instruction belongs to.
    pub region: RegionReport,
    /// Matched samples / total samples.
    pub ratio: f64,
    /// Speedup from fixing this hotspot alone.
    pub speedup: f64,
    /// def→use distance in instructions.
    pub distance: Option<u32>,
}

/// The estimator a speedup came from, with the inputs that produced it —
/// so downstream consumers (report diffing, learned predictors, agents)
/// can re-derive or re-weight the estimate without re-running the
/// analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimatorInputs {
    /// Eq. 2: `Se = T / (T − M)`.
    StallElimination {
        /// Total samples `T`.
        total: f64,
        /// Matched stall samples `M`.
        matched: f64,
    },
    /// Eqs. 4–5: scope-limited latency hiding.
    LatencyHiding {
        /// Total samples `T`.
        total: f64,
        /// Kernel-wide active samples `A`.
        active: f64,
        /// Matched latency samples `M_L` (summed over scopes).
        matched_latency: f64,
        /// Number of disjoint innermost scopes the match grouped into.
        scopes: u32,
    },
    /// Eqs. 6–10: the parallel-adjustment model.
    Parallel {
        /// Measured scheduler issue probability `I`.
        issue_ratio: f64,
        /// The model inputs, when the optimizer proposed a new
        /// configuration.
        params: Option<ParallelParams>,
    },
    /// Eq. 2 with a residual floor: `S = T / (T − (1 − r)·M)` — the
    /// memory-hierarchy advisors, whose rewrites shrink an access's
    /// serialization but cannot remove the access.
    ResidualElimination {
        /// Total samples `T`.
        total: f64,
        /// Matched stall samples `M`.
        matched: f64,
        /// Fraction `r` of each matched stall that survives the fix.
        residual: f64,
    },
}

/// One optimizer's advice.
#[derive(Debug, Clone, PartialEq)]
pub struct AdviceItem {
    /// Which optimizer this advice comes from.
    pub id: OptimizerId,
    /// Optimizer family (always `id.category()`; carried for schema
    /// consumers).
    pub category: OptimizerCategory,
    /// Matched samples / total samples.
    pub matched_ratio: f64,
    /// Estimated speedup if the advice is applied.
    pub estimated_speedup: f64,
    /// The estimator and the inputs that produced `estimated_speedup`.
    pub estimator: EstimatorInputs,
    /// Structured hints: static guidance followed by dynamic findings.
    pub hints: Vec<Hint>,
    /// Top hotspots (empty when the request disabled evidence).
    pub hotspots: Vec<HotspotReport>,
}

impl AdviceItem {
    /// The paper-style optimizer name.
    pub fn optimizer(&self) -> &'static str {
        self.id.name()
    }

    /// The static guidance hints, in order.
    pub fn guidance(&self) -> impl Iterator<Item = &str> {
        self.hints.iter().filter(|h| h.kind.is_guidance()).map(|h| h.text.as_str())
    }

    /// The dynamic findings, in order.
    pub fn findings(&self) -> impl Iterator<Item = &str> {
        self.hints.iter().filter(|h| !h.kind.is_guidance()).map(|h| h.text.as_str())
    }
}

/// The full advice report for one kernel (advice schema v2).
#[derive(Debug, Clone, PartialEq)]
pub struct AdviceReport {
    /// Version of the advice schema (see [`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Kernel name.
    pub kernel: String,
    /// Total samples.
    pub total_samples: u64,
    /// Active samples.
    pub active_samples: u64,
    /// Latency samples.
    pub latency_samples: u64,
    /// Kernel stall histogram `(reason name, samples)`.
    pub stall_histogram: Vec<(String, u64)>,
    /// Advice items sorted by estimated speedup (best first), ties broken
    /// by [`OptimizerId`] catalog order.
    pub items: Vec<AdviceItem>,
}

impl AdviceReport {
    /// The best advice item, if any matched.
    pub fn top(&self) -> Option<&AdviceItem> {
        self.items.first()
    }

    /// The item for a given optimizer.
    pub fn item(&self, id: OptimizerId) -> Option<&AdviceItem> {
        self.items.iter().find(|i| i.id == id)
    }

    /// The item for an optimizer named by its paper-style name or slug.
    pub fn item_named(&self, name: &str) -> Option<&AdviceItem> {
        self.item(OptimizerId::from_name(name)?)
    }

    /// Rank (1-based) of an optimizer in the report.
    pub fn rank_of(&self, id: OptimizerId) -> Option<usize> {
        self.items.iter().position(|i| i.id == id).map(|p| p + 1)
    }

    /// [`AdviceReport::rank_of`] by paper-style name or slug.
    pub fn rank_of_named(&self, name: &str) -> Option<usize> {
        self.rank_of(OptimizerId::from_name(name)?)
    }
}

/// Per-call options for one `advise*` request: how much of the report to
/// produce and which optimizers to consult. The default request
/// reproduces the classic full report.
#[derive(Debug, Clone, PartialEq)]
pub struct AdviceRequest {
    /// Keep only the best `n` items (`None` = all).
    pub top: Option<usize>,
    /// Restrict to these optimizer families (empty = all).
    pub categories: Vec<OptimizerCategory>,
    /// Restrict to these optimizers (empty = all registered).
    pub optimizers: Vec<OptimizerId>,
    /// Drop items whose estimated speedup is below this bound.
    pub min_speedup: f64,
    /// Hotspot budget per item.
    pub hotspots: usize,
    /// Whether items carry per-PC evidence (hotspots with source
    /// regions); `false` produces a cheap summary-only report.
    pub evidence: bool,
}

impl Default for AdviceRequest {
    fn default() -> Self {
        AdviceRequest {
            top: None,
            categories: Vec::new(),
            optimizers: Vec::new(),
            min_speedup: DEFAULT_MIN_SPEEDUP,
            hotspots: DEFAULT_HOTSPOTS,
            evidence: true,
        }
    }
}

impl AdviceRequest {
    /// Keep only the best `n` items.
    #[must_use]
    pub fn with_top(mut self, n: usize) -> Self {
        self.top = Some(n);
        self
    }

    /// Restrict to one optimizer family.
    #[must_use]
    pub fn with_category(mut self, category: OptimizerCategory) -> Self {
        self.categories.push(category);
        self
    }

    /// Restrict to specific optimizers.
    #[must_use]
    pub fn with_optimizers(mut self, ids: &[OptimizerId]) -> Self {
        self.optimizers.extend_from_slice(ids);
        self
    }

    /// Override the minimum estimated speedup.
    #[must_use]
    pub fn with_min_speedup(mut self, bound: f64) -> Self {
        self.min_speedup = bound;
        self
    }

    /// Override the hotspot budget per item.
    #[must_use]
    pub fn with_hotspots(mut self, n: usize) -> Self {
        self.hotspots = n;
        self
    }

    /// Enable or disable per-PC evidence.
    #[must_use]
    pub fn with_evidence(mut self, on: bool) -> Self {
        self.evidence = on;
        self
    }

    /// Whether this request consults `id` at all.
    pub fn wants(&self, id: OptimizerId) -> bool {
        (self.optimizers.is_empty() || self.optimizers.contains(&id))
            && (self.categories.is_empty() || self.categories.contains(&id.category()))
    }
}

/// Builds an [`Advisor`]: registry composition plus default request
/// options.
///
/// ```
/// use gpa_core::advisor::{AdviceRequest, Advisor};
/// use gpa_core::optimizers::{OptimizerCategory, OptimizerId};
///
/// let advisor = Advisor::builder()
///     .only(&[OptimizerId::LoopUnrolling, OptimizerId::CodeReordering])
///     .defaults(AdviceRequest::default().with_top(1))
///     .build();
/// assert_eq!(advisor.registry().len(), 2);
/// assert_eq!(advisor.defaults().top, Some(1));
/// let _ = OptimizerCategory::LatencyHiding;
/// ```
#[derive(Default)]
pub struct AdvisorBuilder {
    registry: Option<OptimizerRegistry>,
    defaults: AdviceRequest,
}

impl AdvisorBuilder {
    /// Use an explicit registry (replaces any prior composition).
    #[must_use]
    pub fn registry(mut self, registry: OptimizerRegistry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Restrict the registry to the built-in matchers for `ids`.
    #[must_use]
    pub fn only(mut self, ids: &[OptimizerId]) -> Self {
        self.registry = Some(OptimizerRegistry::of(ids));
        self
    }

    /// Register a matcher (custom or built-in), replacing the current
    /// holder of its catalog slot. Starts from the full catalog when no
    /// registry was set yet.
    #[must_use]
    pub fn register(mut self, opt: Box<dyn Optimizer>) -> Self {
        self.registry.get_or_insert_with(OptimizerRegistry::full).insert(opt);
        self
    }

    /// Default request options for `advise*` calls without an explicit
    /// [`AdviceRequest`].
    #[must_use]
    pub fn defaults(mut self, defaults: AdviceRequest) -> Self {
        self.defaults = defaults;
        self
    }

    /// Finishes the advisor.
    pub fn build(self) -> Advisor {
        Advisor { registry: self.registry.unwrap_or_default(), defaults: self.defaults }
    }
}

/// The GPA advisor: a typed optimizer registry plus default request
/// options. One advisor is shared across threads ([`Optimizer`]s are
/// `Send + Sync` and stateless); per-call variation goes through
/// [`AdviceRequest`].
pub struct Advisor {
    registry: OptimizerRegistry,
    defaults: AdviceRequest,
}

impl Default for Advisor {
    fn default() -> Self {
        Self::new()
    }
}

/// Ranks advice items in place: estimated speedup descending, ties
/// broken by [`OptimizerId`] catalog order. Total (`f64::total_cmp`) and
/// fully deterministic — equal-speedup items never depend on insertion
/// order.
pub fn rank_items(items: &mut [AdviceItem]) {
    items.sort_by(|a, b| {
        b.estimated_speedup.total_cmp(&a.estimated_speedup).then_with(|| a.id.cmp(&b.id))
    });
}

impl Advisor {
    /// An advisor with the full Table 2 catalog and default options.
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// Starts composing an advisor.
    pub fn builder() -> AdvisorBuilder {
        AdvisorBuilder::default()
    }

    /// The optimizer catalog this advisor consults.
    pub fn registry(&self) -> &OptimizerRegistry {
        &self.registry
    }

    /// The default request options.
    pub fn defaults(&self) -> &AdviceRequest {
        &self.defaults
    }

    /// Runs the full dynamic analysis and produces the advice report
    /// with the advisor's default options.
    ///
    /// Builds the static analyses from scratch; callers that analyze
    /// many profiles of the same module (the pipeline's [`Session`]
    /// cache) should pre-build them once and use
    /// [`Advisor::advise_with`] or [`Advisor::advise_request`].
    ///
    /// [`Session`]: https://docs.rs/gpa-pipeline
    pub fn advise(
        &self,
        module: &Module,
        profile: &KernelProfile,
        arch: &ArchConfig,
    ) -> AdviceReport {
        let structure = ProgramStructure::build(module);
        let latency = LatencyTable::for_arch(arch);
        self.advise_with(module, &structure, &latency, profile, arch)
    }

    /// [`Advisor::advise`] with caller-provided static analyses, so a
    /// cached `ProgramStructure`/`LatencyTable` is reused across repeated
    /// runs instead of being rebuilt per profile.
    pub fn advise_with(
        &self,
        module: &Module,
        structure: &ProgramStructure,
        latency: &LatencyTable,
        profile: &KernelProfile,
        arch: &ArchConfig,
    ) -> AdviceReport {
        self.advise_request(module, structure, latency, profile, arch, &self.defaults)
    }

    /// [`Advisor::advise_with`] scoped by a per-call [`AdviceRequest`].
    pub fn advise_request(
        &self,
        module: &Module,
        structure: &ProgramStructure,
        latency: &LatencyTable,
        profile: &KernelProfile,
        arch: &ArchConfig,
        request: &AdviceRequest,
    ) -> AdviceReport {
        let blame = ModuleBlame::build(module, structure, profile, latency);
        let ctx = AnalysisCtx { module, structure, profile, arch, latency, blame: &blame };
        let total = ctx.total_samples();
        let active = profile.active_samples as f64;
        let mut items = Vec::new();
        for opt in self.registry.iter() {
            let id = opt.id();
            if !request.wants(id) {
                continue;
            }
            let mut m = opt.match_stalls(&ctx);
            if m.is_empty() || total == 0.0 {
                continue;
            }
            m.keep_top_hotspots(request.hotspots);
            // The memory-hierarchy advisors use the residual estimator
            // (their rewrites shrink accesses, not remove them); every
            // other optimizer dispatches on its category.
            let residual = match id {
                OptimizerId::MemoryCoalescing => Some(crate::estimators::COALESCING_RESIDUAL),
                OptimizerId::BankConflictResolution => {
                    Some(crate::estimators::BANK_CONFLICT_RESIDUAL)
                }
                _ => None,
            };
            let (estimated_speedup, estimator) = if let Some(residual) = residual {
                (
                    residual_elimination_speedup(total, m.matched, residual),
                    EstimatorInputs::ResidualElimination { total, matched: m.matched, residual },
                )
            } else {
                match id.category() {
                    OptimizerCategory::StallElimination => (
                        stall_elimination_speedup(total, m.matched),
                        EstimatorInputs::StallElimination { total, matched: m.matched },
                    ),
                    OptimizerCategory::LatencyHiding => {
                        let pairs: Vec<(f64, f64)> =
                            m.scopes.iter().map(|(s, ml)| (ctx.active_in_scope(*s), *ml)).collect();
                        (
                            scoped_latency_hiding_speedup(total, active, &pairs),
                            EstimatorInputs::LatencyHiding {
                                total,
                                active,
                                matched_latency: m.matched_latency,
                                scopes: m.scopes.len() as u32,
                            },
                        )
                    }
                    OptimizerCategory::Parallel => {
                        let issue_ratio = profile.issue_ratio();
                        let speedup = match &m.parallel {
                            Some(p) => parallel_speedup(issue_ratio, p),
                            None => 1.0,
                        };
                        (speedup, EstimatorInputs::Parallel { issue_ratio, params: m.parallel })
                    }
                }
            };
            if estimated_speedup < request.min_speedup {
                continue;
            }
            let hotspots = if request.evidence {
                m.hotspots.iter().map(|h| hotspot_report(&ctx, h, total)).collect()
            } else {
                Vec::new()
            };
            let mut hints: Vec<Hint> = opt.hints().into_iter().map(Hint::guidance).collect();
            hints.extend(m.notes.iter().cloned().map(Hint::finding));
            items.push(AdviceItem {
                id,
                category: id.category(),
                matched_ratio: if m.matched > 0.0 {
                    m.matched / total
                } else {
                    m.matched_latency / total
                },
                estimated_speedup,
                estimator,
                hints,
                hotspots,
            });
        }
        rank_items(&mut items);
        if let Some(top) = request.top {
            items.truncate(top);
        }
        let hist = profile.stall_histogram();
        AdviceReport {
            schema_version: SCHEMA_VERSION,
            kernel: profile.kernel.clone(),
            total_samples: profile.total_samples,
            active_samples: profile.active_samples,
            latency_samples: profile.latency_samples,
            stall_histogram: StallReason::ALL
                .iter()
                .map(|r| (r.name().to_string(), hist[r.code() as usize]))
                .filter(|(_, c)| *c > 0)
                .collect(),
            items,
        }
    }
}

fn hotspot_report(ctx: &AnalysisCtx<'_>, h: &Hotspot, total: f64) -> HotspotReport {
    HotspotReport {
        def: h.def_pc.map(|pc| location(ctx, pc)),
        use_: location(ctx, h.use_pc),
        region: region_of(ctx, h.use_pc),
        ratio: h.samples / total,
        speedup: stall_elimination_speedup(total, h.samples),
        distance: h.distance,
    }
}

fn location(ctx: &AnalysisCtx<'_>, pc: u64) -> LocationReport {
    let function =
        ctx.structure.locate(pc).map_or_else(|| "<unknown>".to_string(), |(f, _)| f.name.clone());
    let (file, line) = match ctx.structure.source_of(ctx.module, pc) {
        Some((f, l)) => (Some(f.to_string()), Some(l)),
        None => (None, None),
    };
    let scope = ctx
        .structure
        .scope_of(pc)
        .map_or_else(String::new, |s| ctx.structure.describe_scope(ctx.module, s));
    LocationReport { pc, function, file, line, scope }
}

/// The innermost region (loop or function) containing `pc`, as function
/// + PC range + line range.
fn region_of(ctx: &AnalysisCtx<'_>, pc: u64) -> RegionReport {
    let Some((f, _)) = ctx.structure.locate(pc) else {
        return RegionReport {
            function: "<unknown>".to_string(),
            pc_begin: pc,
            pc_end: pc + gpa_isa::INSTR_BYTES,
            file: None,
            line_begin: None,
            line_end: None,
            scope: String::new(),
        };
    };
    let scope = ctx.structure.scope_of(pc).unwrap_or(Scope::Function(f.index));
    // Instruction-index range of the region within its function.
    let (begin_idx, end_idx) = match scope {
        Scope::Loop(_, l) => {
            let lp = f.loops.get(l);
            let mut begin = usize::MAX;
            let mut end = 0usize;
            for &b in &lp.blocks {
                let block = f.cfg.block(b);
                begin = begin.min(block.start);
                end = end.max(block.start + block.len());
            }
            (begin, end)
        }
        _ => (0, ((f.end - f.base) / gpa_isa::INSTR_BYTES) as usize),
    };
    let lines = &ctx.module.functions[f.index].lines;
    let mut file = None;
    let mut line_begin = None;
    let mut line_end = None;
    for loc in lines[begin_idx.min(lines.len())..end_idx.min(lines.len())].iter().flatten() {
        file.get_or_insert_with(|| ctx.module.file(loc.file).to_string());
        line_begin = Some(line_begin.map_or(loc.line, |b: u32| b.min(loc.line)));
        line_end = Some(line_end.map_or(loc.line, |e: u32| e.max(loc.line)));
    }
    RegionReport {
        function: f.name.clone(),
        pc_begin: f.base + begin_idx as u64 * gpa_isa::INSTR_BYTES,
        pc_end: f.base + end_idx as u64 * gpa_isa::INSTR_BYTES,
        file,
        line_begin,
        line_end,
        scope: ctx.structure.describe_scope(ctx.module, scope),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(id: OptimizerId, speedup: f64) -> AdviceItem {
        AdviceItem {
            id,
            category: id.category(),
            matched_ratio: 0.1,
            estimated_speedup: speedup,
            estimator: EstimatorInputs::StallElimination { total: 100.0, matched: 10.0 },
            hints: vec![],
            hotspots: vec![],
        }
    }

    /// Regression test for the ranking tie-break: equal-speedup items
    /// must come out in catalog order, whatever order they went in.
    #[test]
    fn equal_speedups_tie_break_on_optimizer_id() {
        let mut items = vec![
            item(OptimizerId::ThreadIncrease, 1.25),
            item(OptimizerId::FastMath, 1.25),
            item(OptimizerId::LoopUnrolling, 1.5),
            item(OptimizerId::RegisterReuse, 1.25),
        ];
        rank_items(&mut items);
        let ids: Vec<OptimizerId> = items.iter().map(|i| i.id).collect();
        assert_eq!(
            ids,
            vec![
                OptimizerId::LoopUnrolling,
                OptimizerId::RegisterReuse,
                OptimizerId::FastMath,
                OptimizerId::ThreadIncrease,
            ],
            "speedup first, then catalog order"
        );
        // A permutation of the same items ranks identically.
        let mut permuted = vec![
            item(OptimizerId::RegisterReuse, 1.25),
            item(OptimizerId::LoopUnrolling, 1.5),
            item(OptimizerId::FastMath, 1.25),
            item(OptimizerId::ThreadIncrease, 1.25),
        ];
        rank_items(&mut permuted);
        assert_eq!(permuted, items);
    }

    #[test]
    fn request_filters_compose() {
        let r = AdviceRequest::default();
        assert!(r.wants(OptimizerId::FastMath));
        let r = AdviceRequest::default().with_category(OptimizerCategory::Parallel);
        assert!(r.wants(OptimizerId::BlockIncrease));
        assert!(!r.wants(OptimizerId::FastMath));
        let r = AdviceRequest::default()
            .with_category(OptimizerCategory::Parallel)
            .with_optimizers(&[OptimizerId::BlockIncrease, OptimizerId::FastMath]);
        assert!(r.wants(OptimizerId::BlockIncrease));
        assert!(!r.wants(OptimizerId::FastMath), "category filter still applies");
        assert!(!r.wants(OptimizerId::ThreadIncrease), "optimizer filter still applies");
    }
}
