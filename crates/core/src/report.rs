//! ASCII advice rendering — the paper's Figure 8 format.
//!
//! ```text
//! Apply GPUStrengthReductionOptimizer optimization, ratio 5.805%, estimate speedup 1.062x
//! Long latency non-memory instructions are used. ...
//!   1. Avoid integer division. ...
//!   1. Hot BLAME code, ratio 0.444%, speedup 1.004x, distance 1
//!      From tensor_transpose at cuda2.cu:34 in Loop at cuda2.cu:30
//!      To   tensor_transpose at cuda2.cu:34 in Loop at cuda2.cu:30
//! ```
//!
//! The renderer is a thin view over the structured advice schema
//! ([`AdviceReport`] v2): guidance hints render as `*` bullets, dynamic
//! findings as `-` bullets, hotspots with their blamed def→use pair.
//! The machine-readable form of the same report lives in
//! [`crate::schema`].

use crate::advisor::{AdviceItem, AdviceReport, LocationReport};
use std::fmt::Write;

/// Renders the full report as the command-line tool prints it.
pub fn render(report: &AdviceReport, top: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "GPA advice report for kernel `{}`", report.kernel);
    let _ = writeln!(
        out,
        "samples: {} total = {} active + {} latency",
        report.total_samples, report.active_samples, report.latency_samples
    );
    let _ = writeln!(out, "stall histogram:");
    for (name, count) in &report.stall_histogram {
        let pct = 100.0 * *count as f64 / report.total_samples.max(1) as f64;
        let _ = writeln!(out, "  {name:<20} {count:>10}  {pct:>5.1}%");
    }
    let _ = writeln!(out);
    if report.items.is_empty() {
        let _ = writeln!(out, "No optimization opportunities matched.");
        return out;
    }
    for item in report.items.iter().take(top) {
        render_item(&mut out, item);
        let _ = writeln!(out);
    }
    out
}

fn render_item(out: &mut String, item: &AdviceItem) {
    let _ = writeln!(
        out,
        "Apply {} optimization, ratio {:.3}%, estimate speedup {:.3}x",
        item.optimizer(),
        100.0 * item.matched_ratio,
        item.estimated_speedup
    );
    for hint in &item.hints {
        let bullet = if hint.kind.is_guidance() { '*' } else { '-' };
        let _ = writeln!(out, "  {bullet} {}", hint.text);
    }
    for (i, h) in item.hotspots.iter().enumerate() {
        let mut line = format!(
            "  {}. Hot BLAME code, ratio {:.3}%, speedup {:.3}x",
            i + 1,
            100.0 * h.ratio,
            h.speedup
        );
        if let Some(d) = h.distance {
            let _ = write!(line, ", distance {d}");
        }
        let _ = writeln!(out, "{line}");
        if let Some(def) = &h.def {
            let _ = writeln!(out, "     From {}", render_loc(def));
        }
        let _ = writeln!(out, "     To   {}", render_loc(&h.use_));
    }
}

fn render_loc(loc: &LocationReport) -> String {
    let mut s = format!("{} ", loc.function);
    match (&loc.file, loc.line) {
        (Some(f), Some(l)) => {
            let _ = write!(s, "at {f}:{l}");
        }
        _ => {
            let _ = write!(s, "at {:#x}", loc.pc);
        }
    }
    let _ = write!(s, " [{:#x}]", loc.pc);
    if !loc.scope.is_empty() && !loc.scope.starts_with("Function") {
        let _ = write!(s, " in {}", loc.scope);
    }
    s
}

/// Renders a one-line summary per item (for tables and logs).
pub fn render_summary(report: &AdviceReport) -> String {
    let mut out = String::new();
    for item in &report.items {
        let _ = writeln!(
            out,
            "{:<45} {:>8} ratio {:>7.3}%  speedup {:>6.3}x",
            item.optimizer(),
            format!("[{}]", item.category),
            100.0 * item.matched_ratio,
            item.estimated_speedup
        );
    }
    out
}
