//! `rodinia/b+tree` — `findRangeK`.
//!
//! The paper's finding: high memory-dependency stalls on the key
//! comparison; the distance between the subscripted load and its consumer
//! is too short to hide global-memory latency. The fix reads the next
//! level's keys *before* the `__syncthreads()`, so the load overlaps the
//! barrier wait and a whole iteration of bookkeeping (Code Reordering;
//! paper: 1.15× achieved, 1.28× estimated).

use crate::data::ParamBlock;
use crate::dsl::Asm;
use crate::{App, KernelSpec, Params, Stage};
use gpa_arch::LaunchConfig;

/// Builds the b+tree app entry.
pub fn app() -> App {
    App {
        name: "rodinia/b+tree",
        kernel: "findRangeK",
        stages: vec![Stage { name: "Code Reorder", optimizer: "GPUCodeReorderOptimizer" }],
        build,
    }
}

const HEIGHT: u32 = 12;

fn build(variant: usize, p: &Params) -> KernelSpec {
    let optimized = variant >= 1;
    let mut a = Asm::module("btree");
    a.kernel("findRangeK");
    a.line("btree.cu", 58);
    a.global_tid();
    a.i("LOP3.AND R1, R0, 31 {S:4}"); // lane within node fan-out
    a.param_u64(4, 0); // knodes keys base
    a.param_u32(20, 16); // start key
    a.param_u32(21, 20); // height
    a.i("MOV32I R8, 1 {S:1}"); // current node
    a.i("MOV32I R17, 0 {S:1}"); // level
    a.i("MOV32I R24, 0 {S:1}"); // matches found
    if optimized {
        // Preload level 0 keys before entering the loop.
        a.i("IMAD R10, R8, 32, R1 {S:5}");
        a.addr(12, 4, 10, 2);
        a.i("LDG.E.32 R28, [R12:R13] {W:B1, S:1}");
    }
    a.line("btree.cu", 63);
    a.label("level_loop");
    if optimized {
        // Retire the key prefetched a whole iteration ago, compute the
        // next node, prefetch its keys before the synchronization, and
        // compare the retired key afterwards.
        a.i("MOV R14, R28 {WT:[B1], S:2}");
        a.i("LOP3.AND R16, R17, 1 {S:4}");
        a.i("IMAD R8, R8, 2, 1 {S:5}");
        a.i("IADD R8, R8, R16 {S:4}");
        a.i("IMAD R10, R8, 32, R1 {S:5}");
        a.addr(26, 4, 10, 2);
        a.i("LDG.E.32 R28, [R26:R27] {W:B1, S:1}");
        a.i("BAR.SYNC {S:2}");
        a.line("btree.cu", 65);
        a.i("ISETP.LE.AND P0, R14, R20 {S:2}");
        a.i("@P0 IADD R24, R24, 1 {S:4}");
    } else {
        a.i("BAR.SYNC {S:2}");
        a.i("IMAD R10, R8, 32, R1 {S:5}");
        a.addr(12, 4, 10, 2);
        a.line("btree.cu", 65);
        a.i("LDG.E.32 R14, [R12:R13] {W:B0, S:1}");
        // The consumer sits right behind the load: short distance.
        a.i("ISETP.LE.AND P0, R14, R20 {WT:[B0], S:2}");
        a.i("@P0 IADD R24, R24, 1 {S:4}");
        a.i("LOP3.AND R16, R17, 1 {S:4}");
        a.i("IMAD R8, R8, 2, 1 {S:5}");
        a.i("IADD R8, R8, R16 {S:4}");
    }
    a.i("IADD R17, R17, 1 {S:4}");
    a.i("ISETP.LT.AND P1, R17, R21 {S:2}");
    a.i("@P1 BRA level_loop {S:5}");
    // Write out per-thread match counts.
    a.param_u64(6, 8);
    a.addr(30, 6, 0, 2);
    a.i("STG.E.32 [R30:R31], R24 {R:B3, S:2}");
    a.i("EXIT {WT:[B3], S:1}");
    a.endfunc();
    let module = a.build();

    let blocks = p.sms * p.scale;
    let threads: u32 = 128;
    let keys = (1u64 << (HEIGHT + 2)) * 32;
    KernelSpec {
        module,
        entry: "findRangeK".into(),
        launch: LaunchConfig::new(blocks, threads),
        setup: Box::new(move |gpu| {
            let mut rng = crate::data::rng(0x5057_0003);
            let knodes = gpu.global_mut().alloc(4 * keys);
            let out = gpu.global_mut().alloc(4 * (blocks * threads) as u64);
            gpu.global_mut().write_bytes(
                knodes,
                &crate::data::u32_bytes(&mut rng, keys as usize, 0, 1_000_000),
            );
            let mut pb = ParamBlock::new();
            pb.push_u64(knodes);
            pb.push_u64(out);
            pb.push_u32(500_000); // start key @16
            pb.push_u32(HEIGHT); // height @20
            pb.finish()
        }),
        const_bank1: None,
    }
}
