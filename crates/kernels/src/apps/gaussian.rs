//! `rodinia/gaussian` — `Fan2`.
//!
//! The paper's biggest win (3.86× achieved, 3.33× estimated): Fan2 is
//! launched with tiny thread blocks, so the per-SM block-slot limit caps
//! resident warps and every warp is half empty. GPA's Thread Increase
//! optimizer suggests growing the blocks; the kernel code is unchanged —
//! only the launch configuration differs between variants.

use crate::data::ParamBlock;
use crate::dsl::Asm;
use crate::{App, KernelSpec, Params, Stage};
use gpa_arch::LaunchConfig;

/// Builds the gaussian app entry.
pub fn app() -> App {
    App {
        name: "rodinia/gaussian",
        kernel: "Fan2",
        stages: vec![Stage { name: "Thread Increase", optimizer: "GPUThreadIncreaseOptimizer" }],
        build,
    }
}

fn build(variant: usize, p: &Params) -> KernelSpec {
    let mut a = Asm::module("gaussian");
    a.kernel("Fan2");
    a.line("gaussian.cu", 310);
    a.global_tid();
    // i = tid >> log2(width), j = tid & (width-1).
    a.param_u32(2, 28); // log2 width
    a.i("SHR.U32 R4, R0, R2 {S:4}");
    a.param_u32(3, 24); // width
    a.i("IADD R5, R3, -1 {S:4}");
    a.i("LOP3.AND R6, R0, R5 {S:4}");
    a.param_u64(8, 0); // m
    a.addr(10, 8, 0, 2);
    a.param_u64(12, 8); // multiplier column
    a.addr(14, 12, 4, 2);
    a.param_u64(16, 16); // pivot row
    a.addr(18, 16, 6, 2);
    a.line("gaussian.cu", 315);
    a.i("LDG.E.32 R20, [R10:R11] {W:B0, S:1}");
    a.i("LDG.E.32 R22, [R14:R15] {W:B1, S:1}");
    a.i("LDG.E.32 R24, [R18:R19] {W:B2, S:1}");
    a.i("FMUL R26, R22, R24 {WT:[B1,B2], S:4}");
    a.i("FFMA R28, R26, -1.0, R20 {WT:[B0], S:4}");
    a.i("STG.E.32 [R10:R11], R28 {R:B3, S:2}");
    a.i("EXIT {WT:[B3], S:1}");
    a.endfunc();
    let module = a.build();

    let width: u32 = 512; // matrix row length (power of two)
    let total: u32 = p.sms * 4096 * p.scale;
    // Baseline: the Rodinia launch uses tiny blocks; optimized: 256.
    let block_threads: u32 = if variant >= 1 { 256 } else { 16 };
    let blocks = total / block_threads;
    KernelSpec {
        module,
        entry: "Fan2".into(),
        launch: LaunchConfig::new(blocks, block_threads),
        setup: Box::new(move |gpu| {
            let mut rng = crate::data::rng(0x5057_0002);
            let n = total as u64;
            let m = gpu.global_mut().alloc(4 * n);
            let col = gpu.global_mut().alloc(4 * (n / width as u64 + 1));
            let row = gpu.global_mut().alloc(4 * width as u64);
            gpu.global_mut()
                .write_bytes(m, &crate::data::f32_bytes(&mut rng, n as usize, -1.0, 1.0));
            gpu.global_mut().write_bytes(
                col,
                &crate::data::f32_bytes(&mut rng, (n / width as u64 + 1) as usize, -1.0, 1.0),
            );
            gpu.global_mut()
                .write_bytes(row, &crate::data::f32_bytes(&mut rng, width as usize, -1.0, 1.0));
            let mut pb = ParamBlock::new();
            pb.push_u64(m);
            pb.push_u64(col);
            pb.push_u64(row);
            pb.push_u32(width); // @24
            pb.push_u32(width.trailing_zeros()); // @28
            pb.finish()
        }),
        const_bank1: None,
    }
}
