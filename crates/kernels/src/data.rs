//! Seeded synthetic input generators.
//!
//! All inputs are deterministic (fixed seeds) so every run of the
//! evaluation reproduces the same cycle counts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded RNG for one workload.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// `n` uniform floats in `[lo, hi)` as raw little-endian bytes.
pub fn f32_bytes(rng: &mut StdRng, n: usize, lo: f32, hi: f32) -> Vec<u8> {
    let mut out = Vec::with_capacity(n * 4);
    for _ in 0..n {
        let v: f32 = rng.gen_range(lo..hi);
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// `n` uniform u32 values in `[lo, hi)` as raw bytes.
pub fn u32_bytes(rng: &mut StdRng, n: usize, lo: u32, hi: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(n * 4);
    for _ in 0..n {
        let v: u32 = rng.gen_range(lo..hi);
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// A skewed per-thread work distribution (the bfs pattern: most vertices
/// have tiny degree, a few are hubs): ~90% draw from `[1, small]`, the
/// rest from `[small, large]`.
pub fn skewed_degrees(rng: &mut StdRng, n: usize, small: u32, large: u32) -> Vec<u32> {
    (0..n)
        .map(|_| {
            if rng.gen_bool(0.9) {
                rng.gen_range(1..=small)
            } else {
                rng.gen_range(small + 1..=large)
            }
        })
        .collect()
}

/// Packs u32 values to bytes.
pub fn pack_u32(vals: &[u32]) -> Vec<u8> {
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Little-endian parameter block builder (constant bank 0 layout).
#[derive(Debug, Default, Clone)]
pub struct ParamBlock {
    bytes: Vec<u8>,
}

impl ParamBlock {
    /// Empty block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a 64-bit pointer, returning its byte offset.
    pub fn push_u64(&mut self, v: u64) -> u32 {
        let off = self.bytes.len() as u32;
        self.bytes.extend_from_slice(&v.to_le_bytes());
        off
    }

    /// Appends a 32-bit scalar, returning its byte offset.
    pub fn push_u32(&mut self, v: u32) -> u32 {
        let off = self.bytes.len() as u32;
        self.bytes.extend_from_slice(&v.to_le_bytes());
        off
    }

    /// Appends an f32 scalar, returning its byte offset.
    pub fn push_f32(&mut self, v: f32) -> u32 {
        self.push_u32(v.to_bits())
    }

    /// The finished bytes.
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generators() {
        let mut a = rng(7);
        let mut b = rng(7);
        assert_eq!(f32_bytes(&mut a, 16, 0.0, 1.0), f32_bytes(&mut b, 16, 0.0, 1.0));
        let d = skewed_degrees(&mut a, 1000, 3, 64);
        let hubs = d.iter().filter(|&&x| x > 3).count();
        assert!(hubs > 20 && hubs < 250, "about 10% hubs, got {hubs}");
    }

    #[test]
    fn param_block_layout() {
        let mut p = ParamBlock::new();
        assert_eq!(p.push_u64(0xAABB), 0);
        assert_eq!(p.push_u32(7), 8);
        assert_eq!(p.push_f32(1.0), 12);
        let bytes = p.finish();
        assert_eq!(bytes.len(), 16);
        assert_eq!(u64::from_le_bytes(bytes[0..8].try_into().unwrap()), 0xAABB);
    }
}
