//! Register, predicate, barrier and special-register names.

use crate::{IsaError, Result};
use std::fmt;

/// A 32-bit general-purpose register `R0`–`R254`, or the zero register `RZ`.
///
/// Each thread can address up to 255 regular registers; `R255` is the
/// hard-wired zero register `RZ` (reads as 0, writes are dropped).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Register(u8);

impl Register {
    /// The zero register `RZ`.
    pub const ZERO: Register = Register(255);

    /// Creates `R{index}`.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::BadRegister`] if `index > 255`.
    pub fn new(index: u32) -> Result<Self> {
        if index > 255 {
            return Err(IsaError::BadRegister(index));
        }
        Ok(Register(index as u8))
    }

    /// Creates `R{index}` without range checking (index is already a `u8`).
    pub const fn from_u8(index: u8) -> Self {
        Register(index)
    }

    /// The register number (255 for `RZ`).
    pub const fn index(self) -> u8 {
        self.0
    }

    /// Whether this is the hard-wired zero register.
    pub const fn is_zero(self) -> bool {
        self.0 == 255
    }

    /// The register holding the upper half of a 64-bit pair based here.
    ///
    /// `RZ.pair_hi()` is `RZ` again (a 64-bit zero).
    pub const fn pair_hi(self) -> Self {
        if self.0 == 255 {
            Register(255)
        } else {
            Register(self.0 + 1)
        }
    }
}

impl fmt::Display for Register {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            write!(f, "RZ")
        } else {
            write!(f, "R{}", self.0)
        }
    }
}

/// A predicate register `P0`–`P6`, or the always-true `PT`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredReg(u8);

impl PredReg {
    /// The always-true predicate `PT`.
    pub const TRUE: PredReg = PredReg(7);

    /// Creates `P{index}`.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::BadPredicate`] if `index > 7` (7 is `PT`).
    pub fn new(index: u32) -> Result<Self> {
        if index > 7 {
            return Err(IsaError::BadPredicate(index));
        }
        Ok(PredReg(index as u8))
    }

    /// The predicate number (7 for `PT`).
    pub const fn index(self) -> u8 {
        self.0
    }

    /// Whether this is `PT`.
    pub const fn is_true(self) -> bool {
        self.0 == 7
    }
}

impl fmt::Display for PredReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_true() {
            write!(f, "PT")
        } else {
            write!(f, "P{}", self.0)
        }
    }
}

/// A guard predicate: `@P3` (true condition) or `@!P3` (false condition).
///
/// The GPA paper writes these as `Pi` and `!Pi`; an instruction with no
/// guard behaves like the special predicate `_` that covers both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Predicate {
    /// The predicate register tested.
    pub reg: PredReg,
    /// If true the instruction executes when the register is **false**.
    pub negated: bool,
}

impl Predicate {
    /// A positive guard `@Pn`.
    pub const fn pos(reg: PredReg) -> Self {
        Predicate { reg, negated: false }
    }

    /// A negative guard `@!Pn`.
    pub const fn neg(reg: PredReg) -> Self {
        Predicate { reg, negated: true }
    }

    /// The complementary condition on the same register.
    pub const fn complement(self) -> Self {
        Predicate { reg: self.reg, negated: !self.negated }
    }

    /// Whether this guard always evaluates true (`@PT`).
    pub const fn always(self) -> bool {
        self.reg.is_true() && !self.negated
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            write!(f, "@!{}", self.reg)
        } else {
            write!(f, "@{}", self.reg)
        }
    }
}

/// A virtual scoreboard barrier register `B0`–`B5`.
///
/// Volta instructions synchronize variable-latency results through six
/// scoreboard barriers. GPA treats them as *virtual barrier registers* so
/// that barrier-mediated dependencies appear in ordinary def–use chains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BarrierReg(u8);

impl BarrierReg {
    /// Number of scoreboard barriers per warp.
    pub const COUNT: usize = 6;

    /// Creates `B{index}`.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::BadBarrier`] if `index > 5`.
    pub fn new(index: u32) -> Result<Self> {
        if index > 5 {
            return Err(IsaError::BadBarrier(index));
        }
        Ok(BarrierReg(index as u8))
    }

    /// The barrier number.
    pub const fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for BarrierReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// Read-only special registers exposed through `S2R`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum SpecialReg {
    TidX,
    TidY,
    TidZ,
    CtaIdX,
    CtaIdY,
    CtaIdZ,
    NTidX,
    NTidY,
    NTidZ,
    NCtaIdX,
    NCtaIdY,
    NCtaIdZ,
    LaneId,
    WarpId,
    SmId,
    Clock,
}

impl SpecialReg {
    /// All special registers in encoding order.
    pub const ALL: [SpecialReg; 16] = [
        SpecialReg::TidX,
        SpecialReg::TidY,
        SpecialReg::TidZ,
        SpecialReg::CtaIdX,
        SpecialReg::CtaIdY,
        SpecialReg::CtaIdZ,
        SpecialReg::NTidX,
        SpecialReg::NTidY,
        SpecialReg::NTidZ,
        SpecialReg::NCtaIdX,
        SpecialReg::NCtaIdY,
        SpecialReg::NCtaIdZ,
        SpecialReg::LaneId,
        SpecialReg::WarpId,
        SpecialReg::SmId,
        SpecialReg::Clock,
    ];

    /// Stable numeric code used by the binary encoding.
    pub fn code(self) -> u8 {
        Self::ALL.iter().position(|&s| s == self).unwrap() as u8
    }

    /// Inverse of [`SpecialReg::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        Self::ALL.get(code as usize).copied()
    }

    /// The assembly spelling (e.g. `SR_TID.X`).
    pub fn name(self) -> &'static str {
        match self {
            SpecialReg::TidX => "SR_TID.X",
            SpecialReg::TidY => "SR_TID.Y",
            SpecialReg::TidZ => "SR_TID.Z",
            SpecialReg::CtaIdX => "SR_CTAID.X",
            SpecialReg::CtaIdY => "SR_CTAID.Y",
            SpecialReg::CtaIdZ => "SR_CTAID.Z",
            SpecialReg::NTidX => "SR_NTID.X",
            SpecialReg::NTidY => "SR_NTID.Y",
            SpecialReg::NTidZ => "SR_NTID.Z",
            SpecialReg::NCtaIdX => "SR_NCTAID.X",
            SpecialReg::NCtaIdY => "SR_NCTAID.Y",
            SpecialReg::NCtaIdZ => "SR_NCTAID.Z",
            SpecialReg::LaneId => "SR_LANEID",
            SpecialReg::WarpId => "SR_WARPID",
            SpecialReg::SmId => "SR_SMID",
            SpecialReg::Clock => "SR_CLOCK",
        }
    }

    /// Parses the assembly spelling.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|s| s.name() == name)
    }
}

impl fmt::Display for SpecialReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_basics() {
        let r = Register::new(5).unwrap();
        assert_eq!(r.to_string(), "R5");
        assert_eq!(r.pair_hi().to_string(), "R6");
        assert_eq!(Register::ZERO.to_string(), "RZ");
        assert!(Register::ZERO.is_zero());
        assert_eq!(Register::ZERO.pair_hi(), Register::ZERO);
        assert_eq!(Register::new(256), Err(IsaError::BadRegister(256)));
    }

    #[test]
    fn predicate_display_and_complement() {
        let p = Predicate::pos(PredReg::new(0).unwrap());
        assert_eq!(p.to_string(), "@P0");
        assert_eq!(p.complement().to_string(), "@!P0");
        assert!(Predicate::pos(PredReg::TRUE).always());
        assert!(!Predicate::neg(PredReg::TRUE).always());
    }

    #[test]
    fn barrier_range() {
        assert!(BarrierReg::new(5).is_ok());
        assert_eq!(BarrierReg::new(6), Err(IsaError::BadBarrier(6)));
    }

    #[test]
    fn special_reg_codes_roundtrip() {
        for s in SpecialReg::ALL {
            assert_eq!(SpecialReg::from_code(s.code()), Some(s));
            assert_eq!(SpecialReg::from_name(s.name()), Some(s));
        }
    }
}
