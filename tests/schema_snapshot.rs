//! Schema-drift gate: the committed golden v2 report for one registry
//! app must match what the current build produces, byte for byte.
//!
//! The analysis is fully deterministic (fixed-seed simulator, total-order
//! ranking), so any diff here is a change to the advice schema or to the
//! advisor's output — if intentional, regenerate the golden with
//!
//! ```sh
//! GPA_UPDATE_GOLDEN=1 cargo test --test schema_snapshot
//! ```
//!
//! bump `SCHEMA_VERSION` when the layout changed, and document the
//! change in `docs/advice-schema.md`.

use gpa::core::schema;
use gpa::pipeline::{AnalysisJob, Session};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/advice_v2_rodinia_hotspot.json")
}

#[test]
fn golden_v2_report_has_not_drifted() {
    let session = Session::test();
    let outcome = session.run_one(&AnalysisJob::new("rodinia/hotspot", 0)).expect("analysis runs");
    let mut produced = schema::report_to_json(&outcome.report).pretty();
    produced.push('\n');

    let path = golden_path();
    if std::env::var_os("GPA_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &produced).expect("write golden");
        return;
    }
    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    assert_eq!(
        produced,
        committed,
        "the v2 advice schema drifted from {}; if intentional, regenerate with \
         GPA_UPDATE_GOLDEN=1 cargo test --test schema_snapshot and review the diff",
        path.display()
    );
}

#[test]
fn golden_v2_report_parses_with_the_current_reader() {
    let text = std::fs::read_to_string(golden_path()).expect("golden exists");
    let report = schema::report_from_json(&gpa::json::Json::parse(&text).expect("valid JSON"))
        .expect("current reader understands the committed schema");
    assert!(!report.items.is_empty());
    assert_eq!(report.schema_version, gpa::core::SCHEMA_VERSION);
}
