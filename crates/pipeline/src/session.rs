//! The [`Session`]: shared configuration, the module-artifact cache, and
//! single/batch execution.

use crate::{AnalysisError, AnalysisJob, AnalysisOutcome};
use gpa_arch::{ArchConfig, LatencyTable};
use gpa_core::{AdviceRequest, Advisor, ModuleBlame};
use gpa_kernels::apps::app_by_name;
use gpa_kernels::{KernelSpec, Params};
use gpa_sampling::{KernelProfile, Profiler};
use gpa_sim::{CompiledProgram, GpuSim, SimConfig};
use gpa_structure::ProgramStructure;
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Everything derivable from one built kernel variant, constructed once
/// per `(app, variant)` and shared via [`Arc`] across runs: the linked
/// module with its setup closure ([`KernelSpec`]), the static analysis
/// ([`ProgramStructure`], which embeds each function's CFG and loop
/// forest), and the simulator lowering ([`CompiledProgram`]), so repeat
/// launches — batch re-runs, daemon traffic — skip re-lowering the
/// module every time.
pub struct ModuleArtifacts {
    /// The built kernel variant (module, entry, launch, setup).
    pub spec: KernelSpec,
    /// Static analysis of `spec.module`.
    pub structure: ProgramStructure,
    /// The module lowered for simulation, reused across launches.
    pub program: Arc<CompiledProgram>,
    /// Snapshot of device memory and kernel params after the spec's
    /// setup closure ran once: setup closures are deterministic per
    /// variant, so repeat launches clone the initialized pages instead
    /// of replaying element-wise host writes.
    init: OnceLock<MemInit>,
}

/// The device state a spec's setup closure produced (see
/// [`ModuleArtifacts::init`]).
struct MemInit {
    global: gpa_sim::GlobalMem,
    params: Vec<u8>,
}

/// A long-lived analysis context: owns the experiment configuration and
/// the artifact cache, and executes [`AnalysisJob`]s one at a time or as
/// a parallel batch.
///
/// Cloning is deliberately not offered: share one session (`&Session` is
/// enough — every method takes `&self`) so all consumers hit the same
/// cache.
pub struct Session {
    arch: ArchConfig,
    sim: SimConfig,
    latency: LatencyTable,
    params: Params,
    advisor: Advisor,
    repeat: u32,
    cache: Mutex<HashMap<(String, usize), Arc<ModuleArtifacts>>>,
}

impl Session {
    /// A session with explicit configuration.
    pub fn new(arch: ArchConfig, sim: SimConfig, params: Params) -> Self {
        let latency = LatencyTable::for_arch(&arch);
        Session {
            arch,
            sim,
            latency,
            params,
            advisor: Advisor::new(),
            repeat: 1,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// The configuration the experiment harnesses use: the scaled-down
    /// paper device and sampling period (previously duplicated as
    /// `runner::sim_config`/`runner::arch_for` call sites everywhere).
    pub fn for_params(params: Params) -> Self {
        let arch = ArchConfig::small(params.sms);
        let sim = SimConfig { sampling_period: 127, ..SimConfig::default() };
        Session::new(arch, sim, params)
    }

    /// The full-scale suite session (Table 3 harness, CLI).
    pub fn full() -> Self {
        Session::for_params(Params::full())
    }

    /// A tiny session for unit/integration tests.
    pub fn test() -> Self {
        Session::for_params(Params::test())
    }

    /// Replaces the advisor (e.g. a custom optimizer catalog).
    #[must_use]
    pub fn with_advisor(mut self, advisor: Advisor) -> Self {
        self.advisor = advisor;
        self
    }

    /// Replaces the simulator configuration (e.g. to run the dense
    /// reference scheduler for differential benchmarks). Clears the
    /// artifact cache: compiled programs embed nothing config-dependent,
    /// but cached outcomes should not mix configurations mid-session.
    #[must_use]
    pub fn with_sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self.cache = Mutex::new(HashMap::new());
        self
    }

    /// Replaces the memory timing model ([`gpa_arch::MemModel`]) without
    /// touching the rest of the device description. The arch *name* is
    /// unchanged, so cached [`CompiledProgram`]s stay valid — but cached
    /// outcomes must not mix models, so the artifact cache is cleared.
    #[must_use]
    pub fn with_mem_model(mut self, mem: gpa_arch::MemModel) -> Self {
        self.arch.mem = mem;
        self.latency = LatencyTable::for_arch(&self.arch);
        self.cache = Mutex::new(HashMap::new());
        self
    }

    /// Enables the timed memory hierarchy with its default
    /// configuration — shorthand for
    /// [`with_mem_model`](Session::with_mem_model) with a default
    /// [`gpa_arch::HierarchyConfig`].
    #[must_use]
    pub fn with_hierarchy(self) -> Self {
        let mem = gpa_arch::MemModel::Hierarchy(gpa_arch::HierarchyConfig::default());
        self.with_mem_model(mem)
    }

    /// Sets the session's default profiling-repeat count: every sampling
    /// run replays the kernel this many times with shifted sampling
    /// phases and merges the profiles (replay-style noise reduction, see
    /// [`gpa_sampling::Profiler::profile_repeat`]). Values below 1 are
    /// clamped to 1 (plain single-launch profiling — the default).
    #[must_use]
    pub fn with_repeat(mut self, repeat: u32) -> Self {
        self.repeat = repeat.max(1);
        self
    }

    /// The session's default profiling-repeat count.
    pub fn repeat(&self) -> u32 {
        self.repeat
    }

    /// The device configuration.
    pub fn arch(&self) -> &ArchConfig {
        &self.arch
    }

    /// The simulator configuration.
    pub fn sim_config(&self) -> &SimConfig {
        &self.sim
    }

    /// The pre-built latency table.
    pub fn latency(&self) -> &LatencyTable {
        &self.latency
    }

    /// The suite scaling parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Width of the worker pool [`Session::run_batch`] fans out over.
    pub fn workers(&self) -> usize {
        rayon::current_num_threads()
    }

    /// Cached artifacts for `(app, variant)`, building them on first use.
    /// Repeated calls return the same [`Arc`].
    ///
    /// # Errors
    ///
    /// When the app is unknown or the variant out of range.
    pub fn artifacts(&self, job: &AnalysisJob) -> Result<Arc<ModuleArtifacts>, AnalysisError> {
        let key = (job.app.clone(), job.variant);
        // Fast path under the lock; build outside it so a slow module
        // build does not serialize unrelated cache hits.
        if let Some(hit) = self.cache.lock().expect("cache lock").get(&key) {
            return Ok(Arc::clone(hit));
        }
        let app = app_by_name(&job.app)
            .ok_or_else(|| AnalysisError::new(job, "unknown app (try `gpa list`)"))?;
        if job.variant >= app.variants() {
            return Err(AnalysisError::new(
                job,
                format!("variant out of range (app has 0..{})", app.variants() - 1),
            ));
        }
        let spec = (app.build)(job.variant, &self.params);
        let structure = ProgramStructure::build(&spec.module);
        let program = CompiledProgram::build(&spec.module, &spec.entry, &self.arch)
            .map(Arc::new)
            .map_err(|e| AnalysisError::new(job, e.to_string()))?;
        let built = Arc::new(ModuleArtifacts { spec, structure, program, init: OnceLock::new() });
        let mut cache = self.cache.lock().expect("cache lock");
        // Two workers may race to build the same key; keep the first.
        Ok(Arc::clone(cache.entry(key).or_insert(built)))
    }

    /// Number of artifact-cache entries (for tests and diagnostics).
    pub fn cached_modules(&self) -> usize {
        self.cache.lock().expect("cache lock").len()
    }

    /// A fresh simulator wired with a spec's constant bank.
    fn gpu_for(&self, spec: &KernelSpec) -> GpuSim {
        let mut gpu = GpuSim::new(self.arch.clone(), self.sim.clone());
        if let Some(bank) = &spec.const_bank1 {
            gpu.set_const_bank(1, bank.clone());
        }
        gpu
    }

    /// A simulator armed for an artifact's kernel: device built, constant
    /// bank wired, inputs initialized. The first call per artifact runs
    /// the spec's setup closure and snapshots the resulting device
    /// memory; later calls clone the snapshot instead of replaying the
    /// element-wise host writes (a large share of repeat-launch cost).
    fn armed_gpu(&self, artifacts: &ModuleArtifacts) -> (GpuSim, Vec<u8>) {
        let spec = &artifacts.spec;
        let init = artifacts.init.get_or_init(|| {
            let mut gpu = self.gpu_for(spec);
            let params = (spec.setup)(&mut gpu);
            MemInit { global: gpu.global().clone(), params }
        });
        let mut gpu = self.gpu_for(spec);
        *gpu.global_mut() = init.global.clone();
        (gpu, init.params.clone())
    }

    /// Runs an artifact's kernel with the profiler attached: the sampling
    /// primitive every analysis path shares. Uses the artifact's cached
    /// [`CompiledProgram`] and memory snapshot, so only the launch itself
    /// is paid per run. `repeat > 1` replays the launch with shifted
    /// sampling phases and merges the profiles; the returned cycles are
    /// always the phase-0 (single-launch) ground truth.
    fn sample_artifacts(
        &self,
        job: &AnalysisJob,
        artifacts: &ModuleArtifacts,
        repeat: u32,
    ) -> Result<(KernelProfile, u64), AnalysisError> {
        let (gpu, host_params) = self.armed_gpu(artifacts);
        let mut profiler = Profiler::new(gpu);
        let (profile, result) = profiler
            .profile_repeat_compiled(
                &artifacts.program,
                &artifacts.spec.launch,
                &host_params,
                repeat,
            )
            .map_err(|e| AnalysisError::new(job, e.to_string()))?;
        Ok((profile, result.cycles))
    }

    /// Advises on a sampled profile using an artifact's cached static
    /// analysis and the session's latency table, scoped by a per-call
    /// [`AdviceRequest`].
    fn advise_artifacts(
        &self,
        artifacts: &ModuleArtifacts,
        profile: &KernelProfile,
        request: &AdviceRequest,
    ) -> gpa_core::AdviceReport {
        self.advisor.advise_request(
            &artifacts.spec.module,
            &artifacts.structure,
            &self.latency,
            profile,
            &self.arch,
            request,
        )
    }

    /// The sampling primitive: runs a job's kernel with the profiler
    /// attached and returns the cached artifacts, the aggregated profile,
    /// and ground-truth cycles. [`Session::run_one`] and
    /// [`Session::blame_one`] layer on top.
    ///
    /// # Errors
    ///
    /// Unknown app/variant, or a simulator fault.
    pub fn profile_one(
        &self,
        job: &AnalysisJob,
    ) -> Result<(Arc<ModuleArtifacts>, KernelProfile, u64), AnalysisError> {
        self.profile_one_repeat(job, self.repeat)
    }

    /// [`Session::profile_one`] with an explicit repeat count overriding
    /// the session default (the daemon's per-request `repeat` option).
    ///
    /// # Errors
    ///
    /// Unknown app/variant, or a simulator fault.
    pub fn profile_one_repeat(
        &self,
        job: &AnalysisJob,
        repeat: u32,
    ) -> Result<(Arc<ModuleArtifacts>, KernelProfile, u64), AnalysisError> {
        let artifacts = self.artifacts(job)?;
        let (profile, cycles) = self.sample_artifacts(job, &artifacts, repeat)?;
        Ok((artifacts, profile, cycles))
    }

    /// Runs one job: simulate with sampling, aggregate the profile, and
    /// produce the ranked advice report with the advisor's default
    /// options (see [`gpa_core::AdvisorBuilder::defaults`]).
    ///
    /// # Errors
    ///
    /// Unknown app/variant, or a simulator fault.
    pub fn run_one(&self, job: &AnalysisJob) -> Result<AnalysisOutcome, AnalysisError> {
        self.run_one_request(job, self.advisor.defaults())
    }

    /// [`Session::run_one`] scoped by a per-call [`AdviceRequest`]
    /// (top-k, category/optimizer filters, hotspot budget, evidence).
    ///
    /// # Errors
    ///
    /// Unknown app/variant, or a simulator fault.
    pub fn run_one_request(
        &self,
        job: &AnalysisJob,
        request: &AdviceRequest,
    ) -> Result<AnalysisOutcome, AnalysisError> {
        self.run_one_request_repeat(job, request, self.repeat)
    }

    /// [`Session::run_one_request`] with an explicit repeat count: the
    /// profile the advisor sees is the merge of `repeat` replayed
    /// launches (see [`Session::with_repeat`]).
    ///
    /// # Errors
    ///
    /// Unknown app/variant, or a simulator fault.
    pub fn run_one_request_repeat(
        &self,
        job: &AnalysisJob,
        request: &AdviceRequest,
        repeat: u32,
    ) -> Result<AnalysisOutcome, AnalysisError> {
        let t0 = Instant::now();
        let (artifacts, profile, cycles) = self.profile_one_repeat(job, repeat)?;
        let report = self.advise_artifacts(&artifacts, &profile, request);
        Ok(AnalysisOutcome {
            job: job.clone(),
            kernel: artifacts.spec.entry.clone(),
            profile,
            cycles,
            report,
            wall: t0.elapsed(),
            artifacts,
        })
    }

    /// Advises on a caller-supplied profile — sampling data that was
    /// gathered elsewhere (a saved `gpa profile` dump, a remote client's
    /// submission) — using the cached static artifacts for `job`. This is
    /// the profiling/advising decoupling point: the kernel is *not*
    /// re-simulated, only matched against `(app, variant)`'s module and
    /// program structure.
    ///
    /// # Errors
    ///
    /// Unknown app or variant out of range.
    pub fn advise_profile(
        &self,
        job: &AnalysisJob,
        profile: &KernelProfile,
    ) -> Result<gpa_core::AdviceReport, AnalysisError> {
        self.advise_profile_request(job, profile, self.advisor.defaults())
    }

    /// [`Session::advise_profile`] scoped by a per-call
    /// [`AdviceRequest`].
    ///
    /// # Errors
    ///
    /// Unknown app or variant out of range.
    pub fn advise_profile_request(
        &self,
        job: &AnalysisJob,
        profile: &KernelProfile,
        request: &AdviceRequest,
    ) -> Result<gpa_core::AdviceReport, AnalysisError> {
        let artifacts = self.artifacts(job)?;
        Ok(self.advise_artifacts(&artifacts, profile, request))
    }

    /// Profiles one job and attributes its stalls, returning the blame
    /// graph (the figure harnesses' flow, without advice ranking).
    ///
    /// # Errors
    ///
    /// Unknown app/variant, or a simulator fault.
    pub fn blame_one(&self, job: &AnalysisJob) -> Result<ModuleBlame, AnalysisError> {
        let (artifacts, profile, _) = self.profile_one(job)?;
        Ok(ModuleBlame::build(
            &artifacts.spec.module,
            &artifacts.structure,
            &profile,
            &self.latency,
        ))
    }

    /// Analyzes a caller-built [`KernelSpec`] (a kernel outside the
    /// registry, e.g. hand-written assembly). The spec is moved into the
    /// returned outcome's artifacts; nothing is cached.
    ///
    /// # Errors
    ///
    /// A simulator fault.
    pub fn analyze_spec(&self, spec: KernelSpec) -> Result<AnalysisOutcome, AnalysisError> {
        let t0 = Instant::now();
        let job = AnalysisJob::new(spec.module.name.clone(), 0);
        let structure = ProgramStructure::build(&spec.module);
        let program = CompiledProgram::build(&spec.module, &spec.entry, &self.arch)
            .map(Arc::new)
            .map_err(|e| AnalysisError::new(&job, e.to_string()))?;
        let artifacts =
            Arc::new(ModuleArtifacts { spec, structure, program, init: OnceLock::new() });
        let (profile, cycles) = self.sample_artifacts(&job, &artifacts, self.repeat)?;
        let report = self.advise_artifacts(&artifacts, &profile, self.advisor.defaults());
        Ok(AnalysisOutcome {
            job,
            kernel: artifacts.spec.entry.clone(),
            profile,
            cycles,
            report,
            wall: t0.elapsed(),
            artifacts,
        })
    }

    /// Times one job without sampling (ground truth for achieved
    /// speedups).
    ///
    /// # Errors
    ///
    /// Unknown app/variant, or a simulator fault.
    pub fn time_one(&self, job: &AnalysisJob) -> Result<u64, AnalysisError> {
        let artifacts = self.artifacts(job)?;
        let (gpu, host_params) = self.armed_gpu(&artifacts);
        let mut profiler = Profiler::new(gpu);
        profiler
            .time_only_compiled(&artifacts.program, &artifacts.spec.launch, &host_params)
            .map_err(|e| AnalysisError::new(job, e.to_string()))
    }

    /// Times a caller-built [`KernelSpec`] without sampling (e.g. a
    /// launch-configuration sweep over modified specs).
    ///
    /// # Errors
    ///
    /// A simulator fault.
    pub fn time_spec(&self, spec: &KernelSpec) -> Result<u64, AnalysisError> {
        let mut gpu = self.gpu_for(spec);
        let host_params = (spec.setup)(&mut gpu);
        let mut profiler = Profiler::new(gpu);
        profiler.time_only(&spec.module, &spec.entry, &spec.launch, &host_params).map_err(|e| {
            AnalysisError::new(&AnalysisJob::new(spec.module.name.clone(), 0), e.to_string())
        })
    }

    /// Runs many jobs across the worker pool. Results are returned in
    /// job order — index `i` of the output always answers `jobs[i]`,
    /// independent of scheduling — so batch output is deterministic.
    pub fn run_batch(&self, jobs: &[AnalysisJob]) -> Vec<Result<AnalysisOutcome, AnalysisError>> {
        self.run_batch_request(jobs, self.advisor.defaults())
    }

    /// [`Session::run_batch`] with one shared per-call [`AdviceRequest`]
    /// applied to every job.
    pub fn run_batch_request(
        &self,
        jobs: &[AnalysisJob],
        request: &AdviceRequest,
    ) -> Vec<Result<AnalysisOutcome, AnalysisError>> {
        jobs.par_iter().map(|job| self.run_one_request(job, request)).collect()
    }

    /// The serial reference for [`Session::run_batch`] (used by the
    /// `batch` bench to measure the parallel speedup).
    pub fn run_batch_serial(
        &self,
        jobs: &[AnalysisJob],
    ) -> Vec<Result<AnalysisOutcome, AnalysisError>> {
        jobs.iter().map(|job| self.run_one(job)).collect()
    }

    /// One baseline job per registry app, in Table 3 order (the CLI's
    /// `analyze --all`).
    pub fn jobs_for_all_apps(&self) -> Vec<AnalysisJob> {
        gpa_kernels::all_apps().iter().map(|app| AnalysisJob::new(app.name, 0)).collect()
    }

    /// Every variant of every registry app, in Table 3 order.
    pub fn jobs_for_all_variants(&self) -> Vec<AnalysisJob> {
        gpa_kernels::all_apps()
            .iter()
            .flat_map(|app| (0..app.variants()).map(|v| AnalysisJob::new(app.name, v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_app_and_bad_variant_are_reported() {
        let s = Session::test();
        let err = s.run_one(&AnalysisJob::new("nope", 0)).unwrap_err();
        assert!(err.message.contains("unknown app"), "{err}");
        let err = s.run_one(&AnalysisJob::new("rodinia/hotspot", 99)).unwrap_err();
        assert!(err.message.contains("variant out of range"), "{err}");
    }

    #[test]
    fn artifacts_are_cached_per_variant() {
        let s = Session::test();
        let a = s.artifacts(&AnalysisJob::new("rodinia/hotspot", 0)).unwrap();
        let b = s.artifacts(&AnalysisJob::new("rodinia/hotspot", 0)).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same variant shares one build");
        let c = s.artifacts(&AnalysisJob::new("rodinia/hotspot", 1)).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "different variants differ");
        assert_eq!(s.cached_modules(), 2);
    }

    #[test]
    fn repeat_profiling_sharpens_samples_without_changing_ground_truth() {
        let job = AnalysisJob::new("rodinia/hotspot", 0);
        let single = Session::test().run_one(&job).unwrap();
        let repeated = Session::test().with_repeat(3).run_one(&job).unwrap();
        assert_eq!(repeated.cycles, single.cycles, "ground truth is the phase-0 launch");
        assert_eq!(repeated.profile.cycles, single.profile.cycles);
        assert!(
            repeated.profile.total_samples > single.profile.total_samples,
            "merged replays observe more cycles: {} vs {}",
            repeated.profile.total_samples,
            single.profile.total_samples
        );
        // Per-request override beats the session default.
        let s = Session::test().with_repeat(3);
        let overridden = s.run_one_request_repeat(&job, s.advisor.defaults(), 1).unwrap();
        assert_eq!(overridden.profile, single.profile);
    }

    #[test]
    fn job_lists_cover_the_registry() {
        let s = Session::test();
        assert_eq!(s.jobs_for_all_apps().len(), 21);
        assert_eq!(s.jobs_for_all_variants().len(), 21 + 26, "apps + Table 3 rows");
    }
}
