//! Basic-block construction.

use gpa_isa::{Function, Opcode};

/// Index of a basic block inside a [`Cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub usize);

/// A maximal straight-line run of instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BasicBlock {
    /// This block's id.
    pub id: BlockId,
    /// First instruction index (inclusive).
    pub start: usize,
    /// One past the last instruction index.
    pub end: usize,
}

impl BasicBlock {
    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the block is empty (never true for built CFGs).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether the block contains instruction index `idx`.
    pub fn contains(&self, idx: usize) -> bool {
        (self.start..self.end).contains(&idx)
    }
}

/// The control-flow graph of one function.
///
/// Instruction indices are positions in `Function::instrs`. Terminators are
/// `BRA` (conditional if predicated), `EXIT` and `RET`; `CAL` does not end a
/// block (the CFG is intra-procedural, matching the paper's intra-function
/// backward slicing).
#[derive(Debug, Clone, PartialEq)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
    block_of: Vec<BlockId>,
    n_instrs: usize,
}

impl Cfg {
    /// Builds the CFG of `f` (which must be linked so branch targets are
    /// absolute PCs).
    ///
    /// Targets outside the function (tail calls) are treated as function
    /// exits. Super blocks are split at every branch target, which is the
    /// paper's "split super blocks into basic blocks" step.
    pub fn build(f: &Function) -> Self {
        let n = f.instrs.len();
        let mut leader = vec![false; n.max(1)];
        if n > 0 {
            leader[0] = true;
        }
        for (i, instr) in f.instrs.iter().enumerate() {
            match instr.opcode {
                Opcode::Bra => {
                    if let Some(t) = instr.branch_target() {
                        if let Some(idx) = f.index_of_pc(t) {
                            leader[idx] = true;
                        }
                    }
                    if i + 1 < n {
                        leader[i + 1] = true;
                    }
                }
                Opcode::Exit | Opcode::Ret if i + 1 < n => {
                    leader[i + 1] = true;
                }
                _ => {}
            }
        }
        let mut blocks = Vec::new();
        let mut block_of = vec![BlockId(0); n];
        let mut start = 0;
        for (i, &lead) in leader.iter().enumerate() {
            if i > start && lead {
                let id = BlockId(blocks.len());
                blocks.push(BasicBlock { id, start, end: i });
                start = i;
            }
        }
        if n > 0 {
            let id = BlockId(blocks.len());
            blocks.push(BasicBlock { id, start, end: n });
        }
        for b in &blocks {
            block_of[b.start..b.end].fill(b.id);
        }
        let mut succs = vec![Vec::new(); blocks.len()];
        let mut preds = vec![Vec::new(); blocks.len()];
        for b in &blocks {
            let last = &f.instrs[b.end - 1];
            let mut targets: Vec<BlockId> = Vec::new();
            match last.opcode {
                Opcode::Bra => {
                    if let Some(t) = last.branch_target() {
                        if let Some(idx) = f.index_of_pc(t) {
                            targets.push(block_of[idx]);
                        }
                    }
                    // A predicated branch may fall through.
                    let conditional = last.pred.is_some_and(|p| !p.always());
                    if conditional && b.end < n {
                        targets.push(block_of[b.end]);
                    }
                }
                Opcode::Exit | Opcode::Ret => {}
                _ => {
                    if b.end < n {
                        targets.push(block_of[b.end]);
                    }
                }
            }
            targets.dedup();
            for t in targets {
                succs[b.id.0].push(t);
                preds[t.0].push(b.id);
            }
        }
        Cfg { blocks, succs, preds, block_of, n_instrs: n }
    }

    /// All basic blocks in layout order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Number of instructions in the underlying function.
    pub fn instr_count(&self) -> usize {
        self.n_instrs
    }

    /// Successor blocks.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.0]
    }

    /// Predecessor blocks.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.0]
    }

    /// The block containing instruction `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn block_of(&self, idx: usize) -> BlockId {
        self.block_of[idx]
    }

    /// The block struct containing instruction `idx`.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0]
    }

    /// Blocks with no successors (function exits).
    pub fn exits(&self) -> Vec<BlockId> {
        self.blocks.iter().filter(|b| self.succs[b.id.0].is_empty()).map(|b| b.id).collect()
    }

    /// Reverse postorder over blocks reachable from the entry.
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut order = Vec::with_capacity(self.blocks.len());
        // Iterative DFS with an explicit "post" marker.
        let mut stack = vec![(self.entry(), false)];
        while let Some((b, post)) = stack.pop() {
            if post {
                order.push(b);
                continue;
            }
            if visited[b.0] {
                continue;
            }
            visited[b.0] = true;
            stack.push((b, true));
            for &s in &self.succs[b.0] {
                if !visited[s.0] {
                    stack.push((s, false));
                }
            }
        }
        order.reverse();
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_isa::parse_module;

    pub(crate) fn diamond() -> gpa_isa::Module {
        parse_module(
            r#"
.kernel k
  ISETP.LT.AND P0, R0, R1 {S:2}
  @P0 BRA else_part {S:5}
  MOV R2, R3 {S:1}
  BRA join {S:5}
else_part:
  MOV R2, R4 {S:1}
join:
  IADD R5, R2, 1 {S:4}
  EXIT
.endfunc
"#,
        )
        .unwrap()
    }

    #[test]
    fn diamond_blocks_and_edges() {
        let m = diamond();
        let cfg = Cfg::build(m.function("k").unwrap());
        assert_eq!(cfg.blocks().len(), 4);
        let b0 = BlockId(0);
        assert_eq!(cfg.succs(b0).len(), 2);
        let join = cfg.block_of(5);
        assert_eq!(cfg.preds(join).len(), 2);
        assert_eq!(cfg.exits(), vec![join]);
        // Entry first in reverse postorder; join last.
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo.first(), Some(&b0));
        assert_eq!(rpo.last(), Some(&join));
    }

    #[test]
    fn loop_back_edge_forms_cycle() {
        let m = parse_module(
            r#"
.kernel k
  MOV32I R0, 0 {S:1}
top:
  IADD R0, R0, 1 {S:4}
  ISETP.LT.AND P0, R0, 10 {S:2}
  @P0 BRA top {S:5}
  EXIT
.endfunc
"#,
        )
        .unwrap();
        let cfg = Cfg::build(m.function("k").unwrap());
        assert_eq!(cfg.blocks().len(), 3);
        let body = cfg.block_of(1);
        assert!(cfg.succs(body).contains(&body), "self loop via back edge");
        assert_eq!(cfg.block(body).len(), 3);
    }

    #[test]
    fn unconditional_branch_has_single_successor() {
        let m = diamond();
        let cfg = Cfg::build(m.function("k").unwrap());
        // Block with `BRA join` unpredicated.
        let b = cfg.block_of(2);
        assert_eq!(cfg.succs(b).len(), 1);
    }
}
