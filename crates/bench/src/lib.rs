//! Shared harness code for the table/figure reproduction binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper; this library holds the Table 3 row assembly on top of the
//! pipeline's [`Session`] (which caches module artifacts and owns the
//! measure-and-advise flow the harnesses used to duplicate).

use gpa_core::{report, AdviceReport};
use gpa_kernels::App;
use gpa_pipeline::{AnalysisJob, Session};
use rayon::prelude::*;

/// One reproduced Table 3 row.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Application name.
    pub app: String,
    /// Kernel name.
    pub kernel: String,
    /// Optimization applied.
    pub optimization: String,
    /// Baseline cycles ("Original" column).
    pub baseline_cycles: u64,
    /// Optimized cycles.
    pub optimized_cycles: u64,
    /// Achieved speedup.
    pub achieved: f64,
    /// GPA's estimated speedup for the expected optimizer.
    pub estimated: f64,
    /// |estimated − achieved| / achieved.
    pub error: f64,
    /// Rank of the expected optimizer in the advice report (1 = top).
    pub rank: Option<usize>,
}

/// One application's full Table 3 pass: the assembled rows plus the
/// per-stage advice reports they came from (so consumers can show top
/// advice without re-simulating).
#[derive(Debug, Clone)]
pub struct AppRun {
    /// Table 3 rows, one per stage.
    pub rows: Vec<Table3Row>,
    /// The advice report for each stage's baseline variant.
    pub reports: Vec<AdviceReport>,
}

/// Runs all stages of one application, producing its Table 3 rows.
/// Stage `k` profiles variant `k` (sampled) and times variant `k + 1`
/// (unsampled), exactly as the paper measures achieved speedup.
///
/// # Errors
///
/// Returns a message when the simulator faults on a variant.
pub fn run_app(session: &Session, app: &App) -> Result<AppRun, String> {
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    for (k, stage) in app.stages.iter().enumerate() {
        let run = session.run_one(&AnalysisJob::new(app.name, k)).map_err(|e| e.to_string())?;
        let opt_cycles =
            session.time_one(&AnalysisJob::new(app.name, k + 1)).map_err(|e| e.to_string())?;
        let achieved = run.cycles as f64 / opt_cycles as f64;
        let item = run.report.item_named(stage.optimizer);
        let estimated = item.map_or(1.0, |i| i.estimated_speedup);
        let rank = run.report.rank_of_named(stage.optimizer);
        rows.push(Table3Row {
            app: app.name.to_string(),
            kernel: app.kernel.to_string(),
            optimization: stage.name.to_string(),
            baseline_cycles: run.cycles,
            optimized_cycles: opt_cycles,
            achieved,
            estimated,
            error: (estimated - achieved).abs() / achieved,
            rank,
        });
        reports.push(run.report);
    }
    Ok(AppRun { rows, reports })
}

/// Runs [`run_app`] for many applications across the worker pool.
/// Results keep `apps` order (stages within an app stay sequential; apps
/// are independent).
pub fn run_apps_parallel(session: &Session, apps: &[App]) -> Vec<Result<AppRun, String>> {
    apps.par_iter().map(|app| run_app(session, app)).collect()
}

/// Advises on one variant of an app (for the report binaries).
///
/// # Errors
///
/// Returns a message when the simulator faults.
pub fn advise_variant(
    session: &Session,
    app: &App,
    variant: usize,
) -> Result<AdviceReport, String> {
    session
        .run_one(&AnalysisJob::new(app.name, variant))
        .map(|out| out.report)
        .map_err(|e| e.to_string())
}

/// Prints the Table 3 header.
pub fn print_table3_header() {
    println!(
        "{:<22} {:<28} {:<28} {:>12} {:>9} {:>10} {:>7} {:>5}",
        "Application",
        "Kernel",
        "Optimization",
        "Original",
        "Achieved",
        "Estimated",
        "Error",
        "Rank"
    );
    println!("{}", "-".repeat(128));
}

/// Prints one Table 3 row.
pub fn print_table3_row(r: &Table3Row) {
    println!(
        "{:<22} {:<28} {:<28} {:>10}cy {:>8.2}x {:>9.2}x {:>6.0}% {:>5}",
        r.app,
        r.kernel,
        r.optimization,
        r.baseline_cycles,
        r.achieved,
        r.estimated,
        100.0 * r.error,
        r.rank.map_or("-".to_string(), |r| r.to_string()),
    );
}

/// Geometric mean.
pub fn geomean(xs: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0u32);
    for x in xs {
        sum += x.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (sum / n as f64).exp()
    }
}

/// Renders an advice report the way the CLI does.
pub fn render_report(r: &AdviceReport, top: usize) -> String {
    report::render(r, top)
}
