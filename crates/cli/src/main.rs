//! The `gpa` command-line tool.
//!
//! Mirrors the paper's workflow: GPA "is a command line tool that
//! automates profiling and analysis stages". Subcommands:
//!
//! ```text
//! gpa list                              enumerate built-in benchmark kernels
//! gpa analyze <app> [variant] [--json]  profile a kernel and print the advice report
//! gpa analyze --all [--json]            analyze all 21 apps in parallel, with a summary
//! gpa profile <app> [variant]           dump the PC-sampling profile as JSON
//! gpa asm <app> [variant]               print the kernel's assembly
//! gpa serve [flags]                     run the advisor daemon (see docs/protocol.md)
//! gpa request <op> [app] [variant]      issue one request to a running daemon
//! ```
//!
//! Flags are parsed strictly: an unknown `--flag` is a usage error, not
//! a positional argument. Under `analyze --json`, failures are reported
//! as machine-readable JSON on stdout (still with a nonzero exit code).

use gpa_core::{report, OptimizerCategory};
use gpa_json::Json;
use gpa_kernels::all_apps;
use gpa_pipeline::{AnalysisError, AnalysisJob, Session};
use gpa_serve::{
    serve, FaultPlan, PeerMeta, Request, ServeClient, ServerConfig, ServerEngine, WireOptions,
    DEFAULT_ADDR, MAX_REPEAT,
};
use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "usage: gpa <command> [args] [flags]\n\n  \
     list                                       list built-in kernels\n  \
     analyze <app> [variant] [--json]           profile + advise (default variant 0)\n  \
     analyze --all [--json]                     analyze every app in parallel, with summary\n          \
     [--top N] [--category C] [--min-speedup X] scope the advice request\n          \
     [--schema v1|v2]                           advice schema for --json output\n          \
     [--repeat N]                               merge N replayed profiling launches\n          \
     [--mem-model flat|hierarchy]               memory timing model (default flat)\n  \
     profile <app> [variant] [--repeat N]       dump the (merged) profile JSON\n           \
     [--out FILE]                               write it to FILE instead of stdout\n  \
     asm <app> [variant]                        print kernel assembly\n  \
     serve [--addr A] [--workers N] [--queue N] run the advisor daemon\n           \
     [--store N] [--persist DIR]\n           \
     [--reactors N]                             reactor threads (default: CPU count, capped at 8)\n           \
     [--peers A,B,..] [--advertise A]           shard with peer daemons (consistent hashing)\n           \
     [--join A]                                 join a running cluster member at startup\n           \
     [--faults SPEC]                            seeded peer fault injection (chaos testing)\n           \
     [--engine reactor|threads]                 connection engine (default reactor)\n  \
     request analyze <app> [variant] [--addr A]          analyze on the daemon\n  \
     request analyze_profile <app> [variant] --profile F advise on a saved profile\n  \
     request status|shutdown [--addr A]                  daemon control\n  \
     request ring [--addr A]                             roster epoch and members\n  \
     request leave [ADDR] [--addr A]                     drain the daemon (or evict ADDR)\n          \
     request accepts --top/--category/--min-speedup/--schema/--mem-model too,\n          \
     and --repeat on analyze\n\n  \
     categories: stall-elimination, latency-hiding, parallel";

fn usage(msg: &str) -> ExitCode {
    if !msg.is_empty() {
        eprintln!("gpa: {msg}\n");
    }
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// Every flag the tool understands, across all subcommands.
#[derive(Debug, Default)]
struct Flags {
    json: bool,
    all: bool,
    addr: Option<String>,
    workers: Option<usize>,
    queue: Option<usize>,
    store: Option<usize>,
    persist: Option<PathBuf>,
    profile: Option<PathBuf>,
    top: Option<usize>,
    category: Option<String>,
    min_speedup: Option<f64>,
    schema: Option<String>,
    repeat: Option<usize>,
    mem_model: Option<String>,
    out: Option<PathBuf>,
    peers: Option<String>,
    advertise: Option<String>,
    join: Option<String>,
    faults: Option<String>,
    engine: Option<String>,
    reactors: Option<usize>,
}

fn take_value(
    name: &str,
    inline: Option<String>,
    rest: &mut std::slice::Iter<'_, String>,
) -> Result<String, String> {
    if let Some(v) = inline {
        return Ok(v);
    }
    rest.next().cloned().ok_or_else(|| format!("flag --{name} requires a value"))
}

fn take_usize(
    name: &str,
    inline: Option<String>,
    rest: &mut std::slice::Iter<'_, String>,
) -> Result<usize, String> {
    let v = take_value(name, inline, rest)?;
    v.parse().map_err(|_| format!("flag --{name} expects a number, got `{v}`"))
}

/// Splits the command line into positionals and known flags, rejecting
/// anything that looks like a flag but isn't one.
fn parse_cmdline(args: &[String]) -> Result<(Vec<String>, Flags), String> {
    let mut flags = Flags::default();
    let mut positionals = Vec::new();
    let mut rest = args.iter();
    while let Some(arg) = rest.next() {
        if let Some(body) = arg.strip_prefix("--") {
            let (name, inline) = match body.split_once('=') {
                Some((n, v)) => (n, Some(v.to_string())),
                None => (body, None),
            };
            match name {
                "json" | "all" => {
                    if inline.is_some() {
                        return Err(format!("flag --{name} takes no value"));
                    }
                    if name == "json" {
                        flags.json = true;
                    } else {
                        flags.all = true;
                    }
                }
                "addr" => flags.addr = Some(take_value(name, inline, &mut rest)?),
                "workers" => flags.workers = Some(take_usize(name, inline, &mut rest)?),
                "queue" => flags.queue = Some(take_usize(name, inline, &mut rest)?),
                "store" => flags.store = Some(take_usize(name, inline, &mut rest)?),
                "persist" => {
                    flags.persist = Some(PathBuf::from(take_value(name, inline, &mut rest)?));
                }
                "profile" => {
                    flags.profile = Some(PathBuf::from(take_value(name, inline, &mut rest)?));
                }
                "top" => flags.top = Some(take_usize(name, inline, &mut rest)?),
                "category" => flags.category = Some(take_value(name, inline, &mut rest)?),
                "min-speedup" => {
                    let v = take_value(name, inline, &mut rest)?;
                    flags.min_speedup = Some(
                        v.parse()
                            .map_err(|_| format!("flag --{name} expects a number, got `{v}`"))?,
                    );
                }
                "schema" => flags.schema = Some(take_value(name, inline, &mut rest)?),
                "repeat" => flags.repeat = Some(take_usize(name, inline, &mut rest)?),
                "mem-model" => flags.mem_model = Some(take_value(name, inline, &mut rest)?),
                "out" => flags.out = Some(PathBuf::from(take_value(name, inline, &mut rest)?)),
                "peers" => flags.peers = Some(take_value(name, inline, &mut rest)?),
                "advertise" => flags.advertise = Some(take_value(name, inline, &mut rest)?),
                "join" => flags.join = Some(take_value(name, inline, &mut rest)?),
                "faults" => flags.faults = Some(take_value(name, inline, &mut rest)?),
                "engine" => flags.engine = Some(take_value(name, inline, &mut rest)?),
                "reactors" => flags.reactors = Some(take_usize(name, inline, &mut rest)?),
                _ => return Err(format!("unknown flag `{arg}` (see usage)")),
            }
        } else if arg.starts_with('-') && arg.len() > 1 {
            return Err(format!("unknown flag `{arg}` (see usage)"));
        } else {
            positionals.push(arg.clone());
        }
    }
    Ok((positionals, flags))
}

/// The first flag set but not in `allowed`, as a usage message.
fn stray_flag(flags: &Flags, allowed: &[&str]) -> Option<String> {
    let set = [
        ("json", flags.json),
        ("all", flags.all),
        ("addr", flags.addr.is_some()),
        ("workers", flags.workers.is_some()),
        ("queue", flags.queue.is_some()),
        ("store", flags.store.is_some()),
        ("persist", flags.persist.is_some()),
        ("profile", flags.profile.is_some()),
        ("top", flags.top.is_some()),
        ("category", flags.category.is_some()),
        ("min-speedup", flags.min_speedup.is_some()),
        ("schema", flags.schema.is_some()),
        ("repeat", flags.repeat.is_some()),
        ("mem-model", flags.mem_model.is_some()),
        ("out", flags.out.is_some()),
        ("peers", flags.peers.is_some()),
        ("advertise", flags.advertise.is_some()),
        ("join", flags.join.is_some()),
        ("faults", flags.faults.is_some()),
        ("engine", flags.engine.is_some()),
        ("reactors", flags.reactors.is_some()),
    ];
    set.iter()
        .find(|(name, on)| *on && !allowed.contains(name))
        .map(|(name, _)| format!("flag --{name} is not supported by this command"))
}

fn parse_variant(arg: Option<&String>) -> Result<usize, String> {
    match arg {
        None => Ok(0),
        Some(s) => s.parse().map_err(|_| format!("variant `{s}` is not a number")),
    }
}

/// Maps the advice flags onto the wire/advisor options shared by local
/// `analyze` and daemon `request`s.
fn advice_options(flags: &Flags) -> Result<WireOptions, String> {
    let mut options = WireOptions::default();
    if let Some(s) = &flags.schema {
        options.schema = match s.as_str() {
            "v1" | "1" => 1,
            "v2" | "2" => 2,
            other => return Err(format!("unknown schema `{other}` (expected v1 or v2)")),
        };
    }
    if let Some(top) = flags.top {
        options.request.top = Some(top);
    }
    if let Some(c) = &flags.category {
        let cat = OptimizerCategory::from_slug(c).ok_or_else(|| {
            format!(
                "unknown category `{c}` (expected stall-elimination, latency-hiding or parallel)"
            )
        })?;
        options.request.categories.push(cat);
    }
    if let Some(m) = flags.min_speedup {
        options.request.min_speedup = m;
    }
    if let Some(m) = &flags.mem_model {
        options.hierarchy = match m.as_str() {
            "flat" => false,
            "hierarchy" => true,
            other => {
                return Err(format!("unknown memory model `{other}` (expected flat or hierarchy)"))
            }
        };
    }
    if let Some(r) = flags.repeat {
        if r == 0 {
            return Err("flag --repeat expects a count of at least 1".to_string());
        }
        // Same bound the daemon enforces (each repeat is a full
        // re-simulation), applied before connecting anywhere.
        if r > MAX_REPEAT as usize {
            return Err(format!("flag --repeat exceeds the limit of {MAX_REPEAT}"));
        }
        options.repeat = r as u32;
    }
    Ok(options)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (pos, flags) = match parse_cmdline(&args) {
        Ok(parsed) => parsed,
        Err(msg) => return usage(&msg),
    };
    let Some(cmd) = pos.first().map(String::as_str) else { return usage("") };
    let allowed: &[&str] = match cmd {
        "analyze" => {
            &["json", "all", "top", "category", "min-speedup", "schema", "repeat", "mem-model"]
        }
        "profile" => &["repeat", "out", "mem-model"],
        "serve" => &[
            "addr",
            "workers",
            "queue",
            "store",
            "persist",
            "peers",
            "advertise",
            "join",
            "faults",
            "engine",
            "reactors",
        ],
        "request" => {
            &["addr", "profile", "top", "category", "min-speedup", "schema", "repeat", "mem-model"]
        }
        _ => &[],
    };
    if let Some(msg) = stray_flag(&flags, allowed) {
        return usage(&msg);
    }
    match cmd {
        "list" => {
            for app in all_apps() {
                let stages: Vec<&str> = app.stages.iter().map(|s| s.name).collect();
                println!(
                    "{:<24} kernel {:<28} stages: {}",
                    app.name,
                    app.kernel,
                    stages.join(", ")
                );
            }
            ExitCode::SUCCESS
        }
        "analyze" | "profile" | "asm" => {
            let options = match advice_options(&flags) {
                Ok(o) => o,
                Err(msg) => return usage(&msg),
            };
            if options.schema != 1 && !flags.json {
                return usage("flag --schema selects the --json output schema; add --json");
            }
            if flags.all {
                return analyze_all(flags.json, &options);
            }
            let Some(name) = pos.get(1) else {
                return usage(&format!("`{cmd}` needs an app name (try `gpa list`)"));
            };
            let variant = match parse_variant(pos.get(2)) {
                Ok(v) => v,
                Err(msg) => return usage(&msg),
            };
            run_local(cmd, name, variant, flags.json, &options, flags.out.as_deref())
        }
        "serve" => run_serve(&flags),
        "request" => run_request(&pos, &flags),
        _ => usage(&format!("unknown command `{cmd}`")),
    }
}

/// `analyze`/`profile`/`asm` against an in-process session.
fn run_local(
    cmd: &str,
    name: &str,
    variant: usize,
    json: bool,
    options: &WireOptions,
    out: Option<&std::path::Path>,
) -> ExitCode {
    let mut session = Session::full().with_repeat(options.repeat);
    if options.hierarchy {
        session = session.with_hierarchy();
    }
    let job = AnalysisJob::new(name, variant);
    if cmd == "asm" {
        return match session.artifacts(&job) {
            Ok(art) => {
                print!("{}", art.spec.module.write_asm());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }
    if cmd == "profile" {
        // Profiling only — no advising. With --repeat N the dump is the
        // merged multi-launch profile; the daemon's `analyze_profile`
        // op (and `request --profile`) accepts it either way.
        return match session.profile_one(&job) {
            Ok((_, profile, _)) => {
                let text = profile.to_json();
                match out {
                    None => {
                        println!("{text}");
                        ExitCode::SUCCESS
                    }
                    Some(path) => match std::fs::write(path, text + "\n") {
                        Ok(()) => ExitCode::SUCCESS,
                        Err(e) => {
                            eprintln!("gpa profile: cannot write {}: {e}", path.display());
                            ExitCode::FAILURE
                        }
                    },
                }
            }
            Err(e) => analysis_failure(false, &e),
        };
    }
    match session.run_one_request(&job, &options.request) {
        Ok(outcome) => {
            match cmd {
                _ if json && options.schema == 2 => println!("{}", outcome.to_json_v2()),
                _ if json => println!("{}", outcome.to_json()),
                _ => {
                    let top = options.request.top.unwrap_or(5);
                    print!("{}", report::render(&outcome.report, top));
                    println!("kernel cycles: {}", outcome.cycles);
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => analysis_failure(json && cmd == "analyze", &e),
    }
}

/// Reports a failed analysis: JSON on stdout under `--json`, a plain
/// message on stderr otherwise. Either way the exit code is nonzero.
fn analysis_failure(json: bool, e: &AnalysisError) -> ExitCode {
    if json {
        println!("{}", e.to_json());
    } else {
        eprintln!("analysis failed: {e}");
    }
    ExitCode::FAILURE
}

/// `gpa analyze --all [--json]`: every registry app (baseline variant)
/// through the parallel batch pipeline, then an end-of-run summary.
fn analyze_all(json: bool, options: &WireOptions) -> ExitCode {
    let mut session = Session::full().with_repeat(options.repeat);
    if options.hierarchy {
        session = session.with_hierarchy();
    }
    let jobs = session.jobs_for_all_apps();
    let t0 = std::time::Instant::now();
    let results = session.run_batch_request(&jobs, &options.request);
    let total_wall = t0.elapsed();
    let faults = results.iter().filter(|r| r.is_err()).count();

    if json {
        let apps: Vec<Json> = results
            .iter()
            .map(|r| match r {
                Ok(out) if options.schema == 2 => out.to_json_v2(),
                Ok(out) => out.to_json(),
                Err(e) => e.to_json(),
            })
            .collect();
        let doc = Json::object().with("apps", Json::Arr(apps)).with(
            "summary",
            Json::object()
                .with("analyzed", results.len())
                .with("faulted", faults)
                .with("wall_ms", total_wall.as_secs_f64() * 1e3)
                .with("workers", session.workers()),
        );
        println!("{doc}");
    } else {
        println!(
            "{:<24} {:<28} {:>12} {:>9} {:>10}  top advice",
            "application", "kernel", "cycles", "samples", "wall"
        );
        println!("{}", "-".repeat(118));
        for result in &results {
            match result {
                Ok(out) => {
                    let top = out.report.top().map_or("(no advice matched)".to_string(), |i| {
                        format!("{} {:.2}x", i.optimizer(), i.estimated_speedup)
                    });
                    println!(
                        "{:<24} {:<28} {:>10}cy {:>9} {:>8.1}ms  {}",
                        out.job.app,
                        out.kernel,
                        out.cycles,
                        out.profile.total_samples,
                        out.wall.as_secs_f64() * 1e3,
                        top
                    );
                }
                Err(e) => println!("{:<24} FAULT: {}", e.job.app, e.message),
            }
        }
        println!("{}", "-".repeat(118));
        let slowest = results.iter().flatten().max_by_key(|o| o.wall);
        println!(
            "{} apps analyzed in {:.1}ms wall ({} workers{})",
            results.len(),
            total_wall.as_secs_f64() * 1e3,
            session.workers(),
            slowest.map_or(String::new(), |o| format!(
                ", slowest: {} at {:.1}ms",
                o.job.app,
                o.wall.as_secs_f64() * 1e3
            )),
        );
        if faults > 0 {
            println!("{faults} app(s) FAULTED");
        }
    }
    if faults > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `gpa serve`: run the daemon until a client sends `shutdown`.
fn run_serve(flags: &Flags) -> ExitCode {
    let defaults = ServerConfig::default();
    let engine = match flags.engine.as_deref() {
        None | Some("reactor") => ServerEngine::Reactor,
        Some("threads") => ServerEngine::Threads,
        Some(other) => {
            return usage(&format!("unknown engine `{other}` (expected reactor or threads)"))
        }
    };
    let peers: Vec<String> = flags
        .peers
        .as_deref()
        .map(|list| {
            list.split(',').map(str::trim).filter(|p| !p.is_empty()).map(str::to_string).collect()
        })
        .unwrap_or_default();
    if flags.peers.is_some() && peers.is_empty() {
        return usage("flag --peers expects a comma-separated list of addresses");
    }
    let faults = match flags.faults.as_deref() {
        None => None,
        Some(spec) => match FaultPlan::parse(spec) {
            Ok(plan) => Some(plan),
            Err(msg) => return usage(&msg),
        },
    };
    if flags.reactors == Some(0) {
        return usage("flag --reactors expects a count of at least 1 (omit it for the default)");
    }
    if flags.reactors.is_some() && engine == ServerEngine::Threads {
        return usage("flag --reactors only applies to the reactor engine");
    }
    let config = ServerConfig {
        addr: flags.addr.clone().unwrap_or(defaults.addr),
        workers: flags.workers.unwrap_or(defaults.workers),
        reactors: flags.reactors.unwrap_or(defaults.reactors),
        queue: flags.queue.unwrap_or(defaults.queue),
        store_capacity: flags.store.unwrap_or(defaults.store_capacity),
        persist_dir: flags.persist.clone(),
        engine,
        peers,
        advertise: flags.advertise.clone(),
        join: flags.join.clone(),
        faults,
        ..ServerConfig::default()
    };
    let (workers, queue) = (config.workers, config.queue);
    let peer_count = config.peers.len();
    let joined = config.join.clone();
    let handle = match serve(Arc::new(Session::full()), config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("gpa serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The exact line scripts (and CI) parse to discover an ephemeral
    // port; keep the `listening on <addr>` phrasing stable.
    println!("gpa-serve listening on {} ({workers} workers, queue {queue})", handle.local_addr());
    if handle.reactors() > 0 {
        // The *effective* count: a request above the cap (or `0` = auto)
        // reports what actually runs, matching `status.reactor.count`.
        println!("gpa-serve reactors: {} ({} accept)", handle.reactors(), handle.accept_path());
    }
    if peer_count > 0 {
        println!("gpa-serve sharding with {peer_count} peer(s) ({} engine)", engine.name());
    }
    if let Some(seed) = joined {
        println!("gpa-serve joined the ring via {seed}");
    }
    let _ = std::io::stdout().flush();
    handle.join();
    println!("gpa-serve stopped");
    ExitCode::SUCCESS
}

/// `gpa request <op> ...`: one request against a running daemon.
fn run_request(pos: &[String], flags: &Flags) -> ExitCode {
    let Some(op) = pos.get(1).map(String::as_str) else {
        return usage(
            "`request` needs an op: analyze, analyze_profile, status, shutdown, ring, leave",
        );
    };
    // Advice options only make sense on the advising ops; anywhere else
    // they would be silently ignored, which strict parsing forbids.
    if !matches!(op, "analyze" | "analyze_profile") {
        for (name, set) in [
            ("top", flags.top.is_some()),
            ("category", flags.category.is_some()),
            ("min-speedup", flags.min_speedup.is_some()),
            ("schema", flags.schema.is_some()),
            ("repeat", flags.repeat.is_some()),
            ("mem-model", flags.mem_model.is_some()),
        ] {
            if set {
                return usage(&format!("flag --{name} is not supported by `request {op}`"));
            }
        }
    }
    // Repeat profiling happens daemon-side during `analyze`; a submitted
    // profile is already gathered (and possibly merged) client-side.
    if op == "analyze_profile" && flags.repeat.is_some() {
        return usage("flag --repeat is not supported by `request analyze_profile`");
    }
    let options = match advice_options(flags) {
        Ok(o) => o,
        Err(msg) => return usage(&msg),
    };
    // Validate the whole command line (including the profile file)
    // BEFORE connecting, so usage errors and exit codes do not depend
    // on whether a daemon happens to be running.
    enum Prepared {
        Status,
        Shutdown,
        Ring,
        Leave { member: Option<String> },
        Analyze { app: String, variant: usize },
        AnalyzeProfile { app: String, variant: usize, profile: Json },
    }
    let prepared = match op {
        "status" => Prepared::Status,
        "shutdown" => Prepared::Shutdown,
        "ring" => Prepared::Ring,
        // `leave` alone drains the daemon at --addr; `leave ADDR` evicts
        // that member from the roster instead.
        "leave" => Prepared::Leave { member: pos.get(2).cloned() },
        "analyze" | "analyze_profile" => {
            let Some(app) = pos.get(2) else {
                return usage(&format!("`request {op}` needs an app name"));
            };
            let variant = match parse_variant(pos.get(3)) {
                Ok(v) => v,
                Err(msg) => return usage(&msg),
            };
            if op == "analyze" {
                Prepared::Analyze { app: app.clone(), variant }
            } else {
                let Some(path) = &flags.profile else {
                    return usage("`request analyze_profile` needs --profile <file>");
                };
                let text = match std::fs::read_to_string(path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("gpa request: cannot read {}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                };
                match Json::parse(&text) {
                    Ok(profile) => Prepared::AnalyzeProfile { app: app.clone(), variant, profile },
                    Err(e) => {
                        eprintln!("gpa request: {} is not valid JSON: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        other => return usage(&format!("unknown request op `{other}`")),
    };
    let addr = flags.addr.clone().unwrap_or_else(|| DEFAULT_ADDR.to_string());
    let mut client = match ServeClient::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("gpa request: cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let sent = match prepared {
        Prepared::Status => client.status(),
        Prepared::Shutdown => client.shutdown(),
        Prepared::Ring => client.request(&Request::RingStatus),
        Prepared::Leave { member } => {
            client.request(&Request::Leave { addr: member, meta: PeerMeta::default() })
        }
        Prepared::Analyze { app, variant } => client.analyze_with(&app, variant, &options),
        Prepared::AnalyzeProfile { app, variant, profile } => {
            client.analyze_profile_with(&app, variant, &profile, &options)
        }
    };
    match sent {
        Ok(response) => {
            let ok = response.ok;
            let doc = Json::object()
                .with("ok", ok)
                .with("cached", response.cached)
                .with(
                    "result",
                    match response.result {
                        Some(r) => r,
                        None => Json::Null,
                    },
                )
                .with(
                    "error",
                    match response.error {
                        Some(e) => Json::from(e),
                        None => Json::Null,
                    },
                );
            // Tolerate a consumer that stops reading early (`| grep -q`,
            // `| head`): a broken pipe is not a request failure.
            let _ = writeln!(std::io::stdout(), "{doc}");
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("gpa request: {e}");
            ExitCode::FAILURE
        }
    }
}
