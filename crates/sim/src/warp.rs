//! Per-warp functional and timing state.

use crate::stall::StallReason;
use gpa_isa::{Operand, PredReg, Register, SpecialReg};

/// Number of lanes per warp (fixed at 32, like every NVIDIA part).
pub const WARP_LANES: usize = 32;

/// One divergence-stack entry (immediate-postdominator reconvergence).
#[derive(Debug, Clone)]
pub struct DivEntry {
    /// PC where both sides reconverge.
    pub reconv: u64,
    /// PC of the not-yet-executed side.
    pub else_pc: u64,
    /// Lanes of the not-yet-executed side.
    pub else_mask: u32,
    /// Union of both sides, restored at reconvergence.
    pub merged: u32,
    /// Whether the else side has already run.
    pub else_done: bool,
}

/// Full state of a resident warp.
#[derive(Debug, Clone)]
pub struct WarpState {
    /// Warp slot id within the SM.
    pub warp_id: u32,
    /// Scheduler (sub-partition) this warp is pinned to.
    pub scheduler: u32,
    /// Index of the owning block in the SM's block table.
    pub block_slot: usize,
    /// Warp index within its block.
    pub warp_in_block: u32,

    // ---- functional state ----
    /// Next instruction address.
    pub pc: u64,
    /// Cached program index of `pc` (maintained by the machine).
    pub cur_idx: u32,
    /// Active-lane mask.
    pub active: u32,
    /// Register file: `regs[r][lane]`, sized to the program's highest
    /// register (the machine passes `CompiledProgram`'s register count, so
    /// allocating and zeroing 256 rows per warp per block start is avoided
    /// for the typical kernel that touches a few dozen).
    pub regs: Vec<[u32; WARP_LANES]>,
    /// Predicate registers as lane masks.
    pub preds: [u32; 7],
    /// Divergence stack.
    pub div_stack: Vec<DivEntry>,
    /// Call stack of return addresses (uniform control only).
    pub call_stack: Vec<u64>,
    /// Per-lane local memory (register spill space), lazily grown.
    pub local: Vec<Vec<u8>>,

    // ---- timing state ----
    /// Earliest cycle the next instruction may issue (stall counts).
    pub next_issue: u64,
    /// Earliest cycle the next instruction is available (i-cache).
    pub fetch_ready: u64,
    /// Scoreboard: cycle each register's value becomes readable.
    pub reg_ready: Vec<u64>,
    /// Stall-reason code a blocked reader of each register reports.
    pub reg_reason: Vec<u8>,
    /// Scoreboard for predicate registers.
    pub pred_ready: [u64; 7],
    /// Cycle each scoreboard barrier clears.
    pub bar_clear: [u64; 6],
    /// Stall-reason code for waiting on each barrier.
    pub bar_reason: [u8; 6],
    /// Parked at `BAR.SYNC`.
    pub at_barrier: bool,
    /// All lanes exited.
    pub done: bool,
    /// The previous issued instruction redirected the front end.
    pub prev_was_ctrl: bool,
    /// Instructions issued by this warp.
    pub issued: u64,
}

impl WarpState {
    /// Creates a warp covering threads `warp_in_block*32 ..` of a block
    /// with `block_threads` threads, with an `nregs`-register file (use
    /// the executing program's register count, or 256 for the full
    /// architectural file).
    pub fn new(
        warp_id: u32,
        scheduler: u32,
        block_slot: usize,
        warp_in_block: u32,
        block_threads: u32,
        nregs: usize,
    ) -> Self {
        let first_tid = warp_in_block * WARP_LANES as u32;
        let lanes = (block_threads.saturating_sub(first_tid)).min(WARP_LANES as u32);
        let active = if lanes >= 32 { u32::MAX } else { (1u32 << lanes) - 1 };
        WarpState {
            warp_id,
            scheduler,
            block_slot,
            warp_in_block,
            pc: 0,
            cur_idx: 0,
            active,
            regs: vec![[0u32; WARP_LANES]; nregs],
            preds: [0; 7],
            div_stack: Vec::new(),
            call_stack: Vec::new(),
            local: vec![Vec::new(); WARP_LANES],
            next_issue: 0,
            fetch_ready: 0,
            reg_ready: vec![0; nregs],
            reg_reason: vec![StallReason::ExecutionDependency.code(); nregs],
            pred_ready: [0; 7],
            bar_clear: [0; 6],
            bar_reason: [StallReason::ExecutionDependency.code(); 6],
            at_barrier: false,
            done: false,
            prev_was_ctrl: false,
            issued: 0,
        }
    }

    /// Reads a register for one lane (`RZ` reads zero).
    #[inline]
    pub fn read_reg(&self, lane: usize, r: Register) -> u32 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index() as usize][lane]
        }
    }

    /// Writes a register for one lane (`RZ` writes are dropped).
    #[inline]
    pub fn write_reg(&mut self, lane: usize, r: Register, v: u32) {
        if !r.is_zero() {
            self.regs[r.index() as usize][lane] = v;
        }
    }

    /// Reads a 64-bit register pair.
    #[inline]
    pub fn read_pair(&self, lane: usize, r: Register) -> u64 {
        (self.read_reg(lane, r) as u64) | ((self.read_reg(lane, r.pair_hi()) as u64) << 32)
    }

    /// Writes a 64-bit register pair.
    #[inline]
    pub fn write_pair(&mut self, lane: usize, r: Register, v: u64) {
        self.write_reg(lane, r, v as u32);
        self.write_reg(lane, r.pair_hi(), (v >> 32) as u32);
    }

    /// Reads a predicate for one lane (`PT` reads true).
    #[inline]
    pub fn read_pred(&self, lane: usize, p: PredReg) -> bool {
        p.is_true() || self.preds[p.index() as usize] & (1 << lane) != 0
    }

    /// Writes a predicate for one lane (`PT` writes are dropped).
    #[inline]
    pub fn write_pred(&mut self, lane: usize, p: PredReg, v: bool) {
        if !p.is_true() {
            let bit = 1u32 << lane;
            if v {
                self.preds[p.index() as usize] |= bit;
            } else {
                self.preds[p.index() as usize] &= !bit;
            }
        }
    }

    /// The lane mask for which a guard predicate holds.
    pub fn pred_mask(&self, pred: Option<gpa_isa::Predicate>) -> u32 {
        match pred {
            None => u32::MAX,
            Some(p) => {
                let raw =
                    if p.reg.is_true() { u32::MAX } else { self.preds[p.reg.index() as usize] };
                if p.negated {
                    !raw
                } else {
                    raw
                }
            }
        }
    }

    /// Special-register value for one lane.
    pub fn special(
        &self,
        lane: usize,
        s: SpecialReg,
        block_id: u32,
        grid_blocks: u32,
        block_threads: u32,
    ) -> u32 {
        match s {
            SpecialReg::TidX => self.warp_in_block * WARP_LANES as u32 + lane as u32,
            SpecialReg::CtaIdX => block_id,
            SpecialReg::NTidX => block_threads,
            SpecialReg::NCtaIdX => grid_blocks,
            SpecialReg::LaneId => lane as u32,
            SpecialReg::WarpId => self.warp_in_block,
            SpecialReg::TidY
            | SpecialReg::TidZ
            | SpecialReg::CtaIdY
            | SpecialReg::CtaIdZ
            | SpecialReg::NCtaIdY
            | SpecialReg::NCtaIdZ => 0,
            SpecialReg::NTidY | SpecialReg::NTidZ => 1,
            SpecialReg::SmId | SpecialReg::Clock => 0,
        }
    }

    /// Pops reconvergence points reached at the current PC, switching to
    /// pending else-sides first. Returns true if state changed.
    pub fn reconverge_if_needed(&mut self) -> bool {
        let mut changed = false;
        while let Some(top) = self.div_stack.last_mut() {
            if top.reconv != self.pc {
                break;
            }
            if !top.else_done && top.else_mask != 0 {
                top.else_done = true;
                self.active = top.else_mask;
                self.pc = top.else_pc;
                changed = true;
                // The else side may itself start at another reconvergence
                // point, so keep looping.
                if top.else_pc == top.reconv {
                    // Degenerate: empty else side; merge immediately.
                    let merged = top.merged;
                    self.div_stack.pop();
                    self.active = merged;
                    continue;
                }
                break;
            }
            let merged = top.merged;
            self.div_stack.pop();
            self.active = merged;
            changed = true;
        }
        changed
    }

    /// Reads a 32-bit source operand for one lane. Constant and special
    /// operands are resolved by the caller (the executor) — this helper
    /// handles the register/immediate cases.
    #[inline]
    pub fn operand_u32(&self, lane: usize, op: &Operand) -> Option<u32> {
        match *op {
            Operand::Reg(r) => Some(self.read_reg(lane, r)),
            Operand::Imm(v) => Some(v as i32 as u32),
            Operand::FImm(v) => Some((v as f32).to_bits()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_isa::Predicate;

    #[test]
    fn partial_warp_active_mask() {
        let w = WarpState::new(0, 0, 0, 0, 16, 256);
        assert_eq!(w.active, 0xFFFF);
        let w2 = WarpState::new(1, 1, 0, 1, 40, 256);
        assert_eq!(w2.active, 0xFF, "second warp of a 40-thread block has 8 lanes");
        let w3 = WarpState::new(0, 0, 0, 0, 64, 256);
        assert_eq!(w3.active, u32::MAX);
    }

    #[test]
    fn register_and_pair_access() {
        let mut w = WarpState::new(0, 0, 0, 0, 32, 256);
        let r4 = Register::from_u8(4);
        w.write_reg(3, r4, 77);
        assert_eq!(w.read_reg(3, r4), 77);
        assert_eq!(w.read_reg(2, r4), 0);
        w.write_pair(0, r4, 0x1122_3344_5566_7788);
        assert_eq!(w.read_pair(0, r4), 0x1122_3344_5566_7788);
        // RZ is inert.
        w.write_reg(0, Register::ZERO, 5);
        assert_eq!(w.read_reg(0, Register::ZERO), 0);
    }

    #[test]
    fn predicates_and_guard_masks() {
        let mut w = WarpState::new(0, 0, 0, 0, 32, 256);
        let p0 = PredReg::new(0).unwrap();
        w.write_pred(1, p0, true);
        w.write_pred(5, p0, true);
        assert!(w.read_pred(1, p0));
        assert!(!w.read_pred(0, p0));
        assert_eq!(w.pred_mask(Some(Predicate::pos(p0))), 0b100010);
        assert_eq!(w.pred_mask(Some(Predicate::neg(p0))), !0b100010u32);
        assert_eq!(w.pred_mask(None), u32::MAX);
    }

    #[test]
    fn reconvergence_switches_to_else_then_merges() {
        let mut w = WarpState::new(0, 0, 0, 0, 32, 256);
        w.pc = 0x200; // pretend we reached the reconvergence point
        w.active = 0x0000_FFFF;
        w.div_stack.push(DivEntry {
            reconv: 0x200,
            else_pc: 0x100,
            else_mask: 0xFFFF_0000,
            merged: u32::MAX,
            else_done: false,
        });
        assert!(w.reconverge_if_needed());
        assert_eq!(w.pc, 0x100);
        assert_eq!(w.active, 0xFFFF_0000);
        // Else side finishes, reaches the reconvergence point again.
        w.pc = 0x200;
        assert!(w.reconverge_if_needed());
        assert_eq!(w.active, u32::MAX);
        assert!(w.div_stack.is_empty());
    }
}
