//! Machine-readable advice schema **v2** — (de)serialization of
//! [`AdviceReport`] through the [`gpa_json`] document model.
//!
//! The schema is a stable contract for programmatic consumers (the serve
//! protocol, report diffing, batched clients): every document carries
//! `schema_version`, optional values are explicit `null`s (fields are
//! never omitted), enums serialize as fixed slugs, and field order is
//! fixed — so a report round-trips **byte-identically** through
//! `report_to_json(..).compact()` → [`Json::parse`] →
//! [`report_from_json`]. `docs/advice-schema.md` specifies the layout
//! field by field, the versioning policy, and the v1→v2 mapping.

use crate::advisor::{
    AdviceItem, AdviceReport, EstimatorInputs, HotspotReport, LocationReport, RegionReport,
};
use crate::estimators::ParallelParams;
use crate::optimizers::{Hint, HintKind, OptimizerCategory, OptimizerId};
use gpa_json::{Json, JsonError};

/// The crate's result type for schema decoding.
pub type Result<T> = std::result::Result<T, JsonError>;

/// Renders a report as its schema-v2 JSON document.
pub fn report_to_json(report: &AdviceReport) -> Json {
    Json::object()
        .with("schema_version", report.schema_version)
        .with("kernel", report.kernel.clone())
        .with("total_samples", report.total_samples)
        .with("active_samples", report.active_samples)
        .with("latency_samples", report.latency_samples)
        .with(
            "stall_histogram",
            Json::Arr(
                report
                    .stall_histogram
                    .iter()
                    .map(|(reason, samples)| {
                        Json::object().with("reason", reason.clone()).with("samples", *samples)
                    })
                    .collect(),
            ),
        )
        .with("items", Json::Arr(report.items.iter().map(item_to_json).collect()))
}

fn item_to_json(item: &AdviceItem) -> Json {
    Json::object()
        .with("id", item.id.slug())
        .with("optimizer", item.id.name())
        .with("category", item.category.slug())
        .with("matched_ratio", item.matched_ratio)
        .with("estimated_speedup", item.estimated_speedup)
        .with("estimator", estimator_to_json(&item.estimator))
        .with("hints", Json::Arr(item.hints.iter().map(hint_to_json).collect()))
        .with("hotspots", Json::Arr(item.hotspots.iter().map(hotspot_to_json).collect()))
}

fn estimator_to_json(estimator: &EstimatorInputs) -> Json {
    match estimator {
        EstimatorInputs::StallElimination { total, matched } => Json::object()
            .with("kind", "stall-elimination")
            .with("total", *total)
            .with("matched", *matched),
        EstimatorInputs::LatencyHiding { total, active, matched_latency, scopes } => Json::object()
            .with("kind", "latency-hiding")
            .with("total", *total)
            .with("active", *active)
            .with("matched_latency", *matched_latency)
            .with("scopes", *scopes),
        EstimatorInputs::Parallel { issue_ratio, params } => Json::object()
            .with("kind", "parallel")
            .with("issue_ratio", *issue_ratio)
            .with("params", params.as_ref().map_or(Json::Null, params_to_json)),
        EstimatorInputs::ResidualElimination { total, matched, residual } => Json::object()
            .with("kind", "residual-elimination")
            .with("total", *total)
            .with("matched", *matched)
            .with("residual", *residual),
    }
}

fn params_to_json(p: &ParallelParams) -> Json {
    Json::object()
        .with("w_old", p.w_old)
        .with("w_new", p.w_new)
        .with("busy_sms_old", p.busy_sms_old)
        .with("busy_sms_new", p.busy_sms_new)
        .with("lane_eff_old", p.lane_eff_old)
        .with("lane_eff_new", p.lane_eff_new)
        .with("factor", p.factor)
}

fn hint_to_json(hint: &Hint) -> Json {
    Json::object().with("kind", hint.kind.slug()).with("text", hint.text.clone())
}

fn hotspot_to_json(h: &HotspotReport) -> Json {
    Json::object()
        .with("ratio", h.ratio)
        .with("speedup", h.speedup)
        .with("distance", h.distance.map_or(Json::Null, Json::from))
        .with("def", h.def.as_ref().map_or(Json::Null, location_to_json))
        .with("use", location_to_json(&h.use_))
        .with("region", region_to_json(&h.region))
}

fn location_to_json(loc: &LocationReport) -> Json {
    Json::object()
        .with("pc", loc.pc)
        .with("function", loc.function.clone())
        .with("file", loc.file.clone().map_or(Json::Null, Json::from))
        .with("line", loc.line.map_or(Json::Null, Json::from))
        .with("scope", loc.scope.clone())
}

fn region_to_json(r: &RegionReport) -> Json {
    Json::object()
        .with("function", r.function.clone())
        .with("pc_begin", r.pc_begin)
        .with("pc_end", r.pc_end)
        .with("file", r.file.clone().map_or(Json::Null, Json::from))
        .with("line_begin", r.line_begin.map_or(Json::Null, Json::from))
        .with("line_end", r.line_end.map_or(Json::Null, Json::from))
        .with("scope", r.scope.clone())
}

/// Parses a schema-v2 JSON document back into an [`AdviceReport`].
///
/// # Errors
///
/// On a missing/ill-typed field, an unknown enum slug, or a
/// `schema_version` this crate does not read.
pub fn report_from_json(doc: &Json) -> Result<AdviceReport> {
    let version = doc.field("schema_version")?.as_u64()?;
    if version != u64::from(crate::advisor::SCHEMA_VERSION) {
        return Err(JsonError::from_msg(format!(
            "unsupported advice schema_version {version} (this build reads v{})",
            crate::advisor::SCHEMA_VERSION
        )));
    }
    let stall_histogram = doc
        .field("stall_histogram")?
        .as_array()?
        .iter()
        .map(|e| Ok((e.field("reason")?.as_str()?.to_string(), e.field("samples")?.as_u64()?)))
        .collect::<Result<Vec<_>>>()?;
    let items =
        doc.field("items")?.as_array()?.iter().map(item_from_json).collect::<Result<Vec<_>>>()?;
    Ok(AdviceReport {
        schema_version: version as u32,
        kernel: doc.field("kernel")?.as_str()?.to_string(),
        total_samples: doc.field("total_samples")?.as_u64()?,
        active_samples: doc.field("active_samples")?.as_u64()?,
        latency_samples: doc.field("latency_samples")?.as_u64()?,
        stall_histogram,
        items,
    })
}

fn item_from_json(doc: &Json) -> Result<AdviceItem> {
    let slug = doc.field("id")?.as_str()?;
    let id = OptimizerId::from_name(slug)
        .ok_or_else(|| JsonError::from_msg(format!("unknown optimizer id `{slug}`")))?;
    let cat = doc.field("category")?.as_str()?;
    let category = OptimizerCategory::from_slug(cat)
        .ok_or_else(|| JsonError::from_msg(format!("unknown category `{cat}`")))?;
    if category != id.category() {
        return Err(JsonError::from_msg(format!(
            "category `{cat}` contradicts optimizer `{slug}` (whose category is `{}`)",
            id.category().slug()
        )));
    }
    let hints =
        doc.field("hints")?.as_array()?.iter().map(hint_from_json).collect::<Result<Vec<_>>>()?;
    let hotspots = doc
        .field("hotspots")?
        .as_array()?
        .iter()
        .map(hotspot_from_json)
        .collect::<Result<Vec<_>>>()?;
    Ok(AdviceItem {
        id,
        category,
        matched_ratio: doc.field("matched_ratio")?.as_f64()?,
        estimated_speedup: doc.field("estimated_speedup")?.as_f64()?,
        estimator: estimator_from_json(doc.field("estimator")?)?,
        hints,
        hotspots,
    })
}

fn estimator_from_json(doc: &Json) -> Result<EstimatorInputs> {
    match doc.field("kind")?.as_str()? {
        "stall-elimination" => Ok(EstimatorInputs::StallElimination {
            total: doc.field("total")?.as_f64()?,
            matched: doc.field("matched")?.as_f64()?,
        }),
        "latency-hiding" => Ok(EstimatorInputs::LatencyHiding {
            total: doc.field("total")?.as_f64()?,
            active: doc.field("active")?.as_f64()?,
            matched_latency: doc.field("matched_latency")?.as_f64()?,
            scopes: doc.field("scopes")?.as_u32()?,
        }),
        "parallel" => {
            let params = match doc.field("params")? {
                Json::Null => None,
                p => Some(params_from_json(p)?),
            };
            Ok(EstimatorInputs::Parallel {
                issue_ratio: doc.field("issue_ratio")?.as_f64()?,
                params,
            })
        }
        "residual-elimination" => Ok(EstimatorInputs::ResidualElimination {
            total: doc.field("total")?.as_f64()?,
            matched: doc.field("matched")?.as_f64()?,
            residual: doc.field("residual")?.as_f64()?,
        }),
        other => Err(JsonError::from_msg(format!("unknown estimator kind `{other}`"))),
    }
}

fn params_from_json(doc: &Json) -> Result<ParallelParams> {
    Ok(ParallelParams {
        w_old: doc.field("w_old")?.as_f64()?,
        w_new: doc.field("w_new")?.as_f64()?,
        busy_sms_old: doc.field("busy_sms_old")?.as_f64()?,
        busy_sms_new: doc.field("busy_sms_new")?.as_f64()?,
        lane_eff_old: doc.field("lane_eff_old")?.as_f64()?,
        lane_eff_new: doc.field("lane_eff_new")?.as_f64()?,
        factor: doc.field("factor")?.as_f64()?,
    })
}

fn hint_from_json(doc: &Json) -> Result<Hint> {
    let kind_slug = doc.field("kind")?.as_str()?;
    let kind = HintKind::from_slug(kind_slug)
        .ok_or_else(|| JsonError::from_msg(format!("unknown hint kind `{kind_slug}`")))?;
    Ok(Hint { kind, text: doc.field("text")?.as_str()?.to_string() })
}

fn hotspot_from_json(doc: &Json) -> Result<HotspotReport> {
    let def = match doc.field("def")? {
        Json::Null => None,
        loc => Some(location_from_json(loc)?),
    };
    Ok(HotspotReport {
        def,
        use_: location_from_json(doc.field("use")?)?,
        region: region_from_json(doc.field("region")?)?,
        ratio: doc.field("ratio")?.as_f64()?,
        speedup: doc.field("speedup")?.as_f64()?,
        distance: opt_u32(doc.field("distance")?)?,
    })
}

fn location_from_json(doc: &Json) -> Result<LocationReport> {
    Ok(LocationReport {
        pc: doc.field("pc")?.as_u64()?,
        function: doc.field("function")?.as_str()?.to_string(),
        file: opt_string(doc.field("file")?)?,
        line: opt_u32(doc.field("line")?)?,
        scope: doc.field("scope")?.as_str()?.to_string(),
    })
}

fn region_from_json(doc: &Json) -> Result<RegionReport> {
    Ok(RegionReport {
        function: doc.field("function")?.as_str()?.to_string(),
        pc_begin: doc.field("pc_begin")?.as_u64()?,
        pc_end: doc.field("pc_end")?.as_u64()?,
        file: opt_string(doc.field("file")?)?,
        line_begin: opt_u32(doc.field("line_begin")?)?,
        line_end: opt_u32(doc.field("line_end")?)?,
        scope: doc.field("scope")?.as_str()?.to_string(),
    })
}

fn opt_string(v: &Json) -> Result<Option<String>> {
    match v {
        Json::Null => Ok(None),
        other => Ok(Some(other.as_str()?.to_string())),
    }
}

fn opt_u32(v: &Json) -> Result<Option<u32>> {
    match v {
        Json::Null => Ok(None),
        other => Ok(Some(other.as_u32()?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advisor::SCHEMA_VERSION;

    fn sample_report() -> AdviceReport {
        AdviceReport {
            schema_version: SCHEMA_VERSION,
            kernel: "k".to_string(),
            total_samples: 1000,
            active_samples: 400,
            latency_samples: 600,
            stall_histogram: vec![("exec_dependency".to_string(), 600)],
            items: vec![
                AdviceItem {
                    id: OptimizerId::StrengthReduction,
                    category: OptimizerCategory::StallElimination,
                    matched_ratio: 0.25,
                    estimated_speedup: 1.5,
                    estimator: EstimatorInputs::StallElimination { total: 1000.0, matched: 250.0 },
                    hints: vec![Hint::guidance("avoid division"), Hint::finding("64 edges")],
                    hotspots: vec![HotspotReport {
                        def: Some(LocationReport {
                            pc: 16,
                            function: "k".to_string(),
                            file: Some("k.cu".to_string()),
                            line: Some(3),
                            scope: "Loop at k.cu:2 in k".to_string(),
                        }),
                        use_: LocationReport {
                            pc: 32,
                            function: "k".to_string(),
                            file: None,
                            line: None,
                            scope: String::new(),
                        },
                        region: RegionReport {
                            function: "k".to_string(),
                            pc_begin: 0,
                            pc_end: 128,
                            file: Some("k.cu".to_string()),
                            line_begin: Some(1),
                            line_end: Some(9),
                            scope: "Loop at k.cu:2 in k".to_string(),
                        },
                        ratio: 0.1,
                        speedup: 1.11,
                        distance: Some(1),
                    }],
                },
                AdviceItem {
                    id: OptimizerId::BlockIncrease,
                    category: OptimizerCategory::Parallel,
                    matched_ratio: 0.0,
                    estimated_speedup: 1.2,
                    estimator: EstimatorInputs::Parallel {
                        issue_ratio: 0.4,
                        params: Some(ParallelParams {
                            w_old: 8.0,
                            w_new: 4.0,
                            busy_sms_old: 16.0,
                            busy_sms_new: 32.0,
                            lane_eff_old: 1.0,
                            lane_eff_new: 0.5,
                            factor: 1.25,
                        }),
                    },
                    hints: vec![Hint::guidance("split blocks")],
                    hotspots: vec![],
                },
                AdviceItem {
                    id: OptimizerId::MemoryCoalescing,
                    category: OptimizerCategory::StallElimination,
                    matched_ratio: 0.3,
                    estimated_speedup: 1.29,
                    estimator: EstimatorInputs::ResidualElimination {
                        total: 1000.0,
                        matched: 300.0,
                        residual: 0.25,
                    },
                    hints: vec![Hint::guidance("coalesce warp accesses")],
                    hotspots: vec![],
                },
            ],
        }
    }

    #[test]
    fn v2_round_trips_byte_identically() {
        let report = sample_report();
        let text = report_to_json(&report).compact();
        let back = report_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, report, "structural equality");
        assert_eq!(report_to_json(&back).compact(), text, "byte identity");
    }

    #[test]
    fn rejects_foreign_versions_and_bad_slugs() {
        let report = sample_report();
        let mut doc = report_to_json(&report);
        if let Json::Obj(entries) = &mut doc {
            entries[0].1 = Json::from(99u64);
        }
        let err = report_from_json(&doc).unwrap_err();
        assert!(err.to_string().contains("schema_version"), "{err}");

        let doc = Json::parse(
            &report_to_json(&report).compact().replace("strength-reduction", "warp-drive"),
        )
        .unwrap();
        let err = report_from_json(&doc).unwrap_err();
        assert!(err.to_string().contains("warp-drive"), "{err}");

        // A category that contradicts the item's id is rejected, so the
        // `category == id.category()` invariant survives deserialization.
        let doc = Json::parse(&report_to_json(&report).compact().replacen(
            "\"category\":\"stall-elimination\"",
            "\"category\":\"parallel\"",
            1,
        ))
        .unwrap();
        let err = report_from_json(&doc).unwrap_err();
        assert!(err.to_string().contains("contradicts"), "{err}");
    }
}
