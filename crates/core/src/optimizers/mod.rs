//! Performance optimizers — the paper's Table 2 catalog.
//!
//! Each optimizer encodes rules to compute *matching stalls* from the
//! blamed dependency edges and the program structure, lifting the job of
//! associating stalls with optimizations from the user to the advisor.
//!
//! | Category | Optimizer | Matches |
//! |---|---|---|
//! | Stall elimination | Register Reuse | local-memory dependency stalls |
//! | | Strength Reduction | execution-dependency stalls of long-latency arithmetic |
//! | | Function Split | instruction-fetch stalls in large functions |
//! | | Fast Math | stalls inside CUDA math functions |
//! | | Warp Balance | synchronization stalls |
//! | | Memory Transaction Reduction | memory-throttle stalls |
//! | Latency hiding | Loop Unrolling | global-memory/execution stalls with def and use in one loop |
//! | | Code Reordering | short-distance global-memory/execution stalls |
//! | | Function Inlining | stalls in device functions and call sites |
//! | Parallel | Block Increase | fewer blocks than the device can host |
//! | | Thread Increase | occupancy limited by threads per block |
//! | Stall elimination | Memory Coalescing | uncoalesced/MSHR/L2-queue stalls (hierarchy model) |
//! | | Bank Conflict Resolution | shared-memory bank-conflict stalls (hierarchy model) |

mod latency_hiding;
mod memory;
mod parallel;
mod stall_elim;

pub use latency_hiding::{CodeReordering, FunctionInlining, LoopUnrolling};
pub use memory::{BankConflictResolution, MemoryCoalescing};
pub use parallel::{BlockIncrease, ThreadIncrease};
pub use stall_elim::{
    FastMath, FunctionSplit, MemoryTransactionReduction, RegisterReuse, StrengthReduction,
    WarpBalance,
};

use crate::advisor::AnalysisCtx;
use crate::estimators::ParallelParams;
use gpa_structure::Scope;
use std::fmt;

/// The three optimizer families of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OptimizerCategory {
    /// Remove the stalls themselves (Eq. 2).
    StallElimination,
    /// Overlap the stalls with other work (Eqs. 4–5).
    LatencyHiding,
    /// Change the parallelism level (Eqs. 6–10).
    Parallel,
}

impl OptimizerCategory {
    /// Every category, in Table 2 order.
    pub const ALL: [OptimizerCategory; 3] = [
        OptimizerCategory::StallElimination,
        OptimizerCategory::LatencyHiding,
        OptimizerCategory::Parallel,
    ];

    /// Stable machine-readable name (advice schema v2, CLI `--category`).
    pub fn slug(self) -> &'static str {
        match self {
            OptimizerCategory::StallElimination => "stall-elimination",
            OptimizerCategory::LatencyHiding => "latency-hiding",
            OptimizerCategory::Parallel => "parallel",
        }
    }

    /// Parses a [`OptimizerCategory::slug`] back to the category.
    pub fn from_slug(s: &str) -> Option<OptimizerCategory> {
        Self::ALL.into_iter().find(|c| c.slug() == s)
    }
}

impl fmt::Display for OptimizerCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OptimizerCategory::StallElimination => "stall elimination",
            OptimizerCategory::LatencyHiding => "latency hiding",
            OptimizerCategory::Parallel => "parallel",
        };
        f.write_str(s)
    }
}

/// Typed identity of a Table 2 optimizer.
///
/// The `Ord` derived from declaration order is the catalog order, which
/// the advisor uses as the deterministic tie-break for equal estimated
/// speedups and the [`OptimizerRegistry`] uses as its iteration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OptimizerId {
    /// Local-memory dependency stalls (register spills).
    RegisterReuse,
    /// Execution-dependency stalls of long-latency arithmetic.
    StrengthReduction,
    /// Instruction-fetch stalls in functions larger than the i-cache.
    FunctionSplit,
    /// Stalls inside CUDA math-library functions.
    FastMath,
    /// Synchronization stalls at barriers.
    WarpBalance,
    /// Memory-throttle stalls (too many transactions in flight).
    MemoryTransactionReduction,
    /// Hideable latency with def and use in one loop.
    LoopUnrolling,
    /// Hideable latency at short def→use distance.
    CodeReordering,
    /// Stalls in out-of-line device functions and call sites.
    FunctionInlining,
    /// Grids leaving SMs idle.
    BlockIncrease,
    /// Blocks too small for full occupancy.
    ThreadIncrease,
    /// Uncoalesced-access and memory-backpressure stalls (hierarchy
    /// model).
    MemoryCoalescing,
    /// Shared-memory bank-conflict stalls (hierarchy model).
    BankConflictResolution,
}

impl OptimizerId {
    /// Every built-in optimizer, in Table 2 (catalog) order, followed by
    /// the memory-hierarchy additions (appended so the catalog order of
    /// the original eleven — and every report ranking tie-break — is
    /// unchanged).
    pub const ALL: [OptimizerId; 13] = [
        OptimizerId::RegisterReuse,
        OptimizerId::StrengthReduction,
        OptimizerId::FunctionSplit,
        OptimizerId::FastMath,
        OptimizerId::WarpBalance,
        OptimizerId::MemoryTransactionReduction,
        OptimizerId::LoopUnrolling,
        OptimizerId::CodeReordering,
        OptimizerId::FunctionInlining,
        OptimizerId::BlockIncrease,
        OptimizerId::ThreadIncrease,
        OptimizerId::MemoryCoalescing,
        OptimizerId::BankConflictResolution,
    ];

    /// The paper-style display name (e.g. `GPURegisterReuseOptimizer`).
    pub fn name(self) -> &'static str {
        match self {
            OptimizerId::RegisterReuse => "GPURegisterReuseOptimizer",
            OptimizerId::StrengthReduction => "GPUStrengthReductionOptimizer",
            OptimizerId::FunctionSplit => "GPUFunctionSplitOptimizer",
            OptimizerId::FastMath => "GPUFastMathOptimizer",
            OptimizerId::WarpBalance => "GPUWarpBalanceOptimizer",
            OptimizerId::MemoryTransactionReduction => "GPUMemoryTransactionReductionOptimizer",
            OptimizerId::LoopUnrolling => "GPULoopUnrollOptimizer",
            OptimizerId::CodeReordering => "GPUCodeReorderOptimizer",
            OptimizerId::FunctionInlining => "GPUFunctionInliningOptimizer",
            OptimizerId::BlockIncrease => "GPUBlockIncreaseOptimizer",
            OptimizerId::ThreadIncrease => "GPUThreadIncreaseOptimizer",
            OptimizerId::MemoryCoalescing => "GPUMemoryCoalescingOptimizer",
            OptimizerId::BankConflictResolution => "GPUBankConflictResolutionOptimizer",
        }
    }

    /// Stable machine-readable name (advice schema v2, CLI filters).
    pub fn slug(self) -> &'static str {
        match self {
            OptimizerId::RegisterReuse => "register-reuse",
            OptimizerId::StrengthReduction => "strength-reduction",
            OptimizerId::FunctionSplit => "function-split",
            OptimizerId::FastMath => "fast-math",
            OptimizerId::WarpBalance => "warp-balance",
            OptimizerId::MemoryTransactionReduction => "memory-transaction-reduction",
            OptimizerId::LoopUnrolling => "loop-unrolling",
            OptimizerId::CodeReordering => "code-reordering",
            OptimizerId::FunctionInlining => "function-inlining",
            OptimizerId::BlockIncrease => "block-increase",
            OptimizerId::ThreadIncrease => "thread-increase",
            OptimizerId::MemoryCoalescing => "memory-coalescing",
            OptimizerId::BankConflictResolution => "bank-conflict-resolution",
        }
    }

    /// The Table 2 family the optimizer belongs to.
    pub fn category(self) -> OptimizerCategory {
        match self {
            OptimizerId::RegisterReuse
            | OptimizerId::StrengthReduction
            | OptimizerId::FunctionSplit
            | OptimizerId::FastMath
            | OptimizerId::WarpBalance
            | OptimizerId::MemoryTransactionReduction
            | OptimizerId::MemoryCoalescing
            | OptimizerId::BankConflictResolution => OptimizerCategory::StallElimination,
            OptimizerId::LoopUnrolling
            | OptimizerId::CodeReordering
            | OptimizerId::FunctionInlining => OptimizerCategory::LatencyHiding,
            OptimizerId::BlockIncrease | OptimizerId::ThreadIncrease => OptimizerCategory::Parallel,
        }
    }

    /// Parses either form of the name: the paper-style display name
    /// (`GPULoopUnrollOptimizer`) or the schema slug (`loop-unrolling`).
    pub fn from_name(s: &str) -> Option<OptimizerId> {
        Self::ALL.into_iter().find(|id| id.name() == s || id.slug() == s)
    }
}

impl fmt::Display for OptimizerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What kind of statement a [`Hint`] makes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HintKind {
    /// Static guidance: how to apply the optimization (Figure 8's
    /// numbered suggestions).
    Guidance,
    /// A dynamic finding from this profile (e.g. the proposed launch
    /// configuration).
    Finding,
}

impl HintKind {
    /// Whether this is static guidance (vs a dynamic finding).
    pub fn is_guidance(self) -> bool {
        self == HintKind::Guidance
    }

    /// Stable machine-readable name (advice schema v2).
    pub fn slug(self) -> &'static str {
        match self {
            HintKind::Guidance => "guidance",
            HintKind::Finding => "finding",
        }
    }

    /// Parses a [`HintKind::slug`] back to the kind.
    pub fn from_slug(s: &str) -> Option<HintKind> {
        match s {
            "guidance" => Some(HintKind::Guidance),
            "finding" => Some(HintKind::Finding),
            _ => None,
        }
    }
}

/// One structured suggestion in an advice item: static guidance on how
/// to apply the optimizer, or a dynamic finding from the profile.
#[derive(Debug, Clone, PartialEq)]
pub struct Hint {
    /// Guidance or finding.
    pub kind: HintKind,
    /// The suggestion text.
    pub text: String,
}

impl Hint {
    /// A static guidance hint.
    pub fn guidance(text: impl Into<String>) -> Hint {
        Hint { kind: HintKind::Guidance, text: text.into() }
    }

    /// A dynamic finding.
    pub fn finding(text: impl Into<String>) -> Hint {
        Hint { kind: HintKind::Finding, text: text.into() }
    }
}

/// A def→use pair worth the user's attention, with its sample weight.
#[derive(Debug, Clone, PartialEq)]
pub struct Hotspot {
    /// Source (blamed) instruction PC, when the pattern has one.
    pub def_pc: Option<u64>,
    /// Stalled instruction PC.
    pub use_pc: u64,
    /// Matched samples on this pair.
    pub samples: f64,
    /// def→use distance in instructions (1 = adjacent).
    pub distance: Option<u32>,
}

/// What an optimizer matched.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MatchResult {
    /// Matched stall samples (`M` of Eq. 2).
    pub matched: f64,
    /// Matched latency samples (`M_L` of Eqs. 3–5).
    pub matched_latency: f64,
    /// Matched latency samples grouped by innermost scope (for Eq. 5).
    pub scopes: Vec<(Scope, f64)>,
    /// Ranked def/use hotspots.
    pub hotspots: Vec<Hotspot>,
    /// Optimizer-specific findings (e.g. the proposed launch config).
    pub notes: Vec<String>,
    /// Parallel-model inputs, for parallel optimizers only.
    pub parallel: Option<ParallelParams>,
}

impl MatchResult {
    /// Whether anything matched.
    pub fn is_empty(&self) -> bool {
        self.matched == 0.0 && self.matched_latency == 0.0 && self.parallel.is_none()
    }

    /// Sorts hotspots by sample weight and keeps the top `n`. The sort
    /// is a total order (`f64::total_cmp`, stable), so a NaN weight can
    /// never panic and equal weights keep their discovery order.
    pub fn keep_top_hotspots(&mut self, n: usize) {
        self.hotspots.sort_by(|a, b| b.samples.total_cmp(&a.samples));
        self.hotspots.truncate(n);
    }

    /// Adds matched latency to a scope bucket.
    pub fn add_scope(&mut self, scope: Scope, latency: f64) {
        if latency <= 0.0 {
            return;
        }
        match self.scopes.iter_mut().find(|(s, _)| *s == scope) {
            Some((_, v)) => *v += latency,
            None => self.scopes.push((scope, latency)),
        }
    }
}

/// A performance optimizer: matches an inefficiency pattern and describes
/// the fix. Name and category derive from [`Optimizer::id`], so an
/// optimizer is identified by one typed value everywhere (reports,
/// filters, wire protocol) instead of a free-form string.
///
/// `Send + Sync` so one [`Advisor`](crate::Advisor) can be shared across
/// the pipeline's worker threads; optimizers are stateless matchers.
pub trait Optimizer: Send + Sync {
    /// Which catalog slot this matcher fills.
    fn id(&self) -> OptimizerId;

    /// Static optimization hints shown in the report (the numbered
    /// suggestions of Figure 8).
    fn hints(&self) -> Vec<&'static str>;

    /// Computes matching stalls against an analysis context.
    fn match_stalls(&self, ctx: &AnalysisCtx<'_>) -> MatchResult;
}

/// The typed optimizer catalog: at most one matcher per [`OptimizerId`],
/// iterated in catalog order regardless of registration order, so the
/// advisor's output is deterministic for any registry composition.
///
/// Replaces the seed-era anonymous `Vec<Box<dyn Optimizer>>`: callers
/// select, replace, or restrict matchers by id instead of by position.
pub struct OptimizerRegistry {
    /// Kept sorted by `entry.id()`; ids are unique.
    entries: Vec<Box<dyn Optimizer>>,
}

impl fmt::Debug for OptimizerRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("OptimizerRegistry").field(&self.ids()).finish()
    }
}

impl Default for OptimizerRegistry {
    fn default() -> Self {
        Self::full()
    }
}

impl OptimizerRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        OptimizerRegistry { entries: Vec::new() }
    }

    /// The full Table 2 catalog.
    pub fn full() -> Self {
        Self::of(&OptimizerId::ALL)
    }

    /// A registry of the built-in matchers for `ids` (duplicates are
    /// collapsed).
    pub fn of(ids: &[OptimizerId]) -> Self {
        let mut registry = Self::empty();
        for &id in ids {
            registry.insert(builtin(id));
        }
        registry
    }

    /// Adds a matcher, replacing any existing matcher with the same id
    /// (the paper notes users can add custom optimizers; a custom
    /// matcher takes over its catalog slot).
    pub fn insert(&mut self, opt: Box<dyn Optimizer>) {
        match self.entries.binary_search_by_key(&opt.id(), |e| e.id()) {
            Ok(i) => self.entries[i] = opt,
            Err(i) => self.entries.insert(i, opt),
        }
    }

    /// Removes the matcher for `id`, if present.
    pub fn remove(&mut self, id: OptimizerId) {
        self.entries.retain(|e| e.id() != id);
    }

    /// The matcher registered for `id`.
    pub fn get(&self, id: OptimizerId) -> Option<&dyn Optimizer> {
        self.entries.binary_search_by_key(&id, |e| e.id()).ok().map(|i| self.entries[i].as_ref())
    }

    /// All matchers, in catalog order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Optimizer> {
        self.entries.iter().map(Box::as_ref)
    }

    /// The registered ids, in catalog order.
    pub fn ids(&self) -> Vec<OptimizerId> {
        self.entries.iter().map(|e| e.id()).collect()
    }

    /// Number of registered matchers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The built-in matcher for a catalog id.
pub fn builtin(id: OptimizerId) -> Box<dyn Optimizer> {
    match id {
        OptimizerId::RegisterReuse => Box::new(RegisterReuse),
        OptimizerId::StrengthReduction => Box::new(StrengthReduction),
        OptimizerId::FunctionSplit => Box::new(FunctionSplit),
        OptimizerId::FastMath => Box::new(FastMath),
        OptimizerId::WarpBalance => Box::new(WarpBalance),
        OptimizerId::MemoryTransactionReduction => Box::new(MemoryTransactionReduction),
        OptimizerId::LoopUnrolling => Box::new(LoopUnrolling),
        OptimizerId::CodeReordering => Box::new(CodeReordering),
        OptimizerId::FunctionInlining => Box::new(FunctionInlining),
        OptimizerId::BlockIncrease => Box::new(BlockIncrease),
        OptimizerId::ThreadIncrease => Box::new(ThreadIncrease),
        OptimizerId::MemoryCoalescing => Box::new(MemoryCoalescing),
        OptimizerId::BankConflictResolution => Box::new(BankConflictResolution),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_names_and_slugs() {
        for id in OptimizerId::ALL {
            assert_eq!(OptimizerId::from_name(id.name()), Some(id));
            assert_eq!(OptimizerId::from_name(id.slug()), Some(id));
            assert_eq!(builtin(id).id(), id);
        }
        assert_eq!(OptimizerId::from_name("GPUWarpDriveOptimizer"), None);
        for cat in OptimizerCategory::ALL {
            assert_eq!(OptimizerCategory::from_slug(cat.slug()), Some(cat));
        }
    }

    #[test]
    fn registry_is_catalog_ordered_and_unique() {
        // Register in reverse: iteration order must still be catalog order.
        let mut r = OptimizerRegistry::empty();
        for id in OptimizerId::ALL.iter().rev() {
            r.insert(builtin(*id));
        }
        assert_eq!(r.ids(), OptimizerId::ALL.to_vec());
        assert_eq!(r.len(), 13);

        // Replacing a slot keeps the registry unique.
        r.insert(builtin(OptimizerId::FastMath));
        assert_eq!(r.len(), 13);
        r.remove(OptimizerId::FastMath);
        assert!(r.get(OptimizerId::FastMath).is_none());
        assert_eq!(r.len(), 12);

        let sub = OptimizerRegistry::of(&[OptimizerId::ThreadIncrease, OptimizerId::FastMath]);
        assert_eq!(sub.ids(), vec![OptimizerId::FastMath, OptimizerId::ThreadIncrease]);
    }

    #[test]
    fn keep_top_hotspots_uses_a_total_order() {
        let mut m = MatchResult {
            hotspots: vec![
                Hotspot { def_pc: None, use_pc: 0, samples: 1.0, distance: None },
                Hotspot { def_pc: None, use_pc: 16, samples: f64::NAN, distance: None },
                Hotspot { def_pc: None, use_pc: 32, samples: 5.0, distance: None },
            ],
            ..MatchResult::default()
        };
        // Must not panic on the NaN weight; NaN sorts above all finite
        // values under total_cmp's descending order.
        m.keep_top_hotspots(2);
        assert_eq!(m.hotspots.len(), 2);
        assert_eq!(m.hotspots[1].use_pc, 32, "largest finite weight survives");
    }
}
