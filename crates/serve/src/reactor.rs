//! A minimal readiness poller over raw `epoll`, plus the eventfd waker
//! the worker pool uses to hand completed jobs back to the reactor
//! thread.
//!
//! The daemon's nonblocking engine (see `server.rs`) runs one or more
//! reactor threads, each driving its share of the connections: sockets
//! are registered here with a `u64` token, [`Poller::wait`] reports
//! which are readable/writable, and the per-connection state machines
//! advance without ever blocking on I/O. std already links libc on
//! Unix, so the syscalls are bound directly with `extern "C"` — no new
//! crate dependencies. The same raw-binding style covers
//! [`reuseport_listener`], the `SO_REUSEPORT` accept path that lets
//! every reactor own its own listener on one shared port.
//!
//! Everything is **level-triggered**: a socket with unread bytes (or
//! writable space while we still have bytes queued) reports ready on
//! every wait until the condition clears. That costs a few spurious
//! wakeups compared to edge-triggering but removes the
//! starvation-by-missed-edge class of bugs entirely, and the daemon
//! modulates interest (`EPOLLOUT` only while a write buffer is
//! nonempty, `EPOLLIN` dropped while a client is over its write
//! budget) so the spurious set stays small.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::os::fd::{FromRawFd, OwnedFd, RawFd};
use std::os::raw::{c_int, c_uint, c_void};

const EPOLL_CLOEXEC: c_int = 0x80000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x1;
const EPOLLOUT: u32 = 0x4;
const EPOLLERR: u32 = 0x8;
const EPOLLHUP: u32 = 0x10;
const EPOLLRDHUP: u32 = 0x2000;

const EFD_NONBLOCK: c_int = 0x800;
const EFD_CLOEXEC: c_int = 0x80000;

const EINTR: i32 = 4;

const AF_INET: c_int = 2;
const AF_INET6: c_int = 10;
const SOCK_STREAM: c_int = 1;
const SOCK_CLOEXEC: c_int = 0x80000;
const SOL_SOCKET: c_int = 1;
const SO_REUSEPORT: c_int = 15;

/// Accept backlog for reuseport listeners; matches what std passes to
/// `listen(2)` for `TcpListener::bind`.
const LISTEN_BACKLOG: c_int = 128;

/// Mirrors `struct epoll_event`. On x86-64 the kernel ABI packs the
/// struct (no padding between `events` and `data`); other Linux
/// targets use natural alignment.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// Mirrors `struct sockaddr_in` (fields in network byte order).
#[repr(C)]
#[derive(Clone, Copy)]
struct SockaddrIn {
    family: u16,
    port: u16,
    addr: u32,
    zero: [u8; 8],
}

/// Mirrors `struct sockaddr_in6` (fields in network byte order).
#[repr(C)]
#[derive(Clone, Copy)]
struct SockaddrIn6 {
    family: u16,
    port: u16,
    flowinfo: u32,
    addr: [u8; 16],
    scope_id: u32,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn setsockopt(fd: c_int, level: c_int, name: c_int, value: *const c_void, len: c_uint)
        -> c_int;
    fn bind(fd: c_int, addr: *const c_void, len: c_uint) -> c_int;
    fn listen(fd: c_int, backlog: c_int) -> c_int;
}

fn check(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Binds a listener with `SO_REUSEPORT` set, so several listeners can
/// share one address and the kernel load-balances incoming connections
/// across them — the accept path of the multi-reactor engine. Every
/// listener in a group must be created this way (the option has to be
/// set *before* `bind`, which is why `std`'s `TcpListener::bind` cannot
/// do it), so joining a port owned by a non-reuseport socket fails with
/// `EADDRINUSE` and the caller falls back to single-listener accept.
///
/// # Errors
///
/// Any failing syscall of the socket/setsockopt/bind/listen sequence.
pub fn reuseport_listener(addr: SocketAddr) -> io::Result<TcpListener> {
    let domain = match addr {
        SocketAddr::V4(_) => AF_INET,
        SocketAddr::V6(_) => AF_INET6,
    };
    // SAFETY: no pointers involved; the return value is checked.
    let fd = check(unsafe { socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0) })?;
    // SAFETY: `fd` is a fresh socket this function owns; wrapping it
    // first means every early return below closes it.
    let sock = unsafe { OwnedFd::from_raw_fd(fd) };
    let one: c_int = 1;
    // SAFETY: passes a live c_int of the stated size.
    check(unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            SO_REUSEPORT,
            (&raw const one).cast::<c_void>(),
            std::mem::size_of::<c_int>() as c_uint,
        )
    })?;
    match addr {
        SocketAddr::V4(v4) => {
            let sa = SockaddrIn {
                family: AF_INET as u16,
                port: v4.port().to_be(),
                addr: u32::from(*v4.ip()).to_be(),
                zero: [0; 8],
            };
            // SAFETY: passes a live sockaddr_in of the stated size.
            check(unsafe {
                bind(
                    fd,
                    (&raw const sa).cast::<c_void>(),
                    std::mem::size_of::<SockaddrIn>() as c_uint,
                )
            })?;
        }
        SocketAddr::V6(v6) => {
            let sa = SockaddrIn6 {
                family: AF_INET6 as u16,
                port: v6.port().to_be(),
                // flowinfo and scope_id stay in host order (matching
                // std's sockaddr conversion); only port/addr are BE.
                flowinfo: v6.flowinfo(),
                addr: v6.ip().octets(),
                scope_id: v6.scope_id(),
            };
            // SAFETY: passes a live sockaddr_in6 of the stated size.
            check(unsafe {
                bind(
                    fd,
                    (&raw const sa).cast::<c_void>(),
                    std::mem::size_of::<SockaddrIn6>() as c_uint,
                )
            })?;
        }
    }
    // SAFETY: no pointers involved; the return value is checked.
    check(unsafe { listen(fd, LISTEN_BACKLOG) })?;
    Ok(TcpListener::from(sock))
}

/// What a registration wants to hear about. Readiness for reading is
/// always paired with `EPOLLRDHUP` so a peer half-close surfaces as an
/// event instead of a silent stall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd has bytes to read (or the peer closed).
    pub readable: bool,
    /// Wake when the fd can accept more written bytes.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest: the idle state of a connection.
    pub const READ: Interest = Interest { readable: true, writable: false };
    /// Write-only interest: a connection over its read budget that
    /// still has queued response bytes.
    pub const WRITE: Interest = Interest { readable: false, writable: true };
    /// Both directions: draining a response while staying responsive.
    pub const BOTH: Interest = Interest { readable: true, writable: true };

    fn mask(self) -> u32 {
        let mut mask = 0;
        if self.readable {
            mask |= EPOLLIN | EPOLLRDHUP;
        }
        if self.writable {
            mask |= EPOLLOUT;
        }
        mask
    }
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Bytes are available to read.
    pub readable: bool,
    /// The fd can accept written bytes.
    pub writable: bool,
    /// Error or hangup: the connection is dead regardless of the
    /// other flags.
    pub closed: bool,
}

/// The epoll instance. One per reactor thread; not shared.
pub struct Poller {
    epfd: c_int,
}

impl Poller {
    /// A fresh epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poller> {
        // SAFETY: no pointers involved; the return value is checked.
        let epfd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, event: Option<&mut EpollEvent>) -> io::Result<()> {
        let ptr = event.map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
        // SAFETY: `ptr` is either null (allowed for DEL) or points at a
        // live EpollEvent for the duration of the call.
        check(unsafe { epoll_ctl(self.epfd, op, fd, ptr) })?;
        Ok(())
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut event = EpollEvent { events: interest.mask(), data: token };
        self.ctl(EPOLL_CTL_ADD, fd, Some(&mut event))
    }

    /// Re-arms an existing registration with new interest.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut event = EpollEvent { events: interest.mask(), data: token };
        self.ctl(EPOLL_CTL_MOD, fd, Some(&mut event))
    }

    /// Removes `fd` from the poller. (Closing the fd does this
    /// implicitly, but explicit removal keeps the invariant obvious.)
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    /// Blocks up to `timeout_ms` (`-1` = forever, `0` = poll) and
    /// appends one [`Event`] per ready fd to `events`. Returns how
    /// many were appended; `EINTR` retries internally.
    pub fn wait(&self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        const CAPACITY: usize = 256;
        let mut raw = [EpollEvent { events: 0, data: 0 }; CAPACITY];
        let n = loop {
            // SAFETY: `raw` is a live, writable buffer of CAPACITY
            // entries for the duration of the call.
            let ret =
                unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), CAPACITY as c_int, timeout_ms) };
            if ret >= 0 {
                break ret as usize;
            }
            let err = io::Error::last_os_error();
            if err.raw_os_error() != Some(EINTR) {
                return Err(err);
            }
        };
        for ev in &raw[..n] {
            let bits = ev.events;
            events.push(Event {
                token: ev.data,
                readable: bits & EPOLLIN != 0,
                writable: bits & EPOLLOUT != 0,
                closed: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
            });
        }
        Ok(n)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: epfd is a valid fd we own; double-close is impossible
        // because Drop runs once.
        unsafe { close(self.epfd) };
    }
}

/// Cross-thread wakeup for the reactor: workers call [`Waker::wake`]
/// after pushing a completion, which makes the eventfd readable and
/// pops the reactor out of [`Poller::wait`].
pub struct Waker {
    fd: c_int,
}

impl Waker {
    /// A fresh nonblocking eventfd.
    pub fn new() -> io::Result<Waker> {
        // SAFETY: no pointers involved; the return value is checked.
        let fd = check(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(Waker { fd })
    }

    /// The fd to register with the [`Poller`].
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Makes the eventfd readable. Wakes the reactor if it is parked
    /// in `wait`; coalesces harmlessly if it isn't.
    pub fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: writes 8 bytes from a live u64; an eventfd write of
        // 8 bytes either succeeds or fails atomically, and failure
        // (EAGAIN at u64::MAX-1 pending wakes) still leaves the fd
        // readable, which is all we need.
        unsafe { write(self.fd, (&raw const one).cast::<c_void>(), 8) };
    }

    /// Clears pending wakeups so level-triggered polling stops
    /// reporting the waker readable.
    pub fn drain(&self) {
        let mut counter: u64 = 0;
        // SAFETY: reads 8 bytes into a live u64. Nonblocking, so this
        // returns EAGAIN (ignored) when already drained.
        unsafe { read(self.fd, (&raw mut counter).cast::<c_void>(), 8) };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: fd is a valid eventfd we own.
        unsafe { close(self.fd) };
    }
}

// The reactor thread owns the Waker, but workers hold clones of an
// Arc<Waker> and only call `wake` (a single syscall on an fd that
// lives as long as the Arc).
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn poller_reports_readable_after_bytes_arrive() {
        let poller = Poller::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poller.add(b.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0, "idle socket: no events");

        a.write_all(b"hello\n").unwrap();
        poller.wait(&mut events, 1000).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        assert!(!events[0].closed);
    }

    #[test]
    fn poller_reports_hangup_when_the_peer_closes() {
        let poller = Poller::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        poller.add(b.as_raw_fd(), 3, Interest::READ).unwrap();
        drop(a);
        let mut events = Vec::new();
        poller.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.closed), "{events:?}");
    }

    #[test]
    fn interest_modulation_silences_and_rearms_writability() {
        let poller = Poller::new().unwrap();
        let (_a, b) = UnixStream::pair().unwrap();
        poller.add(b.as_raw_fd(), 1, Interest::READ).unwrap();
        let mut events = Vec::new();
        // Read-only interest: an idle-but-writable socket is silent.
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
        // Re-armed for writes, the same socket reports writable.
        poller.modify(b.as_raw_fd(), 1, Interest::BOTH).unwrap();
        poller.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable), "{events:?}");
        // And deletion silences it entirely.
        events.clear();
        poller.delete(b.as_raw_fd()).unwrap();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn reuseport_group_shares_one_port_and_both_listeners_accept() {
        let first = reuseport_listener("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = first.local_addr().unwrap();
        let second = reuseport_listener(addr).unwrap();
        assert_eq!(second.local_addr().unwrap(), addr);
        first.set_nonblocking(true).unwrap();
        second.set_nonblocking(true).unwrap();
        // The kernel picks a group member per connection 4-tuple hash;
        // 64 distinct source ports make "one listener got everything"
        // a ~2^-63 event.
        let conns: Vec<std::net::TcpStream> =
            (0..64).map(|_| std::net::TcpStream::connect(addr).unwrap()).collect();
        let drain = |l: &std::net::TcpListener| {
            let mut n = 0;
            while l.accept().is_ok() {
                n += 1;
            }
            n
        };
        // Accepts may trail the connects briefly; poll until all 64
        // have landed.
        let (mut a, mut b) = (0, 0);
        for _ in 0..200 {
            a += drain(&first);
            b += drain(&second);
            if a + b == conns.len() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(a + b, conns.len());
        assert!(a > 0 && b > 0, "kernel balanced {a}/{b} across the group");
    }

    #[test]
    fn reuseport_cannot_join_a_port_bound_without_it() {
        let plain = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = plain.local_addr().unwrap();
        // The fallback trigger for `serve_on` with an external listener.
        assert!(reuseport_listener(addr).is_err());
    }

    #[test]
    fn waker_round_trip() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.add(waker.fd(), u64::MAX, Interest::READ).unwrap();

        let mut events = Vec::new();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0, "fresh waker is quiet");

        waker.wake();
        waker.wake(); // coalesces
        poller.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == u64::MAX && e.readable));

        waker.drain();
        events.clear();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0, "drained waker is quiet again");
    }
}
