//! The device: SMs, warp schedulers, and the main timing loop.
//!
//! The timing core is **event-driven**: instead of re-evaluating every
//! warp on every cycle, the scheduler computes, per warp, the earliest
//! cycle it could possibly issue (`ready_at`) and jumps the clock
//! straight to the next interesting cycle — the minimum over all warps'
//! ready times and the next PC-sampling tick. Nothing can change while no
//! warp issues (all scoreboard/barrier/pipe clear times are frozen), so
//! samples taken at skipped-period boundaries and the final
//! [`LaunchResult`] are byte-identical to the dense per-cycle reference
//! loop, which remains available behind [`SimConfig::dense_reference`]
//! for differential testing.

use crate::exec::{execute, ExecCtx, Outcome};
use crate::hier::SmHier;
use crate::mem::{ConstMem, DirectCache, GlobalMem};
use crate::reconv::build_reconvergence;
use crate::sample::{SampleSet, SampleSink};
use crate::stall::StallReason;
use crate::warp::WarpState;
use crate::{Result, SimError};
use gpa_arch::{ArchConfig, LatencyTable, LaunchConfig, MemModel, Occupancy};
use gpa_isa::{Instruction, MemSpace, Module, Opcode, Pipe, Slot, Visibility, INSTR_BYTES};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Tunable simulator knobs (separate from the machine description).
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Abort the launch after this many cycles.
    pub max_cycles: u64,
    /// PC-sampling period in cycles per SM (0 disables sampling).
    pub sampling_period: u32,
    /// Offset of the first sampling tick in cycles. Replay-style repeat
    /// profiling varies the phase per launch so merged profiles observe
    /// different cycles of the same deterministic execution.
    pub sampling_phase: u32,
    /// Cycles to swap a finished block for a queued one.
    pub block_launch_overhead: u32,
    /// Cycles until a store's read barrier clears (WAR window).
    pub war_read_cycles: u32,
    /// MUFU result latency.
    pub mufu_latency: u32,
    /// S2R result latency.
    pub s2r_latency: u32,
    /// SHFL result latency.
    pub shfl_latency: u32,
    /// Extra latency per atomic operation.
    pub atom_extra: u32,
    /// Run the dense per-cycle reference scheduler instead of the
    /// event-driven core. Slower but structurally closer to hardware;
    /// results are identical (the differential tests assert this).
    pub dense_reference: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_cycles: 500_000_000,
            sampling_period: 509,
            sampling_phase: 0,
            block_launch_overhead: 25,
            war_read_cycles: 15,
            mufu_latency: 20,
            s2r_latency: 20,
            shfl_latency: 25,
            atom_extra: 12,
            dense_reference: false,
        }
    }
}

/// One PC sample, the raw material of a profile (paper Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawSample {
    /// SM that took the sample.
    pub sm: u32,
    /// Warp scheduler sampled (round-robin).
    pub scheduler: u32,
    /// Cycle of the sample.
    pub cycle: u64,
    /// PC of the sampled warp's next instruction.
    pub pc: u64,
    /// The sampled warp's stall reason (`Selected` if it issued).
    pub stall: StallReason,
    /// Whether the scheduler issued *any* instruction this cycle — `true`
    /// makes this an **active sample**, `false` a **latency sample**.
    pub scheduler_active: bool,
}

/// Per-SM counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmStats {
    /// Instructions issued on this SM.
    pub issued: u64,
    /// Blocks the SM executed.
    pub blocks: u32,
}

/// Everything a launch produced.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchResult {
    /// Total kernel cycles (launch to last block completion).
    pub cycles: u64,
    /// Total instructions issued.
    pub issued: u64,
    /// Aggregated PC samples (empty when sampling is disabled, or when
    /// the launch streamed its samples into an external [`SampleSink`]).
    pub samples: SampleSet,
    /// Exact per-PC issue counts (ground truth for validation), ordered
    /// by PC so iteration is deterministic.
    pub issue_counts: BTreeMap<u64, u64>,
    /// Global-memory transactions (32-byte sectors).
    pub mem_transactions: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Instruction-cache misses.
    pub icache_misses: u64,
    /// The occupancy the launch achieved.
    pub occupancy: Occupancy,
    /// The launch configuration used.
    pub launch: LaunchConfig,
    /// Per-SM counters.
    pub sm_stats: Vec<SmStats>,
}

/// Precomputed per-instruction metadata for the hot status checks.
struct InstrMeta {
    use_regs: Vec<u8>,
    use_preds: u8,
    wait_mask: u8,
    def_regs: Vec<u8>,
    def_preds: u8,
    fixed_lat: Option<u32>,
    pipe: Pipe,
    throttled_mem: bool,
    reconv: Option<u64>,
    /// Program index of the fall-through instruction (`NO_IDX` when the
    /// instruction is the last of its function).
    next_idx: u32,
    /// Program index of the static branch/call target (`NO_IDX` for
    /// non-control instructions or targets outside the program).
    target_idx: u32,
}

/// Sentinel for "no instruction index" in the control-flow index tables.
const NO_IDX: u32 = u32::MAX;

/// A module lowered to flat arrays for simulation.
///
/// Building one clones every instruction and runs reconvergence analysis
/// (CFG + postdominators per function) — expensive enough that repeat
/// launches should reuse a compiled program instead of re-lowering:
/// compile once with [`GpuSim::compile`] (or let a pipeline `Session`
/// cache it per module artifact) and launch with
/// [`GpuSim::launch_compiled`].
pub struct CompiledProgram {
    entry: String,
    module_name: String,
    isa_arch: String,
    arch_name: String,
    instrs: Vec<Instruction>,
    meta: Vec<InstrMeta>,
    pcs: Vec<u64>,
    /// Per-function contiguous PC ranges `(base, end, first_idx)`, sorted
    /// by base — the hot pc→index lookup for dynamic control flow (the
    /// exact pc→index map lives only at build time, for entry lookup and
    /// static target resolution).
    ranges: Vec<(u64, u64, u32)>,
    entry_pc: u64,
    entry_idx: u32,
    /// Registers the program can touch (max operand register + 1), so
    /// warps allocate register files sized to the kernel instead of the
    /// full 256-row architectural file.
    nregs: usize,
}

impl CompiledProgram {
    /// Lowers `entry` of `module` for simulation on `arch`.
    ///
    /// # Errors
    ///
    /// Fails on unlinked modules and unknown kernels.
    pub fn build(module: &Module, entry: &str, arch: &ArchConfig) -> Result<Self> {
        if !module.is_linked() {
            return Err(SimError::UnlinkedModule);
        }
        let entry_fn = module
            .function(entry)
            .filter(|f| f.visibility == Visibility::Global)
            .ok_or_else(|| SimError::UnknownKernel(entry.to_string()))?;
        let entry_pc = entry_fn.base;
        let lat = LatencyTable::for_arch(arch);
        let reconv_map = build_reconvergence(module);
        let mut instrs = Vec::new();
        let mut meta: Vec<InstrMeta> = Vec::new();
        let mut pcs = Vec::new();
        let mut ranges = Vec::new();
        let mut pc2idx = HashMap::new();
        let mut nregs: usize = 8;
        for f in &module.functions {
            if !f.is_empty() {
                ranges.push((f.base, f.end(), instrs.len() as u32));
            }
            for (i, instr) in f.instrs.iter().enumerate() {
                let pc = f.pc_of(i);
                pc2idx.insert(pc, instrs.len() as u32);
                pcs.push(pc);
                let mut use_regs = Vec::new();
                let mut use_preds = 0u8;
                let mut def_regs = Vec::new();
                let mut def_preds = 0u8;
                for s in instr.uses() {
                    match s {
                        Slot::Reg(r) => use_regs.push(r.index()),
                        Slot::Pred(p) => use_preds |= 1 << p.index(),
                        Slot::Bar(_) => {}
                    }
                }
                for s in instr.defs() {
                    match s {
                        Slot::Reg(r) => def_regs.push(r.index()),
                        Slot::Pred(p) => def_preds |= 1 << p.index(),
                        Slot::Bar(_) => {}
                    }
                }
                for op in instr.srcs.iter().chain(instr.dsts.iter()) {
                    for r in op.src_regs().into_iter().chain(op.dst_regs()) {
                        if !r.is_zero() {
                            nregs = nregs.max(r.index() as usize + 1);
                        }
                    }
                }
                let space = instr.opcode.mem_space();
                meta.push(InstrMeta {
                    use_regs,
                    use_preds,
                    wait_mask: instr.ctrl.wait_mask,
                    def_regs,
                    def_preds,
                    fixed_lat: lat.fixed_latency(instr),
                    pipe: instr.opcode.pipe(),
                    throttled_mem: matches!(space, Some(MemSpace::Global) | Some(MemSpace::Local)),
                    reconv: reconv_map.get(&pc).copied(),
                    next_idx: if i + 1 < f.instrs.len() { instrs.len() as u32 + 1 } else { NO_IDX },
                    target_idx: NO_IDX,
                });
                instrs.push(instr.clone());
            }
        }
        // Second pass: resolve static branch/call targets now that the
        // whole index space exists (calls may target later functions).
        for (m, instr) in meta.iter_mut().zip(&instrs) {
            if matches!(instr.opcode, Opcode::Bra | Opcode::Cal) {
                if let Some(t) = instr.branch_target() {
                    m.target_idx = pc2idx.get(&t).copied().unwrap_or(NO_IDX);
                }
            }
        }
        let entry_idx = pc2idx[&entry_pc];
        Ok(CompiledProgram {
            entry: entry.to_string(),
            module_name: module.name.clone(),
            isa_arch: module.arch.clone(),
            arch_name: arch.name.clone(),
            instrs,
            meta,
            pcs,
            ranges,
            entry_pc,
            entry_idx,
            nregs,
        })
    }

    /// The entry (kernel) function name.
    pub fn entry(&self) -> &str {
        &self.entry
    }

    /// The source module's name.
    pub fn module_name(&self) -> &str {
        &self.module_name
    }

    /// The source module's ISA architecture tag.
    pub fn isa_arch(&self) -> &str {
        &self.isa_arch
    }

    /// Instruction index for an absolute PC via the per-function range
    /// table (dynamic control flow: returns, reconvergence).
    fn idx_of_pc(&self, pc: u64) -> Option<u32> {
        let i = self.ranges.partition_point(|&(base, _, _)| base <= pc);
        let &(base, end, first_idx) = self.ranges.get(i.checked_sub(1)?)?;
        if pc >= end {
            return None;
        }
        let off = pc - base;
        if !off.is_multiple_of(INSTR_BYTES) {
            return None;
        }
        Some(first_idx + (off / INSTR_BYTES) as u32)
    }
}

struct BlockCtx {
    block_id: u32,
    smem: Vec<u8>,
    total_warps: u32,
    done_warps: u32,
    arrived: u32,
}

const N_PIPES: usize = 7;

fn pipe_idx(p: Pipe) -> usize {
    match p {
        Pipe::Alu => 0,
        Pipe::Fma => 1,
        Pipe::Fp64 => 2,
        Pipe::Sfu => 3,
        Pipe::Lsu => 4,
        Pipe::Branch => 5,
        Pipe::Misc => 6,
    }
}

struct Sm {
    id: u32,
    block_slots: Vec<Option<BlockCtx>>,
    warps: Vec<WarpState>,
    sched_warps: Vec<Vec<usize>>,
    icache: DirectCache,
    inflight: Vec<(u64, u32)>,
    inflight_count: u32,
    /// Earliest completion among `inflight` (`u64::MAX` when empty) — the
    /// retire sweep runs only when something can actually retire.
    next_retire: u64,
    /// Per-scheduler lower bound on the next cycle it could issue: the
    /// event-driven core skips a scheduler's warp scan entirely while its
    /// bound lies in the future, and the main loop jumps the clock to the
    /// minimum bound. Invalidated (lowered) whenever another warp's issue
    /// can wake this scheduler's warps: barrier release and block starts.
    sched_next_ready: Vec<u64>,
    ifetch_fill_free: u64,
    pipe_free: Vec<u64>,
    rr_issue: Vec<usize>,
    rr_sample: Vec<usize>,
    /// Timed memory-hierarchy state (`None` under the flat model). Its
    /// servers obey the same bound-validity contract as `inflight`:
    /// occupancy rises only at issues and falls at times fixed at
    /// admission, so event-core bounds built from `clear_time` remain
    /// valid lower bounds.
    hier: Option<SmHier>,
    stats: SmStats,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ready,
    Stalled(StallReason),
    NotResident,
}

/// The simulated device. Owns global memory and constant banks across
/// launches so hosts can initialize inputs, launch, and read back results.
#[derive(Debug)]
pub struct GpuSim {
    arch: ArchConfig,
    cfg: SimConfig,
    global: GlobalMem,
    user_banks: Vec<(u8, Vec<u8>)>,
}

impl GpuSim {
    /// Creates a device.
    pub fn new(arch: ArchConfig, cfg: SimConfig) -> Self {
        GpuSim { arch, cfg, global: GlobalMem::new(), user_banks: Vec::new() }
    }

    /// The machine description.
    pub fn arch(&self) -> &ArchConfig {
        &self.arch
    }

    /// The simulator knobs.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Mutable simulator knobs (e.g. to change the sampling period).
    pub fn config_mut(&mut self) -> &mut SimConfig {
        &mut self.cfg
    }

    /// Device global memory (read back results).
    pub fn global(&self) -> &GlobalMem {
        &self.global
    }

    /// Device global memory (host-side initialization).
    pub fn global_mut(&mut self) -> &mut GlobalMem {
        &mut self.global
    }

    /// Sets a user constant bank (bank 0 is reserved for kernel params).
    pub fn set_const_bank(&mut self, bank: u8, data: Vec<u8>) {
        self.user_banks.retain(|(b, _)| *b != bank);
        self.user_banks.push((bank, data));
    }

    /// Lowers `entry` from `module` once for this device's architecture.
    /// The result is shareable ([`Arc`]) and reusable across launches and
    /// across devices configured with the same architecture — callers
    /// that launch the same kernel repeatedly should compile once and use
    /// [`GpuSim::launch_compiled`].
    ///
    /// # Errors
    ///
    /// Fails on unknown kernels or unlinked modules.
    pub fn compile(&self, module: &Module, entry: &str) -> Result<Arc<CompiledProgram>> {
        CompiledProgram::build(module, entry, &self.arch).map(Arc::new)
    }

    /// Launches `entry` from `module` and runs it to completion, with
    /// the default at-source aggregating sample sink: the result carries
    /// a [`SampleSet`], never a raw sample buffer.
    ///
    /// `params` fills constant bank 0 (kernel parameters: buffer addresses
    /// and scalars, little-endian).
    ///
    /// # Errors
    ///
    /// Fails on unknown kernels, unlinked modules, zero-sized launches,
    /// functional faults, or exceeding the cycle budget.
    pub fn launch(
        &mut self,
        module: &Module,
        entry: &str,
        launch: &LaunchConfig,
        params: &[u8],
    ) -> Result<LaunchResult> {
        let prog = CompiledProgram::build(module, entry, &self.arch)?;
        self.launch_compiled(&prog, launch, params)
    }

    /// [`GpuSim::launch`] with a caller-supplied [`SampleSink`]: every
    /// raw sample streams into `sink` and `LaunchResult::samples` stays
    /// empty. Pass a `Vec<RawSample>` to buffer the raw stream (tests,
    /// per-sample inspection, differential checks).
    ///
    /// # Errors
    ///
    /// Same as [`GpuSim::launch`].
    pub fn launch_with_sink(
        &mut self,
        module: &Module,
        entry: &str,
        launch: &LaunchConfig,
        params: &[u8],
        sink: &mut dyn SampleSink,
    ) -> Result<LaunchResult> {
        let prog = CompiledProgram::build(module, entry, &self.arch)?;
        self.launch_compiled_with_sink(&prog, launch, params, sink)
    }

    /// Launches an already-compiled program (see [`GpuSim::compile`]),
    /// skipping the per-launch lowering work. Samples aggregate into the
    /// result's [`SampleSet`].
    ///
    /// # Errors
    ///
    /// Fails on architecture mismatch, zero-sized launches, functional
    /// faults, or exceeding the cycle budget.
    pub fn launch_compiled(
        &mut self,
        prog: &CompiledProgram,
        launch: &LaunchConfig,
        params: &[u8],
    ) -> Result<LaunchResult> {
        let mut set = SampleSet::new();
        let mut result = self.launch_compiled_with_sink(prog, launch, params, &mut set)?;
        result.samples = set;
        Ok(result)
    }

    /// [`GpuSim::launch_compiled`] with a caller-supplied [`SampleSink`]
    /// (the result's own `samples` set stays empty).
    ///
    /// # Errors
    ///
    /// Same as [`GpuSim::launch_compiled`].
    pub fn launch_compiled_with_sink(
        &mut self,
        prog: &CompiledProgram,
        launch: &LaunchConfig,
        params: &[u8],
        sink: &mut dyn SampleSink,
    ) -> Result<LaunchResult> {
        if prog.arch_name != self.arch.name {
            return Err(SimError::BadLaunch(format!(
                "program compiled for arch `{}`, device is `{}`",
                prog.arch_name, self.arch.name
            )));
        }
        if launch.grid_blocks == 0 || launch.block_threads == 0 {
            return Err(SimError::BadLaunch("empty grid or block".into()));
        }
        if launch.block_threads > self.arch.max_threads_per_block {
            return Err(SimError::BadLaunch(format!(
                "{} threads per block exceeds the {} limit",
                launch.block_threads, self.arch.max_threads_per_block
            )));
        }
        let occupancy = self.arch.occupancy(launch);
        let wpb = launch.warps_per_block(self.arch.warp_size);
        let mut consts = ConstMem::new();
        consts.set_bank(0, params.to_vec());
        for (b, data) in &self.user_banks {
            consts.set_bank(*b, data.clone());
        }

        let slots = occupancy.blocks_per_sm.max(1) as usize;
        let nsched = self.arch.schedulers_per_sm as usize;

        // Build SMs and distribute initial blocks breadth-first.
        let mut sms: Vec<Sm> = (0..self.arch.num_sms)
            .map(|id| {
                let mut sched_warps = vec![Vec::new(); nsched];
                let total_warps = slots * wpb as usize;
                for wi in 0..total_warps {
                    sched_warps[wi % nsched].push(wi);
                }
                Sm {
                    id,
                    block_slots: (0..slots).map(|_| None).collect(),
                    warps: (0..total_warps)
                        .map(|wi| {
                            WarpState::new(
                                wi as u32,
                                (wi % nsched) as u32,
                                wi / wpb as usize,
                                (wi % wpb as usize) as u32,
                                launch.block_threads,
                                prog.nregs,
                            )
                        })
                        .collect(),
                    sched_warps,
                    icache: DirectCache::new(self.arch.icache_size, self.arch.icache_line),
                    inflight: Vec::new(),
                    inflight_count: 0,
                    next_retire: u64::MAX,
                    sched_next_ready: vec![0; nsched],
                    ifetch_fill_free: 0,
                    pipe_free: vec![0; nsched * N_PIPES],
                    rr_issue: vec![0; nsched],
                    rr_sample: vec![0; nsched],
                    hier: match &self.arch.mem {
                        MemModel::Flat => None,
                        MemModel::Hierarchy(h) => Some(SmHier::new(h)),
                    },
                    stats: SmStats::default(),
                }
            })
            .collect();

        let mut st = LaunchState {
            prog,
            arch: &self.arch,
            cfg: &self.cfg,
            launch,
            wpb,
            nsched,
            global: &mut self.global,
            consts,
            l2: DirectCache::new(self.arch.l2_size, self.arch.l2_line),
            next_block: 0,
            blocks_done: 0,
            sink,
            issue_counts: vec![0; prog.instrs.len()],
            issued_total: 0,
            mem_transactions: 0,
            icache_misses: 0,
        };
        for slot in 0..slots {
            for sm in &mut sms {
                if st.next_block < launch.grid_blocks {
                    start_block(sm, slot, st.next_block, wpb, launch, prog, 0);
                    st.next_block += 1;
                }
            }
        }

        let period = self.cfg.sampling_period as u64;
        let phase = self.cfg.sampling_phase as u64;
        let mut cycle: u64 = 0;
        while st.blocks_done < launch.grid_blocks {
            if cycle > self.cfg.max_cycles {
                return Err(SimError::CycleLimit(self.cfg.max_cycles));
            }
            for sm in &mut sms {
                st.step_sm(sm, cycle)?;
            }
            cycle += 1;
            // Event-driven advance: every scheduler now carries a lower
            // bound on its next possible issue cycle, so nothing can
            // change before the earliest bound — jump the clock straight
            // there, stopping at sampling ticks so the sample stream
            // stays identical to the dense loop.
            if !self.cfg.dense_reference && st.blocks_done < launch.grid_blocks {
                let mut next = u64::MAX;
                for sm in &sms {
                    for &bound in &sm.sched_next_ready {
                        next = next.min(bound);
                    }
                }
                // Smallest sampling tick (phase + m·period) at or after
                // the current cycle.
                let next_tick = if period == 0 {
                    u64::MAX
                } else if cycle <= phase {
                    phase
                } else {
                    phase + (cycle - phase).div_ceil(period).saturating_mul(period)
                };
                // A jump past the budget still errors deterministically:
                // clamp to max_cycles + 1 and let the loop-top check fire
                // exactly as the dense loop would.
                cycle = next.min(next_tick).max(cycle).min(self.cfg.max_cycles.saturating_add(1));
            }
        }

        let (l2_hits, l2_misses) = st.l2.stats();
        Ok(LaunchResult {
            cycles: cycle,
            issued: st.issued_total,
            samples: SampleSet::new(),
            issue_counts: prog
                .pcs
                .iter()
                .zip(st.issue_counts.iter())
                .filter(|(_, &c)| c > 0)
                .map(|(&pc, &c)| (pc, c))
                .collect(),
            mem_transactions: st.mem_transactions,
            l2_hits,
            l2_misses,
            icache_misses: st.icache_misses,
            occupancy,
            launch: *launch,
            sm_stats: sms.iter().map(|s| s.stats).collect(),
        })
    }
}

/// Per-launch mutable state shared by the cycle stepper and issue path
/// (everything except the SMs themselves, which are borrowed per call).
struct LaunchState<'a> {
    prog: &'a CompiledProgram,
    arch: &'a ArchConfig,
    cfg: &'a SimConfig,
    launch: &'a LaunchConfig,
    wpb: u32,
    nsched: usize,
    global: &'a mut GlobalMem,
    consts: ConstMem,
    l2: DirectCache,
    next_block: u32,
    blocks_done: u32,
    sink: &'a mut dyn SampleSink,
    issue_counts: Vec<u64>,
    issued_total: u64,
    mem_transactions: u64,
    icache_misses: u64,
}

impl LaunchState<'_> {
    /// Runs one cycle on one SM: retire memory requests, then give each
    /// scheduler one issue opportunity (sampling the designated scheduler
    /// first, pre-issue, so samples see the cycle's initial state).
    ///
    /// In the event-driven core a scheduler whose next-ready bound lies
    /// in the future is skipped without touching its warps — it provably
    /// cannot issue, which is exactly what the dense scan would conclude
    /// the slow way. Full stall classification runs only for the sampled
    /// warp on sampling ticks.
    fn step_sm(&mut self, sm: &mut Sm, cycle: u64) -> Result<()> {
        // Retire completed memory requests — only when something can
        // actually complete this cycle.
        if sm.next_retire <= cycle {
            let mut next = u64::MAX;
            sm.inflight.retain(|&(done, n)| {
                if done <= cycle {
                    sm.inflight_count -= n;
                    false
                } else {
                    next = next.min(done);
                    true
                }
            });
            sm.next_retire = next;
        }
        if let Some(h) = &mut sm.hier {
            h.retire(cycle);
        }
        let period = self.cfg.sampling_period as u64;
        let phase = self.cfg.sampling_phase as u64;
        let sample_due = period > 0 && cycle >= phase && (cycle - phase).is_multiple_of(period);
        let sample_sched = if period == 0 || cycle < phase {
            0
        } else {
            (((cycle - phase) / period) as usize) % self.nsched
        };
        for sched in 0..self.nsched {
            // Pre-issue snapshot of the warp this scheduler would sample,
            // so samples see the cycle's initial state.
            let sampled = if sample_due && sched == sample_sched {
                pick_sample_warp(sm, sched)
            } else {
                None
            };
            let sampled_status =
                sampled.map(|wi| (wi, classify(sm, wi, self.prog, cycle, self.arch)));
            let issued_warp = if self.cfg.dense_reference {
                self.dense_issue_scan(sm, sched, cycle, sampled_status)
            } else if sm.sched_next_ready[sched] <= cycle {
                self.event_issue_scan(sm, sched, cycle)
            } else {
                None // Provably stalled until the bound: skip the scan.
            };
            if let Some(wi) = issued_warp {
                self.issue_one(sm, wi, cycle)?;
                if !self.cfg.dense_reference {
                    // One issue per scheduler per cycle; rescan next cycle.
                    sm.sched_next_ready[sched] = cycle + 1;
                }
            }
            if let Some((wi, status)) = sampled_status {
                let w = &sm.warps[wi];
                let stall = if issued_warp == Some(wi) {
                    StallReason::Selected
                } else {
                    match status {
                        Status::Ready => StallReason::NotSelected,
                        Status::Stalled(r) => r,
                        Status::NotResident => StallReason::Other,
                    }
                };
                self.sink.record(RawSample {
                    sm: sm.id,
                    scheduler: sched as u32,
                    cycle,
                    pc: w.pc,
                    stall,
                    scheduler_active: issued_warp.is_some(),
                });
            }
        }
        Ok(())
    }

    /// The dense reference scan: classify warps round-robin, first ready
    /// wins (reusing the sampled warp's status instead of re-evaluating).
    fn dense_issue_scan(
        &self,
        sm: &mut Sm,
        sched: usize,
        cycle: u64,
        sampled_status: Option<(usize, Status)>,
    ) -> Option<usize> {
        let list_len = sm.sched_warps[sched].len();
        for k in 0..list_len {
            let pos = (sm.rr_issue[sched] + k) % list_len;
            let wi = sm.sched_warps[sched][pos];
            let ready = match sampled_status {
                Some((swi, status)) if swi == wi => status == Status::Ready,
                _ => classify(sm, wi, self.prog, cycle, self.arch) == Status::Ready,
            };
            if ready {
                sm.rr_issue[sched] = (pos + 1) % list_len;
                return Some(wi);
            }
        }
        None
    }

    /// The event-core scan: fold each warp's cheap readiness horizon in
    /// round-robin order; the first warp whose horizon has arrived issues.
    /// When none has, the fold's minimum becomes the scheduler's
    /// next-ready bound — the cycles in between cannot issue and are
    /// never scanned again.
    fn event_issue_scan(&self, sm: &mut Sm, sched: usize, cycle: u64) -> Option<usize> {
        // All memory back-pressure gates the same instructions
        // (`throttled_mem`), so their clear times fold into one horizon.
        let mut throttle_clear = throttle_clear_time(sm, self.arch);
        if let Some(h) = &sm.hier {
            throttle_clear = throttle_clear.max(h.mshr.clear_time()).max(h.l2q.clear_time());
        }
        let list_len = sm.sched_warps[sched].len();
        let mut earliest = u64::MAX;
        for k in 0..list_len {
            let pos = (sm.rr_issue[sched] + k) % list_len;
            let wi = sm.sched_warps[sched][pos];
            let t = ready_at(sm, wi, self.prog, throttle_clear);
            if t <= cycle {
                sm.rr_issue[sched] = (pos + 1) % list_len;
                return Some(wi);
            }
            earliest = earliest.min(t);
        }
        sm.sched_next_ready[sched] = earliest;
        None
    }

    /// Issues warp `wi`'s next instruction: functional execution, result
    /// latency bookkeeping, control flow, and block lifecycle.
    fn issue_one(&mut self, sm: &mut Sm, wi: usize, now: u64) -> Result<()> {
        let prog = self.prog;
        let idx = sm.warps[wi].cur_idx as usize;
        let instr = &prog.instrs[idx];
        let meta = &prog.meta[idx];

        // Functional execution.
        let res = {
            let warps = &mut sm.warps;
            let blocks = &mut sm.block_slots;
            let warp = &mut warps[wi];
            let block = blocks[warp.block_slot].as_mut().expect("resident warp has a block");
            let mut ctx = ExecCtx {
                global: self.global,
                smem: &mut block.smem,
                consts: &self.consts,
                block_id: block.block_id,
                grid_blocks: self.launch.grid_blocks,
                block_threads: self.launch.block_threads,
            };
            execute(warp, instr, meta.reconv, &mut ctx)?
        };

        self.issue_counts[idx] += 1;
        self.issued_total += 1;
        sm.stats.issued += 1;

        // Result latency and blame classification.
        let (lat, reason) = if let Some(l) = meta.fixed_lat {
            (l, StallReason::ExecutionDependency)
        } else if let Some(mem) = &res.mem {
            let (lat, txns, reason) = match sm.hier.as_mut() {
                Some(h) => mem_latency_hier(h, &mut self.l2, self.arch, self.cfg, mem, instr, now),
                None => mem_latency(&mut self.l2, self.arch, self.cfg, mem, instr),
            };
            if txns > 0 {
                let done_at = now + lat as u64;
                // Keep the queue ordered by completion time so the
                // throttle-clear fold below is a plain prefix scan.
                let pos = sm.inflight.partition_point(|&(d, _)| d <= done_at);
                sm.inflight.insert(pos, (done_at, txns));
                sm.inflight_count += txns;
                sm.next_retire = sm.next_retire.min(done_at);
                self.mem_transactions += txns as u64;
            }
            (lat, reason)
        } else {
            // Non-memory variable latency.
            let lat = match instr.opcode {
                Opcode::Mufu => self.cfg.mufu_latency,
                Opcode::S2r => self.cfg.s2r_latency,
                Opcode::Shfl => self.cfg.shfl_latency,
                _ => 8,
            };
            (lat, StallReason::ExecutionDependency)
        };

        let w = &mut sm.warps[wi];
        let done_at = now + lat as u64;
        for &r in &meta.def_regs {
            w.reg_ready[r as usize] = done_at;
            w.reg_reason[r as usize] = reason.code();
        }
        if meta.def_preds != 0 {
            for p in 0..7 {
                if meta.def_preds & (1 << p) != 0 {
                    w.pred_ready[p] = done_at;
                }
            }
        }
        if let Some(b) = instr.ctrl.write_barrier {
            w.bar_clear[b.index() as usize] = done_at;
            w.bar_reason[b.index() as usize] = reason.code();
        }
        if let Some(b) = instr.ctrl.read_barrier {
            w.bar_clear[b.index() as usize] = now + self.cfg.war_read_cycles as u64;
            w.bar_reason[b.index() as usize] = StallReason::ExecutionDependency.code();
        }
        w.next_issue = now + instr.ctrl.stall.max(1) as u64;
        let sched = w.scheduler as usize;
        sm.pipe_free[sched * N_PIPES + pipe_idx(meta.pipe)] =
            now + self.arch.pipe_interval(meta.pipe) as u64;

        // Control flow. The next instruction index comes from the
        // precomputed fall-through/target tables; only dynamic edges
        // (returns, reconvergence switches) need a pc lookup.
        let mut redirected = false;
        let mut next_idx = meta.next_idx;
        match res.outcome {
            Outcome::Next => w.pc += INSTR_BYTES,
            Outcome::Jump(t) => {
                w.pc = t;
                next_idx = meta.target_idx;
                redirected = true;
            }
            Outcome::Call(t) => {
                w.call_stack.push(w.pc + INSTR_BYTES);
                w.pc = t;
                next_idx = meta.target_idx;
                redirected = true;
            }
            Outcome::Ret => {
                let ret = w.call_stack.pop().ok_or_else(|| SimError::Fault {
                    pc: w.pc,
                    message: "RET on empty stack".into(),
                })?;
                w.pc = ret;
                next_idx = prog.idx_of_pc(ret).unwrap_or(NO_IDX);
                redirected = true;
            }
            Outcome::Sync => {
                w.pc += INSTR_BYTES;
                w.at_barrier = true;
            }
            Outcome::Exit => {
                w.done = true;
            }
        }
        w.prev_was_ctrl = redirected;
        if redirected {
            w.next_issue = w.next_issue.max(now + self.arch.lat_branch_redirect as u64);
        }
        if !w.done {
            if w.reconverge_if_needed() {
                next_idx = prog.idx_of_pc(w.pc).unwrap_or(NO_IDX);
            }
            let pc = w.pc;
            if next_idx == NO_IDX {
                return Err(SimError::Fault {
                    pc,
                    message: "control flow left the program".into(),
                });
            }
            w.cur_idx = next_idx;
            if !sm.icache.access(pc) {
                // One fill port per SM: concurrent misses queue behind each
                // other, so i-cache thrash throttles the whole SM.
                let start = sm.ifetch_fill_free.max(now);
                let ready = start + self.arch.lat_ifetch_miss as u64;
                sm.ifetch_fill_free = ready;
                sm.warps[wi].fetch_ready = ready;
                self.icache_misses += 1;
            }
        }

        // Block barrier / completion bookkeeping.
        let slot = sm.warps[wi].block_slot;
        match res.outcome {
            Outcome::Sync => {
                let block = sm.block_slots[slot].as_mut().expect("resident block");
                block.arrived += 1;
                try_release_barrier(sm, slot, now);
            }
            Outcome::Exit => {
                let block = sm.block_slots[slot].as_mut().expect("resident block");
                block.done_warps += 1;
                if block.done_warps >= block.total_warps {
                    sm.block_slots[slot] = None;
                    self.blocks_done += 1;
                    if self.next_block < self.launch.grid_blocks {
                        let b = self.next_block;
                        self.next_block += 1;
                        start_block(
                            sm,
                            slot,
                            b,
                            self.wpb,
                            self.launch,
                            prog,
                            now + self.cfg.block_launch_overhead as u64,
                        );
                    }
                } else {
                    try_release_barrier(sm, slot, now);
                }
            }
            _ => {}
        }
        Ok(())
    }
}

fn start_block(
    sm: &mut Sm,
    slot: usize,
    block_id: u32,
    wpb: u32,
    launch: &LaunchConfig,
    prog: &CompiledProgram,
    start_cycle: u64,
) {
    sm.block_slots[slot] = Some(BlockCtx {
        block_id,
        smem: vec![0u8; launch.smem_per_block as usize],
        total_warps: wpb,
        done_warps: 0,
        arrived: 0,
    });
    sm.stats.blocks += 1;
    for w in 0..wpb as usize {
        let wi = slot * wpb as usize + w;
        let warp = &mut sm.warps[wi];
        let scheduler = warp.scheduler;
        *warp =
            WarpState::new(wi as u32, scheduler, slot, w as u32, launch.block_threads, prog.nregs);
        warp.pc = prog.entry_pc;
        warp.cur_idx = prog.entry_idx;
        warp.next_issue = start_cycle;
        // Fresh warps invalidate their scheduler's next-ready bound.
        let bound = &mut sm.sched_next_ready[scheduler as usize];
        *bound = (*bound).min(start_cycle);
    }
}

/// Picks the warp a scheduler samples this period (round-robin over
/// resident warps). Returns `None` when the scheduler has no resident warp.
fn pick_sample_warp(sm: &mut Sm, sched: usize) -> Option<usize> {
    let list = &sm.sched_warps[sched];
    if list.is_empty() {
        return None;
    }
    for k in 0..list.len() {
        let pos = (sm.rr_sample[sched] + k) % list.len();
        let wi = list[pos];
        let resident = !sm.warps[wi].done && sm.block_slots[sm.warps[wi].block_slot].is_some();
        if resident {
            sm.rr_sample[sched] = (pos + 1) % list.len();
            return Some(wi);
        }
    }
    None
}

/// Full warp-status classification: whether `wi` can issue at `now`, and
/// if not, the CUPTI-style stall reason a sample would report.
///
/// Must stay in lock-step with [`ready_at`]: for any frozen machine state,
/// `classify(..) == Ready` exactly when `ready_at(..) <= now` (the
/// dense-vs-event differential tests enforce this across the whole suite).
fn classify(sm: &Sm, wi: usize, prog: &CompiledProgram, now: u64, arch: &ArchConfig) -> Status {
    let w = &sm.warps[wi];
    if w.done || sm.block_slots[w.block_slot].is_none() {
        return Status::NotResident;
    }
    if w.at_barrier {
        return Status::Stalled(StallReason::Synchronization);
    }
    if w.fetch_ready > now {
        return Status::Stalled(StallReason::InstructionFetch);
    }
    if w.next_issue > now {
        return Status::Stalled(if w.prev_was_ctrl {
            StallReason::InstructionFetch
        } else {
            StallReason::ExecutionDependency
        });
    }
    let meta = &prog.meta[w.cur_idx as usize];
    // Scoreboard barriers named in the wait mask.
    if meta.wait_mask != 0 {
        for b in 0..6 {
            if meta.wait_mask & (1 << b) != 0 && w.bar_clear[b] > now {
                let r = StallReason::from_code(w.bar_reason[b])
                    .unwrap_or(StallReason::ExecutionDependency);
                return Status::Stalled(r);
            }
        }
    }
    // Register/predicate interlock.
    for &r in &meta.use_regs {
        if w.reg_ready[r as usize] > now {
            let reason = StallReason::from_code(w.reg_reason[r as usize])
                .unwrap_or(StallReason::ExecutionDependency);
            return Status::Stalled(reason);
        }
    }
    if meta.use_preds != 0 {
        for p in 0..7 {
            if meta.use_preds & (1 << p) != 0 && w.pred_ready[p] > now {
                return Status::Stalled(StallReason::ExecutionDependency);
            }
        }
    }
    // Memory back-pressure: hierarchy servers first (more specific), then
    // the LSU limit. Each arm mirrors a `clear_time` term in [`ready_at`].
    if meta.throttled_mem {
        if let Some(h) = &sm.hier {
            if h.mshr.is_full() {
                return Status::Stalled(StallReason::MshrFull);
            }
            if h.l2q.is_full() {
                return Status::Stalled(StallReason::L2Queue);
            }
        }
        if sm.inflight_count >= arch.max_mem_inflight_per_sm {
            return Status::Stalled(StallReason::MemoryThrottle);
        }
    }
    // Pipe throughput.
    let sched = w.scheduler as usize;
    if sm.pipe_free[sched * N_PIPES + pipe_idx(meta.pipe)] > now {
        return Status::Stalled(StallReason::PipeBusy);
    }
    Status::Ready
}

/// The cheap readiness horizon: the earliest cycle `wi` could issue,
/// assuming no other warp's issue wakes it first. `u64::MAX` when only
/// another warp's progress can unblock it (barrier parking, exited).
///
/// Every condition [`classify`] checks is of the form `time >= T` with `T`
/// fixed while the warp's own state is untouched, so the earliest ready
/// cycle is just the max of the clear times — an integer fold, no reason
/// bookkeeping. Events that can lower the horizon from outside (barrier
/// release, block replacement) explicitly invalidate the scheduler bounds
/// built from it; later memory traffic can only *raise* the throttle
/// component, which keeps cached bounds valid lower bounds.
fn ready_at(sm: &Sm, wi: usize, prog: &CompiledProgram, throttle_clear: u64) -> u64 {
    let w = &sm.warps[wi];
    if w.done || sm.block_slots[w.block_slot].is_none() || w.at_barrier {
        return u64::MAX;
    }
    let mut t = w.fetch_ready.max(w.next_issue);
    let meta = &prog.meta[w.cur_idx as usize];
    if meta.wait_mask != 0 {
        for b in 0..6 {
            if meta.wait_mask & (1 << b) != 0 {
                t = t.max(w.bar_clear[b]);
            }
        }
    }
    for &r in &meta.use_regs {
        t = t.max(w.reg_ready[r as usize]);
    }
    if meta.use_preds != 0 {
        for p in 0..7 {
            if meta.use_preds & (1 << p) != 0 {
                t = t.max(w.pred_ready[p]);
            }
        }
    }
    if meta.throttled_mem {
        t = t.max(throttle_clear);
    }
    t.max(sm.pipe_free[w.scheduler as usize * N_PIPES + pipe_idx(meta.pipe)])
}

/// Earliest cycle the SM's in-flight memory queue drops below the LSU
/// limit, assuming no new requests are added (frozen machine). The
/// queue is kept sorted by completion time, so this is a prefix scan.
fn throttle_clear_time(sm: &Sm, arch: &ArchConfig) -> u64 {
    if sm.inflight_count < arch.max_mem_inflight_per_sm {
        return 0;
    }
    let mut count = sm.inflight_count;
    for &(done, n) in &sm.inflight {
        count -= n;
        if count < arch.max_mem_inflight_per_sm {
            return done;
        }
    }
    u64::MAX
}

/// Releases a block barrier once every live warp has arrived.
fn try_release_barrier(sm: &mut Sm, slot: usize, now: u64) {
    let Some(block) = sm.block_slots[slot].as_ref() else { return };
    let live = block.total_warps - block.done_warps;
    if live == 0 || block.arrived < live {
        return;
    }
    sm.block_slots[slot].as_mut().expect("checked above").arrived = 0;
    let Sm { warps, sched_next_ready, .. } = sm;
    for w in warps.iter_mut() {
        if w.block_slot == slot && w.at_barrier && !w.done {
            w.at_barrier = false;
            w.next_issue = w.next_issue.max(now + 1);
            // Unparked warps invalidate their scheduler's next-ready
            // bound (it was computed while they looked unwakeable).
            let bound = &mut sched_next_ready[w.scheduler as usize];
            *bound = (*bound).min(now + 1);
        }
    }
}

/// Latency, transaction count, and blame class of one memory access.
fn mem_latency(
    l2: &mut DirectCache,
    arch: &ArchConfig,
    cfg: &SimConfig,
    mem: &crate::exec::MemAccess,
    instr: &Instruction,
) -> (u32, u32, StallReason) {
    match mem.space {
        MemSpace::Global => {
            let mut sectors: Vec<u64> = mem.addrs.iter().map(|a| a >> 5).collect();
            sectors.sort_unstable();
            sectors.dedup();
            let mut worst = 0u32;
            for &s in &sectors {
                let hit = l2.access(s << 5);
                let lat = if hit { arch.lat_global_l2 } else { arch.lat_global_dram };
                worst = worst.max(lat);
            }
            let n = sectors.len() as u32;
            let mut lat = worst + n.saturating_sub(1) * arch.lat_per_extra_transaction;
            if matches!(instr.opcode, Opcode::AtomG) {
                lat += cfg.atom_extra;
            }
            (lat, n, StallReason::MemoryDependency)
        }
        MemSpace::Local => {
            // Thread-private accesses are interleaved by hardware and
            // mostly L1-resident: cheap, well-coalesced traffic.
            let n = (mem.addrs.len() as u32).div_ceil(8).max(1);
            let lat = arch.lat_local + (n - 1) * arch.lat_per_extra_transaction;
            (lat, n, StallReason::MemoryDependency)
        }
        MemSpace::Shared => {
            // Bank conflicts serialize.
            let mut banks = [0u8; 32];
            for a in &mem.addrs {
                banks[((a / 4) % 32) as usize] += 1;
            }
            let conflict = banks.iter().copied().max().unwrap_or(1).max(1) as u32;
            let mut lat = arch.lat_shared + (conflict - 1) * 2;
            if matches!(instr.opcode, Opcode::AtomS) {
                lat += cfg.atom_extra;
            }
            (lat, 0, StallReason::ExecutionDependency)
        }
        MemSpace::Constant => (arch.lat_constant, 0, StallReason::MemoryDependency),
    }
}

/// [`mem_latency`] under the timed hierarchy: global accesses probe the
/// per-SM L1 sector by sector, misses occupy an MSHR and an L2-queue slot
/// until the access completes, and blame sharpens to `Uncoalesced` /
/// `BankConflict` where the access pattern (not the memory system) is the
/// problem. Local and constant traffic keeps the flat charging — it is
/// L1-resident/broadcast by construction and carries no advice signal.
fn mem_latency_hier(
    hier: &mut SmHier,
    l2: &mut DirectCache,
    arch: &ArchConfig,
    cfg: &SimConfig,
    mem: &crate::exec::MemAccess,
    instr: &Instruction,
    now: u64,
) -> (u32, u32, StallReason) {
    match mem.space {
        MemSpace::Global => {
            let line = hier.cfg.l1_line.max(1) as u64;
            let mut sectors: Vec<u64> = mem.addrs.iter().map(|a| a / line).collect();
            sectors.sort_unstable();
            sectors.dedup();
            let mut worst = 0u32;
            let mut misses = 0u32;
            for &s in &sectors {
                let addr = s * line;
                let lat = if hier.l1.access(addr) {
                    hier.cfg.lat_l1_hit
                } else {
                    misses += 1;
                    if l2.access(addr) {
                        arch.lat_global_l2
                    } else {
                        arch.lat_global_dram
                    }
                };
                worst = worst.max(lat);
            }
            let n = sectors.len() as u32;
            let mut lat = worst + n.saturating_sub(1) * arch.lat_per_extra_transaction;
            if matches!(instr.opcode, Opcode::AtomG) {
                lat += cfg.atom_extra;
            }
            if misses > 0 {
                let done_at = now + lat as u64;
                hier.mshr.admit(done_at, misses);
                hier.l2q.admit(done_at, misses);
            }
            let reason = if n >= hier.cfg.uncoalesced_sectors {
                StallReason::Uncoalesced
            } else {
                StallReason::MemoryDependency
            };
            (lat, n, reason)
        }
        MemSpace::Shared => {
            let mut banks = [0u8; 32];
            for a in &mem.addrs {
                banks[((a / 4) % 32) as usize] += 1;
            }
            let conflict = banks.iter().copied().max().unwrap_or(1).max(1) as u32;
            let mut lat = arch.lat_shared + (conflict - 1) * hier.cfg.smem_bank_interval;
            if matches!(instr.opcode, Opcode::AtomS) {
                lat += cfg.atom_extra;
            }
            let reason = if conflict >= 2 {
                StallReason::BankConflict
            } else {
                StallReason::ExecutionDependency
            };
            (lat, 0, reason)
        }
        MemSpace::Local | MemSpace::Constant => mem_latency(l2, arch, cfg, mem, instr),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_isa::parse_module;

    fn sim(sms: u32) -> GpuSim {
        GpuSim::new(ArchConfig::small(sms), SimConfig::default())
    }

    fn params_u64(vals: &[u64]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    /// out[i] = a[i] + b[i], global index = ctaid*ntid + tid.
    /// Params: a, b, out (u64 each).
    const VEC_ADD: &str = r#"
.module vecadd
.kernel vecadd
  S2R R0, SR_TID.X {W:B0, S:1}
  S2R R12, SR_CTAID.X {W:B1, S:1}
  S2R R14, SR_NTID.X {W:B2, S:1}
  IMAD R0, R12, R14, R0 {WT:[B0,B1,B2], S:5}
  MOV R2, c[0][0] {S:1}
  MOV R3, c[0][4] {S:1}
  MOV R4, c[0][8] {S:1}
  MOV R5, c[0][12] {S:1}
  MOV R6, c[0][16] {S:1}
  MOV R7, c[0][20] {S:1}
  SHL R1, R0, 2 {S:2}
  IADD R2:R3, R2:R3, R1 {S:2}
  IADD R4:R5, R4:R5, R1 {S:2}
  IADD R6:R7, R6:R7, R1 {S:2}
  LDG.E.32 R8, [R2:R3] {W:B1, S:1}
  LDG.E.32 R9, [R4:R5] {W:B2, S:1}
  IADD R10, R8, R9 {WT:[B1,B2], S:4}
  STG.E.32 [R6:R7], R10 {R:B3, S:1}
  EXIT {WT:[B3], S:1}
.endfunc
"#;

    #[test]
    fn vector_add_correct() {
        let m = parse_module(VEC_ADD).unwrap();
        let mut gpu = sim(1);
        let a = gpu.global_mut().alloc(4 * 32);
        let b = gpu.global_mut().alloc(4 * 32);
        let out = gpu.global_mut().alloc(4 * 32);
        for i in 0..32u64 {
            gpu.global_mut().write_u32(a + 4 * i, i as u32);
            gpu.global_mut().write_u32(b + 4 * i, 100 + i as u32);
        }
        let r =
            gpu.launch(&m, "vecadd", &LaunchConfig::new(1, 32), &params_u64(&[a, b, out])).unwrap();
        for i in 0..32u64 {
            assert_eq!(gpu.global().read_u32(out + 4 * i), 100 + 2 * i as u32);
        }
        assert!(r.cycles > 200, "two dependent global loads cost at least L2 latency");
        assert_eq!(r.issued, 19);
        assert!(r.mem_transactions >= 3, "three warp-wide coalesced accesses");
    }

    #[test]
    fn deterministic_across_runs() {
        let m = parse_module(VEC_ADD).unwrap();
        let run = || {
            let mut gpu = sim(2);
            let a = gpu.global_mut().alloc(4 * 64);
            let b = gpu.global_mut().alloc(4 * 64);
            let out = gpu.global_mut().alloc(4 * 64);
            let r = gpu
                .launch(&m, "vecadd", &LaunchConfig::new(2, 32), &params_u64(&[a, b, out]))
                .unwrap();
            (r.cycles, r.issued, r.samples.total_samples())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn unknown_kernel_and_bad_launch() {
        let m = parse_module(VEC_ADD).unwrap();
        let mut gpu = sim(1);
        assert!(matches!(
            gpu.launch(&m, "nope", &LaunchConfig::new(1, 32), &[]),
            Err(SimError::UnknownKernel(_))
        ));
        assert!(matches!(
            gpu.launch(&m, "vecadd", &LaunchConfig::new(0, 32), &[]),
            Err(SimError::BadLaunch(_))
        ));
        assert!(matches!(
            gpu.launch(&m, "vecadd", &LaunchConfig::new(1, 4096), &[]),
            Err(SimError::BadLaunch(_))
        ));
    }

    /// Two warps; warp 0 spins longer before the barrier, so warp 1
    /// accumulates synchronization stalls.
    const BARRIER: &str = r#"
.module barrier
.kernel barrier
  S2R R0, SR_TID.X {W:B0, S:1}
  SHR R1, R0, 5 {WT:[B0], S:2}       # warp id
  ISETP.EQ.AND P0, R1, 0 {S:2}
  MOV32I R2, 0 {S:1}
  @!P0 BRA join {S:5}
loop:
  IADD R2, R2, 1 {S:4}
  ISETP.LT.AND P1, R2, 200 {S:2}
  @P1 BRA loop {S:5}
join:
  BAR.SYNC {S:2}
  EXIT
.endfunc
"#;

    #[test]
    fn barrier_synchronizes_and_stalls() {
        let m = parse_module(BARRIER).unwrap();
        let mut gpu = sim(1);
        gpu.config_mut().sampling_period = 31;
        let r = gpu.launch(&m, "barrier", &LaunchConfig::new(1, 64), &[]).unwrap();
        let syncs = r.samples.reason_total(StallReason::Synchronization);
        assert!(syncs > 0, "warp 1 waits at BAR.SYNC while warp 0 loops");
        assert!(r.cycles > 1000, "200-iteration loop dominates");
    }

    /// Divergent kernel: odd lanes take one path, even lanes the other;
    /// both sides write a distinct constant to out[tid].
    const DIVERGE: &str = r#"
.module diverge
.kernel diverge
  S2R R0, SR_TID.X {W:B0, S:1}
  MOV R2, c[0][0] {S:1}
  MOV R3, c[0][4] {S:1}
  SHL R1, R0, 2 {WT:[B0], S:2}
  IADD R2:R3, R2:R3, R1 {S:2}
  LOP3.AND R4, R0, 1 {S:4}
  ISETP.EQ.AND P0, R4, 1 {S:2}
  @P0 BRA odd {S:5}
  MOV32I R5, 1000 {S:1}
  BRA join {S:5}
odd:
  MOV32I R5, 2000 {S:1}
join:
  STG.E.32 [R2:R3], R5 {R:B1, S:1}
  EXIT {WT:[B1], S:1}
.endfunc
"#;

    #[test]
    fn divergence_reconverges_with_correct_values() {
        let m = parse_module(DIVERGE).unwrap();
        let mut gpu = sim(1);
        let out = gpu.global_mut().alloc(4 * 32);
        gpu.launch(&m, "diverge", &LaunchConfig::new(1, 32), &params_u64(&[out])).unwrap();
        for i in 0..32u64 {
            let expect = if i % 2 == 1 { 2000 } else { 1000 };
            assert_eq!(gpu.global().read_u32(out + 4 * i), expect, "lane {i}");
        }
    }

    #[test]
    fn sampling_emits_active_and_latency_samples() {
        let m = parse_module(VEC_ADD).unwrap();
        let mut gpu = sim(1);
        gpu.config_mut().sampling_period = 7;
        let a = gpu.global_mut().alloc(256);
        let b = gpu.global_mut().alloc(256);
        let out = gpu.global_mut().alloc(256);
        let r =
            gpu.launch(&m, "vecadd", &LaunchConfig::new(4, 64), &params_u64(&[a, b, out])).unwrap();
        assert!(!r.samples.is_empty());
        assert!(r.samples.latency_samples() > 0, "dependent loads leave empty issue slots");
        assert!(r.samples.stall_samples() > 0);
        let memdep = r.samples.reason_total(StallReason::MemoryDependency);
        assert!(memdep > 0, "IADD waits on LDG barriers");
    }

    #[test]
    fn more_parallelism_hides_latency() {
        // The same total work split across more warps should need fewer
        // cycles per element thanks to latency hiding.
        let m = parse_module(VEC_ADD).unwrap();
        let run = |blocks: u32, threads: u32| {
            let mut gpu = sim(1);
            let n = (blocks * threads) as u64;
            let a = gpu.global_mut().alloc(4 * n);
            let b = gpu.global_mut().alloc(4 * n);
            let out = gpu.global_mut().alloc(4 * n);
            gpu.launch(&m, "vecadd", &LaunchConfig::new(blocks, threads), &params_u64(&[a, b, out]))
                .unwrap()
                .cycles
        };
        // Per-element cost must drop when more warps are resident.
        let narrow = run(2, 32); // 2 warps, 64 elements
        let wide = run(2, 128); // 8 warps, 256 elements
        let narrow_per = narrow as f64 / 64.0;
        let wide_per = wide as f64 / 256.0;
        assert!(
            wide_per < narrow_per,
            "more warps hide latency: {wide_per:.2} !< {narrow_per:.2} cycles/element"
        );
    }

    #[test]
    fn grid_larger_than_resident_blocks_completes() {
        let m = parse_module(VEC_ADD).unwrap();
        let mut gpu = sim(1);
        let n = 64 * 32u64;
        let a = gpu.global_mut().alloc(4 * n);
        let b = gpu.global_mut().alloc(4 * n);
        let out = gpu.global_mut().alloc(4 * n);
        for i in 0..n {
            gpu.global_mut().write_u32(a + 4 * i, 1);
            gpu.global_mut().write_u32(b + 4 * i, 2);
        }
        let r = gpu
            .launch(&m, "vecadd", &LaunchConfig::new(64, 32), &params_u64(&[a, b, out]))
            .unwrap();
        assert_eq!(r.issued, 64 * 19);
        // Every element computed, including the last wave of blocks.
        assert_eq!(gpu.global().read_u32(out + 4 * (n - 1)), 3);
        let total_blocks: u32 = r.sm_stats.iter().map(|s| s.blocks).sum();
        assert_eq!(total_blocks, 64);
    }

    /// Block-local thread index must come from TID, not warp id: exercises
    /// a device-function call too.
    const CALL: &str = r#"
.module call
.kernel main
  S2R R0, SR_TID.X {W:B0, S:1}
  MOV R2, c[0][0] {S:1}
  MOV R3, c[0][4] {S:1}
  SHL R1, R0, 2 {WT:[B0], S:2}
  IADD R2:R3, R2:R3, R1 {S:2}
  MOV R4, R0 {S:2}
  CAL triple {S:5}
  STG.E.32 [R2:R3], R5 {R:B1, S:1}
  EXIT {WT:[B1], S:1}
.endfunc
.func triple
  IADD R5, R4, R4 {S:4}
  IADD R5, R5, R4 {S:4}
  RET {S:5}
.endfunc
"#;

    #[test]
    fn device_function_call_and_return() {
        let m = parse_module(CALL).unwrap();
        let mut gpu = sim(1);
        let out = gpu.global_mut().alloc(4 * 32);
        gpu.launch(&m, "main", &LaunchConfig::new(1, 32), &params_u64(&[out])).unwrap();
        for i in 0..32u64 {
            assert_eq!(gpu.global().read_u32(out + 4 * i), 3 * i as u32);
        }
    }

    /// Runs a kernel under both scheduler cores and asserts byte-identical
    /// results — the aggregated `LaunchResult` *and* the raw per-sample
    /// stream (cycle/SM/scheduler identity, which aggregation could
    /// mask).
    fn assert_dense_event_identical(
        text: &str,
        entry: &str,
        launch: LaunchConfig,
        period: u32,
        phase: u32,
        nbufs: u64,
        words_per_buf: u64,
    ) {
        assert_dense_event_identical_on(
            ArchConfig::small(2),
            text,
            entry,
            launch,
            period,
            phase,
            nbufs,
            words_per_buf,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn assert_dense_event_identical_on(
        arch: ArchConfig,
        text: &str,
        entry: &str,
        launch: LaunchConfig,
        period: u32,
        phase: u32,
        nbufs: u64,
        words_per_buf: u64,
    ) {
        let m = parse_module(text).unwrap();
        // One arming recipe for every run in this helper: `raw = None`
        // launches through the default aggregating sink, `Some` buffers
        // the raw stream.
        let run = |dense: bool, collect_raw: bool| {
            let cfg = SimConfig {
                sampling_period: period,
                sampling_phase: phase,
                dense_reference: dense,
                ..SimConfig::default()
            };
            let mut gpu = GpuSim::new(arch.clone(), cfg);
            let bufs: Vec<u64> =
                (0..nbufs).map(|_| gpu.global_mut().alloc(4 * words_per_buf)).collect();
            for (bi, b) in bufs.iter().enumerate() {
                for i in 0..words_per_buf {
                    gpu.global_mut().write_u32(b + 4 * i, (bi as u32 + 1) * 10 + i as u32);
                }
            }
            let params = params_u64(&bufs);
            let mut raw: Vec<RawSample> = Vec::new();
            let result = if collect_raw {
                gpu.launch_with_sink(&m, entry, &launch, &params, &mut raw)
            } else {
                gpu.launch(&m, entry, &launch, &params)
            };
            (result.unwrap(), raw)
        };
        let (dense, dense_raw) = run(true, true);
        let (event, event_raw) = run(false, true);
        assert_eq!(dense, event, "dense and event-driven cores must agree for `{entry}`");
        assert_eq!(dense_raw, event_raw, "raw sample streams must agree for `{entry}`");
        // The default aggregating sink sees exactly this stream.
        let (aggregated, _) = run(false, false);
        assert_eq!(
            SampleSet::from_raw(&event_raw),
            aggregated.samples,
            "aggregate of the raw stream equals the default sink for `{entry}`"
        );
    }

    #[test]
    fn event_core_matches_dense_reference() {
        assert_dense_event_identical(VEC_ADD, "vecadd", LaunchConfig::new(4, 64), 13, 0, 3, 256);
        assert_dense_event_identical(BARRIER, "barrier", LaunchConfig::new(2, 64), 31, 0, 0, 0);
        assert_dense_event_identical(DIVERGE, "diverge", LaunchConfig::new(2, 32), 7, 0, 1, 64);
        assert_dense_event_identical(CALL, "main", LaunchConfig::new(2, 32), 17, 0, 1, 64);
    }

    #[test]
    fn event_core_matches_dense_without_sampling() {
        assert_dense_event_identical(VEC_ADD, "vecadd", LaunchConfig::new(4, 64), 0, 0, 3, 256);
    }

    /// Stride-128 global loads (one sector per lane — maximally
    /// uncoalesced) plus stride-128 shared traffic (every lane in bank 0
    /// — a 32-way conflict). Params: in, out (u64 each); buffers hold
    /// 1024 words.
    const MEMBOUND: &str = r#"
.module membound
.kernel membound
  S2R R0, SR_TID.X {W:B0, S:1}
  MOV R2, c[0][0] {S:1}
  MOV R3, c[0][4] {S:1}
  SHL R1, R0, 7 {WT:[B0], S:2}
  IADD R2:R3, R2:R3, R1 {S:2}
  LDG.E.32 R8, [R2:R3] {W:B1, S:1}
  SHL R9, R0, 7 {S:2}
  STS.32 [R9], R8 {WT:[B1], R:B2, S:2}
  LDS.32 R10, [R9] {WT:[B2], W:B3, S:1}
  MOV R4, c[0][8] {S:1}
  MOV R5, c[0][12] {S:1}
  IADD R4:R5, R4:R5, R1 {S:2}
  STG.E.32 [R4:R5], R10 {WT:[B3], R:B4, S:1}
  EXIT {WT:[B4], S:1}
.endfunc
"#;

    fn membound_launch(blocks: u32) -> LaunchConfig {
        let mut lc = LaunchConfig::new(blocks, 32);
        lc.smem_per_block = 32 * 128;
        lc
    }

    #[test]
    fn event_core_matches_dense_with_hierarchy() {
        let arch = || ArchConfig::small(2).with_hierarchy();
        assert_dense_event_identical_on(
            arch(),
            VEC_ADD,
            "vecadd",
            LaunchConfig::new(4, 64),
            13,
            0,
            3,
            256,
        );
        assert_dense_event_identical_on(
            arch(),
            BARRIER,
            "barrier",
            LaunchConfig::new(2, 64),
            31,
            0,
            0,
            0,
        );
        assert_dense_event_identical_on(
            arch(),
            MEMBOUND,
            "membound",
            membound_launch(4),
            7,
            0,
            2,
            1024,
        );
    }

    /// A hierarchy run with a tight MSHR file must classify the new stall
    /// reasons, and the flat model must never emit them.
    #[test]
    fn hierarchy_produces_new_stall_reasons_and_flat_does_not() {
        use gpa_arch::HierarchyConfig;
        let m = parse_module(MEMBOUND).unwrap();
        let run = |arch: ArchConfig| {
            let cfg = SimConfig { sampling_period: 3, ..SimConfig::default() };
            let mut gpu = GpuSim::new(arch, cfg);
            let input = gpu.global_mut().alloc(4 * 1024);
            let out = gpu.global_mut().alloc(4 * 1024);
            for i in 0..1024u64 {
                gpu.global_mut().write_u32(input + 4 * i, i as u32);
            }
            let mut raw: Vec<RawSample> = Vec::new();
            let r = gpu
                .launch_with_sink(
                    &m,
                    "membound",
                    &membound_launch(8),
                    &params_u64(&[input, out]),
                    &mut raw,
                )
                .unwrap();
            // Functional result is model-independent.
            for lane in 0..32u64 {
                assert_eq!(gpu.global().read_u32(out + 128 * lane), 32 * lane as u32);
            }
            (r, raw)
        };

        let mut tight = ArchConfig::small(1);
        tight.mem = MemModel::Hierarchy(HierarchyConfig {
            mshr_capacity: 4,
            l2_queue_capacity: 4,
            ..HierarchyConfig::default()
        });
        let (_, hier_raw) = run(tight);
        let seen = |raw: &[RawSample], r: StallReason| raw.iter().any(|s| s.stall == r);
        assert!(seen(&hier_raw, StallReason::Uncoalesced), "stride-128 loads blame Uncoalesced");
        assert!(
            seen(&hier_raw, StallReason::BankConflict),
            "bank-0 smem traffic blames BankConflict"
        );
        assert!(
            seen(&hier_raw, StallReason::MshrFull) || seen(&hier_raw, StallReason::L2Queue),
            "a 4-entry MSHR/L2 queue backpressures 32-sector bursts"
        );

        let (_, flat_raw) = run(ArchConfig::small(1));
        for s in &flat_raw {
            assert!(
                s.stall.code() <= StallReason::Other.code(),
                "flat model must never emit hierarchy reasons, got {}",
                s.stall
            );
        }
    }

    /// Widening a bounded queue only removes stall conditions: on the
    /// memory-bound kernel, cycle counts are non-increasing in MSHR and
    /// L2-queue capacity.
    #[test]
    fn hierarchy_capacity_is_monotone() {
        use gpa_arch::HierarchyConfig;
        let m = parse_module(MEMBOUND).unwrap();
        let cycles = |cap: u32| {
            let mut arch = ArchConfig::small(1);
            arch.mem = MemModel::Hierarchy(HierarchyConfig {
                mshr_capacity: cap,
                l2_queue_capacity: cap,
                ..HierarchyConfig::default()
            });
            let mut gpu = GpuSim::new(arch, SimConfig::default());
            let input = gpu.global_mut().alloc(4 * 1024);
            let out = gpu.global_mut().alloc(4 * 1024);
            let r = gpu
                .launch(&m, "membound", &membound_launch(8), &params_u64(&[input, out]))
                .unwrap();
            r.cycles
        };
        let caps = [2u32, 4, 8, 16, 32, 64];
        let runs: Vec<u64> = caps.iter().map(|&c| cycles(c)).collect();
        for w in runs.windows(2) {
            assert!(w[1] <= w[0], "more capacity must never slow a kernel: {runs:?}");
        }
        assert!(runs[runs.len() - 1] < runs[0], "the tightest queue must actually bite: {runs:?}");
    }

    #[test]
    fn event_core_matches_dense_with_sampling_phase() {
        // Replay-style repeat profiling offsets the first tick; the
        // cores must agree for every phase, including phases beyond the
        // first tick period.
        for phase in [1, 5, 12, 40] {
            assert_dense_event_identical(
                VEC_ADD,
                "vecadd",
                LaunchConfig::new(4, 64),
                13,
                phase,
                3,
                256,
            );
        }
    }

    #[test]
    fn sampling_phase_shifts_which_cycles_are_observed() {
        let m = parse_module(VEC_ADD).unwrap();
        let run = |phase: u32| {
            let cfg =
                SimConfig { sampling_period: 13, sampling_phase: phase, ..SimConfig::default() };
            let mut gpu = GpuSim::new(ArchConfig::small(1), cfg);
            let a = gpu.global_mut().alloc(4 * 256);
            let b = gpu.global_mut().alloc(4 * 256);
            let out = gpu.global_mut().alloc(4 * 256);
            let mut raw: Vec<RawSample> = Vec::new();
            let r = gpu
                .launch_with_sink(
                    &m,
                    "vecadd",
                    &LaunchConfig::new(4, 64),
                    &params_u64(&[a, b, out]),
                    &mut raw,
                )
                .unwrap();
            (r.cycles, raw)
        };
        let (cycles0, base) = run(0);
        let (cycles7, shifted) = run(7);
        assert_eq!(cycles0, cycles7, "sampling never perturbs timing");
        assert!(!base.is_empty() && !shifted.is_empty());
        assert!(base.iter().all(|s| s.cycle % 13 == 0));
        assert!(shifted.iter().all(|s| s.cycle % 13 == 7));
    }

    #[test]
    fn external_sink_sees_the_stream_the_default_sink_aggregates() {
        let m = parse_module(VEC_ADD).unwrap();
        let launch = LaunchConfig::new(4, 64);
        let alloc = |gpu: &mut GpuSim| {
            let a = gpu.global_mut().alloc(4 * 256);
            let b = gpu.global_mut().alloc(4 * 256);
            let out = gpu.global_mut().alloc(4 * 256);
            params_u64(&[a, b, out])
        };
        let cfg = SimConfig { sampling_period: 7, ..SimConfig::default() };
        let mut gpu = GpuSim::new(ArchConfig::small(1), cfg.clone());
        let params = alloc(&mut gpu);
        let aggregated = gpu.launch(&m, "vecadd", &launch, &params).unwrap();

        let mut gpu = GpuSim::new(ArchConfig::small(1), cfg);
        let params = alloc(&mut gpu);
        let mut raw: Vec<RawSample> = Vec::new();
        let buffered = gpu.launch_with_sink(&m, "vecadd", &launch, &params, &mut raw).unwrap();
        assert!(buffered.samples.is_empty(), "external sink owns the samples");
        assert_eq!(
            SampleSet::from_raw(&raw),
            aggregated.samples,
            "at-source aggregation equals buffered aggregation"
        );
        assert_eq!(buffered.cycles, aggregated.cycles);
        assert_eq!(buffered.issued, aggregated.issued);
    }

    #[test]
    fn cycle_budget_errors_identically_when_jumping_past_it() {
        // A memory-latency-bound kernel with a tiny budget and sampling
        // off: the event core's first jump would leap far past the budget
        // and must clamp to it, erroring exactly like the dense loop.
        let m = parse_module(VEC_ADD).unwrap();
        let run = |dense: bool| {
            let cfg = SimConfig {
                sampling_period: 0,
                max_cycles: 50,
                dense_reference: dense,
                ..SimConfig::default()
            };
            let mut gpu = GpuSim::new(ArchConfig::small(1), cfg);
            let a = gpu.global_mut().alloc(256);
            let b = gpu.global_mut().alloc(256);
            let out = gpu.global_mut().alloc(256);
            gpu.launch(&m, "vecadd", &LaunchConfig::new(1, 32), &params_u64(&[a, b, out]))
        };
        assert_eq!(run(true).unwrap_err(), SimError::CycleLimit(50));
        assert_eq!(run(false).unwrap_err(), SimError::CycleLimit(50));
    }

    #[test]
    fn compiled_program_reuse_matches_fresh_launches() {
        let m = parse_module(VEC_ADD).unwrap();
        let mut gpu = sim(1);
        let prog = gpu.compile(&m, "vecadd").unwrap();
        assert_eq!(prog.entry(), "vecadd");
        assert_eq!(prog.module_name(), "vecadd");
        let a = gpu.global_mut().alloc(4 * 64);
        let b = gpu.global_mut().alloc(4 * 64);
        let out = gpu.global_mut().alloc(4 * 64);
        let params = params_u64(&[a, b, out]);
        let lc = LaunchConfig::new(2, 32);
        let fresh = gpu.launch(&m, "vecadd", &lc, &params).unwrap();
        let reused = gpu.launch_compiled(&prog, &lc, &params).unwrap();
        let again = gpu.launch_compiled(&prog, &lc, &params).unwrap();
        assert_eq!(fresh, reused);
        assert_eq!(fresh, again);
    }

    #[test]
    fn compiled_program_rejects_mismatched_arch() {
        let m = parse_module(VEC_ADD).unwrap();
        let mut small_arch = ArchConfig::small(1);
        small_arch.name = "other-arch".into();
        let other = GpuSim::new(small_arch, SimConfig::default());
        let prog = other.compile(&m, "vecadd").unwrap();
        let mut gpu = sim(1);
        assert!(matches!(
            gpu.launch_compiled(&prog, &LaunchConfig::new(1, 32), &[]),
            Err(SimError::BadLaunch(_))
        ));
    }

    #[test]
    fn issue_counts_are_sorted_by_pc() {
        let m = parse_module(VEC_ADD).unwrap();
        let mut gpu = sim(1);
        let a = gpu.global_mut().alloc(4 * 32);
        let b = gpu.global_mut().alloc(4 * 32);
        let out = gpu.global_mut().alloc(4 * 32);
        let r =
            gpu.launch(&m, "vecadd", &LaunchConfig::new(1, 32), &params_u64(&[a, b, out])).unwrap();
        let pcs: Vec<u64> = r.issue_counts.keys().copied().collect();
        let mut sorted = pcs.clone();
        sorted.sort_unstable();
        assert_eq!(pcs, sorted, "BTreeMap iteration is PC-ordered");
        assert_eq!(r.issue_counts.values().sum::<u64>(), r.issued);
    }
}
