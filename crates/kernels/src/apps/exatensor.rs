//! `ExaTENSOR` — `tensor_transpose`.
//!
//! Two Table 3 rows (the paper's §7.1 and Figure 8):
//!
//! 1. **Strength Reduction** (1.07× / est 1.06×): the index permutation
//!    divides by tensor dimensions with the slow software-division
//!    sequence; multiplying by a reciprocal (here: the dimensions are
//!    powers of two, so shifts/masks are exact) removes it.
//! 2. **Memory Transaction Reduction** (1.03× / est 1.05×): the per-
//!    iteration dimension/stride lookups go to global memory and the
//!    scattered data loads keep the LSU saturated; moving the tables to
//!    constant memory removes transactions (memory-throttle stalls).

use crate::data::ParamBlock;
use crate::dsl::{emit_idiv, Asm};
use crate::{App, KernelSpec, Params, Stage};
use gpa_arch::LaunchConfig;

/// Builds the ExaTENSOR app entry.
pub fn app() -> App {
    App {
        name: "ExaTENSOR",
        kernel: "tensor_transpose",
        stages: vec![
            Stage { name: "Strength Reduction", optimizer: "GPUStrengthReductionOptimizer" },
            Stage {
                name: "Memory Transaction Reduction",
                optimizer: "GPUMemoryTransactionReductionOptimizer",
            },
        ],
        build,
    }
}

const ELEMS: u32 = 8;
const DIM: u32 = 16; // inner tensor dimension (a power of two)
const LOG_BIG: u32 = 7; // scatter stride log2 (128 elements)

fn build(variant: usize, p: &Params) -> KernelSpec {
    let no_div = variant >= 1;
    let const_dims = variant >= 2;
    let mut a = Asm::module("exatensor");
    a.kernel("tensor_transpose");
    a.line("cuda2.cu", 16);
    a.global_tid();
    a.param_u64(4, 0); // src tensor
    a.param_u64(6, 8); // dst tensor
    a.param_u64(36, 24); // dims table (global)
    a.i("MOV32I R22, 0 {S:1}");
    a.i("MOV32I R17, 0 {S:1}");
    a.line("cuda2.cu", 30);
    a.label("elem_loop");
    // Linear index of this element: k-th plane, thread-major.
    a.param_u32(10, 16); // total threads
    a.i("IMAD R9, R17, R10, R0 {S:5}");
    a.i("MOV32I R11, 16 {S:1}"); // inner dimension
    a.line("cuda2.cu", 34);
    if no_div {
        // dim is a power of two: quotient and remainder are shift/mask.
        a.i(format!("SHR.U32 R12, R9, {} {{S:4}}", DIM.trailing_zeros()));
        a.i("IADD R13, R11, -1 {S:4}");
        a.i("LOP3.AND R14, R9, R13 {S:4}");
    } else {
        // q = idx / dim, r = idx − q*dim via the software-division chain.
        emit_idiv(&mut a, 12, 9, 11, 44);
        a.i("IMAD R15, R12, R11, 0 {S:5}");
        a.i("FFMA R48, R48, 0.0, 0.0 {S:4}"); // pipeline drain filler
        a.i("IADD R14, R9, 0 {S:4}");
        a.i("IMAD R14, R15, -1, R14 {S:5}"); // remainder: idx - q*dim
    }
    // Permutation-table gather: every lane reads its own entry. The
    // table is shared by all threads and never written — global memory
    // in the baseline, constant memory in the optimized variant.
    a.i("SHL R15, R14, 2 {S:4}");
    if const_dims {
        a.i("LDC.32 R21, [R15] {W:B2, S:1}");
    } else {
        a.i("LEA R24:R25, R14, R36:R37, 2 {S:2}");
        a.i("LDG.E.32 R21, [R24:R25] {W:B2, S:1}");
    }
    // Permuted offset: scatter with a large stride.
    a.i(format!("SHL R16, R21, {LOG_BIG} {{WT:[B2], S:4}}"));
    a.i("IADD R16, R16, R12 {S:4}");
    a.addr(18, 4, 16, 2);
    a.i("LDG.E.32 R20, [R18:R19] {W:B0, S:1}");
    a.i("FADD R22, R22, R20 {WT:[B0], S:4}");
    a.i("IADD R17, R17, 1 {S:4}");
    a.i(format!("ISETP.LT.AND P1, R17, {ELEMS} {{S:2}}"));
    a.i("@P1 BRA elem_loop {S:5}");
    // Linear (coalesced) store of the gathered value.
    a.addr(30, 6, 0, 2);
    a.i("STG.E.32 [R30:R31], R22 {R:B5, S:2}");
    a.i("EXIT {WT:[B5], S:1}");
    a.endfunc();
    let module = a.build();

    let blocks = p.sms * p.scale;
    let threads: u32 = 256;
    let n = blocks * threads;
    KernelSpec {
        module,
        entry: "tensor_transpose".into(),
        launch: LaunchConfig::new(blocks, threads),
        setup: Box::new(move |gpu| {
            let mut rng = crate::data::rng(0x5057_0015);
            let m = ((n as u64 * ELEMS as u64) << LOG_BIG as u64).min(1 << 24) + (1 << 16);
            let src = gpu.global_mut().alloc(4 * m.min(1 << 22));
            gpu.global_mut()
                .write_bytes(src, &crate::data::f32_bytes(&mut rng, 1 << 16, -1.0, 1.0));
            let dst = gpu.global_mut().alloc(4 * n as u64);
            // The 16-entry permutation table (scattered so lanes gather).
            let perm = gpu.global_mut().alloc(4 * DIM as u64 * 32);
            for i in 0..DIM as u64 {
                gpu.global_mut()
                    .write_u32(perm + 4 * (i * 29 % DIM as u64), ((i * 7) % DIM as u64) as u32);
            }
            let mut pb = ParamBlock::new();
            pb.push_u64(src);
            pb.push_u64(dst);
            pb.push_u32(n); // total threads @16
            pb.push_u32(0); // pad @20
            pb.push_u64(perm); // @24
            pb.finish()
        }),
        const_bank1: Some((0..DIM).flat_map(|i| ((i * 7) % DIM).to_le_bytes()).collect()),
    }
}
