//! Criterion benches for the tool's own components: simulator throughput,
//! blamer, and end-to-end advise latency. (The paper argues PC sampling's
//! post-mortem analysis is cheap — these benches quantify our analogue.)
//!
//! The `sim/*` group compares the event-driven scheduler core against the
//! dense per-cycle reference loop (`SimConfig::dense_reference`) on both
//! a real app and a long-latency-dominated kernel, plus the compiled
//! program reuse path. The `sampling/*` group measures the streaming
//! measurement layer: the default at-source aggregating `SampleSink`
//! against the old raw-buffered `Vec<RawSample>` path on a sample-heavy
//! run. Quick mode for CI: set `GPA_BENCH_SAMPLES=3`.

use criterion::{criterion_group, criterion_main, Criterion};
use gpa_arch::{ArchConfig, LatencyTable, LaunchConfig};
use gpa_core::{Advisor, ModuleBlame};
use gpa_isa::parse_module;
use gpa_kernels::apps;
use gpa_kernels::runner::{
    arch_for, launch_spec_with, launch_spec_with_sink, run_spec, sim_config,
};
use gpa_kernels::{KernelSpec, Params};
use gpa_sampling::KernelProfile;
use gpa_sim::{GpuSim, LaunchResult, RawSample, SampleSet, SimConfig};
use gpa_structure::ProgramStructure;

/// Launches a spec under the chosen scheduler core.
fn launch_with_core(spec: &KernelSpec, arch: &ArchConfig, dense: bool) -> LaunchResult {
    let cfg = SimConfig { dense_reference: dense, ..sim_config() };
    launch_spec_with(spec, arch, cfg).expect("launch")
}

fn bench_simulator(c: &mut Criterion) {
    let p = Params::test();
    let arch = arch_for(&p);
    let spec = (apps::hotspot::app().build)(0, &p);
    c.bench_function("sim/hotspot_baseline_launch", |b| {
        b.iter(|| run_spec(&spec, &arch).expect("launch"))
    });
}

/// Dense-vs-event comparison on a real app: the two cores produce
/// byte-identical results (asserted once up front), so the timing delta
/// is pure scheduler overhead.
fn bench_dense_vs_event(c: &mut Criterion) {
    let p = Params::test();
    let arch = arch_for(&p);
    let spec = (apps::hotspot::app().build)(0, &p);
    let dense = launch_with_core(&spec, &arch, true);
    let event = launch_with_core(&spec, &arch, false);
    assert_eq!(dense, event, "cores must agree before timing them");
    c.bench_function("sim/dense_vs_event/hotspot_dense", |b| {
        b.iter(|| launch_with_core(&spec, &arch, true))
    });
    c.bench_function("sim/dense_vs_event/hotspot_event", |b| {
        b.iter(|| launch_with_core(&spec, &arch, false))
    });
}

/// A serial pointer-chase: one warp, 96 dependent global loads. Nearly
/// every cycle is an idle wait on DRAM latency — the event core's best
/// case, and the dense loop's worst.
const CHASE: &str = r#"
.module chase
.kernel chase
  S2R R0, SR_TID.X {W:B0, S:1}
  MOV R2, c[0][0] {S:1}
  MOV R3, c[0][4] {S:1}
  SHL R1, R0, 2 {WT:[B0], S:2}
  IADD R2:R3, R2:R3, R1 {S:2}
  MOV32I R6, 0 {S:1}
  MOV32I R8, 0 {S:1}
loop:
  LDG.E.32 R4, [R2:R3] {W:B1, S:1}
  IADD R6, R6, R4 {WT:[B1], S:4}
  IADD R8, R8, 1 {S:4}
  ISETP.LT.AND P1, R8, 96 {S:2}
  @P1 BRA loop {S:5}
  STG.E.32 [R2:R3], R6 {R:B2, S:1}
  EXIT {WT:[B2], S:1}
.endfunc
"#;

fn bench_long_latency(c: &mut Criterion) {
    let arch = ArchConfig::small(1);
    let module = parse_module(CHASE).expect("chase kernel parses");
    let run = |dense: bool| {
        let cfg = SimConfig { dense_reference: dense, ..sim_config() };
        let mut gpu = GpuSim::new(arch.clone(), cfg);
        let buf = gpu.global_mut().alloc(4 * 32);
        let params: Vec<u8> = buf.to_le_bytes().to_vec();
        gpu.launch(&module, "chase", &LaunchConfig::new(1, 32), &params).expect("launch")
    };
    assert_eq!(run(true), run(false), "cores must agree before timing them");
    c.bench_function("sim/dense_vs_event/long_latency_dense", |b| b.iter(|| run(true)));
    c.bench_function("sim/dense_vs_event/long_latency_event", |b| b.iter(|| run(false)));
}

/// Per-launch lowering vs a compiled program reused across launches —
/// the daemon's repeat-traffic path.
fn bench_compiled_reuse(c: &mut Criterion) {
    let p = Params::test();
    let arch = arch_for(&p);
    let spec = (apps::hotspot::app().build)(0, &p);
    let mut gpu = GpuSim::new(arch.clone(), sim_config());
    if let Some(bank) = &spec.const_bank1 {
        gpu.set_const_bank(1, bank.clone());
    }
    let params = (spec.setup)(&mut gpu);
    let prog = gpu.compile(&spec.module, &spec.entry).expect("compiles");
    c.bench_function("sim/launch_relowered_each_time", |b| {
        b.iter(|| gpu.launch(&spec.module, &spec.entry, &spec.launch, &params).expect("launch"))
    });
    c.bench_function("sim/launch_compiled_reuse", |b| {
        b.iter(|| gpu.launch_compiled(&prog, &spec.launch, &params).expect("launch"))
    });
}

/// Measurement-layer overhead on a sample-heavy run: the default
/// at-source aggregating sink (`SampleSet` built during the launch, no
/// retained raw samples) against the old buffered path (collect every
/// `RawSample` in a `Vec`, aggregate afterwards). Both end in the same
/// `KernelProfile` — asserted up front — so the timing delta is pure
/// measurement-layer cost; the sink must not lose to the buffer.
fn bench_sampling_sink(c: &mut Criterion) {
    let p = Params::test();
    let arch = arch_for(&p);
    let spec = (apps::hotspot::app().build)(0, &p);
    // A tight period makes sampling a dominant cost: every 5th cycle
    // per SM takes a sample.
    let cfg = SimConfig { sampling_period: 5, ..sim_config() };
    let period = cfg.sampling_period;
    let launch = |sink: Option<&mut Vec<RawSample>>| {
        match sink {
            None => launch_spec_with(&spec, &arch, cfg.clone()),
            Some(raw) => launch_spec_with_sink(&spec, &arch, cfg.clone(), raw),
        }
        .expect("launch")
    };
    let profile_of = |set: &SampleSet, result: &LaunchResult| {
        KernelProfile::from_set(
            &spec.entry,
            &spec.module.name,
            &spec.module.arch,
            period,
            set,
            result,
        )
    };
    let streamed = launch(None);
    let mut raw = Vec::new();
    let buffered = launch(Some(&mut raw));
    assert!(streamed.samples.total_samples() > 1_000, "sample-heavy run");
    assert_eq!(
        profile_of(&streamed.samples, &streamed),
        profile_of(&SampleSet::from_raw(&raw), &buffered),
        "both measurement paths yield one profile"
    );
    c.bench_function("sampling/aggregating_sink", |b| {
        b.iter(|| {
            let r = launch(None);
            profile_of(&r.samples, &r)
        })
    });
    c.bench_function("sampling/raw_buffered", |b| {
        b.iter(|| {
            let mut raw: Vec<RawSample> = Vec::new();
            let r = launch(Some(&mut raw));
            profile_of(&SampleSet::from_raw(&raw), &r)
        })
    });
}

/// Flat memory model vs the timed hierarchy (L1/MSHR/L2 servers) on the
/// demo kernel built to saturate those servers, plus a real app where
/// the hierarchy mostly idles — the delta is the cost of carrying the
/// server state through the event core.
fn bench_flat_vs_hierarchy(c: &mut Criterion) {
    let p = Params::test();
    let flat = arch_for(&p);
    let hier = arch_for(&p).with_hierarchy();
    for (label, spec) in [
        ("membound", (apps::membound::app().build)(0, &p)),
        ("hotspot", (apps::hotspot::app().build)(0, &p)),
    ] {
        c.bench_function(&format!("sim/mem_model/{label}_flat"), |b| {
            b.iter(|| launch_spec_with(&spec, &flat, sim_config()).expect("launch"))
        });
        c.bench_function(&format!("sim/mem_model/{label}_hierarchy"), |b| {
            b.iter(|| launch_spec_with(&spec, &hier, sim_config()).expect("launch"))
        });
    }
}

fn bench_blamer(c: &mut Criterion) {
    let p = Params::test();
    let arch = arch_for(&p);
    let app = apps::bfs::app();
    let spec = (app.build)(0, &p);
    let run = run_spec(&spec, &arch).expect("launch");
    let structure = ProgramStructure::build(&spec.module);
    let lat = LatencyTable::for_arch(&arch);
    c.bench_function("blamer/bfs_module_blame", |b| {
        b.iter(|| ModuleBlame::build(&spec.module, &structure, &run.profile, &lat))
    });
}

fn bench_advisor(c: &mut Criterion) {
    let p = Params::test();
    let arch = arch_for(&p);
    let app = apps::exatensor::app();
    let spec = (app.build)(0, &p);
    let run = run_spec(&spec, &arch).expect("launch");
    let advisor = Advisor::new();
    c.bench_function("advisor/exatensor_advise", |b| {
        b.iter(|| advisor.advise(&spec.module, &run.profile, &arch))
    });
}

fn bench_static_analysis(c: &mut Criterion) {
    let p = Params::test();
    let spec = (apps::myocyte::app().build)(0, &p);
    c.bench_function("static/myocyte_program_structure", |b| {
        b.iter(|| ProgramStructure::build(&spec.module))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simulator, bench_dense_vs_event, bench_long_latency, bench_compiled_reuse,
        bench_sampling_sink, bench_flat_vs_hierarchy, bench_blamer, bench_advisor,
        bench_static_analysis
}
criterion_main!(benches);
