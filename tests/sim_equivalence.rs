//! Differential tests for the simulator's two scheduler cores: the
//! event-driven cycle-skipping core (the default) must produce results
//! **byte-identical** to the dense per-cycle reference loop
//! (`SimConfig::dense_reference`) — cycles, the full **raw** sample
//! stream (per-sample cycle, SM, scheduler, PC, stall — collected via
//! the raw-buffering sink, since the default aggregate could mask a
//! sample taken at the wrong cycle by a warp in the same state), per-PC
//! issue counts, memory/L2/i-cache counters, and per-SM stats — across
//! every app in the benchmark registry.

use gpa::arch::ArchConfig;
use gpa::kernels::runner::{arch_for, launch_spec_with, launch_spec_with_sink, sim_config};
use gpa::kernels::{all_apps, KernelSpec, Params};
use gpa::sampling::KernelProfile;
use gpa::sim::{LaunchResult, RawSample, SampleSet, SimConfig};

/// Runs one spec to completion under the given scheduler core.
fn launch_with(spec: &KernelSpec, arch: &ArchConfig, cfg: SimConfig) -> LaunchResult {
    launch_spec_with(spec, arch, cfg).expect("launch succeeds")
}

/// Like [`launch_with`], but buffering the raw sample stream.
fn launch_raw(
    spec: &KernelSpec,
    arch: &ArchConfig,
    cfg: SimConfig,
) -> (LaunchResult, Vec<RawSample>) {
    let mut raw = Vec::new();
    let result = launch_spec_with_sink(spec, arch, cfg, &mut raw).expect("launch succeeds");
    (result, raw)
}

fn cfg(dense: bool) -> SimConfig {
    SimConfig { dense_reference: dense, ..sim_config() }
}

#[test]
fn all_apps_dense_vs_event_driven_identical() {
    let p = Params::test();
    let arch = arch_for(&p);
    for app in all_apps() {
        let spec = (app.build)(0, &p);
        let dense = launch_with(&spec, &arch, cfg(true));
        let event = launch_with(&spec, &arch, cfg(false));
        // Named comparisons first so a mismatch reads well, then the
        // whole result (covers occupancy, launch, and future fields).
        assert_eq!(dense.cycles, event.cycles, "{}: cycles", app.name);
        assert_eq!(dense.issued, event.issued, "{}: issued", app.name);
        assert_eq!(dense.samples, event.samples, "{}: aggregated samples", app.name);
        assert_eq!(dense.issue_counts, event.issue_counts, "{}: issue counts", app.name);
        assert_eq!(dense.mem_transactions, event.mem_transactions, "{}: mem txns", app.name);
        assert_eq!(dense.l2_hits, event.l2_hits, "{}: L2 hits", app.name);
        assert_eq!(dense.l2_misses, event.l2_misses, "{}: L2 misses", app.name);
        assert_eq!(dense.icache_misses, event.icache_misses, "{}: icache misses", app.name);
        assert_eq!(dense.sm_stats, event.sm_stats, "{}: per-SM stats", app.name);
        assert_eq!(dense, event, "{}: full LaunchResult", app.name);
    }
}

/// The raw-stream differential: per-sample cycle/SM/scheduler identity,
/// which the aggregated `SampleSet` comparison above cannot see (two
/// cores sampling the same warp state at *different* cycles would
/// aggregate identically). Also pins the raw stream to the default
/// aggregate, and covers a nonzero sampling phase.
#[test]
fn all_apps_raw_sample_streams_identical() {
    let p = Params::test();
    let arch = arch_for(&p);
    for app in all_apps() {
        let spec = (app.build)(0, &p);
        for phase in [0, 7] {
            let with_phase = |dense: bool| SimConfig { sampling_phase: phase, ..cfg(dense) };
            let (_, dense_raw) = launch_raw(&spec, &arch, with_phase(true));
            let (_, event_raw) = launch_raw(&spec, &arch, with_phase(false));
            assert_eq!(
                dense_raw, event_raw,
                "{} (phase {phase}): raw sample streams differ",
                app.name
            );
            let aggregated = launch_with(&spec, &arch, with_phase(false));
            assert_eq!(
                SampleSet::from_raw(&event_raw),
                aggregated.samples,
                "{} (phase {phase}): raw stream aggregates to the default set",
                app.name
            );
        }
    }
}

/// The same 21-app differential with the timed memory hierarchy
/// enabled: the hierarchy's servers (L1, MSHR file, L2 queue) are part
/// of the frozen machine state, so the event core must still land on
/// byte-identical results — raw sample streams included, since the new
/// stall reasons ride in them. The demo kernel rides along as the 22nd
/// subject because it is the one built to saturate those servers.
#[test]
fn all_apps_dense_vs_event_driven_identical_with_hierarchy() {
    let p = Params::test();
    let arch = arch_for(&p).with_hierarchy();
    let specs = all_apps()
        .iter()
        .map(|app| (app.name, (app.build)(0, &p)))
        .chain([("demo/membound", (gpa::kernels::apps::membound::app().build)(0, &p))])
        .collect::<Vec<_>>();
    for (name, spec) in &specs {
        let (dense, dense_raw) = launch_raw(spec, &arch, cfg(true));
        let (event, event_raw) = launch_raw(spec, &arch, cfg(false));
        assert_eq!(dense.cycles, event.cycles, "{name}: cycles under hierarchy");
        assert_eq!(dense_raw, event_raw, "{name}: raw sample streams under hierarchy");
        assert_eq!(dense, event, "{name}: full LaunchResult under hierarchy");
    }
}

#[test]
fn aggregated_profiles_are_identical_too() {
    // Sample aggregation is deterministic, so identical raw samples must
    // yield identical profiles — the artifact the advisor actually sees.
    let p = Params::test();
    let arch = arch_for(&p);
    for app in all_apps().into_iter().take(4) {
        let spec = (app.build)(0, &p);
        let period = sim_config().sampling_period;
        let profile = |dense: bool| {
            let r = launch_with(&spec, &arch, cfg(dense));
            KernelProfile::from_launch(
                &spec.entry,
                &spec.module.name,
                &spec.module.arch,
                period,
                &r,
            )
        };
        assert_eq!(profile(true), profile(false), "{}: aggregated profile", app.name);
    }
}
