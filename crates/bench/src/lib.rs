//! Shared harness code for the table/figure reproduction binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's per-experiment index); this library holds the
//! common measure-and-advise plumbing.

use gpa_core::{report, AdviceReport, Advisor};
use gpa_kernels::runner::{arch_for, run_spec, time_spec};
use gpa_kernels::{App, Params};

/// One reproduced Table 3 row.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Application name.
    pub app: String,
    /// Kernel name.
    pub kernel: String,
    /// Optimization applied.
    pub optimization: String,
    /// Baseline cycles ("Original" column).
    pub baseline_cycles: u64,
    /// Optimized cycles.
    pub optimized_cycles: u64,
    /// Achieved speedup.
    pub achieved: f64,
    /// GPA's estimated speedup for the expected optimizer.
    pub estimated: f64,
    /// |estimated − achieved| / achieved.
    pub error: f64,
    /// Rank of the expected optimizer in the advice report (1 = top).
    pub rank: Option<usize>,
}

/// Runs all stages of one application, producing its Table 3 rows.
///
/// # Errors
///
/// Returns a message when the simulator faults on a variant.
pub fn run_app(app: &App, p: &Params) -> Result<Vec<Table3Row>, String> {
    let arch = arch_for(p);
    let advisor = Advisor::new();
    let mut rows = Vec::new();
    for (k, stage) in app.stages.iter().enumerate() {
        let base = (app.build)(k, p);
        let opt = (app.build)(k + 1, p);
        let run = run_spec(&base, &arch).map_err(|e| format!("{} v{k}: {e}", app.name))?;
        let report = advisor.advise(&base.module, &run.profile, &arch);
        let opt_cycles =
            time_spec(&opt, &arch).map_err(|e| format!("{} v{}: {e}", app.name, k + 1))?;
        let achieved = run.cycles as f64 / opt_cycles as f64;
        let item = report.item(stage.optimizer);
        let estimated = item.map_or(1.0, |i| i.estimated_speedup);
        let rank = report.rank_of(stage.optimizer);
        rows.push(Table3Row {
            app: app.name.to_string(),
            kernel: app.kernel.to_string(),
            optimization: stage.name.to_string(),
            baseline_cycles: run.cycles,
            optimized_cycles: opt_cycles,
            achieved,
            estimated,
            error: (estimated - achieved).abs() / achieved,
            rank,
        });
    }
    Ok(rows)
}

/// Advises on one variant of an app (for the report binaries).
///
/// # Errors
///
/// Returns a message when the simulator faults.
pub fn advise_variant(app: &App, variant: usize, p: &Params) -> Result<AdviceReport, String> {
    let arch = arch_for(p);
    let spec = (app.build)(variant, p);
    let run = run_spec(&spec, &arch).map_err(|e| format!("{}: {e}", app.name))?;
    Ok(Advisor::new().advise(&spec.module, &run.profile, &arch))
}

/// Prints the Table 3 header.
pub fn print_table3_header() {
    println!(
        "{:<22} {:<28} {:<28} {:>12} {:>9} {:>10} {:>7} {:>5}",
        "Application", "Kernel", "Optimization", "Original", "Achieved", "Estimated", "Error",
        "Rank"
    );
    println!("{}", "-".repeat(128));
}

/// Prints one Table 3 row.
pub fn print_table3_row(r: &Table3Row) {
    println!(
        "{:<22} {:<28} {:<28} {:>10}cy {:>8.2}x {:>9.2}x {:>6.0}% {:>5}",
        r.app,
        r.kernel,
        r.optimization,
        r.baseline_cycles,
        r.achieved,
        r.estimated,
        100.0 * r.error,
        r.rank.map_or("-".to_string(), |r| r.to_string()),
    );
}

/// Geometric mean.
pub fn geomean(xs: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0u32);
    for x in xs {
        sum += x.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (sum / n as f64).exp()
    }
}

/// Renders an advice report the way the CLI does.
pub fn render_report(r: &AdviceReport, top: usize) -> String {
    report::render(r, top)
}
