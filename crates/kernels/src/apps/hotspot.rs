//! `rodinia/hotspot` — `calculate_temp`.
//!
//! The paper's finding: the raw report shows execution-latency stalls on
//! the temperature update line; GPA attributes them to type-conversion
//! instructions — a *double* constant (`2.0`) multiplied with a 32-bit
//! float promotes the expression to 64 bits (`F2F.F64.F32` → `DMUL` →
//! `F2F.F32.F64`). Typing the constant as `2.0f` removes the chain
//! (Strength Reduction; paper: 1.15× achieved, 1.10× estimated).

use crate::data::ParamBlock;
use crate::dsl::Asm;
use crate::{App, KernelSpec, Params, Stage};
use gpa_arch::LaunchConfig;

/// Builds the hotspot app entry.
pub fn app() -> App {
    App {
        name: "rodinia/hotspot",
        kernel: "calculate_temp",
        stages: vec![Stage {
            name: "Strength Reduction",
            optimizer: "GPUStrengthReductionOptimizer",
        }],
        build,
    }
}

fn build(variant: usize, p: &Params) -> KernelSpec {
    let optimized = variant >= 1;
    let mut a = Asm::module("hotspot");
    a.kernel("calculate_temp");
    a.line("hotspot.cu", 180);
    a.global_tid();
    a.param_u64(4, 0); // temp_in
    a.param_u64(6, 8); // temp_out
    a.param_u64(8, 16); // power
    a.addr(10, 4, 0, 2);
    a.addr(12, 6, 0, 2);
    a.addr(14, 8, 0, 2);
    a.param_u32(16, 28); // iteration count
    a.i("MOV32I R17, 0 {S:1}");
    a.param_u32(18, 32); // row stride in elements
    a.i("SHL R19, R18, 2 {S:4}");
    a.line("hotspot.cu", 184);
    a.label("row_loop");
    a.i("LDG.E.32 R20, [R10:R11] {W:B0, S:1}"); // center
    a.i("LDG.E.32 R22, [R10:R11+4] {W:B1, S:1}"); // east
    a.i("LDG.E.32 R24, [R10:R11-4] {W:B2, S:1}"); // west
    a.i("LDG.E.32 R26, [R14:R15] {W:B3, S:1}"); // power
    a.line("hotspot.cu", 186);
    a.i("FADD R28, R22, R24 {WT:[B1,B2], S:4}");
    if optimized {
        // temp_t = ... 2.0f * center and 0.5f * (east+west): FP32 only.
        a.i("FMUL R34, R20, 2.0 {WT:[B0], S:4}");
        a.i("FMUL R28, R28, 0.5 {S:4}");
    } else {
        // The double constants promote both expressions to f64 and back.
        a.i("F2F.F64.F32 R30:R31, R20 {WT:[B0], S:2}");
        a.i("DMUL R32:R33, R30:R31, 2.0 {S:2}");
        a.i("F2F.F32.F64 R34, R32:R33 {S:2}");
        a.i("F2F.F64.F32 R44:R45, R28 {S:2}");
        a.i("DMUL R46:R47, R44:R45, 0.5 {S:2}");
        a.i("F2F.F32.F64 R28, R46:R47 {S:2}");
    }
    a.i("FFMA R36, R34, -1.0, R28 {S:4}");
    a.i("FADD R38, R36, R26 {WT:[B3], S:4}");
    a.i("FMUL R40, R38, c[0][24] {S:4}"); // * step_div_Cap
    a.i("FADD R42, R20, R40 {S:4}");
    a.line("hotspot.cu", 190);
    a.i("STG.E.32 [R12:R13], R42 {R:B4, S:2}");
    a.i("IADD R10:R11, R10:R11, R19 {S:2}");
    a.i("IADD R12:R13, R12:R13, R19 {S:2}");
    a.i("IADD R14:R15, R14:R15, R19 {S:2}");
    a.i("IADD R17, R17, 1 {S:4}");
    a.i("ISETP.LT.AND P0, R17, R16 {S:2}");
    a.i("@P0 BRA row_loop {S:5}");
    a.i("EXIT {WT:[B4], S:1}");
    a.endfunc();
    let module = a.build();

    let width: u32 = 256;
    let rows: u32 = 8 * p.scale;
    let blocks = p.sms;
    let threads: u32 = 256;
    let n = (blocks * threads + width * rows + 8) as u64;
    KernelSpec {
        module,
        entry: "calculate_temp".into(),
        launch: LaunchConfig::new(blocks, threads),
        setup: Box::new(move |gpu| {
            let mut rng = crate::data::rng(0x5057_0001);
            let t_in = gpu.global_mut().alloc(4 * n + 8) + 4;
            let t_out = gpu.global_mut().alloc(4 * n);
            let power = gpu.global_mut().alloc(4 * n);
            let temps = crate::data::f32_bytes(&mut rng, n as usize, 20.0, 90.0);
            let pw = crate::data::f32_bytes(&mut rng, n as usize, 0.0, 1.0);
            gpu.global_mut().write_bytes(t_in, &temps);
            gpu.global_mut().write_bytes(power, &pw);
            let mut pb = ParamBlock::new();
            pb.push_u64(t_in);
            pb.push_u64(t_out);
            pb.push_u64(power);
            pb.push_f32(0.01); // step_div_Cap @24
            pb.push_u32(rows); // @28
            pb.push_u32(width); // @32
            pb.finish()
        }),
        const_bank1: None,
    }
}
