//! Analysis jobs, their outcomes, and machine-readable rendering.

use crate::session::ModuleArtifacts;
use gpa_core::AdviceReport;
use gpa_json::Json;
use gpa_sampling::KernelProfile;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// One analysis request: an application (by registry name) and a variant
/// index (0 = baseline, `k` = first `k` Table 3 optimizations applied).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AnalysisJob {
    /// Registry name, e.g. `"rodinia/hotspot"`.
    pub app: String,
    /// Variant index.
    pub variant: usize,
}

impl AnalysisJob {
    /// A job for `app`'s `variant`.
    pub fn new(app: impl Into<String>, variant: usize) -> Self {
        AnalysisJob { app: app.into(), variant }
    }
}

impl fmt::Display for AnalysisJob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} v{}", self.app, self.variant)
    }
}

/// Everything one app-variant analysis produces.
#[derive(Clone)]
pub struct AnalysisOutcome {
    /// The job this outcome answers.
    pub job: AnalysisJob,
    /// Kernel symbol analyzed.
    pub kernel: String,
    /// The PC-sampling profile.
    pub profile: KernelProfile,
    /// Ground-truth kernel cycles.
    pub cycles: u64,
    /// The ranked advice report.
    pub report: AdviceReport,
    /// Wall-clock time of this run (simulate + profile + advise).
    pub wall: Duration,
    /// The cached module artifacts the run used (shared across variants
    /// of repeated jobs — see [`crate::Session`]).
    pub artifacts: Arc<ModuleArtifacts>,
}

impl fmt::Debug for AnalysisOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // KernelSpec's setup closure has no Debug; summarize instead.
        f.debug_struct("AnalysisOutcome")
            .field("job", &self.job)
            .field("kernel", &self.kernel)
            .field("cycles", &self.cycles)
            .field("total_samples", &self.profile.total_samples)
            .field("advice_items", &self.report.items.len())
            .field("wall", &self.wall)
            .finish_non_exhaustive()
    }
}

impl AnalysisOutcome {
    /// A machine-readable summary: identity, counters, and the ranked
    /// advice (optimizer, estimated speedup, matched ratio). This is the
    /// **v1** advice shape, kept byte-stable for existing consumers; the
    /// full structured report is [`AnalysisOutcome::to_json_v2`].
    pub fn to_json(&self) -> Json {
        let advice: Vec<Json> = self
            .report
            .items
            .iter()
            .enumerate()
            .map(|(rank, item)| {
                Json::object()
                    .with("rank", rank + 1)
                    .with("optimizer", item.optimizer())
                    .with("estimated_speedup", item.estimated_speedup)
                    .with("matched_ratio", item.matched_ratio)
            })
            .collect();
        Json::object()
            .with("app", self.job.app.clone())
            .with("variant", self.job.variant)
            .with("kernel", self.kernel.clone())
            .with("cycles", self.cycles)
            .with("total_samples", self.profile.total_samples)
            .with("issue_ratio", self.profile.issue_ratio())
            .with("wall_ms", self.wall.as_secs_f64() * 1e3)
            .with("advice", Json::Arr(advice))
    }

    /// The outcome with its advice as the full machine-readable **v2**
    /// report ([`gpa_core::schema`]): identity and counters as in
    /// [`AnalysisOutcome::to_json`], plus the versioned `report`
    /// document instead of the flat `advice` summary.
    pub fn to_json_v2(&self) -> Json {
        Json::object()
            .with("app", self.job.app.clone())
            .with("variant", self.job.variant)
            .with("kernel", self.kernel.clone())
            .with("cycles", self.cycles)
            .with("total_samples", self.profile.total_samples)
            .with("issue_ratio", self.profile.issue_ratio())
            .with("wall_ms", self.wall.as_secs_f64() * 1e3)
            .with("report", gpa_core::schema::report_to_json(&self.report))
    }
}

/// A failed analysis: which job, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisError {
    /// The failing job.
    pub job: AnalysisJob,
    /// Human-readable cause (unknown app, bad variant, simulator fault).
    pub message: String,
}

impl AnalysisError {
    pub(crate) fn new(job: &AnalysisJob, message: impl Into<String>) -> Self {
        AnalysisError { job: job.clone(), message: message.into() }
    }

    /// A machine-readable rendering, shaped like a failed
    /// [`AnalysisOutcome::to_json`].
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("app", self.job.app.clone())
            .with("variant", self.job.variant)
            .with("error", self.message.clone())
    }
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} v{}: {}", self.job.app, self.job.variant, self.message)
    }
}

impl std::error::Error for AnalysisError {}
