//! Reproduces **Figure 1**: the PC-sampling mental model — a timeline of
//! samples on one SM classified as active/latency/stall samples.

use gpa_arch::{ArchConfig, LaunchConfig};
use gpa_isa::parse_module;
use gpa_sim::{GpuSim, RawSample, SimConfig};

fn main() {
    let m = parse_module(
        r#"
.module fig1
.kernel k
  S2R R0, SR_TID.X {W:B0, S:1}
  MOV R2, c[0][0] {S:1}
  MOV R3, c[0][4] {S:1}
  SHL R1, R0, 2 {WT:[B0], S:2}
  IADD R2:R3, R2:R3, R1 {S:2}
loop:
  LDG.E.32 R4, [R2:R3] {W:B1, S:1}
  IADD R5, R4, 1 {WT:[B1], S:4}
  STG.E.32 [R2:R3], R5 {R:B2, S:1}
  IADD R6, R6, 1 {S:4}
  ISETP.LT.AND P0, R6, 24 {S:2}
  @P0 BRA loop {WT:[B2], S:5}
  EXIT
.endfunc
"#,
    )
    .expect("parses");
    let cfg = SimConfig { sampling_period: 64, ..SimConfig::default() }; // N = 64 cycles
    let mut gpu = GpuSim::new(ArchConfig::small(1), cfg);
    let buf = gpu.global_mut().alloc(4 * 128);
    let params: Vec<u8> = buf.to_le_bytes().to_vec();
    // Per-sample timelines need the raw stream: collect through the
    // raw-buffering sink instead of the default aggregating one.
    let mut samples: Vec<RawSample> = Vec::new();
    gpu.launch_with_sink(&m, "k", &LaunchConfig::new(2, 64), &params, &mut samples).expect("runs");

    println!("Figure 1 — PC sampling on one SM (period N = 64 cycles)\n");
    println!("{:<8} {:<10} {:<10} {:<18} pc", "cycle", "scheduler", "class", "stall reason");
    for s in samples.iter().take(16) {
        let class = if s.scheduler_active { "active" } else { "latency" };
        println!(
            "{:<8} {:<10} {:<10} {:<18} {:#x}",
            s.cycle,
            s.scheduler,
            class,
            s.stall.name(),
            s.pc
        );
    }
    let active = samples.iter().filter(|s| s.scheduler_active).count();
    let latency = samples.len() - active;
    let stalls = samples.iter().filter(|s| s.stall.is_stall()).count();
    println!(
        "\ntotals: {} samples = {} active + {} latency; {} are stall samples",
        samples.len(),
        active,
        latency,
        stalls
    );
    println!(
        "stall ratio {:.2}, active ratio {:.2}",
        latency as f64 / samples.len() as f64,
        active as f64 / samples.len() as f64
    );
}
