//! A std-only stand-in for `criterion`.
//!
//! The build environment has no network access, so the workspace vendors
//! a tiny timing harness with the criterion surface the benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros. It reports
//! min/mean/max wall time per iteration — no statistics engine, HTML
//! reports or outlier analysis.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value pass-through.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// One benchmark's measurement loop.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call outside the measurement.
        black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

/// The harness configuration and runner.
pub struct Criterion {
    sample_size: usize,
    /// Samples forced via `GPA_BENCH_SAMPLES` (quick mode for CI perf
    /// smoke runs); wins over in-code [`Criterion::sample_size`] calls.
    env_samples: Option<usize>,
}

impl Default for Criterion {
    fn default() -> Self {
        let env_samples = std::env::var("GPA_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|n| n.max(1));
        Criterion { sample_size: 20, env_samples }
    }
}

impl Criterion {
    /// Sets samples per benchmark (overridden by `GPA_BENCH_SAMPLES`).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark and prints its timing line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let sample_size = self.env_samples.unwrap_or(self.sample_size);
        let mut b = Bencher { samples: Vec::new(), sample_size };
        f(&mut b);
        if b.samples.is_empty() {
            println!("{name:<44} (no samples)");
            return self;
        }
        let total: Duration = b.samples.iter().sum();
        let mean = total / b.samples.len() as u32;
        let min = *b.samples.iter().min().expect("non-empty");
        let max = *b.samples.iter().max().expect("non-empty");
        println!(
            "{name:<44} time: [{} {} {}]  ({} samples)",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max),
            b.samples.len(),
        );
        self
    }
}

/// Human units, criterion-style.
fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        c.bench_function("spin", |b| b.iter(|| black_box(3u64).pow(7)));
    }

    criterion_group!(benches, spin);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn duration_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
