//! The content-addressed report store: an in-memory LRU cache of
//! response bodies keyed by request fingerprint, with an optional
//! on-disk second tier.
//!
//! Memory is bounded (LRU eviction at `capacity` entries); the disk
//! tier, when enabled, is append-only — evicted entries stay on disk
//! and are re-admitted to memory on the next request, so a restarted
//! daemon warms up from its persist directory instead of re-simulating.
//!
//! In cluster mode the store is also the replication source: an
//! [insert hook](ReportStore::set_insert_hook) observes every *computed*
//! admission so the daemon can copy hot entries to the owning shard's
//! ring successor, while [`ReportStore::insert_replica`] admits copies
//! *received* from a peer without re-firing the hook (replicas must not
//! cascade around the ring).

use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Observer of computed-body admissions (`(key, body)`), used to drive
/// replication to the ring successor.
pub type InsertHook = Box<dyn Fn(&str, &str) + Send + Sync>;

/// FNV-1a 64-bit over the canonical request key: the content address.
pub fn fingerprint(key: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

struct Entry {
    last_used: u64,
    /// The full canonical key, kept (in memory and on disk) so a
    /// fingerprint collision reads as a miss instead of silently
    /// serving another request's report.
    key: String,
    body: Arc<str>,
}

struct Inner {
    map: HashMap<u64, Entry>,
    tick: u64,
}

/// A snapshot of the store's counters (for `status` responses and
/// tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Entries currently in memory.
    pub entries: usize,
    /// Memory capacity (entries).
    pub capacity: usize,
    /// Requests answered from the store (memory or disk).
    pub hits: u64,
    /// Of those, answered from the disk tier.
    pub disk_hits: u64,
    /// Requests that had to be computed.
    pub misses: u64,
    /// Entries evicted from memory under LRU pressure.
    pub evictions: u64,
    /// Failed best-effort disk writes.
    pub persist_errors: u64,
}

/// The store itself. All methods take `&self`; share it behind an
/// [`Arc`] (the daemon does).
pub struct ReportStore {
    inner: Mutex<Inner>,
    capacity: usize,
    persist_dir: Option<PathBuf>,
    /// Fires on every computed-body [`ReportStore::insert`] (but never
    /// on [`ReportStore::insert_replica`]): the replication tap.
    insert_hook: OnceLock<InsertHook>,
    hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    persist_errors: AtomicU64,
}

impl ReportStore {
    /// A store holding up to `capacity` bodies in memory (minimum 1),
    /// persisting to `persist_dir` when given.
    ///
    /// # Errors
    ///
    /// When the persist directory cannot be created.
    pub fn new(capacity: usize, persist_dir: Option<PathBuf>) -> io::Result<Self> {
        if let Some(dir) = &persist_dir {
            std::fs::create_dir_all(dir)?;
        }
        Ok(ReportStore {
            inner: Mutex::new(Inner { map: HashMap::new(), tick: 0 }),
            capacity: capacity.max(1),
            persist_dir,
            insert_hook: OnceLock::new(),
            hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            persist_errors: AtomicU64::new(0),
        })
    }

    fn disk_path(&self, hash: u64) -> Option<PathBuf> {
        self.persist_dir.as_ref().map(|d| d.join(format!("{hash:016x}.json")))
    }

    /// Looks up a body by canonical key, checking memory first and then
    /// the disk tier. A disk hit is re-admitted to memory. An entry
    /// whose stored key differs (64-bit fingerprint collision) is a
    /// miss, never a wrong answer.
    pub fn get(&self, key: &str) -> Option<Arc<str>> {
        let hash = fingerprint(key);
        {
            let mut inner = self.inner.lock().expect("store lock");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.map.get_mut(&hash) {
                if entry.key == key {
                    entry.last_used = tick;
                    let body = Arc::clone(&entry.body);
                    drop(inner);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Some(body);
                }
            }
        }
        if let Some(path) = self.disk_path(hash) {
            if let Ok(text) = std::fs::read_to_string(&path) {
                // Files hold `key\n body`; trust but verify — a corrupt
                // file or a colliding key is a miss, not a garbage
                // response. (Keys never contain a raw newline: they are
                // built from op names, registry names and compact JSON.)
                if let Some((stored_key, body)) = text.split_once('\n') {
                    if stored_key == key && gpa_json::Json::parse(body).is_ok() {
                        let body = self.admit(hash, key, body);
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        self.disk_hits.fetch_add(1, Ordering::Relaxed);
                        return Some(body);
                    }
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Installs the replication tap: called once at daemon startup
    /// (before any traffic) in cluster mode. Later calls are ignored.
    pub fn set_insert_hook(&self, hook: impl Fn(&str, &str) + Send + Sync + 'static) {
        let _ = self.insert_hook.set(Box::new(hook));
    }

    /// Inserts a computed body, persisting it when the disk tier is
    /// enabled and firing the [replication hook]. Returns the stored
    /// (shared) body.
    ///
    /// [replication hook]: ReportStore::set_insert_hook
    pub fn insert(&self, key: &str, body: &str) -> Arc<str> {
        let shared = self.admit_and_persist(key, body);
        if let Some(hook) = self.insert_hook.get() {
            hook(key, body);
        }
        shared
    }

    /// Admits a body *replicated from a peer* (or warmed from one):
    /// identical to [`ReportStore::insert`] — memory and disk tier —
    /// except the replication hook does not fire, so copies never
    /// cascade around the ring.
    pub fn insert_replica(&self, key: &str, body: &str) -> Arc<str> {
        self.admit_and_persist(key, body)
    }

    fn admit_and_persist(&self, key: &str, body: &str) -> Arc<str> {
        let hash = fingerprint(key);
        if let Some(path) = self.disk_path(hash) {
            if std::fs::write(&path, format!("{key}\n{body}")).is_err() {
                self.persist_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.admit(hash, key, body)
    }

    /// Puts a body into memory, evicting the least-recently-used
    /// entries beyond capacity.
    fn admit(&self, hash: u64, key: &str, body: &str) -> Arc<str> {
        let shared: Arc<str> = Arc::from(body);
        let mut inner = self.inner.lock().expect("store lock");
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(
            hash,
            Entry { last_used: tick, key: key.to_string(), body: Arc::clone(&shared) },
        );
        while inner.map.len() > self.capacity {
            let oldest = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(h, _)| *h)
                .expect("non-empty map");
            inner.map.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        shared
    }

    /// A `(key, body)` snapshot of the memory tier — what a membership
    /// handoff scans to ship remapped entries to their new owner. The
    /// bodies are `Arc` clones, so the snapshot is cheap and the lock
    /// is held only for the copy.
    pub fn entries(&self) -> Vec<(String, Arc<str>)> {
        self.inner
            .lock()
            .expect("store lock")
            .map
            .values()
            .map(|entry| (entry.key.clone(), Arc::clone(&entry.body)))
            .collect()
    }

    /// Entries currently held in memory.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("store lock").map.len()
    }

    /// Whether the memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A counters snapshot.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            entries: self.len(),
            capacity: self.capacity,
            hits: self.hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            persist_errors: self.persist_errors.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_counters() {
        let s = ReportStore::new(8, None).unwrap();
        assert!(s.get("a").is_none());
        s.insert("a", "{\"v\":1}");
        assert_eq!(s.get("a").unwrap().as_ref(), "{\"v\":1}");
        let st = s.stats();
        assert_eq!((st.hits, st.misses, st.entries), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let s = ReportStore::new(2, None).unwrap();
        s.insert("a", "1");
        s.insert("b", "2");
        assert!(s.get("a").is_some(), "touch `a` so `b` is coldest");
        s.insert("c", "3");
        assert_eq!(s.len(), 2);
        assert!(s.get("b").is_none(), "`b` was least recently used");
        assert!(s.get("a").is_some());
        assert!(s.get("c").is_some());
        assert_eq!(s.stats().evictions, 1);
    }

    #[test]
    fn capacity_has_a_floor_of_one() {
        let s = ReportStore::new(0, None).unwrap();
        s.insert("a", "1");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn disk_tier_survives_a_new_store() {
        let dir = std::env::temp_dir().join(format!(
            "gpa-store-test-{}-{:x}",
            std::process::id(),
            fingerprint("disk")
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let s = ReportStore::new(4, Some(dir.clone())).unwrap();
            s.insert("k", "{\"v\":42}");
        }
        let s2 = ReportStore::new(4, Some(dir.clone())).unwrap();
        assert!(s2.is_empty(), "memory tier starts cold");
        assert_eq!(s2.get("k").unwrap().as_ref(), "{\"v\":42}", "warmed from disk");
        let st = s2.stats();
        assert_eq!((st.hits, st.disk_hits, st.entries), (1, 1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entries_are_misses() {
        let dir = std::env::temp_dir().join(format!(
            "gpa-store-test-{}-{:x}",
            std::process::id(),
            fingerprint("corrupt")
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let s = ReportStore::new(4, Some(dir.clone())).unwrap();
        std::fs::write(dir.join(format!("{:016x}.json", fingerprint("bad"))), "not json").unwrap();
        assert!(s.get("bad").is_none());
        // A file whose stored key differs (fingerprint collision, or a
        // tampered store) must read as a miss too.
        std::fs::write(
            dir.join(format!("{:016x}.json", fingerprint("mine"))),
            "someone-elses-key\n{\"v\":1}",
        )
        .unwrap();
        assert!(s.get("mine").is_none(), "colliding disk key is not served");
        assert_eq!(s.stats().misses, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
