//! A std-only stand-in for `rayon`.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of the rayon API the analysis pipeline uses: `par_iter()`
//! on slices, `map`, and `collect::<Vec<_>>()` with **index-stable
//! output ordering** (result `i` always corresponds to input `i`, exactly
//! like real rayon's indexed collect).
//!
//! Scheduling is a shared atomic work counter over scoped threads — not
//! work stealing, but with one queue pop per item it load-balances
//! uneven items (simulator runs vary by orders of magnitude) just as
//! well for this workload shape.

use std::sync::atomic::{AtomicUsize, Ordering};

/// The worker count: `RAYON_NUM_THREADS` if set (0 = default), else the
/// host's available parallelism.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `f` over every item on the worker pool, returning results in
/// input order. The core primitive behind the iterator adapters.
pub fn parallel_map<'a, T: Sync, R: Send>(
    items: &'a [T],
    f: impl Fn(usize, &'a T) -> R + Sync,
) -> Vec<R> {
    let n = items.len();
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut parts: Vec<Vec<(usize, R)>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            parts.push(h.join().expect("rayon-shim worker panicked"));
        }
    });
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in parts.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots.into_iter().map(|s| s.expect("every index produced")).collect()
}

/// A parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// A mapped parallel iterator.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Applies `f` to every item in parallel.
    pub fn map<R, F: Fn(&'a T) -> R + Sync>(self, f: F) -> ParMap<'a, T, F> {
        ParMap { items: self.items, f }
    }
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParMap<'a, T, F> {
    /// Runs the map on the pool and collects in input order.
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        C::from_ordered(parallel_map(self.items, |_, t| (self.f)(t)))
    }
}

/// Collection types a parallel iterator can collect into.
pub trait FromParallelIterator<R> {
    /// Builds the collection from index-ordered results.
    fn from_ordered(items: Vec<R>) -> Self;
}

impl<R> FromParallelIterator<R> for Vec<R> {
    fn from_ordered(items: Vec<R>) -> Self {
        items
    }
}

/// Slice-side entry points, mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// The item type.
    type Item: 'a;
    /// Returns a parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn collect_preserves_input_order() {
        let xs: Vec<u64> = (0..257).collect();
        let ys: Vec<u64> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(ys, xs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_work_still_ordered() {
        let xs: Vec<usize> = (0..64).collect();
        let ys: Vec<usize> = xs
            .par_iter()
            .map(|&x| {
                // Skew the work so late indices finish first; fold the
                // busy-work into the result so it cannot be optimized out.
                let mut acc = 0usize;
                for i in 0..(64 - x) * 10_000 {
                    acc = acc.wrapping_add(i);
                }
                x + usize::from(std::hint::black_box(acc) == usize::MAX)
            })
            .collect();
        assert_eq!(ys, xs);
    }

    #[test]
    fn empty_input() {
        let xs: Vec<u32> = Vec::new();
        let ys: Vec<u32> = xs.par_iter().map(|x| x + 1).collect();
        assert!(ys.is_empty());
    }
}
