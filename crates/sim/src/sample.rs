//! Streaming sample collection: the [`SampleSink`] the scheduler emits
//! into, and the columnar [`SampleSet`] the default sink aggregates.
//!
//! The measurement layer used to buffer every [`RawSample`] in a `Vec`
//! and aggregate once at the end — O(samples) memory on long kernels.
//! Samples now stream out of the timing loop through a [`SampleSink`];
//! the default sink is a [`SampleSet`] that aggregates **at the source**
//! into per-PC counters (split by stall reason × active/latency) plus
//! the kernel totals `T`/`A`/`L` of the paper's estimators, so peak
//! memory scales with the number of *distinct sampled PCs* (bounded by
//! program size), not with the sample count. A plain `Vec<RawSample>`
//! still implements [`SampleSink`] for tests, figures, and differential
//! checks against the buffered path.

use crate::machine::RawSample;
use crate::stall::StallReason;

/// Number of stall-reason counters per PC (one per [`StallReason`]).
pub const N_REASONS: usize = StallReason::ALL.len();

/// Where the scheduler's PC samples go.
///
/// Implementations must be order-insensitive in their *final state* only
/// if they aggregate; the simulator emits samples in a deterministic
/// order (cycle-major, SM-major, scheduler-major), so a raw-collecting
/// sink observes a reproducible stream.
pub trait SampleSink {
    /// Accepts one sample.
    fn record(&mut self, sample: RawSample);
}

/// The raw-collecting sink: every sample, in emission order. Memory is
/// O(samples) — use it for tests, per-sample inspection (Figure 1), and
/// the sink-vs-buffered differential checks, not for production paths.
impl SampleSink for Vec<RawSample> {
    fn record(&mut self, sample: RawSample) {
        self.push(sample);
    }
}

/// Columnar per-PC sample statistics, aggregated at the source.
///
/// Three parallel columns keyed by a sorted PC list: all samples by
/// stall reason, latency samples (scheduler issued nothing) by stall
/// reason, plus the kernel totals `T` (total) and `A` (active); `L`
/// is derived (`T − A`). Aggregating two streams of the same launch
/// yields the same set regardless of interleaving — counters are
/// commutative — which is what makes multi-launch merging sound.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SampleSet {
    /// Sampled PCs, sorted ascending (the column key).
    pcs: Vec<u64>,
    /// All samples at `pcs[i]`, indexed by [`StallReason::code`].
    by_reason: Vec<[u64; N_REASONS]>,
    /// Latency samples at `pcs[i]`, indexed by [`StallReason::code`].
    latency_by_reason: Vec<[u64; N_REASONS]>,
    /// Kernel total sample count `T`.
    total_samples: u64,
    /// Kernel active sample count `A`.
    active_samples: u64,
}

impl SampleSet {
    /// An empty set.
    pub fn new() -> Self {
        SampleSet::default()
    }

    /// Aggregates a buffered sample stream (the old measurement path,
    /// kept for differential checks: feeding the raw stream through here
    /// must equal the set the default sink built incrementally).
    pub fn from_raw(samples: &[RawSample]) -> Self {
        let mut set = SampleSet::new();
        for &s in samples {
            set.record(s);
        }
        set
    }

    /// Column index for `pc`, inserting a zeroed row if unseen. The PC
    /// list stays sorted at all times, so lookups are binary searches
    /// and the set is always in canonical (comparable) form.
    fn slot(&mut self, pc: u64) -> usize {
        let i = self.pcs.partition_point(|&p| p < pc);
        if self.pcs.get(i) != Some(&pc) {
            self.pcs.insert(i, pc);
            self.by_reason.insert(i, [0; N_REASONS]);
            self.latency_by_reason.insert(i, [0; N_REASONS]);
        }
        i
    }

    /// Number of distinct sampled PCs.
    pub fn num_pcs(&self) -> usize {
        self.pcs.len()
    }

    /// Whether the set holds no samples at all.
    pub fn is_empty(&self) -> bool {
        self.total_samples == 0
    }

    /// Total samples `T`.
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }

    /// Active samples `A` (the sampled scheduler issued that cycle).
    pub fn active_samples(&self) -> u64 {
        self.active_samples
    }

    /// Latency samples `L = T − A`.
    pub fn latency_samples(&self) -> u64 {
        self.total_samples - self.active_samples
    }

    /// Stall samples (everything but `Selected`).
    pub fn stall_samples(&self) -> u64 {
        self.total_samples - self.reason_total(StallReason::Selected)
    }

    /// Counters for one PC: `(all samples, latency samples)` by reason.
    pub fn pc(&self, pc: u64) -> Option<(&[u64; N_REASONS], &[u64; N_REASONS])> {
        let i = self.pcs.binary_search(&pc).ok()?;
        Some((&self.by_reason[i], &self.latency_by_reason[i]))
    }

    /// Iterates `(pc, all-by-reason, latency-by-reason)` in PC order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[u64; N_REASONS], &[u64; N_REASONS])> {
        self.pcs
            .iter()
            .zip(self.by_reason.iter().zip(self.latency_by_reason.iter()))
            .map(|(&pc, (by, lat))| (pc, by, lat))
    }

    /// Total samples with the given stall reason, across all PCs.
    pub fn reason_total(&self, r: StallReason) -> u64 {
        let code = r.code() as usize;
        self.by_reason.iter().map(|row| row[code]).sum()
    }

    /// Latency samples with the given stall reason, across all PCs.
    pub fn latency_reason_total(&self, r: StallReason) -> u64 {
        let code = r.code() as usize;
        self.latency_by_reason.iter().map(|row| row[code]).sum()
    }
}

/// The default, at-source aggregating sink.
impl SampleSink for SampleSet {
    fn record(&mut self, sample: RawSample) {
        let code = sample.stall.code() as usize;
        let i = self.slot(sample.pc);
        self.by_reason[i][code] += 1;
        if !sample.scheduler_active {
            self.latency_by_reason[i][code] += 1;
        }
        self.total_samples += 1;
        if sample.scheduler_active {
            self.active_samples += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(pc: u64, stall: StallReason, active: bool) -> RawSample {
        RawSample { sm: 0, scheduler: 0, cycle: 0, pc, stall, scheduler_active: active }
    }

    #[test]
    fn aggregation_counts_match_the_stream() {
        let stream = vec![
            sample(0x20, StallReason::MemoryDependency, false),
            sample(0x10, StallReason::Selected, true),
            sample(0x20, StallReason::MemoryDependency, true),
            sample(0x30, StallReason::Synchronization, false),
        ];
        let set = SampleSet::from_raw(&stream);
        assert_eq!(set.total_samples(), 4);
        assert_eq!(set.active_samples(), 2);
        assert_eq!(set.latency_samples(), 2);
        assert_eq!(set.stall_samples(), 3);
        assert_eq!(set.num_pcs(), 3);
        assert_eq!(set.reason_total(StallReason::MemoryDependency), 2);
        assert_eq!(set.latency_reason_total(StallReason::MemoryDependency), 1);
        let (by, lat) = set.pc(0x20).unwrap();
        assert_eq!(by[StallReason::MemoryDependency.code() as usize], 2);
        assert_eq!(lat[StallReason::MemoryDependency.code() as usize], 1);
        assert!(set.pc(0x40).is_none());
    }

    #[test]
    fn pcs_iterate_sorted_regardless_of_arrival_order() {
        let shuffled = vec![
            sample(0x30, StallReason::Selected, true),
            sample(0x10, StallReason::Selected, true),
            sample(0x20, StallReason::Selected, true),
            sample(0x10, StallReason::Selected, true),
        ];
        let set = SampleSet::from_raw(&shuffled);
        let pcs: Vec<u64> = set.iter().map(|(pc, _, _)| pc).collect();
        assert_eq!(pcs, vec![0x10, 0x20, 0x30]);
    }

    #[test]
    fn interleaving_does_not_change_the_set() {
        let a = sample(0x10, StallReason::MemoryDependency, false);
        let b = sample(0x20, StallReason::Selected, true);
        assert_eq!(SampleSet::from_raw(&[a, b, a]), SampleSet::from_raw(&[a, a, b]));
    }

    #[test]
    fn empty_set_is_safe() {
        let set = SampleSet::new();
        assert!(set.is_empty());
        assert_eq!(set.latency_samples(), 0);
        assert_eq!(set.stall_samples(), 0);
        assert_eq!(set.iter().count(), 0);
    }

    #[test]
    fn vec_sink_preserves_the_raw_stream() {
        let mut raw: Vec<RawSample> = Vec::new();
        let s1 = sample(0x10, StallReason::Selected, true);
        let s2 = sample(0x20, StallReason::PipeBusy, false);
        raw.record(s1);
        raw.record(s2);
        assert_eq!(raw, vec![s1, s2]);
    }
}
