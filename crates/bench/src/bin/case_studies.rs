//! Reproduces the paper's **Section 7 case studies**: the staged
//! optimization sequences on ExaTENSOR, Quicksilver, PeleC, and Minimod,
//! printing the top advice at each stage and the speedup of applying it.

use gpa_bench::{advise_variant, print_table3_header, print_table3_row, run_app};
use gpa_kernels::{apps, Params};

fn main() {
    let p = Params::full();
    let studies =
        [apps::exatensor::app(), apps::quicksilver::app(), apps::pelec::app(), apps::minimod::app()];
    print_table3_header();
    for app in &studies {
        match run_app(app, &p) {
            Ok(rows) => rows.iter().for_each(print_table3_row),
            Err(e) => println!("ERROR: {e}"),
        }
    }
    println!("\nTop advice per stage:");
    for app in &studies {
        for v in 0..app.stages.len() {
            if let Ok(report) = advise_variant(app, v, &p) {
                if let Some(top) = report.top() {
                    println!(
                        "  {} (variant {v}): {} — estimated {:.2}x",
                        app.name, top.optimizer, top.estimated_speedup
                    );
                }
            }
        }
    }
}
