//! Reproduces **Figure 5**: the detailed dependency-stall classification,
//! plus the measured per-class blame shares on a real kernel profile.

use gpa_core::blamer::coverage::detail_shares;
use gpa_core::blamer::DetailedReason;
use gpa_kernels::apps;
use gpa_pipeline::{AnalysisJob, Session};

fn main() {
    println!("Figure 5 — detailed stall classification\n");
    for d in DetailedReason::ALL {
        println!("  {:<32} refines {}", d.to_string(), d.base());
    }
    // Measure the shares on the Quicksilver baseline (local-memory spills
    // plus arithmetic and global dependencies).
    let session = Session::test();
    let app = apps::quicksilver::app();
    let blame = session.blame_one(&AnalysisJob::new(app.name, 0)).expect("runs");
    println!("\nblamed-stall shares on Quicksilver (baseline):");
    for (d, share) in detail_shares(&blame) {
        println!("  {:<32} {:>5.1}%", d.to_string(), 100.0 * share);
    }
}
