//! A small assembly-emission DSL.
//!
//! Kernels are written as assembly text (readable, diffable against their
//! optimized variants); this builder handles the repetitive parts:
//! module/function framing, label generation, the global-thread-id
//! prologue, parameter loads, and the final `ptxas`-style stall-count
//! scheduling pass.

use gpa_arch::{schedule::assign_stall_counts, ArchConfig, LatencyTable};
use gpa_isa::{parse_module, Module};
use std::fmt::Write;

/// Incremental assembly text builder.
#[derive(Debug)]
pub struct Asm {
    text: String,
    labels: u32,
}

impl Asm {
    /// Starts a module.
    pub fn module(name: &str) -> Self {
        let mut a = Asm { text: String::new(), labels: 0 };
        let _ = writeln!(a.text, ".module {name}");
        a
    }

    /// Begins a global kernel.
    pub fn kernel(&mut self, name: &str) -> &mut Self {
        let _ = writeln!(self.text, ".kernel {name}");
        self
    }

    /// Begins a device function.
    pub fn func(&mut self, name: &str) -> &mut Self {
        let _ = writeln!(self.text, ".func {name}");
        self
    }

    /// Ends the current function.
    pub fn endfunc(&mut self) -> &mut Self {
        let _ = writeln!(self.text, ".endfunc");
        self
    }

    /// Emits a `.line` directive.
    pub fn line(&mut self, file: &str, line: u32) -> &mut Self {
        let _ = writeln!(self.text, ".line {file} {line}");
        self
    }

    /// Emits `.inline push`.
    pub fn inline_push(&mut self, callee: &str, file: &str, line: u32) -> &mut Self {
        let _ = writeln!(self.text, ".inline push {callee} {file} {line}");
        self
    }

    /// Emits `.inline pop`.
    pub fn inline_pop(&mut self) -> &mut Self {
        let _ = writeln!(self.text, ".inline pop");
        self
    }

    /// Emits one instruction line.
    pub fn i(&mut self, text: impl AsRef<str>) -> &mut Self {
        let _ = writeln!(self.text, "  {}", text.as_ref());
        self
    }

    /// Emits a label definition.
    pub fn label(&mut self, name: &str) -> &mut Self {
        let _ = writeln!(self.text, "{name}:");
        self
    }

    /// Returns a fresh unique label name.
    pub fn fresh_label(&mut self, stem: &str) -> String {
        self.labels += 1;
        format!("{stem}_{}", self.labels)
    }

    /// Standard prologue: R0 = global thread id (ctaid*ntid + tid).
    /// Clobbers R2, R3.
    pub fn global_tid(&mut self) -> &mut Self {
        self.i("S2R R0, SR_TID.X {W:B0, S:1}")
            .i("S2R R2, SR_CTAID.X {W:B1, S:1}")
            .i("S2R R3, SR_NTID.X {W:B2, S:1}")
            .i("IMAD R0, R2, R3, R0 {WT:[B0,B1,B2], S:5}")
    }

    /// Loads the 64-bit parameter at byte offset `off` into `Rlo:Rlo+1`.
    pub fn param_u64(&mut self, rlo: u8, off: u32) -> &mut Self {
        self.i(format!("MOV R{rlo}, c[0][{off}] {{S:1}}"));
        self.i(format!("MOV R{}, c[0][{}] {{S:1}}", rlo + 1, off + 4))
    }

    /// Loads the 32-bit parameter at byte offset `off` into `R{r}`.
    pub fn param_u32(&mut self, r: u8, off: u32) -> &mut Self {
        self.i(format!("MOV R{r}, c[0][{off}] {{S:1}}"))
    }

    /// `Rdst:Rdst+1 = Rbase:Rbase+1 + (Ridx << shift)` — array element
    /// address.
    pub fn addr(&mut self, rdst: u8, rbase: u8, ridx: u8, shift: u8) -> &mut Self {
        self.i(format!(
            "LEA R{rdst}:R{}, R{ridx}, R{rbase}:R{}, {shift} {{S:2}}",
            rdst + 1,
            rbase + 1
        ))
    }

    /// The accumulated assembly text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Parses, links, and schedules the module (panics on malformed
    /// kernels — these are compiled-in test programs).
    pub fn build(self) -> Module {
        let mut module = parse_module(&self.text)
            .unwrap_or_else(|e| panic!("kernel assembly error: {e}\n{}", self.text));
        let lat = LatencyTable::for_arch(&ArchConfig::volta_v100());
        for f in &mut module.functions {
            assign_stall_counts(f, &lat);
        }
        module
    }
}

/// Emits the ~8-instruction software integer-division sequence
/// `Rq = Rx / Rd` (the pattern `nvcc` generates, and the ExaTENSOR
/// strength-reduction target). Clobbers `Rt..Rt+3`.
pub fn emit_idiv(a: &mut Asm, rq: u8, rx: u8, rd: u8, rt: u8) {
    a.i(format!("I2F.F32 R{rt}, R{rx} {{S:2}}"));
    a.i(format!("I2F.F32 R{}, R{rd} {{S:2}}", rt + 1));
    a.i(format!("MUFU.RCP R{}, R{} {{W:B5, S:1}}", rt + 2, rt + 1));
    a.i(format!("FMUL R{}, R{rt}, R{} {{WT:[B5], S:2}}", rt + 3, rt + 2));
    a.i(format!("F2I.S32.F32 R{rq}, R{} {{S:2}}", rt + 3));
    // One Newton correction step: q -= (q*d > x).
    a.i(format!("IMAD R{rt}, R{rq}, R{rd}, 0 {{S:2}}"));
    a.i(format!("ISETP.GT.AND P6, R{rt}, R{rx} {{S:2}}"));
    a.i(format!("@P6 IADD R{rq}, R{rq}, -1 {{S:2}}"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_arch::LaunchConfig;
    use gpa_sim::{GpuSim, SimConfig};

    #[test]
    fn builder_produces_runnable_module() {
        let mut a = Asm::module("t");
        a.kernel("k");
        a.global_tid();
        a.param_u64(4, 0);
        a.addr(6, 4, 0, 2);
        a.i("MOV32I R8, 41 {S:1}");
        a.i("IADD R8, R8, 1 {S:4}");
        a.i("STG.E.32 [R6:R7], R8 {R:B3, S:1}");
        a.i("EXIT {WT:[B3], S:1}");
        a.endfunc();
        let m = a.build();
        let mut gpu = GpuSim::new(gpa_arch::ArchConfig::small(1), SimConfig::default());
        let buf = gpu.global_mut().alloc(4 * 64);
        let params: Vec<u8> = buf.to_le_bytes().to_vec();
        gpu.launch(&m, "k", &LaunchConfig::new(2, 32), &params).unwrap();
        for i in 0..64 {
            assert_eq!(gpu.global().read_u32(buf + 4 * i), 42);
        }
    }

    #[test]
    fn idiv_sequence_divides() {
        let mut a = Asm::module("t");
        a.kernel("k");
        a.global_tid();
        a.param_u64(4, 0);
        a.addr(6, 4, 0, 2);
        // x = tid * 7 + 3; q = x / 7 == tid.
        a.i("IMAD R10, R0, 7, 3 {S:5}");
        a.i("MOV32I R11, 7 {S:1}");
        emit_idiv(&mut a, 12, 10, 11, 16);
        a.i("STG.E.32 [R6:R7], R12 {R:B3, S:1}");
        a.i("EXIT {WT:[B3], S:1}");
        a.endfunc();
        let m = a.build();
        let mut gpu = GpuSim::new(gpa_arch::ArchConfig::small(1), SimConfig::default());
        let buf = gpu.global_mut().alloc(4 * 32);
        let params: Vec<u8> = buf.to_le_bytes().to_vec();
        gpu.launch(&m, "k", &LaunchConfig::new(1, 32), &params).unwrap();
        for i in 0..32 {
            assert_eq!(gpu.global().read_u32(buf + 4 * i), i as u32, "(7i+3)/7 == i");
        }
    }
}
