//! Natural-loop detection and nesting.

use crate::block::{BlockId, Cfg};
use crate::dom::Dominators;
use std::collections::BTreeSet;

/// Index of a loop inside a [`LoopForest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LoopId(pub usize);

/// One natural loop.
#[derive(Debug, Clone, PartialEq)]
pub struct Loop {
    /// This loop's id.
    pub id: LoopId,
    /// The loop header (dominates all blocks of the loop).
    pub header: BlockId,
    /// All blocks belonging to the loop, including the header.
    pub blocks: BTreeSet<BlockId>,
    /// The immediately enclosing loop, if any.
    pub parent: Option<LoopId>,
    /// Nesting depth (outermost loops have depth 1).
    pub depth: u32,
}

impl Loop {
    /// Whether the loop contains block `b`.
    pub fn contains_block(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }
}

/// All natural loops of a function and their nesting relation.
///
/// Loops sharing a header are merged (as Dyninst does). The forest feeds
/// two consumers: the Loop Unrolling optimizer (def and use inside the same
/// loop) and Eq. 5's scope analysis (active samples of a scope and all
/// scopes nested inside it).
#[derive(Debug, Clone, PartialEq)]
pub struct LoopForest {
    loops: Vec<Loop>,
    /// Innermost loop per block.
    innermost: Vec<Option<LoopId>>,
}

impl LoopForest {
    /// Detects loops from back edges (`u → h` where `h` dominates `u`).
    pub fn build(cfg: &Cfg) -> Self {
        let dom = Dominators::build(cfg);
        Self::build_with_dominators(cfg, &dom)
    }

    /// Like [`LoopForest::build`], reusing a dominator tree.
    pub fn build_with_dominators(cfg: &Cfg, dom: &Dominators) -> Self {
        let n = cfg.blocks().len();
        // Gather back edges grouped by header.
        let mut headers: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
        for b in cfg.blocks() {
            for &s in cfg.succs(b.id) {
                if dom.dominates(s, b.id) {
                    match headers.iter_mut().find(|(h, _)| *h == s) {
                        Some((_, latches)) => latches.push(b.id),
                        None => headers.push((s, vec![b.id])),
                    }
                }
            }
        }
        // Natural loop of (header, latches): header plus everything that
        // reaches a latch without passing through the header.
        let mut loops: Vec<Loop> = Vec::new();
        for (header, latches) in headers {
            let mut blocks: BTreeSet<BlockId> = BTreeSet::new();
            blocks.insert(header);
            let mut stack: Vec<BlockId> = Vec::new();
            for l in latches {
                if blocks.insert(l) {
                    stack.push(l);
                }
            }
            while let Some(b) = stack.pop() {
                for &p in cfg.preds(b) {
                    if blocks.insert(p) {
                        stack.push(p);
                    }
                }
            }
            loops.push(Loop { id: LoopId(loops.len()), header, blocks, parent: None, depth: 1 });
        }
        // Nesting: loop A is nested in B iff A's blocks ⊂ B's blocks.
        // Sort by size so parents come after children among candidates.
        let order: Vec<usize> = {
            let mut idx: Vec<usize> = (0..loops.len()).collect();
            idx.sort_by_key(|&i| loops[i].blocks.len());
            idx
        };
        for (pos, &i) in order.iter().enumerate() {
            // The smallest strictly-containing loop is the parent.
            let mut best: Option<usize> = None;
            for &j in order.iter().skip(pos + 1) {
                if loops[j].blocks.len() > loops[i].blocks.len()
                    && loops[i].blocks.is_subset(&loops[j].blocks)
                {
                    best = match best {
                        Some(b) if loops[b].blocks.len() <= loops[j].blocks.len() => Some(b),
                        _ => Some(j),
                    };
                }
            }
            if let Some(p) = best {
                loops[i].parent = Some(LoopId(p));
            }
        }
        // Depths.
        for i in 0..loops.len() {
            let mut d = 1;
            let mut cur = loops[i].parent;
            while let Some(p) = cur {
                d += 1;
                cur = loops[p.0].parent;
            }
            loops[i].depth = d;
        }
        // Innermost loop per block = smallest loop containing it.
        let mut innermost: Vec<Option<LoopId>> = vec![None; n];
        for (bi, slot) in innermost.iter_mut().enumerate() {
            let mut best: Option<usize> = None;
            for (li, l) in loops.iter().enumerate() {
                if l.blocks.contains(&BlockId(bi)) {
                    best = match best {
                        Some(b) if loops[b].blocks.len() <= l.blocks.len() => Some(b),
                        _ => Some(li),
                    };
                }
            }
            *slot = best.map(LoopId);
        }
        LoopForest { loops, innermost }
    }

    /// All loops.
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// The loop with the given id.
    pub fn get(&self, id: LoopId) -> &Loop {
        &self.loops[id.0]
    }

    /// The innermost loop containing block `b`.
    pub fn innermost_of_block(&self, b: BlockId) -> Option<LoopId> {
        self.innermost.get(b.0).copied().flatten()
    }

    /// The innermost loop containing instruction `idx`.
    pub fn innermost_of_instr(&self, cfg: &Cfg, idx: usize) -> Option<LoopId> {
        self.innermost_of_block(cfg.block_of(idx))
    }

    /// Whether instruction `idx` belongs to loop `l` (including nested
    /// loops' blocks, which are part of `l` by construction).
    pub fn loop_contains_instr(&self, cfg: &Cfg, l: LoopId, idx: usize) -> bool {
        self.loops[l.0].contains_block(cfg.block_of(idx))
    }

    /// `l` and every loop nested inside it (the `nested(l)` of Eq. 5).
    pub fn nested(&self, l: LoopId) -> Vec<LoopId> {
        let mut out = vec![l];
        let mut i = 0;
        while i < out.len() {
            let cur = out[i];
            for other in &self.loops {
                if other.parent == Some(cur) {
                    out.push(other.id);
                }
            }
            i += 1;
        }
        out
    }

    /// The chain of loops containing instruction `idx`, innermost first.
    pub fn loop_stack_of_instr(&self, cfg: &Cfg, idx: usize) -> Vec<LoopId> {
        let mut out = Vec::new();
        let mut cur = self.innermost_of_instr(cfg, idx);
        while let Some(l) = cur {
            out.push(l);
            cur = self.loops[l.0].parent;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_isa::parse_module;

    #[test]
    fn nested_loops() {
        let m = parse_module(
            r#"
.kernel k
  MOV32I R0, 0 {S:1}
outer:
  MOV32I R1, 0 {S:1}
inner:
  IADD R1, R1, 1 {S:4}
  ISETP.LT.AND P0, R1, 8 {S:2}
  @P0 BRA inner {S:5}
  IADD R0, R0, 1 {S:4}
  ISETP.LT.AND P1, R0, 4 {S:2}
  @P1 BRA outer {S:5}
  EXIT
.endfunc
"#,
        )
        .unwrap();
        let f = m.function("k").unwrap();
        let cfg = Cfg::build(f);
        let forest = LoopForest::build(&cfg);
        assert_eq!(forest.loops().len(), 2);
        let inner = forest.innermost_of_instr(&cfg, 2).expect("inner body in a loop");
        let stack = forest.loop_stack_of_instr(&cfg, 2);
        assert_eq!(stack.len(), 2, "IADD R1 is two loops deep");
        assert_eq!(stack[0], inner);
        let outer = stack[1];
        assert_eq!(forest.get(inner).depth, 2);
        assert_eq!(forest.get(outer).depth, 1);
        assert_eq!(forest.get(inner).parent, Some(outer));
        // nested(outer) includes both loops.
        let nested = forest.nested(outer);
        assert!(nested.contains(&inner) && nested.contains(&outer));
        assert_eq!(forest.nested(inner), vec![inner]);
        // The trailing EXIT is in no loop.
        let exit_idx = f.instrs.len() - 1;
        assert_eq!(forest.innermost_of_instr(&cfg, exit_idx), None);
    }

    #[test]
    fn straight_line_has_no_loops() {
        let m = parse_module(".kernel k\n  MOV R0, R1 {S:1}\n  EXIT\n.endfunc\n").unwrap();
        let cfg = Cfg::build(m.function("k").unwrap());
        assert!(LoopForest::build(&cfg).loops().is_empty());
    }
}
