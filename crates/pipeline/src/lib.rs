//! The reusable analysis pipeline — profile → blame → advise as a
//! service, not as copy-pasted glue.
//!
//! The paper presents GPA as "a command line tool that automates the
//! profiling and analysis stages". Before this crate existed, that
//! automation was re-implemented by every consumer: the CLI, the Table 3
//! harness, the figure binaries and the examples each wired
//! simulator-construction, sampling, blaming and advising by hand. This
//! crate centralizes the flow behind three concepts:
//!
//! * [`Session`] — owns the experiment configuration ([`ArchConfig`],
//!   [`SimConfig`], [`LatencyTable`], suite [`Params`]) and a
//!   per-module artifact cache: the built kernel variant (module +
//!   setup), its CFG-bearing [`ProgramStructure`] and launch metadata
//!   are constructed once and shared via [`Arc`] across every run that
//!   needs them.
//! * [`AnalysisJob`] / [`AnalysisOutcome`] — one app-variant analysis
//!   request and everything it produces: the PC-sampling profile,
//!   ground-truth cycles, the ranked advice report and wall-clock time.
//! * [`Session::run_batch`] — a rayon-powered fan-out over many jobs
//!   (e.g. the 21 benchmark apps × variants) with deterministic,
//!   input-ordered results regardless of worker scheduling.
//!
//! # Example
//!
//! ```
//! use gpa_pipeline::{AnalysisJob, Session};
//!
//! let session = Session::test();
//! let jobs = vec![
//!     AnalysisJob::new("rodinia/hotspot", 0),
//!     AnalysisJob::new("rodinia/gaussian", 0),
//! ];
//! let outcomes = session.run_batch(&jobs);
//! assert_eq!(outcomes.len(), 2);
//! for out in outcomes {
//!     let out = out.expect("simulation succeeds");
//!     assert!(out.profile.total_samples > 0);
//! }
//! ```
//!
//! [`Arc`]: std::sync::Arc
//! [`ArchConfig`]: gpa_arch::ArchConfig
//! [`SimConfig`]: gpa_sim::SimConfig
//! [`LatencyTable`]: gpa_arch::LatencyTable
//! [`Params`]: gpa_kernels::Params
//! [`ProgramStructure`]: gpa_structure::ProgramStructure

pub mod job;
pub mod session;

pub use job::{AnalysisError, AnalysisJob, AnalysisOutcome};
pub use session::{ModuleArtifacts, Session};
