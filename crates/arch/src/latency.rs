//! Instruction latency tables.
//!
//! Fixed-latency instructions complete a known number of cycles after
//! issue; the assembler guards their consumers with control-code stall
//! counts. Variable-latency instructions (memory, MUFU, S2R, SHFL) signal
//! completion through scoreboard barriers; for those the table provides
//! conservative *upper bounds* used by the blamer's latency-based pruning
//! rule — the paper uses the TLB-miss latency as the upper bound for
//! global memory.
//!
//! The numbers follow the Volta microbenchmarking literature (Jia et al.,
//! "Dissecting the NVIDIA Volta GPU architecture via microbenchmarking").

use crate::config::ArchConfig;
use gpa_isa::{Instruction, Modifier, Opcode};

/// Fixed latencies and variable-latency upper bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyTable {
    /// Upper bound for global/local memory (TLB-miss path), cycles.
    pub global_upper: u32,
    /// Upper bound for shared memory (bank-conflict worst case), cycles.
    pub shared_upper: u32,
    /// Upper bound for constant memory (miss to L2), cycles.
    pub constant_upper: u32,
    /// Upper bound for MUFU results, cycles.
    pub mufu_upper: u32,
    /// Upper bound for S2R/SHFL results, cycles.
    pub misc_upper: u32,
}

impl LatencyTable {
    /// The table for a machine configuration.
    pub fn for_arch(arch: &ArchConfig) -> Self {
        LatencyTable {
            global_upper: arch.lat_global_dram * 2 + 128, // TLB-miss path
            shared_upper: arch.lat_shared * 4,
            constant_upper: arch.lat_constant * 4,
            mufu_upper: 40,
            misc_upper: 32,
        }
    }

    /// Latency of a **fixed-latency** instruction in cycles, or `None` for
    /// variable-latency instructions.
    ///
    /// Modifiers matter: 64-bit conversions (`F2F.F32.F64`) take longer
    /// than 32-bit ones — the hotspot case study hinges on that cost.
    pub fn fixed_latency(&self, instr: &Instruction) -> Option<u32> {
        use Opcode::*;
        if instr.opcode.has_variable_latency() {
            return None;
        }
        let wide = instr.mods.contains(&Modifier::F64)
            || instr.mods.contains(&Modifier::Sz64)
            || instr.mods.contains(&Modifier::Wide);
        let lat = match instr.opcode {
            Iadd | Iadd3 | Lop3 | Shf | Shl | Shr | Imnmx | Iabs | Sel | Mov | Isetp | Prmt => 4,
            Mov32i | Nop | Cs2r => 1,
            Imad | Imul | Lea => {
                if wide {
                    7
                } else {
                    5
                }
            }
            Popc => 10,
            Fadd | Fmul | Ffma | Fsetp | Fmnmx => 4,
            Dadd | Dmul | Dfma | Dsetp => 8,
            F2f | F2i | I2f | I2i => {
                if wide {
                    13
                } else {
                    10
                }
            }
            Vote => 4,
            Bra | Exit | Cal | Ret | Bssy | Bsync | Bar | Membar => 1,
            _ => 4,
        };
        Some(lat)
    }

    /// Conservative upper-bound latency for any instruction, used by the
    /// latency-based pruning rule.
    pub fn upper_bound(&self, instr: &Instruction) -> u32 {
        use gpa_isa::MemSpace;
        if let Some(lat) = self.fixed_latency(instr) {
            return lat;
        }
        match instr.opcode.mem_space() {
            Some(MemSpace::Global) | Some(MemSpace::Local) => self.global_upper,
            Some(MemSpace::Shared) => self.shared_upper,
            Some(MemSpace::Constant) => self.constant_upper,
            None => {
                if instr.opcode == Opcode::Mufu {
                    self.mufu_upper
                } else {
                    self.misc_upper
                }
            }
        }
    }

    /// Whether this instruction counts as *long-latency arithmetic* for the
    /// Strength Reduction optimizer (FP64, conversions, transcendentals,
    /// wide integer multiplies).
    pub fn is_long_latency_arith(&self, instr: &Instruction) -> bool {
        use gpa_isa::OpClass;
        match instr.opcode.class() {
            OpClass::Fp64 | OpClass::Conversion | OpClass::Mufu => true,
            OpClass::IntAlu => self.fixed_latency(instr).is_some_and(|l| l >= 7),
            _ => false,
        }
    }
}

impl Default for LatencyTable {
    fn default() -> Self {
        Self::for_arch(&ArchConfig::volta_v100())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_isa::{Operand, Register};

    fn instr(op: Opcode) -> Instruction {
        Instruction::new(op, vec![Operand::Reg(Register::from_u8(0))], vec![])
    }

    #[test]
    fn fixed_vs_variable() {
        let t = LatencyTable::default();
        assert_eq!(t.fixed_latency(&instr(Opcode::Iadd)), Some(4));
        assert_eq!(t.fixed_latency(&instr(Opcode::Dfma)), Some(8));
        assert_eq!(t.fixed_latency(&instr(Opcode::Ldg)), None);
        assert!(t.upper_bound(&instr(Opcode::Ldg)) > 500, "TLB-miss upper bound");
        assert!(t.upper_bound(&instr(Opcode::Lds)) < t.upper_bound(&instr(Opcode::Ldg)));
    }

    #[test]
    fn wide_conversions_cost_more() {
        let t = LatencyTable::default();
        let narrow = instr(Opcode::F2f).with_mod(Modifier::F32);
        let wide = instr(Opcode::F2f).with_mod(Modifier::F32).with_mod(Modifier::F64);
        assert!(t.fixed_latency(&wide).unwrap() > t.fixed_latency(&narrow).unwrap());
    }

    #[test]
    fn long_latency_arithmetic_classification() {
        let t = LatencyTable::default();
        assert!(t.is_long_latency_arith(&instr(Opcode::Dfma)));
        assert!(t.is_long_latency_arith(&instr(Opcode::F2f)));
        assert!(t.is_long_latency_arith(&instr(Opcode::Mufu)));
        assert!(!t.is_long_latency_arith(&instr(Opcode::Iadd)));
        assert!(!t.is_long_latency_arith(&instr(Opcode::Ldg)));
        let wide_imad = instr(Opcode::Imad).with_mod(Modifier::Wide);
        assert!(t.is_long_latency_arith(&wide_imad));
    }
}
