//! `rodinia/kmeans` — `kmeansPoint`.
//!
//! The distance loop accumulates `(x_f − c_f)²` serially: every iteration
//! loads a feature and immediately folds it into one accumulator, so the
//! loop is a single dependence chain interleaved with global loads.
//! Unrolling with separate accumulators overlaps four loads and breaks
//! the FMA chain (Loop Unrolling; paper: 1.12× achieved, 1.21×
//! estimated).

use crate::data::ParamBlock;
use crate::dsl::Asm;
use crate::{App, KernelSpec, Params, Stage};
use gpa_arch::LaunchConfig;

/// Builds the kmeans app entry.
pub fn app() -> App {
    App {
        name: "rodinia/kmeans",
        kernel: "kmeansPoint",
        stages: vec![Stage { name: "Loop Unrolling", optimizer: "GPULoopUnrollOptimizer" }],
        build,
    }
}

const NFEAT: u32 = 32;

fn build(variant: usize, p: &Params) -> KernelSpec {
    let unrolled = variant >= 1;
    let mut a = Asm::module("kmeans");
    a.kernel("kmeansPoint");
    a.line("kmeans.cu", 96);
    a.global_tid();
    a.param_u64(4, 0); // features (feature-major)
    a.param_u64(6, 8); // cluster center
    a.param_u32(9, 24); // n points
    a.i("MOV32I R22, 0 {S:1}"); // acc
    a.i("MOV32I R17, 0 {S:1}"); // f
    a.line("kmeans.cu", 100);
    if unrolled {
        a.i("MOV32I R26, 0 {S:1}");
        a.i("MOV32I R28, 0 {S:1}");
        a.i("MOV32I R30, 0 {S:1}");
        a.label("feat_loop");
        // Four independent feature loads.
        for u in 0..4u8 {
            a.i(format!("IADD R10, R17, {u} {{S:4}}"));
            a.i("IMAD R10, R10, R9, R0 {S:5}");
            a.addr(12, 4, 10, 2);
            a.i(format!("LDG.E.32 R{}, [R12:R13] {{W:B{u}, S:1}}", 40 + 2 * u));
            a.i(format!("IADD R11, R17, {u} {{S:4}}"));
            a.addr(14, 6, 11, 2);
            a.i(format!("LDG.E.32 R{}, [R14:R15] {{W:B{}, S:1}}", 48 + 2 * u, 4 + (u & 1)));
        }
        // Four independent accumulators.
        let accs = [22u8, 26, 28, 30];
        for (u, &acc) in accs.iter().enumerate() {
            a.i(format!(
                "FFMA R34, R{}, -1.0, R{} {{WT:[B{},B{}], S:4}}",
                48 + 2 * u,
                40 + 2 * u,
                u,
                4 + (u & 1)
            ));
            a.i(format!("FFMA R{acc}, R34, R34, R{acc} {{S:4}}"));
        }
        a.i("IADD R17, R17, 4 {S:4}");
        a.i(format!("ISETP.LT.AND P1, R17, {NFEAT} {{S:2}}"));
        a.i("@P1 BRA feat_loop {S:5}");
        a.i("FADD R22, R22, R26 {S:4}");
        a.i("FADD R28, R28, R30 {S:4}");
        a.i("FADD R22, R22, R28 {S:4}");
    } else {
        a.label("feat_loop");
        a.i("IMAD R10, R17, R9, R0 {S:5}");
        a.addr(12, 4, 10, 2);
        a.i("LDG.E.32 R14, [R12:R13] {W:B0, S:1}"); // x_f
        a.addr(18, 6, 17, 2);
        a.i("LDG.E.32 R20, [R18:R19] {W:B1, S:1}"); // c_f
        a.line("kmeans.cu", 102);
        a.i("FFMA R24, R20, -1.0, R14 {WT:[B0,B1], S:4}");
        a.i("FFMA R22, R24, R24, R22 {S:4}"); // serial accumulator
        a.i("IADD R17, R17, 1 {S:4}");
        a.i(format!("ISETP.LT.AND P1, R17, {NFEAT} {{S:2}}"));
        a.i("@P1 BRA feat_loop {S:5}");
    }
    a.param_u64(26, 16); // out (reuse regs after loop)
    a.addr(36, 26, 0, 2);
    a.i("STG.E.32 [R36:R37], R22 {R:B5, S:2}");
    a.i("EXIT {WT:[B5], S:1}");
    a.endfunc();
    let module = a.build();

    let blocks = p.sms * p.scale;
    let threads: u32 = 256;
    let n = blocks * threads;
    KernelSpec {
        module,
        entry: "kmeansPoint".into(),
        launch: LaunchConfig::new(blocks, threads),
        setup: Box::new(move |gpu| {
            let mut rng = crate::data::rng(0x5057_0006);
            let features = gpu.global_mut().alloc(4 * (n as u64) * NFEAT as u64);
            gpu.global_mut().write_bytes(
                features,
                &crate::data::f32_bytes(&mut rng, (n * NFEAT) as usize, 0.0, 10.0),
            );
            let center = gpu.global_mut().alloc(4 * NFEAT as u64);
            gpu.global_mut()
                .write_bytes(center, &crate::data::f32_bytes(&mut rng, NFEAT as usize, 0.0, 10.0));
            let out = gpu.global_mut().alloc(4 * n as u64);
            let mut pb = ParamBlock::new();
            pb.push_u64(features);
            pb.push_u64(center);
            pb.push_u64(out);
            pb.push_u32(n); // @24
            pb.finish()
        }),
        const_bank1: None,
    }
}
