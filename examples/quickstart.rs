//! Quickstart: write a kernel, hand it to the analysis pipeline, and
//! print GPA's advice.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use gpa::arch::{ArchConfig, LaunchConfig};
use gpa::core::report;
use gpa::kernels::{KernelSpec, Params};
use gpa::pipeline::Session;
use gpa::sim::SimConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A pointer-chasing kernel: each loop iteration loads a value and
    // consumes it immediately — the classic code-reordering target.
    let module = gpa::isa::parse_module(
        r#"
.module quickstart
.kernel chase
.line chase.cu 10
  S2R R0, SR_TID.X {W:B0, S:1}
  MOV R2, c[0][0] {S:1}
  MOV R3, c[0][4] {S:1}
  SHL R1, R0, 2 {WT:[B0], S:2}
  IADD R2:R3, R2:R3, R1 {S:2}
  MOV32I R6, 0 {S:1}
  MOV32I R7, 0 {S:1}
.line chase.cu 14
top:
  LDG.E.32 R4, [R2:R3] {W:B1, S:1}
  IADD R7, R7, R4 {WT:[B1], S:4}
  IADD R2:R3, R2:R3, 512 {S:2}
  IADD R6, R6, 1 {S:4}
  ISETP.LT.AND P0, R6, 64 {S:2}
  @P0 BRA top {S:5}
.line chase.cu 18
  STG.E.32 [R2:R3], R7 {R:B2, S:1}
  EXIT {WT:[B2], S:1}
.endfunc
"#,
    )?;

    // A small Volta-like device; sampling period 127 cycles. The session
    // owns the whole profile → blame → advise flow.
    let session = Session::new(
        ArchConfig::small(2),
        SimConfig { sampling_period: 127, ..SimConfig::default() },
        Params::test(),
    );

    // Host-side setup: one buffer, its address as the kernel parameter.
    let spec = KernelSpec {
        module,
        entry: "chase".to_string(),
        launch: LaunchConfig::new(4, 64),
        setup: Box::new(|gpu| {
            let buf = gpu.global_mut().alloc(4 * 64 * 512);
            buf.to_le_bytes().to_vec()
        }),
        const_bank1: None,
    };

    let out = session.analyze_spec(spec)?;
    println!(
        "kernel ran {} cycles, {} samples, analyzed in {:.1}ms\n",
        out.cycles,
        out.profile.total_samples,
        out.wall.as_secs_f64() * 1e3
    );
    print!("{}", report::render(&out.report, 3));
    Ok(())
}
