//! `Minimod` — `target_pml_3d`.
//!
//! Two sequential optimizations on the higher-order stencil (the paper's
//! §7.4): first `--use_fast_math` replaces the precise exponential in the
//! PML damping term (1.03×), then reordering reads the next z-plane's
//! values well before their use (1.05× more).

use crate::data::ParamBlock;
use crate::dsl::Asm;
use crate::{App, KernelSpec, Params, Stage};
use gpa_arch::LaunchConfig;

/// Builds the Minimod app entry.
pub fn app() -> App {
    App {
        name: "Minimod",
        kernel: "target_pml_3d",
        stages: vec![
            Stage { name: "Fast Math", optimizer: "GPUFastMathOptimizer" },
            Stage { name: "Code Reorder", optimizer: "GPUCodeReorderOptimizer" },
        ],
        build,
    }
}

const NZ: u32 = 12;

fn emit_nv_expf(a: &mut Asm) {
    a.func("__nv_expf");
    a.line("device_functions.h", 742);
    a.i("FMUL R42, R40, 1.4427 {S:4}");
    a.i("MOV32I R41, 0x3f800000 {S:1}");
    for _ in 0..6 {
        a.i("FFMA R41, R41, R42, 0.51 {S:4}");
    }
    a.i("RET {S:5}");
    a.endfunc();
}

fn build(variant: usize, p: &Params) -> KernelSpec {
    let fast = variant >= 1;
    let pipelined = variant >= 2;
    let mut a = Asm::module("minimod");
    a.kernel("target_pml_3d");
    a.line("minimod_pml.cu", 77);
    a.global_tid();
    a.param_u64(4, 0); // u field
    a.param_u32(9, 24); // plane stride
    a.i("SHL R3, R9, 2 {S:4}"); // plane stride bytes
    a.addr(12, 4, 0, 2);
    a.i("MOV32I R22, 0 {S:1}"); // acc
    a.i("MOV32I R17, 0 {S:1}"); // z
    if pipelined {
        a.i("LDG.E.32 R14, [R12:R13] {W:B0, S:1}"); // preload plane 0
    }
    a.line("minimod_pml.cu", 84);
    a.label("z_loop");
    if pipelined {
        // Next plane's load first; compute on the previous one.
        a.i("IADD R12:R13, R12:R13, R3 {S:2}");
        a.i("LDG.E.32 R15, [R12:R13] {W:B1, S:1}");
        a.i("LDG.E.32 R20, [R12:R13+4] {W:B2, S:1}");
        a.i("FFMA R24, R14, 0.54, R22 {S:4}");
        a.i("FFMA R22, R24, 0.99, 0.001 {S:4}");
        a.i("FFMA R22, R22, 1.01, -0.001 {S:4}");
        a.i("FADD R22, R22, R20 {WT:[B2], S:4}");
        a.i("MOV R14, R15 {WT:[B1], S:2}");
    } else {
        a.i("LDG.E.32 R14, [R12:R13] {W:B0, S:1}");
        a.i("LDG.E.32 R20, [R12:R13+4] {W:B2, S:1}");
        // Immediate uses of both loads.
        a.i("FFMA R24, R14, 0.54, R22 {WT:[B0], S:4}");
        a.i("FFMA R22, R24, 0.99, 0.001 {S:4}");
        a.i("FFMA R22, R22, 1.01, -0.001 {S:4}");
        a.i("FADD R22, R22, R20 {WT:[B2], S:4}");
        a.i("IADD R12:R13, R12:R13, R3 {S:2}");
    }
    // PML damping: exp(-sigma) once per plane.
    a.i("FMUL R40, R22, -0.01 {S:4}");
    if fast {
        a.i("FMUL R40, R40, 1.4427 {S:4}");
        a.i("MUFU.EX2 R41, R40 {W:B3, S:1}");
        a.i("NOP {WT:[B3], S:1}");
    } else {
        a.i("CAL __nv_expf {S:5}");
    }
    a.i("FMUL R22, R22, R41 {S:4}");
    a.i("IADD R17, R17, 1 {S:4}");
    a.i(format!("ISETP.LT.AND P1, R17, {NZ} {{S:2}}"));
    a.i("@P1 BRA z_loop {S:5}");
    a.param_u64(28, 8);
    a.addr(30, 28, 0, 2);
    a.i("STG.E.32 [R30:R31], R22 {R:B5, S:2}");
    a.i("EXIT {WT:[B5], S:1}");
    a.endfunc();
    emit_nv_expf(&mut a);
    let module = a.build();

    let blocks = p.sms * p.scale;
    let threads: u32 = 128;
    let n = blocks * threads;
    KernelSpec {
        module,
        entry: "target_pml_3d".into(),
        launch: LaunchConfig::new(blocks, threads),
        setup: Box::new(move |gpu| {
            let mut rng = crate::data::rng(0x5057_0012);
            let m = n as u64 * (NZ as u64 + 2) + 8;
            let u = gpu.global_mut().alloc(4 * m);
            gpu.global_mut()
                .write_bytes(u, &crate::data::f32_bytes(&mut rng, m as usize, -1.0, 1.0));
            let out = gpu.global_mut().alloc(4 * n as u64);
            let mut pb = ParamBlock::new();
            pb.push_u64(u);
            pb.push_u64(out);
            pb.push_u32(n); // @24 plane stride
            pb.finish()
        }),
        const_bank1: None,
    }
}
