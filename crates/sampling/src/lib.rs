//! PC-sampling profiles — the measurement layer GPA's dynamic analyzer
//! consumes.
//!
//! On real hardware this is CUPTI: samples stream out of each SM, get
//! merged, and are attributed to PCs. Here, [`Profiler`] launches a kernel
//! on the [`gpa_sim`] device and aggregates the raw samples into a
//! [`KernelProfile`]:
//!
//! * per-PC sample counts split by [`StallReason`], separately for all
//!   samples and for **latency samples** (scheduler issued nothing that
//!   cycle — the `L`/`M_L` quantities of the paper's Eqs. 3–5),
//! * kernel-level totals `T`, `A`, `L` and the issue ratio `R_I` used by
//!   the parallel estimators (Eqs. 8–9),
//! * launch statistics (grid, block, occupancy) for the Block/Thread
//!   Increase optimizers,
//! * ground-truth cycles for validating estimates against achieved
//!   speedups.
//!
//! Profiles serialize to JSON for offline analysis, mirroring how GPA dumps
//! profiles for its post-mortem dynamic analysis.
//!
//! Measurement **streams**: the simulator emits samples into a
//! [`SampleSink`] and aggregates at the source into a [`SampleSet`], so
//! nothing retains O(samples) memory; [`KernelProfile::merge`] folds
//! repeated launches together (associative and commutative, with
//! [`KernelProfile::empty_like`] as identity) and
//! [`Profiler::profile_repeat`] drives CUPTI-replay-style noise
//! reduction on top. See `docs/profiling.md` for the full model.

pub mod profile;
pub mod profiler;

pub use gpa_sim::{RawSample, SampleSet, SampleSink, StallReason};
pub use profile::{KernelProfile, MergeError, PcStats, ProfileBuilder};
pub use profiler::Profiler;
