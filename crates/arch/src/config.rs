//! Machine descriptions.

use gpa_isa::Pipe;

/// How the simulator times memory instructions.
///
/// `Flat` charges the classic per-space latencies straight from the
/// `lat_*` fields (the original model; every byte-identity gate is pinned
/// against it). `Hierarchy` threads global accesses through timed L1/L2
/// servers with MSHR tracking and bounded queues, and serializes shared
/// accesses per bank — producing the richer stall taxonomy (bank
/// conflicts, uncoalesced access, MSHR/L2-queue backpressure) the memory
/// advisors consume.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum MemModel {
    /// Flat per-space latencies (default; byte-identical to pre-hierarchy
    /// builds).
    #[default]
    Flat,
    /// Timed L1/L2/shared servers with bounded queues and backpressure.
    Hierarchy(HierarchyConfig),
}

impl MemModel {
    /// Whether the hierarchy model is selected.
    pub fn is_hierarchy(&self) -> bool {
        matches!(self, MemModel::Hierarchy(_))
    }
}

/// Knobs for the timed memory hierarchy ([`MemModel::Hierarchy`]).
///
/// Capacities bound the *standing occupancy* of each level: a full MSHR
/// file or L2 queue back-pressures issue exactly like the flat model's
/// LSU limit, but with its own stall reason so the advisor can tell the
/// levels apart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Per-SM L1 data cache size in bytes.
    pub l1_size: u32,
    /// L1 line size in bytes (also the coalescing sector size).
    pub l1_line: u32,
    /// Global-memory latency on an L1 hit (cycles).
    pub lat_l1_hit: u32,
    /// Miss-status holding registers per SM — in-flight L1 misses beyond
    /// this stall issue with `MshrFull`.
    pub mshr_capacity: u32,
    /// Per-SM share of the L2 request queue — in-flight L2 requests
    /// beyond this stall issue with `L2Queue`.
    pub l2_queue_capacity: u32,
    /// Warp accesses splitting into at least this many sectors are blamed
    /// as `Uncoalesced` rather than plain memory dependencies.
    pub uncoalesced_sectors: u32,
    /// Extra cycles per serialized shared-memory bank access beyond the
    /// first (degree-k conflict costs `(k-1) * this`).
    pub smem_bank_interval: u32,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            l1_size: 128 * 1024,
            l1_line: 32,
            lat_l1_hit: 32,
            mshr_capacity: 64,
            l2_queue_capacity: 32,
            uncoalesced_sectors: 8,
            smem_bank_interval: 2,
        }
    }
}

/// A GPU machine description.
///
/// Defaults model an NVIDIA Volta V100; [`ArchConfig::small`] produces a
/// scaled-down part with the same per-SM shape (4 schedulers, same
/// latencies) so unit tests and experiments can run quickly while
/// preserving blocks-vs-SMs ratios.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchConfig {
    /// Human-readable name.
    pub name: String,
    /// Streaming multiprocessors on the device.
    pub num_sms: u32,
    /// Warp schedulers (sub-partitions) per SM.
    pub schedulers_per_sm: u32,
    /// Threads per warp.
    pub warp_size: u32,
    /// Maximum resident warps per scheduler (64 per SM on Volta).
    pub max_warps_per_scheduler: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// 32-bit registers per SM.
    pub registers_per_sm: u32,
    /// Shared memory per SM in bytes.
    pub shared_mem_per_sm: u32,

    /// Global-memory latency on an L2 hit (cycles).
    pub lat_global_l2: u32,
    /// Global-memory latency on a DRAM access (cycles).
    pub lat_global_dram: u32,
    /// Shared-memory load latency (cycles).
    pub lat_shared: u32,
    /// Constant-cache load latency (cycles).
    pub lat_constant: u32,
    /// Local-memory (spill) latency — mostly L1-resident (cycles).
    pub lat_local: u32,
    /// Extra cycles for each additional memory transaction of an
    /// uncoalesced warp access.
    pub lat_per_extra_transaction: u32,

    /// L2 cache size in bytes (shared across SMs).
    pub l2_size: u32,
    /// L2 line size in bytes.
    pub l2_line: u32,
    /// Instruction-cache size per SM in bytes.
    pub icache_size: u32,
    /// Instruction-cache line size in bytes.
    pub icache_line: u32,
    /// Stall cycles on an instruction-cache miss.
    pub lat_ifetch_miss: u32,
    /// Taken-branch front-end bubble in cycles (fetch redirect).
    pub lat_branch_redirect: u32,

    /// Maximum in-flight memory requests per SM before the LSU back-
    /// pressures issue (memory-throttle stalls).
    pub max_mem_inflight_per_sm: u32,

    /// Memory timing model. `Flat` (the default) reproduces the original
    /// fixed-latency behaviour byte for byte; toggling this does **not**
    /// change `name`, so compiled artifacts stay valid across models.
    pub mem: MemModel,
}

impl ArchConfig {
    /// A V100-like configuration.
    pub fn volta_v100() -> Self {
        ArchConfig {
            name: "volta-v100".into(),
            num_sms: 80,
            schedulers_per_sm: 4,
            warp_size: 32,
            max_warps_per_scheduler: 16,
            max_threads_per_block: 1024,
            max_blocks_per_sm: 32,
            registers_per_sm: 65536,
            shared_mem_per_sm: 96 * 1024,
            lat_global_l2: 220,
            lat_global_dram: 450,
            lat_shared: 25,
            lat_constant: 30,
            lat_local: 40,
            lat_per_extra_transaction: 4,
            l2_size: 6 * 1024 * 1024,
            l2_line: 64,
            icache_size: 12 * 1024,
            icache_line: 256,
            lat_ifetch_miss: 40,
            lat_branch_redirect: 4,
            max_mem_inflight_per_sm: 256,
            mem: MemModel::Flat,
        }
    }

    /// This configuration with the timed memory hierarchy enabled
    /// (default [`HierarchyConfig`] knobs). The name is untouched so
    /// artifacts compiled for the flat twin remain valid.
    pub fn with_hierarchy(mut self) -> Self {
        self.mem = MemModel::Hierarchy(HierarchyConfig::default());
        self
    }

    /// A scaled-down Volta with `num_sms` SMs for fast experiments.
    pub fn small(num_sms: u32) -> Self {
        ArchConfig { name: format!("small-volta-{num_sms}sm"), num_sms, ..Self::volta_v100() }
    }

    /// Maximum resident warps per SM.
    pub fn max_warps_per_sm(&self) -> u32 {
        self.schedulers_per_sm * self.max_warps_per_scheduler
    }

    /// Issue interval (cycles between issues) of a pipe per scheduler.
    ///
    /// One warp instruction occupies its pipe for this many cycles; a
    /// second instruction for a busy pipe reports a *pipe busy* stall.
    pub fn pipe_interval(&self, pipe: Pipe) -> u32 {
        match pipe {
            // 16 FP32/INT lanes per scheduler → a 32-thread warp needs 2
            // cycles of the pipe.
            Pipe::Alu | Pipe::Fma => 2,
            // 8 FP64 lanes per scheduler on V100 → 4 cycles.
            Pipe::Fp64 => 4,
            // 4 SFU lanes per scheduler → 8 cycles.
            Pipe::Sfu => 8,
            // LSU accepts one warp access per scheduler every 4 cycles.
            Pipe::Lsu => 4,
            Pipe::Branch | Pipe::Misc => 2,
        }
    }
}

impl Default for ArchConfig {
    fn default() -> Self {
        Self::volta_v100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_shape() {
        let a = ArchConfig::volta_v100();
        assert_eq!(a.num_sms, 80);
        assert_eq!(a.max_warps_per_sm(), 64);
        assert!(a.pipe_interval(Pipe::Sfu) > a.pipe_interval(Pipe::Fma));
    }

    #[test]
    fn small_preserves_per_sm_shape() {
        let a = ArchConfig::small(4);
        assert_eq!(a.num_sms, 4);
        assert_eq!(a.schedulers_per_sm, 4);
        assert_eq!(a.max_warps_per_sm(), 64);
    }

    #[test]
    fn hierarchy_toggle_keeps_the_name() {
        let flat = ArchConfig::small(2);
        let hier = ArchConfig::small(2).with_hierarchy();
        assert_eq!(flat.mem, MemModel::Flat);
        assert!(hier.mem.is_hierarchy());
        assert_eq!(flat.name, hier.name, "compiled artifacts must stay valid");
    }
}
