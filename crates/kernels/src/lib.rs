//! The benchmark suite GPA is evaluated on.
//!
//! The paper optimizes 17 Rodinia kernels plus Quicksilver, ExaTENSOR,
//! PeleC and Minimod on a V100 (Table 3). Those CUDA codes cannot run
//! here, so each application is rebuilt as a kernel in the [`gpa_isa`]
//! instruction set that exhibits the *same bottleneck pattern* the paper
//! found (e.g. hotspot's float→double promotion, b+tree's short def–use
//! distance, gaussian's 16-thread blocks, myocyte's i-cache-thrashing
//! megafunction) — together with the *optimized variant* corresponding to
//! the paper's source-level fix.
//!
//! Each [`App`] exposes a sequence of [`Stage`]s (some applications apply
//! two optimizations in a row); variant `k` of the kernel has the first
//! `k` optimizations applied, so the achieved speedup of stage `k` is
//! `cycles(variant k) / cycles(variant k+1)`, measured on the simulator
//! exactly as the paper measures wall time on hardware.

pub mod apps;
pub mod data;
pub mod dsl;
pub mod runner;

pub use apps::all_apps;
pub use runner::{run_spec, RunOutput};

use gpa_arch::LaunchConfig;
use gpa_isa::Module;
use gpa_sim::GpuSim;

/// Setup callback: initialize device memory, return the kernel parameters
/// (constant bank 0 bytes).
pub type SetupFn = Box<dyn Fn(&mut GpuSim) -> Vec<u8> + Send + Sync>;

/// One runnable kernel variant.
pub struct KernelSpec {
    /// The linked module.
    pub module: Module,
    /// Kernel entry name.
    pub entry: String,
    /// Launch configuration.
    pub launch: LaunchConfig,
    /// Device-memory initializer, returns params.
    pub setup: SetupFn,
    /// Optional user constant bank 1 (e.g. ExaTENSOR's dims tables).
    pub const_bank1: Option<Vec<u8>>,
}

/// One optimization step of an application (a row of Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stage {
    /// Human name, e.g. `"Strength Reduction"`.
    pub name: &'static str,
    /// The optimizer expected to suggest it, e.g.
    /// `"GPUStrengthReductionOptimizer"`.
    pub optimizer: &'static str,
}

/// Scaling knobs for the suite (the simulator is slower than a V100, so
/// experiments run on a scaled-down device with proportionate grids).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// SMs of the simulated device (keep in sync with the `ArchConfig`).
    pub sms: u32,
    /// Work multiplier: 1 = quick tests, larger = more stable sampling.
    pub scale: u32,
}

impl Params {
    /// The configuration the Table 3 harness uses.
    pub fn full() -> Self {
        Params { sms: 8, scale: 4 }
    }

    /// A tiny configuration for unit tests.
    pub fn test() -> Self {
        Params { sms: 2, scale: 1 }
    }
}

impl Default for Params {
    fn default() -> Self {
        Self::full()
    }
}

/// One benchmark application.
pub struct App {
    /// Application name, e.g. `"rodinia/hotspot"`.
    pub name: &'static str,
    /// Kernel symbol, e.g. `"calculate_temp"`.
    pub kernel: &'static str,
    /// Optimization sequence (Table 3 rows for this app).
    pub stages: Vec<Stage>,
    /// Builds variant `v` (0 = baseline, `stages.len()` = fully
    /// optimized).
    pub build: fn(variant: usize, p: &Params) -> KernelSpec,
}

impl App {
    /// Number of variants (stages + 1).
    pub fn variants(&self) -> usize {
        self.stages.len() + 1
    }
}
