//! `rodinia/particlefilter` — `likelihood_kernel`.
//!
//! The likelihood kernel launches fewer blocks than the device has SMs:
//! half the machine idles. Splitting each block in two (same total
//! threads) fills every SM (Block Increase; paper: 1.92× achieved,
//! 1.93× estimated). The kernel code is identical in both variants —
//! only the launch configuration changes.

use crate::data::ParamBlock;
use crate::dsl::Asm;
use crate::{App, KernelSpec, Params, Stage};
use gpa_arch::LaunchConfig;

/// Builds the particlefilter app entry.
pub fn app() -> App {
    App {
        name: "rodinia/particlefilter",
        kernel: "likelihood_kernel",
        stages: vec![Stage { name: "Block Increase", optimizer: "GPUBlockIncreaseOptimizer" }],
        build,
    }
}

const CHUNK: u32 = 24;

fn build(variant: usize, p: &Params) -> KernelSpec {
    let mut a = Asm::module("particlefilter");
    a.kernel("likelihood_kernel");
    a.line("ex_particle_CUDA_float_seq.cu", 390);
    a.global_tid();
    a.param_u64(4, 0); // particle positions
    a.param_u64(6, 8); // observations
    a.i("MOV32I R22, 0 {S:1}"); // likelihood acc
    a.i("MOV32I R17, 0 {S:1}");
    a.line("ex_particle_CUDA_float_seq.cu", 395);
    a.label("pf_loop");
    a.i("IMAD R10, R17, 1, R0 {S:5}");
    a.i(format!("IMAD R10, R10, {CHUNK}, 0 {{S:5}}"));
    a.addr(12, 4, 10, 2);
    a.i("LDG.E.32 R14, [R12:R13] {W:B0, S:1}");
    a.addr(18, 6, 10, 2);
    a.i("LDG.E.32 R20, [R18:R19] {W:B1, S:1}");
    // (x - obs)^2, exp through the SFU.
    a.i("FFMA R24, R20, -1.0, R14 {WT:[B0,B1], S:4}");
    a.i("FMUL R26, R24, R24 {S:4}");
    a.i("FMUL R26, R26, -1.4427 {S:4}"); // -1/ln2
    a.i("MUFU.EX2 R28, R26 {W:B2, S:1}");
    a.i("FADD R22, R22, R28 {WT:[B2], S:4}");
    a.i("IADD R17, R17, 1 {S:4}");
    a.i(format!("ISETP.LT.AND P1, R17, {CHUNK} {{S:2}}"));
    a.i("@P1 BRA pf_loop {S:5}");
    a.param_u64(30, 16);
    a.addr(32, 30, 0, 2);
    a.i("STG.E.32 [R32:R33], R22 {R:B5, S:2}");
    a.i("EXIT {WT:[B5], S:1}");
    a.endfunc();
    let module = a.build();

    // Baseline: half as many blocks as SMs, fat blocks. Optimized: one
    // block per SM, half the threads each — the Block Increase advice.
    let base_blocks = (p.sms / 2).max(1);
    let (blocks, threads) = if variant >= 1 { (base_blocks * 2, 256) } else { (base_blocks, 512) };
    let n = blocks * threads;
    KernelSpec {
        module,
        entry: "likelihood_kernel".into(),
        launch: LaunchConfig::new(blocks, threads),
        setup: Box::new(move |gpu| {
            let mut rng = crate::data::rng(0x5057_000E);
            let m = n as u64 * CHUNK as u64;
            let pos = gpu.global_mut().alloc(4 * m);
            gpu.global_mut()
                .write_bytes(pos, &crate::data::f32_bytes(&mut rng, m as usize, -4.0, 4.0));
            let obs = gpu.global_mut().alloc(4 * m);
            gpu.global_mut()
                .write_bytes(obs, &crate::data::f32_bytes(&mut rng, m as usize, -4.0, 4.0));
            let out = gpu.global_mut().alloc(4 * n as u64);
            let mut pb = ParamBlock::new();
            pb.push_u64(pos);
            pb.push_u64(obs);
            pb.push_u64(out);
            pb.finish()
        }),
        const_bank1: None,
    }
}
