//! `rodinia/bfs` — `Kernel`.
//!
//! Memory-dependency stalls inside the neighbor loop (a two-level pointer
//! chase: edge id, then the neighbor's level). Unrolling overlaps the
//! loads of several neighbors. The paper highlights this benchmark as a
//! *false positive* for the estimator: the workload is highly unbalanced
//! (most vertices have a handful of edges, a few are hubs), so unrolling
//! helps only the rare heavy threads — 1.14× achieved vs 1.59× estimated.

use crate::data::{pack_u32, ParamBlock};
use crate::dsl::Asm;
use crate::{App, KernelSpec, Params, Stage};
use gpa_arch::LaunchConfig;
use rand::Rng;

/// Builds the bfs app entry.
pub fn app() -> App {
    App {
        name: "rodinia/bfs",
        kernel: "Kernel",
        stages: vec![Stage { name: "Loop Unrolling", optimizer: "GPULoopUnrollOptimizer" }],
        build,
    }
}

const MAX_DEG: u32 = 64;

/// One neighbor visit: edge load, level load, conditional count.
fn visit(a: &mut Asm, k_reg: u8, e_reg: u8, l_reg: u8, bar: (u8, u8)) {
    a.i(format!("IMAD R10, R0, {MAX_DEG}, R{k_reg} {{S:5}}"));
    a.addr(12, 4, 10, 2);
    a.i(format!("LDG.E.32 R{e_reg}, [R12:R13] {{W:B{}, S:1}}", bar.0));
    a.i(format!("LEA R18:R19, R{e_reg}, R6:R7, 2 {{WT:[B{}], S:2}}", bar.0));
    a.i(format!("LDG.E.32 R{l_reg}, [R18:R19] {{W:B{}, S:1}}", bar.1));
    a.i(format!("ISETP.EQ.AND P0, R{l_reg}, 0 {{WT:[B{}], S:2}}", bar.1));
    a.i("@P0 IADD R24, R24, 1 {S:4}");
}

fn build(variant: usize, p: &Params) -> KernelSpec {
    let unrolled = variant >= 1;
    let mut a = Asm::module("bfs");
    a.kernel("Kernel");
    a.line("bfs.cu", 20);
    a.global_tid();
    a.param_u64(4, 8); // edges
    a.param_u64(6, 16); // levels
    a.param_u64(8, 0); // degrees
    a.addr(26, 8, 0, 2);
    a.i("LDG.E.32 R21, [R26:R27] {W:B0, S:1}"); // degree[tid]
    a.i("MOV32I R24, 0 {S:1}"); // visited count
    a.i("MOV32I R17, 0 {S:1}"); // k
    a.i("ISETP.LE.AND P1, R21, 0 {WT:[B0], S:2}");
    a.i("@P1 BRA done {S:5}");
    a.line("bfs.cu", 24);
    if unrolled {
        // #pragma unroll 4: process four neighbors with independent loads
        // while at least four remain.
        a.label("loop4");
        a.i("IADD R22, R17, 4 {S:4}");
        a.i("ISETP.GT.AND P2, R22, R21 {S:2}");
        a.i("@P2 BRA tail {S:5}");
        // Issue the four edge loads back to back.
        for u in 0..4u8 {
            a.i(format!("IMAD R10, R0, {MAX_DEG}, R17 {{S:5}}"));
            if u > 0 {
                a.i(format!("IADD R10, R10, {u} {{S:4}}"));
            }
            a.addr(12, 4, 10, 2);
            a.i(format!("LDG.E.32 R{}, [R12:R13] {{W:B{}, S:1}}", 40 + 2 * u, u));
        }
        // Then the four level loads.
        for u in 0..4u8 {
            a.i(format!("LEA R18:R19, R{}, R6:R7, 2 {{WT:[B{u}], S:2}}", 40 + 2 * u));
            a.i(format!("LDG.E.32 R{}, [R18:R19] {{W:B{u}, S:1}}", 48 + 2 * u));
        }
        for u in 0..4u8 {
            a.i(format!("ISETP.EQ.AND P0, R{}, 0 {{WT:[B{u}], S:2}}", 48 + 2 * u));
            a.i("@P0 IADD R24, R24, 1 {S:4}");
        }
        a.i("IADD R17, R17, 4 {S:4}");
        a.i("BRA loop4 {S:5}");
        a.label("tail");
        a.i("ISETP.GE.AND P1, R17, R21 {S:2}");
        a.i("@P1 BRA done {S:5}");
        a.label("tail_loop");
        visit(&mut a, 17, 14, 20, (1, 2));
        a.i("IADD R17, R17, 1 {S:4}");
        a.i("ISETP.LT.AND P1, R17, R21 {S:2}");
        a.i("@P1 BRA tail_loop {S:5}");
    } else {
        a.label("edge_loop");
        visit(&mut a, 17, 14, 20, (1, 2));
        a.i("IADD R17, R17, 1 {S:4}");
        a.i("ISETP.LT.AND P1, R17, R21 {S:2}");
        a.i("@P1 BRA edge_loop {S:5}");
    }
    a.label("done");
    a.param_u64(28, 24); // out
    a.addr(30, 28, 0, 2);
    a.i("STG.E.32 [R30:R31], R24 {R:B5, S:2}");
    a.i("EXIT {WT:[B5], S:1}");
    a.endfunc();
    let module = a.build();

    let blocks = p.sms * p.scale;
    let threads: u32 = 256;
    let n = blocks * threads;
    KernelSpec {
        module,
        entry: "Kernel".into(),
        launch: LaunchConfig::new(blocks, threads),
        setup: Box::new(move |gpu| {
            let mut rng = crate::data::rng(0x5057_0005);
            let degrees = crate::data::skewed_degrees(&mut rng, n as usize, 3, MAX_DEG);
            let deg_buf = gpu.global_mut().alloc(4 * n as u64);
            gpu.global_mut().write_bytes(deg_buf, &pack_u32(&degrees));
            let edges = gpu.global_mut().alloc(4 * (n as u64) * MAX_DEG as u64);
            let edge_ids: Vec<u32> = (0..n * MAX_DEG).map(|_| rng.gen_range(0..n)).collect();
            gpu.global_mut().write_bytes(edges, &pack_u32(&edge_ids));
            let levels = gpu.global_mut().alloc(4 * n as u64);
            let lv: Vec<u32> = (0..n).map(|_| u32::from(rng.gen_bool(0.5))).collect();
            gpu.global_mut().write_bytes(levels, &pack_u32(&lv));
            let out = gpu.global_mut().alloc(4 * n as u64);
            let mut pb = ParamBlock::new();
            pb.push_u64(deg_buf);
            pb.push_u64(edges);
            pb.push_u64(levels);
            pb.push_u64(out);
            pb.finish()
        }),
        const_bank1: None,
    }
}
