//! Backward slicing with predicate cover and virtual barrier registers.
//!
//! For a stalled *use* instruction, the immediate dependency sources are
//! the first definitions of each used slot on every backward path — but
//! predicated definitions only partially kill earlier ones. The paper's
//! rule: the search continues until the union `P` of definition guards on
//! the path *contains* the use's guard `p′`, where `{Pi} ∪ {!Pi} = {_}`.

use gpa_cfg::Cfg;
use gpa_isa::{Function, Opcode, Predicate, Slot};
use std::collections::HashSet;

/// A compact set of guard literals: bits `2i`/`2i+1` are `Pi`/`!Pi`; the
/// catch-all `_` is represented by covering some pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Cover(u16);

const FULL_BIT: u16 = 1 << 14;

impl Cover {
    /// The empty cover.
    pub fn empty() -> Self {
        Cover(0)
    }

    /// Adds a guard literal (`None` is the catch-all `_`).
    pub fn with_guard(self, guard: Option<Predicate>) -> Self {
        match guard {
            None => Cover(self.0 | FULL_BIT),
            Some(p) if p.reg.is_true() => {
                if p.negated {
                    self // @!PT never executes; contributes nothing
                } else {
                    Cover(self.0 | FULL_BIT)
                }
            }
            Some(p) => {
                let bit = 2 * p.reg.index() as u16 + u16::from(p.negated);
                Cover(self.0 | (1 << bit))
            }
        }
    }

    /// Whether the union covers all executions.
    pub fn is_full(self) -> bool {
        if self.0 & FULL_BIT != 0 {
            return true;
        }
        (0..7).any(|i| {
            let pos = 1u16 << (2 * i);
            let neg = 1u16 << (2 * i + 1);
            self.0 & pos != 0 && self.0 & neg != 0
        })
    }

    /// Whether the union contains the use guard `p'` (the search-stop
    /// condition).
    pub fn contains(self, guard: Option<Predicate>) -> bool {
        if self.is_full() {
            return true;
        }
        match guard {
            None => false,
            Some(p) if p.reg.is_true() => false, // `_`/`@PT` needs full
            Some(p) => {
                let bit = 2 * p.reg.index() as u16 + u16::from(p.negated);
                self.0 & (1 << bit) != 0
            }
        }
    }

    /// Whether a definition with guard `g` can still reach a use with
    /// guard `use_guard` given this cover (i.e. it is not already killed
    /// and not disjoint from the use's condition).
    pub fn def_is_live(self, g: Option<Predicate>, use_guard: Option<Predicate>) -> bool {
        if self.is_full() {
            return false;
        }
        // A definition guarded by the complement of the use guard never
        // feeds it.
        if let (Some(g), Some(u)) = (g, use_guard) {
            if g.reg == u.reg && g.negated != u.negated && !g.reg.is_true() {
                return false;
            }
        }
        match g {
            None => true,
            Some(p) if p.reg.is_true() => !p.negated,
            Some(p) => {
                let bit = 2 * p.reg.index() as u16 + u16::from(p.negated);
                self.0 & (1 << bit) == 0
            }
        }
    }
}

fn defines(f: &Function, idx: usize, slot: Slot) -> bool {
    f.instrs[idx].defs().contains(&slot)
}

fn predecessors(cfg: &Cfg, idx: usize, out: &mut Vec<usize>) {
    out.clear();
    let b = cfg.block_of(idx);
    if idx > cfg.block(b).start {
        out.push(idx - 1);
    } else {
        for &p in cfg.preds(b) {
            out.push(cfg.block(p).end - 1);
        }
    }
}

/// Immediate dependency sources of `slot` at `use_idx`: the first
/// definitions on every backward path, continuing past predicated
/// definitions until the cover contains the use's guard.
pub fn immediate_defs(f: &Function, cfg: &Cfg, use_idx: usize, slot: Slot) -> Vec<usize> {
    search(f, cfg, use_idx, |f, idx| defines(f, idx, slot))
}

/// Immediate synchronization sources: the nearest `BAR.SYNC` on every
/// backward path (synchronization stalls are attributed to them).
pub fn nearest_barriers(f: &Function, cfg: &Cfg, use_idx: usize) -> Vec<usize> {
    search(f, cfg, use_idx, |f, idx| f.instrs[idx].opcode == Opcode::Bar)
}

fn search(
    f: &Function,
    cfg: &Cfg,
    use_idx: usize,
    is_def: impl Fn(&Function, usize) -> bool,
) -> Vec<usize> {
    let use_guard = f.instrs[use_idx].pred;
    let mut results: Vec<usize> = Vec::new();
    let mut visited: HashSet<(usize, Cover)> = HashSet::new();
    let mut stack: Vec<(usize, Cover)> = Vec::new();
    let mut preds = Vec::new();
    predecessors(cfg, use_idx, &mut preds);
    for &p in &preds {
        stack.push((p, Cover::empty()));
    }
    while let Some((idx, mut cover)) = stack.pop() {
        if !visited.insert((idx, cover)) {
            continue;
        }
        if is_def(f, idx) {
            let g = f.instrs[idx].pred;
            if cover.def_is_live(g, use_guard) && !results.contains(&idx) {
                results.push(idx);
            }
            cover = cover.with_guard(g);
            if cover.contains(use_guard) {
                continue; // this path is fully explained
            }
        }
        predecessors(cfg, idx, &mut preds);
        for &p in &preds {
            stack.push((p, cover));
        }
    }
    results.sort_unstable();
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_isa::{parse_module, BarrierReg, Register};

    fn setup(src: &str) -> (gpa_isa::Module, Cfg) {
        let m = parse_module(src).unwrap();
        let cfg = Cfg::build(m.function("k").unwrap());
        (m, cfg)
    }

    #[test]
    fn straight_line_def() {
        let (m, cfg) = setup(
            ".kernel k\n  MOV32I R0, 1 {S:1}\n  MOV32I R1, 2 {S:1}\n  IADD R2, R0, R1 {S:4}\n  EXIT\n.endfunc\n",
        );
        let f = m.function("k").unwrap();
        let defs = immediate_defs(f, &cfg, 2, Slot::Reg(Register::from_u8(0)));
        assert_eq!(defs, vec![0]);
    }

    /// Paper Figure 3: the LDG writes barrier B0; the BRA waits on B0 but
    /// consumes no register — the dependency flows through the virtual
    /// barrier register.
    #[test]
    fn figure3_barrier_register_dependency() {
        let (m, cfg) = setup(
            ".kernel k\n  LDG.E.32 R0, [R2:R3] {W:B0, S:1}\n  BRA out {WT:[B0], S:5}\nout:\n  EXIT\n.endfunc\n",
        );
        let f = m.function("k").unwrap();
        let defs = immediate_defs(f, &cfg, 1, Slot::Bar(BarrierReg::new(0).unwrap()));
        assert_eq!(defs, vec![0], "BRA's B0 wait traces back to the LDG");
    }

    /// Paper Figure 4a: the search must proceed past the predicated LDG
    /// until the predicates on the path cover the unpredicated use.
    #[test]
    fn figure4_predicate_cover() {
        let (m, cfg) = setup(
            r#"
.kernel k
  ISETP.LT.AND P0, R4, R5 {S:2}
  @!P0 LDC.32 R0, [R4] {W:B0, S:1}
  @P0 LDG.E.32 R0, [R2:R3] {W:B0, S:1}
  IADD R8, R0, R7 {WT:[B0], S:4}
  EXIT
.endfunc
"#,
        );
        let f = m.function("k").unwrap();
        let defs = immediate_defs(f, &cfg, 3, Slot::Reg(Register::from_u8(0)));
        assert_eq!(defs, vec![1, 2], "both predicated definitions are live");
    }

    #[test]
    fn unpredicated_def_stops_search() {
        let (m, cfg) = setup(
            r#"
.kernel k
  MOV32I R0, 7 {S:1}
  IMAD R0, R4, R5, R0 {S:5}
  @P0 LDG.E.32 R0, [R2:R3] {W:B0, S:1}
  IADD R8, R0, R7 {WT:[B0], S:4}
  EXIT
.endfunc
"#,
        );
        let f = m.function("k").unwrap();
        let defs = immediate_defs(f, &cfg, 3, Slot::Reg(Register::from_u8(0)));
        // The predicated LDG is live; the IMAD behind it covers `_` and
        // hides the MOV32I.
        assert_eq!(defs, vec![1, 2]);
    }

    #[test]
    fn complementary_def_is_dead_for_predicated_use() {
        let (m, cfg) = setup(
            r#"
.kernel k
  @!P0 MOV32I R0, 1 {S:1}
  @P0 MOV32I R0, 2 {S:1}
  @P0 IADD R8, R0, R7 {S:4}
  EXIT
.endfunc
"#,
        );
        let f = m.function("k").unwrap();
        let defs = immediate_defs(f, &cfg, 2, Slot::Reg(Register::from_u8(0)));
        assert_eq!(defs, vec![1], "the @!P0 definition cannot feed a @P0 use");
    }

    #[test]
    fn cross_iteration_def_found_through_back_edge() {
        let (m, cfg) = setup(
            r#"
.kernel k
  MOV32I R0, 0 {S:1}
top:
  IADD R1, R0, 1 {S:4}
  IADD R0, R1, 2 {S:4}
  ISETP.LT.AND P0, R0, 100 {S:2}
  @P0 BRA top {S:5}
  EXIT
.endfunc
"#,
        );
        let f = m.function("k").unwrap();
        // Use of R0 at the loop head: defs are the MOV before the loop and
        // the IADD at the bottom (through the back edge).
        let defs = immediate_defs(f, &cfg, 1, Slot::Reg(Register::from_u8(0)));
        assert_eq!(defs, vec![0, 2]);
    }

    #[test]
    fn nearest_barrier_found() {
        let (m, cfg) = setup(
            r#"
.kernel k
  BAR.SYNC {S:2}
  MOV R1, R2 {S:1}
  BAR.SYNC {S:2}
  IADD R3, R1, R1 {S:4}
  EXIT
.endfunc
"#,
        );
        let f = m.function("k").unwrap();
        assert_eq!(nearest_barriers(f, &cfg, 3), vec![2], "only the nearest BAR");
    }

    #[test]
    fn diamond_finds_defs_on_both_arms() {
        let (m, cfg) = setup(
            r#"
.kernel k
  ISETP.LT.AND P0, R4, R5 {S:2}
  @P0 BRA other {S:5}
  MOV32I R0, 1 {S:1}
  BRA join {S:5}
other:
  MOV32I R0, 2 {S:1}
join:
  IADD R8, R0, R7 {S:4}
  EXIT
.endfunc
"#,
        );
        let f = m.function("k").unwrap();
        let defs = immediate_defs(f, &cfg, 5, Slot::Reg(Register::from_u8(0)));
        assert_eq!(defs, vec![2, 4]);
    }
}
