//! The CUPTI-compatible stall taxonomy.

use std::fmt;

/// Why a sampled warp could not issue (or that it did).
///
/// This mirrors the stall reasons CUPTI's PC sampling attaches to samples.
/// `Selected` marks the issuing warp (an active sample with no stall);
/// every other variant is a *stall sample* in the paper's terminology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StallReason {
    /// The warp issued an instruction this cycle.
    Selected,
    /// The warp was ready but the scheduler picked another warp.
    NotSelected,
    /// Waiting on a fixed-latency arithmetic result, a shared-memory
    /// load, a WAR read barrier, or a transcendental.
    ExecutionDependency,
    /// Waiting on a global/local/constant memory value.
    MemoryDependency,
    /// Parked at `BAR.SYNC` until the whole block arrives.
    Synchronization,
    /// The LSU queue is full; memory instructions cannot issue.
    MemoryThrottle,
    /// The next instruction has not been fetched (i-cache miss or branch
    /// redirect).
    InstructionFetch,
    /// The functional pipe for this instruction is busy.
    PipeBusy,
    /// Anything else (drain after exit, launch overhead).
    Other,
    /// Waiting on a shared-memory access serialized by bank conflicts
    /// (hierarchy model only).
    BankConflict,
    /// Waiting on a global access that split into many sectors —
    /// uncoalesced addressing (hierarchy model only).
    Uncoalesced,
    /// All L1 MSHRs are occupied; misses cannot be tracked, so memory
    /// instructions cannot issue (hierarchy model only).
    MshrFull,
    /// The L2 request queue is full; misses cannot be forwarded
    /// (hierarchy model only).
    L2Queue,
}

impl StallReason {
    /// All reasons, for histograms and encoding.
    ///
    /// Order is a wire/storage contract: codes are positions in this
    /// array, and existing profiles persist them, so new reasons are only
    /// ever **appended** (the hierarchy-model reasons sit after `Other`,
    /// leaving codes 0–8 exactly as the flat model wrote them).
    pub const ALL: [StallReason; 13] = [
        StallReason::Selected,
        StallReason::NotSelected,
        StallReason::ExecutionDependency,
        StallReason::MemoryDependency,
        StallReason::Synchronization,
        StallReason::MemoryThrottle,
        StallReason::InstructionFetch,
        StallReason::PipeBusy,
        StallReason::Other,
        StallReason::BankConflict,
        StallReason::Uncoalesced,
        StallReason::MshrFull,
        StallReason::L2Queue,
    ];

    /// Dense code for array-indexed histograms.
    pub fn code(self) -> u8 {
        Self::ALL.iter().position(|&r| r == self).unwrap() as u8
    }

    /// Inverse of [`StallReason::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        Self::ALL.get(code as usize).copied()
    }

    /// Whether this sample counts as a stall sample (anything but
    /// `Selected`).
    pub fn is_stall(self) -> bool {
        self != StallReason::Selected
    }

    /// Whether the stall is caused by a *source* instruction rather than
    /// the stalled instruction itself — these are the reasons the paper's
    /// instruction blamer attributes backwards (memory dependency,
    /// execution dependency, synchronization).
    pub fn is_attributable(self) -> bool {
        matches!(
            self,
            StallReason::MemoryDependency
                | StallReason::ExecutionDependency
                | StallReason::Synchronization
                | StallReason::BankConflict
                | StallReason::Uncoalesced
        )
    }

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            StallReason::Selected => "selected",
            StallReason::NotSelected => "not_selected",
            StallReason::ExecutionDependency => "exec_dependency",
            StallReason::MemoryDependency => "memory_dependency",
            StallReason::Synchronization => "synchronization",
            StallReason::MemoryThrottle => "memory_throttle",
            StallReason::InstructionFetch => "inst_fetch",
            StallReason::PipeBusy => "pipe_busy",
            StallReason::Other => "other",
            StallReason::BankConflict => "bank_conflict",
            StallReason::Uncoalesced => "uncoalesced",
            StallReason::MshrFull => "mshr_full",
            StallReason::L2Queue => "l2_queue",
        }
    }
}

impl fmt::Display for StallReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for r in StallReason::ALL {
            assert_eq!(StallReason::from_code(r.code()), Some(r));
        }
        assert_eq!(StallReason::from_code(200), None);
    }

    #[test]
    fn classification() {
        assert!(!StallReason::Selected.is_stall());
        assert!(StallReason::NotSelected.is_stall());
        assert!(StallReason::MemoryDependency.is_attributable());
        assert!(StallReason::Synchronization.is_attributable());
        assert!(!StallReason::MemoryThrottle.is_attributable());
        assert!(StallReason::BankConflict.is_attributable());
        assert!(StallReason::Uncoalesced.is_attributable());
        assert!(!StallReason::MshrFull.is_attributable());
        assert!(!StallReason::L2Queue.is_attributable());
    }

    /// Codes 0–8 are persisted by pre-hierarchy profiles; appending the
    /// hierarchy reasons must not have disturbed them.
    #[test]
    fn legacy_codes_are_stable() {
        assert_eq!(StallReason::Selected.code(), 0);
        assert_eq!(StallReason::Other.code(), 8);
        assert_eq!(StallReason::BankConflict.code(), 9);
        assert_eq!(StallReason::Uncoalesced.code(), 10);
        assert_eq!(StallReason::MshrFull.code(), 11);
        assert_eq!(StallReason::L2Queue.code(), 12);
    }
}
