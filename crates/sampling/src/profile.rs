//! Aggregated kernel profiles.

use gpa_arch::{LaunchConfig, OccLimiter, Occupancy};
use gpa_json::Json;
use gpa_sim::{LaunchResult, RawSample, StallReason};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

const N_REASONS: usize = StallReason::ALL.len();

/// Sample statistics for one program counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PcStats {
    /// Total samples observed at this PC.
    pub total: u64,
    /// All samples by stall reason (indexed by [`StallReason::code`]).
    pub by_reason: [u64; N_REASONS],
    /// Latency samples (scheduler issued nothing) by stall reason.
    pub latency_by_reason: [u64; N_REASONS],
}

impl PcStats {
    /// Samples where this PC's warp was issuing (`Selected`).
    pub fn issued_samples(&self) -> u64 {
        self.by_reason[StallReason::Selected.code() as usize]
    }

    /// Samples with the given stall reason.
    pub fn stalls(&self, r: StallReason) -> u64 {
        self.by_reason[r.code() as usize]
    }

    /// Latency samples with the given stall reason.
    pub fn latency_stalls(&self, r: StallReason) -> u64 {
        self.latency_by_reason[r.code() as usize]
    }

    /// Total stall samples (everything but `Selected`).
    pub fn total_stalls(&self) -> u64 {
        self.total - self.issued_samples()
    }
}

/// A full PC-sampling profile of one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    /// Kernel (entry function) name.
    pub kernel: String,
    /// Module the kernel came from.
    pub module_name: String,
    /// Architecture tag.
    pub arch: String,
    /// Sampling period in cycles.
    pub period: u32,
    /// Launch configuration.
    pub launch: LaunchConfig,
    /// Achieved occupancy.
    pub occupancy: Occupancy,
    /// Ground-truth kernel cycles (for validating estimates).
    pub cycles: u64,
    /// Ground-truth instructions issued.
    pub issued: u64,
    /// Per-PC statistics.
    pub pcs: BTreeMap<u64, PcStats>,
    /// Total samples (`T` in the paper's estimators).
    pub total_samples: u64,
    /// Active samples (`A`): the scheduler issued in the sampled cycle.
    pub active_samples: u64,
    /// Latency samples (`L = T − A`).
    pub latency_samples: u64,
    /// Global-memory transactions (32-byte sectors).
    pub mem_transactions: u64,
    /// L2 hits/misses.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Instruction-cache misses.
    pub icache_misses: u64,
}

impl KernelProfile {
    /// Aggregates a launch's raw samples into a profile.
    pub fn from_launch(
        kernel: &str,
        module_name: &str,
        arch: &str,
        period: u32,
        result: &LaunchResult,
    ) -> Self {
        let mut pcs: BTreeMap<u64, PcStats> = BTreeMap::new();
        let mut total = 0u64;
        let mut active = 0u64;
        for s in &result.samples {
            let e = pcs.entry(s.pc).or_default();
            e.total += 1;
            e.by_reason[s.stall.code() as usize] += 1;
            if !s.scheduler_active {
                e.latency_by_reason[s.stall.code() as usize] += 1;
            }
            total += 1;
            if s.scheduler_active {
                active += 1;
            }
        }
        KernelProfile {
            kernel: kernel.to_string(),
            module_name: module_name.to_string(),
            arch: arch.to_string(),
            period,
            launch: result.launch,
            occupancy: result.occupancy,
            cycles: result.cycles,
            issued: result.issued,
            pcs,
            total_samples: total,
            active_samples: active,
            latency_samples: total - active,
            mem_transactions: result.mem_transactions,
            l2_hits: result.l2_hits,
            l2_misses: result.l2_misses,
            icache_misses: result.icache_misses,
        }
    }

    /// Kernel-level stall histogram over all samples.
    pub fn stall_histogram(&self) -> [u64; N_REASONS] {
        let mut h = [0u64; N_REASONS];
        for st in self.pcs.values() {
            for (i, c) in st.by_reason.iter().enumerate() {
                h[i] += c;
            }
        }
        h
    }

    /// Kernel-level latency-sample histogram.
    pub fn latency_histogram(&self) -> [u64; N_REASONS] {
        let mut h = [0u64; N_REASONS];
        for st in self.pcs.values() {
            for (i, c) in st.latency_by_reason.iter().enumerate() {
                h[i] += c;
            }
        }
        h
    }

    /// The issue ratio `R_I` — the fraction of samples in which the
    /// sampled scheduler was issuing (Eq. 8's input).
    pub fn issue_ratio(&self) -> f64 {
        if self.total_samples == 0 {
            return 0.0;
        }
        self.active_samples as f64 / self.total_samples as f64
    }

    /// Stats for one PC, if sampled.
    pub fn pc(&self, pc: u64) -> Option<&PcStats> {
        self.pcs.get(&pc)
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        let pcs = Json::Obj(
            self.pcs
                .iter()
                .map(|(pc, st)| {
                    let stats = Json::object()
                        .with("total", st.total)
                        .with("by_reason", st.by_reason.to_vec())
                        .with("latency_by_reason", st.latency_by_reason.to_vec());
                    (pc.to_string(), stats)
                })
                .collect(),
        );
        Json::object()
            .with("kernel", self.kernel.clone())
            .with("module_name", self.module_name.clone())
            .with("arch", self.arch.clone())
            .with("period", self.period)
            .with(
                "launch",
                Json::object()
                    .with("grid_blocks", self.launch.grid_blocks)
                    .with("block_threads", self.launch.block_threads)
                    .with("regs_per_thread", self.launch.regs_per_thread)
                    .with("smem_per_block", self.launch.smem_per_block),
            )
            .with(
                "occupancy",
                Json::object()
                    .with("blocks_per_sm", self.occupancy.blocks_per_sm)
                    .with("warps_per_sm", self.occupancy.warps_per_sm)
                    .with("warps_per_scheduler", self.occupancy.warps_per_scheduler)
                    .with("limiter", limiter_str(self.occupancy.limiter))
                    .with("ratio", self.occupancy.ratio),
            )
            .with("cycles", self.cycles)
            .with("issued", self.issued)
            .with("pcs", pcs)
            .with("total_samples", self.total_samples)
            .with("active_samples", self.active_samples)
            .with("latency_samples", self.latency_samples)
            .with("mem_transactions", self.mem_transactions)
            .with("l2_hits", self.l2_hits)
            .with("l2_misses", self.l2_misses)
            .with("icache_misses", self.icache_misses)
            .pretty()
    }

    /// Parses a profile from JSON text.
    ///
    /// # Errors
    ///
    /// Returns a [`gpa_json::JsonError`] on malformed input.
    pub fn from_json(s: &str) -> gpa_json::Result<Self> {
        Self::from_doc(&Json::parse(s)?)
    }

    /// Builds a profile from an already-parsed JSON document (e.g. a
    /// subtree of a larger request object).
    ///
    /// # Errors
    ///
    /// Returns a [`gpa_json::JsonError`] when fields are missing or of
    /// the wrong type.
    pub fn from_doc(doc: &Json) -> gpa_json::Result<Self> {
        let launch = doc.field("launch")?;
        let occ = doc.field("occupancy")?;
        let mut pcs = BTreeMap::new();
        for (key, stats) in doc.field("pcs")?.entries()? {
            let pc: u64 = key
                .parse()
                .map_err(|_| gpa_json::JsonError::from_msg(format!("bad pc key `{key}`")))?;
            pcs.insert(
                pc,
                PcStats {
                    total: stats.field("total")?.as_u64()?,
                    by_reason: reason_array(stats.field("by_reason")?)?,
                    latency_by_reason: reason_array(stats.field("latency_by_reason")?)?,
                },
            );
        }
        Ok(KernelProfile {
            kernel: doc.field("kernel")?.as_str()?.to_string(),
            module_name: doc.field("module_name")?.as_str()?.to_string(),
            arch: doc.field("arch")?.as_str()?.to_string(),
            period: doc.field("period")?.as_u32()?,
            launch: LaunchConfig {
                grid_blocks: launch.field("grid_blocks")?.as_u32()?,
                block_threads: launch.field("block_threads")?.as_u32()?,
                regs_per_thread: launch.field("regs_per_thread")?.as_u32()?,
                smem_per_block: launch.field("smem_per_block")?.as_u32()?,
            },
            occupancy: Occupancy {
                blocks_per_sm: occ.field("blocks_per_sm")?.as_u32()?,
                warps_per_sm: occ.field("warps_per_sm")?.as_u32()?,
                warps_per_scheduler: occ.field("warps_per_scheduler")?.as_f64()?,
                limiter: limiter_from_str(occ.field("limiter")?.as_str()?)?,
                ratio: occ.field("ratio")?.as_f64()?,
            },
            cycles: doc.field("cycles")?.as_u64()?,
            issued: doc.field("issued")?.as_u64()?,
            pcs,
            total_samples: doc.field("total_samples")?.as_u64()?,
            active_samples: doc.field("active_samples")?.as_u64()?,
            latency_samples: doc.field("latency_samples")?.as_u64()?,
            mem_transactions: doc.field("mem_transactions")?.as_u64()?,
            l2_hits: doc.field("l2_hits")?.as_u64()?,
            l2_misses: doc.field("l2_misses")?.as_u64()?,
            icache_misses: doc.field("icache_misses")?.as_u64()?,
        })
    }

    /// Writes the profile to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Reads a profile from a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; malformed JSON maps to
    /// [`io::ErrorKind::InvalidData`].
    pub fn load(path: &Path) -> io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

fn limiter_str(l: OccLimiter) -> &'static str {
    match l {
        OccLimiter::Warps => "Warps",
        OccLimiter::Registers => "Registers",
        OccLimiter::SharedMem => "SharedMem",
        OccLimiter::Blocks => "Blocks",
        OccLimiter::GridSize => "GridSize",
    }
}

fn limiter_from_str(s: &str) -> gpa_json::Result<OccLimiter> {
    Ok(match s {
        "Warps" => OccLimiter::Warps,
        "Registers" => OccLimiter::Registers,
        "SharedMem" => OccLimiter::SharedMem,
        "Blocks" => OccLimiter::Blocks,
        "GridSize" => OccLimiter::GridSize,
        _ => return Err(gpa_json::JsonError::from_msg(format!("unknown limiter `{s}`"))),
    })
}

fn reason_array(v: &Json) -> gpa_json::Result<[u64; N_REASONS]> {
    let items = v.as_array()?;
    if items.len() != N_REASONS {
        return Err(gpa_json::JsonError::from_msg(format!(
            "expected {N_REASONS} stall-reason counters, got {}",
            items.len()
        )));
    }
    let mut out = [0u64; N_REASONS];
    for (slot, item) in out.iter_mut().zip(items) {
        *slot = item.as_u64()?;
    }
    Ok(out)
}

/// Builds the paper's Figure 1 style classification for a sample.
///
/// Returns `(is_active, is_latency, is_stall)`.
pub fn classify_sample(s: &RawSample) -> (bool, bool, bool) {
    (s.scheduler_active, !s.scheduler_active, s.stall.is_stall())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_arch::ArchConfig;

    fn fake_result(samples: Vec<RawSample>) -> LaunchResult {
        let arch = ArchConfig::small(1);
        let launch = LaunchConfig::new(1, 32);
        LaunchResult {
            cycles: 1000,
            issued: 100,
            samples,
            issue_counts: Default::default(),
            mem_transactions: 5,
            l2_hits: 3,
            l2_misses: 2,
            icache_misses: 1,
            occupancy: arch.occupancy(&launch),
            launch,
            sm_stats: vec![],
        }
    }

    fn sample(pc: u64, stall: StallReason, active: bool) -> RawSample {
        RawSample { sm: 0, scheduler: 0, cycle: 0, pc, stall, scheduler_active: active }
    }

    #[test]
    fn aggregation_matches_figure1_model() {
        // Figure 1: six samples — three latency (all stalls), two active
        // with stalls (other warp issued), one active issuing.
        let samples = vec![
            sample(0x10, StallReason::MemoryDependency, false),
            sample(0x20, StallReason::Selected, true),
            sample(0x10, StallReason::ExecutionDependency, true),
            sample(0x30, StallReason::MemoryDependency, false),
            sample(0x10, StallReason::NotSelected, true),
            sample(0x30, StallReason::Synchronization, false),
        ];
        let p = KernelProfile::from_launch("k", "m", "volta", 509, &fake_result(samples));
        assert_eq!(p.total_samples, 6);
        assert_eq!(p.active_samples, 3);
        assert_eq!(p.latency_samples, 3);
        assert_eq!(p.issue_ratio(), 0.5);
        let stalls: u64 = StallReason::ALL
            .iter()
            .filter(|r| r.is_stall())
            .map(|r| p.stall_histogram()[r.code() as usize])
            .sum();
        assert_eq!(stalls, 5, "five stall samples");
        let at10 = p.pc(0x10).unwrap();
        assert_eq!(at10.total, 3);
        assert_eq!(at10.stalls(StallReason::MemoryDependency), 1);
        assert_eq!(at10.latency_stalls(StallReason::MemoryDependency), 1);
        assert_eq!(at10.latency_stalls(StallReason::ExecutionDependency), 0);
    }

    #[test]
    fn json_roundtrip() {
        let samples = vec![
            sample(0x10, StallReason::MemoryDependency, false),
            sample(0x20, StallReason::Selected, true),
        ];
        let p = KernelProfile::from_launch("k", "m", "volta", 509, &fake_result(samples));
        let p2 = KernelProfile::from_json(&p.to_json()).unwrap();
        assert_eq!(p, p2);
    }

    /// A small valid profile's JSON text, as surgery material for the
    /// error-path tests below.
    fn valid_profile_text() -> String {
        let samples = vec![
            sample(0x10, StallReason::MemoryDependency, false),
            sample(0x20, StallReason::Selected, true),
        ];
        KernelProfile::from_launch("k", "m", "volta", 509, &fake_result(samples)).to_json()
    }

    #[test]
    fn missing_fields_are_named_in_the_error() {
        let text = valid_profile_text();
        for field in ["kernel", "arch", "period", "launch", "occupancy", "pcs", "cycles"] {
            let broken = text.replacen(&format!("\"{field}\""), "\"_gone\"", 1);
            let err = KernelProfile::from_json(&broken).unwrap_err();
            assert!(
                err.to_string().contains(&format!("missing field `{field}`")),
                "dropping {field}: {err}"
            );
        }
    }

    #[test]
    fn wrong_types_are_type_errors_not_panics() {
        let text = valid_profile_text();
        for (needle, replacement, expect) in [
            ("\"period\": 509", "\"period\": \"509\"", "expected unsigned integer"),
            ("\"kernel\": \"k\"", "\"kernel\": 7", "expected string"),
            ("\"cycles\": 1000", "\"cycles\": -5", "expected unsigned integer"),
            ("\"period\": 509", "\"period\": 99999999999", "exceeds u32"),
        ] {
            assert!(text.contains(needle), "surgery target {needle:?} present");
            let broken = text.replacen(needle, replacement, 1);
            let err = KernelProfile::from_json(&broken).unwrap_err();
            assert!(err.to_string().contains(expect), "{replacement}: {err}");
        }
    }

    #[test]
    fn bad_pc_keys_and_reason_arrays_are_rejected() {
        let text = valid_profile_text();
        let broken = text.replacen("\"16\"", "\"sixteen\"", 1);
        let err = KernelProfile::from_json(&broken).unwrap_err();
        assert!(err.to_string().contains("bad pc key `sixteen`"), "{err}");

        // One counter short in a by_reason array: mutate the parsed
        // document so the test is independent of pretty-print layout.
        let mut doc = Json::parse(&text).unwrap();
        let Json::Obj(fields) = &mut doc else { panic!("profile is an object") };
        let pcs = fields.iter_mut().find(|(k, _)| k == "pcs").map(|(_, v)| v).unwrap();
        let Json::Obj(pc_entries) = pcs else { panic!("pcs is an object") };
        let Json::Obj(stats) = &mut pc_entries[0].1 else { panic!("stats is an object") };
        let reasons = stats.iter_mut().find(|(k, _)| k == "by_reason").map(|(_, v)| v).unwrap();
        let Json::Arr(counters) = reasons else { panic!("by_reason is an array") };
        counters.pop();
        let err = KernelProfile::from_doc(&doc).unwrap_err();
        assert!(err.to_string().contains("stall-reason counters"), "{err}");
    }

    #[test]
    fn unknown_limiter_is_rejected() {
        let text = valid_profile_text();
        let limiter = format!("\"limiter\": \"{:?}\"", OccLimiter::GridSize);
        assert!(text.contains(&limiter), "surgery target present in {text}");
        let broken = text.replacen(&limiter, "\"limiter\": \"Vibes\"", 1);
        let err = KernelProfile::from_json(&broken).unwrap_err();
        assert!(err.to_string().contains("unknown limiter `Vibes`"), "{err}");
    }

    #[test]
    fn truncated_input_is_a_parse_error_at_every_cut() {
        let text = valid_profile_text();
        // Cut at several byte offsets, including mid-string and
        // mid-number; every prefix must fail cleanly.
        for cut in [1, text.len() / 4, text.len() / 2, text.len() - 2] {
            let truncated = &text[..cut];
            assert!(KernelProfile::from_json(truncated).is_err(), "accepted a {cut}-byte prefix");
        }
    }

    #[test]
    fn non_object_documents_are_rejected() {
        for doc in ["[]", "42", "\"profile\"", "null", "true"] {
            assert!(KernelProfile::from_json(doc).is_err(), "accepted {doc}");
        }
    }

    #[test]
    fn empty_profile_is_safe() {
        let p = KernelProfile::from_launch("k", "m", "volta", 509, &fake_result(vec![]));
        assert_eq!(p.total_samples, 0);
        assert_eq!(p.issue_ratio(), 0.0);
        assert!(p.pc(0x10).is_none());
    }
}

impl PcStats {
    /// Total latency samples (scheduler idle) at this PC.
    pub fn latency_total(&self) -> u64 {
        self.latency_by_reason.iter().sum()
    }

    /// Total active samples (scheduler issuing) at this PC.
    pub fn active_total(&self) -> u64 {
        self.total - self.latency_total()
    }
}
