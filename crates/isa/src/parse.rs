//! The textual assembler.
//!
//! Grammar (line oriented; `#` and `//` start comments):
//!
//! ```text
//! .module <name>
//! .arch <name>
//! .kernel <name>            # begin a global function
//! .func <name>              # begin a device function
//! .line <file> <line>       # source mapping for following instructions
//! .inline push <callee> <file> <line>
//! .inline pop
//! .endfunc
//! <label>:
//!   [@[!]Pn] MNEMONIC[.MOD]* [op {, op}] [{ctrl}]
//! ```
//!
//! Operands: `R7`, `RZ`, `R2:R3` (64-bit pair), `P3`, `PT`, `SR_TID.X`,
//! integer immediates (`42`, `-8`, `0x1f`), float immediates (`2.0`),
//! `c[0][0x160]`, memory refs `[R2:R3+0x10]`, and label / function names
//! for branch targets. Control items: `S:<n>`, `Y`, `W:Bn`, `R:Bn`,
//! `WT:[B0,B1]`.

use crate::control::ControlCode;
use crate::instruction::{Instruction, Modifier};
use crate::module::{FixupTarget, Function, InlineFrame, Module, SourceLoc, Visibility};
use crate::opcode::Opcode;
use crate::operand::{MemRef, Operand};
use crate::register::{BarrierReg, PredReg, Predicate, Register, SpecialReg};
use crate::{IsaError, Result};

/// Parses a whole module from assembly text and links it.
///
/// # Errors
///
/// Returns [`IsaError::ParseError`] (with a 1-based line number) on syntax
/// errors, or the linking errors of [`Module::link`].
pub fn parse_module(src: &str) -> Result<Module> {
    let mut p = Parser::new();
    for (ln, raw) in src.lines().enumerate() {
        p.line(ln + 1, raw)?;
    }
    p.finish()
}

struct Parser {
    module: Module,
    cur: Option<Function>,
    cur_index: usize,
    cur_loc: Option<SourceLoc>,
    cur_stack: Vec<InlineFrame>,
    pending_fixups: Vec<(usize, usize, FixupTarget)>,
}

fn err(line: usize, message: impl Into<String>) -> IsaError {
    IsaError::ParseError { line, message: message.into() }
}

impl Parser {
    fn new() -> Self {
        Parser {
            module: Module::new("module"),
            cur: None,
            cur_index: 0,
            cur_loc: None,
            cur_stack: Vec::new(),
            pending_fixups: Vec::new(),
        }
    }

    fn line(&mut self, ln: usize, raw: &str) -> Result<()> {
        let mut text = raw;
        if let Some(i) = text.find('#') {
            text = &text[..i];
        }
        if let Some(i) = text.find("//") {
            text = &text[..i];
        }
        let text = text.trim();
        if text.is_empty() {
            return Ok(());
        }
        if let Some(rest) = text.strip_prefix('.') {
            return self.directive(ln, rest);
        }
        if let Some(label) = text.strip_suffix(':') {
            let label = label.trim();
            if !is_ident(label) {
                return Err(err(ln, format!("bad label `{label}`")));
            }
            let f = self.cur.as_mut().ok_or_else(|| err(ln, "label outside function"))?;
            let at = f.instrs.len();
            if f.labels.insert(label.to_string(), at).is_some() {
                return Err(err(ln, format!("duplicate label `{label}`")));
            }
            return Ok(());
        }
        self.instruction(ln, text)
    }

    fn directive(&mut self, ln: usize, rest: &str) -> Result<()> {
        let mut it = rest.split_whitespace();
        let name = it.next().unwrap_or("");
        match name {
            "module" => {
                self.module.name =
                    it.next().ok_or_else(|| err(ln, ".module needs a name"))?.to_string();
            }
            "arch" => {
                self.module.arch =
                    it.next().ok_or_else(|| err(ln, ".arch needs a name"))?.to_string();
            }
            "kernel" | "func" => {
                if self.cur.is_some() {
                    return Err(err(ln, "nested function (missing .endfunc?)"));
                }
                let fname = it.next().ok_or_else(|| err(ln, "function needs a name"))?;
                let vis = if name == "kernel" { Visibility::Global } else { Visibility::Device };
                self.cur = Some(Function::new(fname, vis));
                self.cur_loc = None;
                self.cur_stack.clear();
            }
            "endfunc" => {
                let f = self.cur.take().ok_or_else(|| err(ln, ".endfunc outside function"))?;
                let fi = self.module.add_function(f).map_err(|e| err(ln, e.to_string()))?;
                self.cur_index = fi + 1;
                for (instr, slot, target) in self.pending_fixups.drain(..) {
                    self.module.add_fixup(fi, instr, slot, target);
                }
            }
            "line" => {
                let file = it.next().ok_or_else(|| err(ln, ".line needs a file"))?;
                let line: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(ln, ".line needs a line number"))?;
                let file = self.module.add_file(file);
                self.cur_loc = Some(SourceLoc { file, line });
            }
            "inline" => match it.next() {
                Some("push") => {
                    let callee = it.next().ok_or_else(|| err(ln, ".inline push needs a callee"))?;
                    let file = it.next().ok_or_else(|| err(ln, ".inline push needs a file"))?;
                    let line: u32 = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err(ln, ".inline push needs a line"))?;
                    let file = self.module.add_file(file);
                    self.cur_stack.push(InlineFrame {
                        callee: callee.to_string(),
                        call_loc: SourceLoc { file, line },
                    });
                }
                Some("pop") => {
                    self.cur_stack
                        .pop()
                        .ok_or_else(|| err(ln, ".inline pop without matching push"))?;
                }
                _ => return Err(err(ln, ".inline expects push/pop")),
            },
            other => return Err(err(ln, format!("unknown directive `.{other}`"))),
        }
        Ok(())
    }

    fn instruction(&mut self, ln: usize, text: &str) -> Result<()> {
        if self.cur.is_none() {
            return Err(err(ln, "instruction outside function"));
        }
        // Split off the `{ctrl}` suffix first: its commas are not operand
        // separators.
        let (body, ctrl) = match text.find('{') {
            Some(i) => {
                let close = text.rfind('}').ok_or_else(|| err(ln, "unterminated `{`"))?;
                (text[..i].trim(), Some(&text[i + 1..close]))
            }
            None => (text, None),
        };
        let mut rest = body;
        let mut pred = None;
        if let Some(after) = rest.strip_prefix('@') {
            let (ptok, tail) =
                after.split_once(char::is_whitespace).ok_or_else(|| err(ln, "lone predicate"))?;
            let negated = ptok.starts_with('!');
            let pname = ptok.trim_start_matches('!');
            let reg =
                parse_pred(pname).ok_or_else(|| err(ln, format!("bad predicate `{ptok}`")))?;
            pred = Some(Predicate { reg, negated });
            rest = tail.trim();
        }
        let (mnemonic, tail) = match rest.split_once(char::is_whitespace) {
            Some((m, t)) => (m, t.trim()),
            None => (rest, ""),
        };
        let mut parts = mnemonic.split('.');
        let opname = parts.next().unwrap_or("");
        let opcode = Opcode::from_name(opname)
            .ok_or_else(|| err(ln, format!("unknown opcode `{opname}`")))?;
        let mut mods = Vec::new();
        for m in parts {
            mods.push(
                Modifier::from_name(m)
                    .ok_or_else(|| err(ln, format!("unknown modifier `.{m}`")))?,
            );
        }
        let mut operands: Vec<ParsedOperand> = Vec::new();
        if !tail.is_empty() {
            for tok in tail.split(',') {
                let tok = tok.trim();
                if tok.is_empty() {
                    return Err(err(ln, "empty operand"));
                }
                operands.push(parse_operand(ln, tok)?);
            }
        }
        // Re-join tokens split inside `[...]` or `c[..][..]`: those contain
        // no commas in our syntax, so nothing to re-join; the split above is
        // safe.
        let ctrl = match ctrl {
            Some(c) => parse_ctrl(ln, c)?,
            None => ControlCode::none(),
        };
        let ndst = dst_count(opcode, &operands);
        let mut dsts = Vec::new();
        let mut srcs = Vec::new();
        let mut fixups = Vec::new();
        for (i, op) in operands.into_iter().enumerate() {
            match op {
                ParsedOperand::Concrete(o) => {
                    if i < ndst {
                        dsts.push(o);
                    } else {
                        srcs.push(o);
                    }
                }
                ParsedOperand::Symbol(s) => {
                    if i < ndst {
                        return Err(err(ln, format!("symbol `{s}` cannot be a destination")));
                    }
                    let slot = srcs.len();
                    srcs.push(Operand::Imm(0));
                    let target = if opcode == Opcode::Cal {
                        FixupTarget::Function(s)
                    } else {
                        FixupTarget::Label(s)
                    };
                    fixups.push((slot, target));
                }
            }
        }
        let f = self.cur.as_mut().expect("checked above");
        let at = f.instrs.len();
        f.instrs.push(Instruction { pred, opcode, mods, dsts, srcs, ctrl });
        f.lines.push(self.cur_loc);
        f.inline_stacks.push(self.cur_stack.clone());
        for (slot, target) in fixups {
            self.pending_fixups.push((at, slot, target));
        }
        Ok(())
    }

    fn finish(mut self) -> Result<Module> {
        if let Some(f) = &self.cur {
            return Err(IsaError::ModuleError(format!("function `{}` missing .endfunc", f.name)));
        }
        self.module.link()?;
        Ok(self.module)
    }
}

enum ParsedOperand {
    Concrete(Operand),
    Symbol(String),
}

/// How many leading operands are destinations for this opcode.
fn dst_count(opcode: Opcode, operands: &[ParsedOperand]) -> usize {
    use Opcode::*;
    match opcode {
        // Stores and control flow have no register destinations.
        Stg | Sts | Stl | Membar | Bra | Exit | Cal | Ret | Bssy | Bsync | Bar | Nop => 0,
        // Everything else writes its first operand (loads, ALU, setp, ...).
        _ => usize::from(!operands.is_empty()),
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$')
}

fn parse_pred(s: &str) -> Option<PredReg> {
    if s == "PT" {
        return Some(PredReg::TRUE);
    }
    let n: u32 = s.strip_prefix('P')?.parse().ok()?;
    if n > 6 {
        return None;
    }
    PredReg::new(n).ok()
}

fn parse_reg(s: &str) -> Option<Register> {
    if s == "RZ" {
        return Some(Register::ZERO);
    }
    let n: u32 = s.strip_prefix('R')?.parse().ok()?;
    if n > 254 {
        return None;
    }
    Register::new(n).ok()
}

fn parse_int(s: &str) -> Option<i64> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        body.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

fn parse_operand(ln: usize, tok: &str) -> Result<ParsedOperand> {
    use ParsedOperand::{Concrete, Symbol};
    // Memory reference.
    if let Some(inner) = tok.strip_prefix('[') {
        let inner = inner.strip_suffix(']').ok_or_else(|| err(ln, "unterminated `[`"))?;
        // Split base from +/- offset. Watch out: pair syntax R2:R3 has no sign.
        let (base_txt, off) = match inner.find(['+', '-']) {
            Some(i) => {
                let (b, o) = inner.split_at(i);
                let off = parse_int(o.trim_start_matches('+'))
                    .ok_or_else(|| err(ln, format!("bad offset `{o}`")))?;
                (b, off)
            }
            None => (inner, 0),
        };
        let (base, wide) = parse_base(base_txt)
            .ok_or_else(|| err(ln, format!("bad address base `{base_txt}`")))?;
        let offset = i32::try_from(off).map_err(|_| err(ln, "offset exceeds 32 bits"))?;
        return Ok(Concrete(Operand::Mem(MemRef { base, offset, wide })));
    }
    // Constant memory.
    if let Some(rest) = tok.strip_prefix("c[") {
        let close = rest.find(']').ok_or_else(|| err(ln, "bad constant operand"))?;
        let bank: u8 = parse_int(&rest[..close])
            .and_then(|v| u8::try_from(v).ok())
            .ok_or_else(|| err(ln, "bad constant bank"))?;
        let rest2 =
            rest[close + 1..].strip_prefix('[').ok_or_else(|| err(ln, "bad constant operand"))?;
        let close2 = rest2.find(']').ok_or_else(|| err(ln, "bad constant operand"))?;
        let offset: u16 = parse_int(&rest2[..close2])
            .and_then(|v| u16::try_from(v).ok())
            .ok_or_else(|| err(ln, "bad constant offset"))?;
        return Ok(Concrete(Operand::CMem { bank, offset }));
    }
    // Special register.
    if tok.starts_with("SR_") {
        let s = SpecialReg::from_name(tok)
            .ok_or_else(|| err(ln, format!("unknown special register `{tok}`")))?;
        return Ok(Concrete(Operand::SReg(s)));
    }
    // Register pair.
    if let Some((lo, hi)) = tok.split_once(':') {
        let (lo, hi) = (
            parse_reg(lo).ok_or_else(|| err(ln, format!("bad register `{lo}`")))?,
            parse_reg(hi).ok_or_else(|| err(ln, format!("bad register `{hi}`")))?,
        );
        if lo.pair_hi() != hi {
            return Err(err(ln, format!("pair `{tok}` is not consecutive")));
        }
        return Ok(Concrete(Operand::RegPair(lo)));
    }
    if let Some(r) = parse_reg(tok) {
        return Ok(Concrete(Operand::Reg(r)));
    }
    if let Some(p) = parse_pred(tok) {
        return Ok(Concrete(Operand::Pred(p)));
    }
    // Float immediate: contains '.' and is not hex.
    if !tok.starts_with("0x") && !tok.starts_with("-0x") && tok.contains('.') {
        if let Ok(v) = tok.parse::<f64>() {
            return Ok(Concrete(Operand::FImm(v)));
        }
    }
    if let Some(v) = parse_int(tok) {
        return Ok(Concrete(Operand::Imm(v)));
    }
    if is_ident(tok) {
        return Ok(Symbol(tok.to_string()));
    }
    Err(err(ln, format!("cannot parse operand `{tok}`")))
}

fn parse_base(s: &str) -> Option<(Register, bool)> {
    if let Some((lo, hi)) = s.split_once(':') {
        let lo = parse_reg(lo.trim())?;
        let hi = parse_reg(hi.trim())?;
        if lo.pair_hi() != hi {
            return None;
        }
        Some((lo, true))
    } else {
        Some((parse_reg(s.trim())?, false))
    }
}

fn parse_barrier(ln: usize, s: &str) -> Result<BarrierReg> {
    let n: u32 = s
        .strip_prefix('B')
        .and_then(|b| b.parse().ok())
        .ok_or_else(|| err(ln, format!("bad barrier `{s}`")))?;
    BarrierReg::new(n).map_err(|e| err(ln, e.to_string()))
}

fn parse_ctrl(ln: usize, text: &str) -> Result<ControlCode> {
    let mut c = ControlCode::none();
    // Wait lists contain commas; extract them before splitting.
    let mut rest = text.to_string();
    if let Some(i) = rest.find("WT:[") {
        let close = rest[i..].find(']').ok_or_else(|| err(ln, "unterminated wait list"))? + i;
        let list = rest[i + 4..close].to_string();
        for b in list.split(',') {
            let b = b.trim();
            if !b.is_empty() {
                c = c.with_wait(parse_barrier(ln, b)?);
            }
        }
        rest.replace_range(i..=close, "");
    }
    for item in rest.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        if item == "Y" {
            c.yield_flag = true;
        } else if let Some(v) = item.strip_prefix("S:") {
            let n: u8 = v.trim().parse().map_err(|_| err(ln, format!("bad stall count `{v}`")))?;
            if n > 15 {
                return Err(err(ln, "stall count must be 0..=15"));
            }
            c.stall = n;
        } else if let Some(v) = item.strip_prefix("W:") {
            c.write_barrier = Some(parse_barrier(ln, v.trim())?);
        } else if let Some(v) = item.strip_prefix("R:") {
            c.read_barrier = Some(parse_barrier(ln, v.trim())?);
        } else {
            return Err(err(ln, format!("unknown control item `{item}`")));
        }
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::Slot;

    const DEMO: &str = r#"
.module demo
.arch volta
.kernel main
.line demo.cu 10
  S2R R0, SR_TID.X {W:B0, S:1}
  MOV32I R1, 0x80 {S:1}
  ISETP.LT.AND P0, R0, R1 {WT:[B0], S:2}
top:
.line demo.cu 12
  @P0 LDG.E.32 R4, [R2:R3+0x10] {W:B1, S:1}
  @!P0 LDC.32 R4, c[0][0x20] {W:B1, S:1}
  IADD R5, R4, 1 {WT:[B1], S:4}
  ISETP.LT.AND P1, R5, R1 {S:2}
  @P1 BRA top {S:5}
  CAL helper {S:5}
  EXIT
.endfunc
.func helper
  RET {S:5}
.endfunc
"#;

    #[test]
    fn parse_demo() {
        let m = parse_module(DEMO).unwrap();
        assert_eq!(m.name, "demo");
        assert_eq!(m.functions.len(), 2);
        let main = m.function("main").unwrap();
        assert_eq!(main.visibility, Visibility::Global);
        assert_eq!(main.instrs.len(), 10);
        // Branch resolves to label `top` (index 3).
        assert_eq!(main.instrs[7].branch_target(), Some(main.pc_of(3)));
        // Call resolves to `helper`'s base.
        let helper = m.function("helper").unwrap();
        assert_eq!(main.instrs[8].branch_target(), Some(helper.base));
        // Line info attaches.
        assert_eq!(main.lines[0], Some(SourceLoc { file: 0, line: 10 }));
        assert_eq!(main.lines[3], Some(SourceLoc { file: 0, line: 12 }));
        // Wait masks parse into barrier uses.
        assert!(main.instrs[5].uses().contains(&Slot::Bar(BarrierReg::new(1).unwrap())));
    }

    #[test]
    fn roundtrip_print_parse() {
        let m = parse_module(DEMO).unwrap();
        let text = m.write_asm();
        let m2 = parse_module(&text).unwrap();
        assert_eq!(m, m2, "print → parse must be a fixed point\n{text}");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = ".module x\n.kernel k\n  FROB R0\n.endfunc\n";
        match parse_module(bad) {
            Err(IsaError::ParseError { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn store_operand_order() {
        let src = ".kernel k\n  STG.E.32 [R2:R3], R0 {S:1}\n  EXIT\n.endfunc\n";
        let m = parse_module(src).unwrap();
        let st = &m.function("k").unwrap().instrs[0];
        assert!(st.dsts.is_empty());
        assert_eq!(st.srcs.len(), 2);
        assert_eq!(st.store_data_regs(), vec![Register::from_u8(0)]);
    }

    #[test]
    fn negative_offsets_and_floats() {
        let src = ".kernel k\n  LDS.32 R0, [R1-0x8] {W:B0,S:1}\n  FMUL R2, R0, -0.5 {WT:[B0],S:4}\n  EXIT\n.endfunc\n";
        let m = parse_module(src).unwrap();
        let f = m.function("k").unwrap();
        match f.instrs[0].srcs[0] {
            Operand::Mem(mr) => assert_eq!(mr.offset, -8),
            ref o => panic!("expected mem operand, got {o:?}"),
        }
        assert_eq!(f.instrs[1].srcs[1], Operand::FImm(-0.5));
    }

    #[test]
    fn inline_stack_parsing() {
        let src = "\
.kernel k
.line a.cu 5
  NOP {S:1}
.inline push helper a.cu 6
.line h.cu 2
  NOP {S:1}
.inline pop
.line a.cu 7
  EXIT
.endfunc
";
        let m = parse_module(src).unwrap();
        let f = m.function("k").unwrap();
        assert!(f.inline_stacks[0].is_empty());
        assert_eq!(f.inline_stacks[1].len(), 1);
        assert_eq!(f.inline_stacks[1][0].callee, "helper");
        assert!(f.inline_stacks[2].is_empty());
    }
}
