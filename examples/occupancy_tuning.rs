//! The parallel optimizers in action (the gaussian Fan2 story, Table 3's
//! biggest win): a kernel launched with 16-thread blocks starves the SMs;
//! GPA's Thread Increase optimizer predicts the gain of merging blocks,
//! and the simulator confirms it.
//!
//! ```sh
//! cargo run --release --example occupancy_tuning
//! ```

use gpa::arch::LaunchConfig;
use gpa::core::Advisor;
use gpa::kernels::runner::{arch_for, run_spec, time_spec};
use gpa::kernels::{apps, Params};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let p = Params::full();
    let arch = arch_for(&p);
    let app = apps::gaussian::app();

    // Sweep block sizes to see the occupancy cliff the paper describes.
    println!("block size sweep (same total threads):");
    for threads in [16u32, 32, 64, 128, 256] {
        let mut spec = (app.build)(0, &p);
        let total = spec.launch.total_threads() as u32;
        spec.launch = LaunchConfig::new(total / threads, threads);
        let occ = arch.occupancy(&spec.launch);
        let cycles = time_spec(&spec, &arch)?;
        println!(
            "  {threads:>4} threads/block: {cycles:>8} cycles, {:>2} warps/SM (limited by {})",
            occ.warps_per_sm, occ.limiter
        );
    }

    // What does GPA say about the worst configuration?
    let baseline = (app.build)(0, &p);
    let run = run_spec(&baseline, &arch)?;
    let advice = Advisor::new().advise(&baseline.module, &run.profile, &arch);
    let item = advice.item("GPUThreadIncreaseOptimizer").expect("matches");
    println!("\nGPA suggests {} (rank {}), estimated {:.2}x:",
        item.optimizer,
        advice.rank_of("GPUThreadIncreaseOptimizer").unwrap(),
        item.estimated_speedup);
    for note in &item.notes {
        println!("  - {note}");
    }

    let optimized = (app.build)(1, &p);
    let opt_cycles = time_spec(&optimized, &arch)?;
    println!(
        "\nachieved {:.2}x (paper: 3.86x achieved, 3.33x estimated)",
        run.cycles as f64 / opt_cycles as f64
    );
    Ok(())
}
