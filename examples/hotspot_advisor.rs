//! The paper's hotspot walkthrough (§2.3 and Table 3): profile the
//! baseline `calculate_temp`, read GPA's advice (the float→double
//! conversion chain), apply the suggested fix, and measure the speedup.
//!
//! ```sh
//! cargo run --release --example hotspot_advisor
//! ```

use gpa::core::{report, Advisor};
use gpa::kernels::runner::{arch_for, run_spec, time_spec};
use gpa::kernels::{apps, Params};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let p = Params::full();
    let arch = arch_for(&p);
    let app = apps::hotspot::app();

    // Profile the baseline (variant 0: the `2.0` double constant).
    let baseline = (app.build)(0, &p);
    let run = run_spec(&baseline, &arch)?;
    println!("baseline: {} cycles\n", run.cycles);

    let advice = Advisor::new().advise(&baseline.module, &run.profile, &arch);
    print!("{}", report::render(&advice, 2));

    // Apply the suggestion (variant 1: the constant typed `2.0f`).
    let optimized = (app.build)(1, &p);
    let opt_cycles = time_spec(&optimized, &arch)?;
    let achieved = run.cycles as f64 / opt_cycles as f64;
    let estimated = advice
        .item("GPUStrengthReductionOptimizer")
        .map_or(1.0, |i| i.estimated_speedup);
    println!("optimized: {opt_cycles} cycles");
    println!("achieved speedup {achieved:.2}x, GPA estimated {estimated:.2}x");
    println!("(paper: 1.15x achieved, 1.10x estimated)");
    Ok(())
}
