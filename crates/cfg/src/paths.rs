//! Path-length queries over the CFG.
//!
//! Three queries back GPA's blamer:
//!
//! * [`Cfg::min_instrs_between`] — the *latency-based pruning rule* removes
//!   a dependency edge when the number of instructions on **every** path
//!   from def to use exceeds the def's latency, i.e. when the minimum path
//!   length is already larger than the latency.
//! * [`Cfg::max_instrs_between`] — Eq. 1's path-ratio heuristic uses the
//!   **longest** path between def and use ("if an instruction has multiple
//!   paths, we use the longest one").
//! * [`Cfg::on_every_path`] — the *dominator-based pruning rule* asks
//!   whether a re-defining instruction `k` sits on every path from `i` to
//!   `j`.
//!
//! Lengths count the instructions strictly between the two endpoints.
//! Longest paths are computed on the acyclic graph obtained by ignoring
//! back edges, optionally extended by a single back-edge traversal for
//! dependencies that cross loop iterations (simple paths only, matching
//! the paper's intent without solving the NP-hard general problem).

use crate::block::{BlockId, Cfg};
use crate::dom::Dominators;

impl Cfg {
    /// Minimum number of instructions strictly between instruction `i` and
    /// instruction `j` over all CFG paths; `None` when `j` is unreachable
    /// from `i`.
    ///
    /// Adjacent instructions yield `Some(0)`.
    pub fn min_instrs_between(&self, i: usize, j: usize) -> Option<u32> {
        let bi = self.block_of(i);
        let bj = self.block_of(j);
        if bi == bj && i < j {
            return Some((j - i - 1) as u32);
        }
        // Cost from the end of i's block to the start of j's block, via
        // BFS/Dijkstra over blocks (weights = block sizes, all small).
        let tail = (self.block(bi).end - i - 1) as u32; // instrs after i in its block
        let head = (j - self.block(bj).start) as u32; // instrs before j in its block
        let between = self.shortest_block_path(bi, bj)?;
        Some(tail + between + head)
    }

    /// Length (in instructions) of the shortest block path from the end of
    /// `from` to the start of `to`, counting only intermediate blocks.
    /// Returns `None` if `to` is unreachable from `from`.
    fn shortest_block_path(&self, from: BlockId, to: BlockId) -> Option<u32> {
        // Dijkstra; block count is small, a simple O(V^2) scan suffices.
        let n = self.blocks().len();
        let mut dist: Vec<Option<u32>> = vec![None; n];
        for &s in self.succs(from) {
            let w = if s == to { 0 } else { self.block(s).len() as u32 };
            dist[s.0] = Some(match dist[s.0] {
                Some(d) => d.min(w),
                None => w,
            });
        }
        let mut done = vec![false; n];
        loop {
            let mut best: Option<(usize, u32)> = None;
            for (b, d) in dist.iter().enumerate() {
                if let (false, Some(d)) = (done[b], d) {
                    if best.is_none_or(|(_, bd)| *d < bd) {
                        best = Some((b, *d));
                    }
                }
            }
            let (b, d) = best?;
            if b == to.0 {
                return Some(d);
            }
            done[b] = true;
            for &s in self.succs(BlockId(b)) {
                let w = if s == to { d } else { d + self.block(s).len() as u32 };
                if dist[s.0].is_none_or(|old| w < old) {
                    dist[s.0] = Some(w);
                }
            }
        }
    }

    /// Maximum number of instructions strictly between `i` and `j` over
    /// simple paths (ignoring repeated back-edge traversals); `None` when
    /// unreachable.
    pub fn max_instrs_between(&self, i: usize, j: usize) -> Option<u32> {
        let dom = Dominators::build(self);
        self.max_instrs_between_with(&dom, i, j)
    }

    /// Like [`Cfg::max_instrs_between`] but reusing a dominator tree
    /// (callers issuing many queries should prefer this).
    pub fn max_instrs_between_with(&self, dom: &Dominators, i: usize, j: usize) -> Option<u32> {
        let bi = self.block_of(i);
        let bj = self.block_of(j);
        let tail = (self.block(bi).end - i - 1) as u32;
        let head = (j - self.block(bj).start) as u32;

        // A valid def→use path must not re-execute the def: once the path
        // passes instruction i again, the dependency restarts there. Hence
        // a same-block forward pair only has the straight-line path, and
        // cross-block segments must avoid i's block where it would be
        // re-entered.
        if bi == bj && i < j {
            return Some((j - i - 1) as u32);
        }
        // Longest forward (back-edge-free) path.
        let fwd = self.longest_dag_path(dom, bi, bj, None);
        let mut best: Option<u32> = fwd.map(|between| tail + between + head);
        // One back-edge extension: i ~~> latch, back edge latch→header,
        // header ~~> j, all segments forward.
        let avoid_i = if bi == bj { None } else { Some(bi) };
        for latch in self.blocks() {
            for &h in self.succs(latch.id) {
                if !dom.dominates(h, latch.id) {
                    continue; // not a back edge
                }
                let to_latch = if latch.id == bi {
                    Some(0)
                } else {
                    self.longest_dag_path(dom, bi, latch.id, None)
                        .map(|d| d + latch.id.len_of(self))
                };
                let Some(to_latch) = to_latch else { continue };
                let from_header = if h == bj {
                    Some(0)
                } else {
                    self.longest_dag_path(dom, h, bj, avoid_i).map(|d| d + h.len_of(self))
                };
                let Some(from_header) = from_header else { continue };
                let total = tail + to_latch + from_header + head;
                best = Some(best.map_or(total, |b| b.max(total)));
            }
        }
        best
    }

    /// Longest path (sum of intermediate block sizes) from `from` to `to`
    /// ignoring back edges and never entering `avoid`. `None` if
    /// unreachable; `Some(0)` for a direct edge.
    fn longest_dag_path(
        &self,
        dom: &Dominators,
        from: BlockId,
        to: BlockId,
        avoid: Option<BlockId>,
    ) -> Option<u32> {
        if from == to || avoid == Some(to) {
            return None;
        }
        let order = self.reverse_postorder();
        let mut dist: Vec<Option<u32>> = vec![None; self.blocks().len()];
        dist[from.0] = Some(0);
        for &b in &order {
            let Some(d) = dist[b.0] else { continue };
            for &s in self.succs(b) {
                if dom.dominates(s, b) {
                    continue; // skip back edges
                }
                if s == from || Some(s) == avoid {
                    continue;
                }
                let w = if s == to { d } else { d + self.block(s).len() as u32 };
                if dist[s.0].is_none_or(|old| w > old) {
                    dist[s.0] = Some(w);
                }
            }
        }
        dist[to.0]
    }

    /// Whether instruction `k` lies on **every** CFG path from instruction
    /// `i` to instruction `j` (endpoints excluded).
    ///
    /// Returns `false` when `j` is unreachable from `i`.
    pub fn on_every_path(&self, i: usize, k: usize, j: usize) -> bool {
        if k == i || k == j {
            return false;
        }
        let bi = self.block_of(i);
        let bk = self.block_of(k);
        let bj = self.block_of(j);
        // Straight-line cases inside shared blocks.
        if bk == bi && k > i {
            // Every path leaving i first executes the rest of i's block,
            // which includes k — unless j sits between i and k in the same
            // block, in which case the straight-line path stops before k.
            if bi == bj && i < j {
                return k < j;
            }
            return self.reachable_between(bi, bj, None);
        }
        if bk == bj && k < j {
            // Every path entering j's block from outside executes the
            // block's prefix, which includes k. The in-block straight-line
            // path from i covers k only when i precedes it.
            if bi == bj && i < j {
                return i < k;
            }
            return self.reachable_between(bi, bj, None);
        }
        if bk == bi || bk == bj {
            // k before i, or after j, in a shared block: the straight-line
            // exit/entry misses it. (Conservatively `false`; a looping path
            // might still always pass k, but not pruning is safe.)
            return false;
        }
        // k in its own block: k is on every path iff no path avoids bk.
        self.reachable_between(bi, bj, None) && !self.reachable_between(bi, bj, Some(bk))
    }

    /// Is the start of `to` reachable from the end of `from`, optionally
    /// avoiding `avoid`?
    fn reachable_between(&self, from: BlockId, to: BlockId, avoid: Option<BlockId>) -> bool {
        let mut visited = vec![false; self.blocks().len()];
        let mut stack = vec![from];
        // Note: we start from `from`'s successors, so a self-loop is a valid
        // path from a block to itself.
        while let Some(b) = stack.pop() {
            for &s in self.succs(b) {
                if Some(s) == avoid {
                    continue;
                }
                if s == to {
                    return true;
                }
                if !visited[s.0] {
                    visited[s.0] = true;
                    stack.push(s);
                }
            }
        }
        false
    }
}

impl BlockId {
    fn len_of(self, cfg: &Cfg) -> u32 {
        cfg.block(self).len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_isa::parse_module;

    fn cfg(src: &str) -> Cfg {
        let m = parse_module(src).unwrap();
        Cfg::build(m.function("k").unwrap())
    }

    const DIAMOND: &str = r#"
.kernel k
  ISETP.LT.AND P0, R0, R1 {S:2}   # 0
  @P0 BRA else_part {S:5}         # 1
  MOV R2, R3 {S:1}                # 2
  MOV R6, R7 {S:1}                # 3
  BRA join {S:5}                  # 4
else_part:
  MOV R2, R4 {S:1}                # 5
join:
  IADD R5, R2, 1 {S:4}            # 6
  EXIT                            # 7
.endfunc
"#;

    #[test]
    fn min_and_max_through_diamond() {
        let c = cfg(DIAMOND);
        // From ISETP (0) to IADD (6): short arm has BRA(1), MOV(5) between
        // (2 instrs); long arm has BRA(1), MOV(2), MOV(3), BRA(4) (4).
        assert_eq!(c.min_instrs_between(0, 6), Some(2));
        assert_eq!(c.max_instrs_between(0, 6), Some(4));
        // Same block, adjacent.
        assert_eq!(c.min_instrs_between(6, 7), Some(0));
        assert_eq!(c.max_instrs_between(6, 7), Some(0));
        // Unreachable: join never flows back to the then-arm.
        assert_eq!(c.min_instrs_between(6, 2), None);
    }

    #[test]
    fn on_every_path_diamond() {
        let c = cfg(DIAMOND);
        // MOV at 2 is only on the fall-through arm.
        assert!(!c.on_every_path(0, 2, 6));
        // The branch at 1 is in i's own block after i: on every path.
        assert!(c.on_every_path(0, 1, 6));
        // IADD at 6 is between nothing (it's the endpoint j).
        assert!(!c.on_every_path(0, 6, 6));
    }

    const LOOP: &str = r#"
.kernel k
  MOV32I R0, 0 {S:1}              # 0
top:
  LDG.E.32 R4, [R2:R3] {W:B0,S:1} # 1
  IADD R5, R4, 1 {WT:[B0],S:4}    # 2
  IADD R0, R0, 1 {S:4}            # 3
  ISETP.LT.AND P0, R0, 10 {S:2}   # 4
  @P0 BRA top {S:5}               # 5
  EXIT                            # 6
.endfunc
"#;

    #[test]
    fn cross_iteration_longest_path() {
        let c = cfg(LOOP);
        // Forward, same block: LDG(1) -> IADD(2): nothing between.
        assert_eq!(c.min_instrs_between(1, 2), Some(0));
        assert_eq!(c.max_instrs_between(1, 2), Some(0));
        // Cross-iteration: IADD(3) defines R0 used by LDG? No — use the
        // ISETP(4) -> IADD(3) direction: def after use in program order,
        // reachable only around the back edge: 5 (BRA) + 1,2 of next
        // iteration = 3 instructions between.
        assert_eq!(c.min_instrs_between(4, 3), Some(3));
        let max = c.max_instrs_between(4, 3).unwrap();
        assert_eq!(max, 3, "single back-edge traversal");
    }

    #[test]
    fn loop_body_on_every_path() {
        let c = cfg(LOOP);
        // From MOV(0) to EXIT(6), the whole loop body lies on every path.
        assert!(c.on_every_path(0, 1, 6));
        assert!(c.on_every_path(0, 4, 6));
    }
}
