//! `rodinia/huffman` — `vlc_encode_kernel_sm64huff`.
//!
//! After the per-thread codeword lookups, the baseline computes the bit
//! offsets with a serial scan owned by warp 0; the other warps idle at
//! the barrier. The balanced variant uses a Hillis–Steele scan in shared
//! memory where every warp participates (Warp Balance; paper: 1.10×
//! achieved, 1.17× estimated).

use crate::data::ParamBlock;
use crate::dsl::Asm;
use crate::{App, KernelSpec, Params, Stage};
use gpa_arch::LaunchConfig;

/// Builds the huffman app entry.
pub fn app() -> App {
    App {
        name: "rodinia/huffman",
        kernel: "vlc_encode_kernel_sm64huff",
        stages: vec![Stage { name: "Warp Balance", optimizer: "GPUWarpBalanceOptimizer" }],
        build,
    }
}

fn build(variant: usize, p: &Params) -> KernelSpec {
    let balanced = variant >= 1;
    let mut a = Asm::module("huffman");
    a.kernel("vlc_encode_kernel_sm64huff");
    a.line("vlc_kernel_sm64huff.cu", 60);
    a.global_tid();
    a.i("LOP3.AND R1, R0, 255 {S:4}");
    a.param_u64(4, 0); // symbols
    a.param_u64(6, 8); // code lengths table (256 entries)
    a.addr(10, 4, 0, 2);
    a.i("LDG.E.32 R12, [R10:R11] {W:B0, S:1}"); // symbol
    a.i("LOP3.AND R13, R12, 255 {WT:[B0], S:4}");
    a.addr(14, 6, 13, 2);
    a.i("LDG.E.32 R16, [R14:R15] {W:B1, S:1}"); // code length
    a.i("SHL R17, R1, 2 {S:4}");
    a.i("STS.32 [R17], R16 {WT:[B1], R:B2, S:2}");
    a.i("BAR.SYNC {S:2}");
    a.line("vlc_kernel_sm64huff.cu", 72);
    if balanced {
        // Every warp scans its own 32 lengths with shuffles (no barrier
        // in the loop), then one barrier and a per-warp offset pass.
        a.i("S2R R25, SR_LANEID {W:B3, S:1}");
        a.i("MOV R22, R16 {WT:[B3], S:2}");
        for d in [1u32, 2, 4, 8, 16] {
            a.i(format!("IADD R26, R25, -{d} {{S:4}}"));
            a.i("LOP3.AND R26, R26, 31 {S:4}");
            a.i("SHFL R27, R22, R26 {W:B4, S:1}");
            a.i(format!("ISETP.GE.AND P0, R25, {d} {{S:2}}"));
            a.i("@P0 IADD R22, R22, R27 {WT:[B4], S:4}");
        }
        a.i("SHL R21, R1, 2 {S:4}");
        a.i("STS.32 [R21], R22 {R:B2, S:2}");
        a.i("BAR.SYNC {S:2}");
    } else {
        // Warp 0's lanes each serially scan an 8-entry chunk; everyone
        // else waits at the barrier below.
        a.i("ISETP.GE.AND P1, R1, 32 {S:2}");
        a.i("@P1 BRA scan_done {S:5}");
        a.i("MOV32I R24, 0 {S:1}"); // k
        a.i("MOV32I R22, 0 {S:1}"); // running sum
        a.label("serial_scan");
        a.i("IMAD R26, R1, 8, R24 {S:5}");
        a.i("SHL R27, R26, 2 {S:4}");
        a.i("LDS.32 R28, [R27] {W:B3, S:1}");
        a.i("IADD R22, R22, R28 {WT:[B3], S:4}");
        a.i("STS.32 [R27], R22 {R:B2, S:2}");
        a.i("IADD R24, R24, 1 {S:4}");
        a.i("ISETP.LT.AND P2, R24, 8 {S:2}");
        a.i("@P2 BRA serial_scan {S:5}");
        a.label("scan_done");
        a.i("BAR.SYNC {S:2}");
    }
    // Each thread reads its bit offset back and stores it.
    a.i("SHL R29, R1, 2 {S:4}");
    a.i("LDS.32 R30, [R29] {W:B5, S:1}");
    a.param_u64(32, 16);
    a.addr(34, 32, 0, 2);
    a.i("STG.E.32 [R34:R35], R30 {WT:[B5], R:B2, S:2}");
    a.i("EXIT {WT:[B2], S:1}");
    a.endfunc();
    let module = a.build();

    let blocks = p.sms * 4 * p.scale;
    let threads: u32 = 256;
    let n = blocks * threads;
    KernelSpec {
        module,
        entry: "vlc_encode_kernel_sm64huff".into(),
        launch: LaunchConfig { smem_per_block: 2048, ..LaunchConfig::new(blocks, threads) },
        setup: Box::new(move |gpu| {
            let mut rng = crate::data::rng(0x5057_000A);
            let symbols = gpu.global_mut().alloc(4 * n as u64);
            gpu.global_mut()
                .write_bytes(symbols, &crate::data::u32_bytes(&mut rng, n as usize, 0, 256));
            let lengths = gpu.global_mut().alloc(4 * 256);
            gpu.global_mut().write_bytes(lengths, &crate::data::u32_bytes(&mut rng, 256, 1, 24));
            let out = gpu.global_mut().alloc(4 * n as u64);
            let mut pb = ParamBlock::new();
            pb.push_u64(symbols);
            pb.push_u64(lengths);
            pb.push_u64(out);
            pb.finish()
        }),
        const_bank1: None,
    }
}
