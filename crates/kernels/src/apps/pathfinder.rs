//! `rodinia/pathfinder` — `dynproc_kernel`.
//!
//! The dynamic-programming row loop loads the wall cost from global
//! memory and consumes it right after the shared-memory neighbor min.
//! Reordering prefetches the next row's cost before the barrier — but
//! the loop is fenced by two `__syncthreads()` per row, so little can
//! actually move: the paper reports 1.05× achieved against a 1.23×
//! estimate and explains the gap with exactly this data-dependency
//! restriction (Code Reordering, false-positive case).

use crate::data::ParamBlock;
use crate::dsl::Asm;
use crate::{App, KernelSpec, Params, Stage};
use gpa_arch::LaunchConfig;

/// Builds the pathfinder app entry.
pub fn app() -> App {
    App {
        name: "rodinia/pathfinder",
        kernel: "dynproc_kernel",
        stages: vec![Stage { name: "Code Reorder", optimizer: "GPUCodeReorderOptimizer" }],
        build,
    }
}

const ROWS: u32 = 20;

fn build(variant: usize, p: &Params) -> KernelSpec {
    let optimized = variant >= 1;
    let mut a = Asm::module("pathfinder");
    a.kernel("dynproc_kernel");
    a.line("pathfinder.cu", 90);
    a.global_tid();
    a.i("LOP3.AND R1, R0, 255 {S:4}");
    a.param_u64(4, 0); // wall costs
    a.param_u32(9, 16); // row stride (total threads)
    a.i("SHL R3, R9, 2 {S:4}"); // row stride in bytes
    a.i("SHL R2, R1, 2 {S:4}"); // smem byte slot
    a.i("MOV32I R16, 0 {S:1}"); // row
    a.i("MOV32I R26, 0 {S:1}"); // running cost
    a.addr(12, 4, 0, 2); // running wall address
    if optimized {
        // Prefetch row 0's cost before entering the loop.
        a.i("LDG.E.32 R14, [R12:R13] {W:B0, S:1}");
    }
    a.line("pathfinder.cu", 96);
    a.label("row_loop");
    if optimized {
        // Advance the running address and prefetch the next row before
        // the barrier; consume the previously loaded value afterwards.
        a.i("IADD R12:R13, R12:R13, R3 {S:2}");
        a.i("LDG.E.32 R15, [R12:R13] {W:B4, S:1}");
        a.i("BAR.SYNC {S:2}");
        a.i("LDS.32 R20, [R2] {W:B1, S:1}");
        a.i("LDS.32 R21, [R2+0x4] {W:B2, S:1}");
        a.i("LDS.32 R22, [R2+0x8] {W:B3, S:1}");
        a.i("IMNMX R24, R20, R21 {WT:[B1,B2], S:4}");
        a.i("IMNMX R24, R24, R22 {WT:[B3], S:4}");
        a.i("IADD R26, R24, R14 {S:4}"); // cost loaded a full row ago
        a.i("BAR.SYNC {S:2}");
        a.i("STS.32 [R2+0x4], R26 {R:B1, S:2}");
        a.i("MOV R14, R15 {WT:[B4], S:2}");
    } else {
        a.i("BAR.SYNC {S:2}");
        a.i("LDG.E.32 R14, [R12:R13] {W:B0, S:1}");
        a.i("IADD R12:R13, R12:R13, R3 {S:2}");
        a.i("LDS.32 R20, [R2] {W:B1, S:1}");
        a.i("LDS.32 R21, [R2+0x4] {W:B2, S:1}");
        a.i("LDS.32 R22, [R2+0x8] {W:B3, S:1}");
        a.i("IMNMX R24, R20, R21 {WT:[B1,B2], S:4}");
        a.i("IMNMX R24, R24, R22 {WT:[B3], S:4}");
        a.i("IADD R26, R24, R14 {WT:[B0], S:4}"); // short distance to LDG
        a.i("BAR.SYNC {S:2}");
        a.i("STS.32 [R2+0x4], R26 {R:B1, S:2}");
    }
    a.i("IADD R16, R16, 1 {S:4}");
    a.i(format!("ISETP.LT.AND P1, R16, {ROWS} {{S:2}}"));
    a.i("@P1 BRA row_loop {S:5}");
    a.param_u64(28, 8);
    a.addr(30, 28, 0, 2);
    a.i("STG.E.32 [R30:R31], R26 {R:B5, S:2}");
    a.i("EXIT {WT:[B5], S:1}");
    a.endfunc();
    let module = a.build();

    let blocks = p.sms * 4 * p.scale;
    let threads: u32 = 256;
    let n = blocks * threads;
    KernelSpec {
        module,
        entry: "dynproc_kernel".into(),
        launch: LaunchConfig { smem_per_block: 2048 + 16, ..LaunchConfig::new(blocks, threads) },
        setup: Box::new(move |gpu| {
            let mut rng = crate::data::rng(0x5057_000D);
            let m = n as u64 * (ROWS as u64 + 2);
            let wall = gpu.global_mut().alloc(4 * m);
            gpu.global_mut()
                .write_bytes(wall, &crate::data::u32_bytes(&mut rng, m as usize, 1, 10));
            let out = gpu.global_mut().alloc(4 * n as u64);
            let mut pb = ParamBlock::new();
            pb.push_u64(wall);
            pb.push_u64(out);
            pb.push_u32(n); // @16 row stride
            pb.finish()
        }),
        const_bank1: None,
    }
}
