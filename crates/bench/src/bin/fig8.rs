//! Reproduces **Figure 8**: the advice report for ExaTENSOR's
//! tensor_transpose kernel, with ranked optimizers and per-hotspot
//! def/use source locations and distances.

use gpa_bench::{advise_variant, render_report};
use gpa_kernels::apps;
use gpa_pipeline::Session;

fn main() {
    let session = Session::full();
    let report = advise_variant(&session, &apps::exatensor::app(), 0).expect("advises");
    print!("{}", render_report(&report, 3));
}
