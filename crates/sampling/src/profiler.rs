//! The profiling front end: launch + sample + aggregate in one call,
//! plus replay-style repeat profiling (merged multi-launch profiles).

use crate::profile::{KernelProfile, ProfileBuilder};
use gpa_arch::LaunchConfig;
use gpa_isa::Module;
use gpa_sim::{CompiledProgram, GpuSim, LaunchResult, Result};

/// Profiles kernels on a simulated device.
///
/// This is GPA's "profiler" component: it runs the kernel with PC sampling
/// enabled and returns both the aggregated profile (what CUPTI would hand
/// back) and the raw launch result (ground truth the real tool would not
/// have — kept for validation).
#[derive(Debug)]
pub struct Profiler {
    gpu: GpuSim,
}

impl Profiler {
    /// Wraps a device.
    pub fn new(gpu: GpuSim) -> Self {
        Profiler { gpu }
    }

    /// The underlying device (e.g. to initialize global memory).
    pub fn gpu(&self) -> &GpuSim {
        &self.gpu
    }

    /// Mutable access to the underlying device.
    pub fn gpu_mut(&mut self) -> &mut GpuSim {
        &mut self.gpu
    }

    /// Consumes the profiler, returning the device.
    pub fn into_gpu(self) -> GpuSim {
        self.gpu
    }

    /// Launches `entry` and aggregates its PC samples into a profile.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (unknown kernel, faults, cycle limit).
    pub fn profile(
        &mut self,
        module: &Module,
        entry: &str,
        launch: &LaunchConfig,
        params: &[u8],
    ) -> Result<(KernelProfile, LaunchResult)> {
        let prog = self.gpu.compile(module, entry)?;
        self.profile_compiled(&prog, launch, params)
    }

    /// Launches an already-compiled program (see [`GpuSim::compile`]) and
    /// aggregates its PC samples into a profile — the repeat-launch path:
    /// the module lowering (instruction cloning, reconvergence analysis)
    /// is paid once, not per launch.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (arch mismatch, faults, cycle limit).
    pub fn profile_compiled(
        &mut self,
        prog: &CompiledProgram,
        launch: &LaunchConfig,
        params: &[u8],
    ) -> Result<(KernelProfile, LaunchResult)> {
        let result = self.gpu.launch_compiled(prog, launch, params)?;
        let profile = KernelProfile::from_launch(
            prog.entry(),
            prog.module_name(),
            prog.isa_arch(),
            self.gpu.config().sampling_period,
            &result,
        );
        Ok((profile, result))
    }

    /// Profiles `entry` across `repeats` replayed launches and merges the
    /// per-launch profiles (see [`Profiler::profile_repeat_compiled`]).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors from any replay.
    pub fn profile_repeat(
        &mut self,
        module: &Module,
        entry: &str,
        launch: &LaunchConfig,
        params: &[u8],
        repeats: u32,
    ) -> Result<(KernelProfile, LaunchResult)> {
        let prog = self.gpu.compile(module, entry)?;
        self.profile_repeat_compiled(&prog, launch, params, repeats)
    }

    /// CUPTI-replay-style profiling: launches the kernel `repeats` times,
    /// restoring device global memory between replays so every launch
    /// executes identically, while the **sampling phase** shifts per
    /// replay — each run observes different cycles of the same
    /// execution, and the merged profile (counters added via
    /// [`KernelProfile::merge`]) cuts sampling noise the way hardware
    /// replay does. `repeats == 1` is exactly
    /// [`Profiler::profile_compiled`].
    ///
    /// Returns the merged profile and the first (phase-0) launch's
    /// result — the single-launch ground truth.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors from any replay.
    pub fn profile_repeat_compiled(
        &mut self,
        prog: &CompiledProgram,
        launch: &LaunchConfig,
        params: &[u8],
        repeats: u32,
    ) -> Result<(KernelProfile, LaunchResult)> {
        let repeats = repeats.max(1);
        if repeats == 1 {
            return self.profile_compiled(prog, launch, params);
        }
        let period = self.gpu.config().sampling_period;
        let saved_phase = self.gpu.config().sampling_phase;
        // Kernels mutate global memory; snapshot it so every replay sees
        // the launch-time state, not the previous replay's output.
        let memory = self.gpu.global().clone();
        let mut builder = ProfileBuilder::new();
        let mut first: Option<LaunchResult> = None;
        for k in 0..repeats {
            if k > 0 {
                *self.gpu.global_mut() = memory.clone();
            }
            // Spread the first-tick offsets evenly across one period,
            // on top of any configured base phase — so replay 0 is
            // exactly the single-launch run of this profiler.
            let offset = ((u64::from(k) * u64::from(period)) / u64::from(repeats)) as u32;
            self.gpu.config_mut().sampling_phase = saved_phase.saturating_add(offset);
            let result = self.gpu.launch_compiled(prog, launch, params);
            self.gpu.config_mut().sampling_phase = saved_phase;
            let result = result?;
            builder
                .add_launch(prog.entry(), prog.module_name(), prog.isa_arch(), period, &result)
                .expect("replays of one launch share a configuration, with cycle-bounded counters");
            if first.is_none() {
                first = Some(result);
            }
        }
        Ok((
            builder.build().expect("at least one replay ran"),
            first.expect("at least one replay ran"),
        ))
    }

    /// Times a launch without sampling (for achieved-speedup measurements:
    /// sampling overhead never perturbs our simulator, but the real tool
    /// measures optimized variants without instrumentation).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn time_only(
        &mut self,
        module: &Module,
        entry: &str,
        launch: &LaunchConfig,
        params: &[u8],
    ) -> Result<u64> {
        let prog = self.gpu.compile(module, entry)?;
        self.time_only_compiled(&prog, launch, params)
    }

    /// Times an already-compiled program without sampling.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn time_only_compiled(
        &mut self,
        prog: &CompiledProgram,
        launch: &LaunchConfig,
        params: &[u8],
    ) -> Result<u64> {
        let saved = self.gpu.config().sampling_period;
        self.gpu.config_mut().sampling_period = 0;
        let r = self.gpu.launch_compiled(prog, launch, params);
        self.gpu.config_mut().sampling_period = saved;
        Ok(r?.cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_arch::ArchConfig;
    use gpa_isa::parse_module;
    use gpa_sim::{SimConfig, StallReason};

    const KERNEL: &str = r#"
.module p
.kernel k
  S2R R0, SR_TID.X {W:B0, S:1}
  MOV R2, c[0][0] {S:1}
  MOV R3, c[0][4] {S:1}
  SHL R1, R0, 2 {WT:[B0], S:2}
  IADD R2:R3, R2:R3, R1 {S:2}
  LDG.E.32 R4, [R2:R3] {W:B1, S:1}
  IADD R5, R4, 1 {WT:[B1], S:4}
  STG.E.32 [R2:R3], R5 {R:B2, S:1}
  EXIT {WT:[B2], S:1}
.endfunc
"#;

    #[test]
    fn profile_collects_memory_dependency_stalls() {
        let m = parse_module(KERNEL).unwrap();
        let cfg = SimConfig { sampling_period: 13, ..SimConfig::default() };
        let mut prof = Profiler::new(GpuSim::new(ArchConfig::small(1), cfg));
        let buf = prof.gpu_mut().global_mut().alloc(4 * 64);
        let params: Vec<u8> = buf.to_le_bytes().to_vec();
        let (profile, result) = prof.profile(&m, "k", &LaunchConfig::new(2, 32), &params).unwrap();
        assert_eq!(profile.cycles, result.cycles);
        assert!(profile.total_samples > 0);
        let hist = profile.stall_histogram();
        assert!(hist[StallReason::MemoryDependency.code() as usize] > 0);
        // The increment landed.
        assert_eq!(prof.gpu().global().read_u32(buf), 1);
    }

    #[test]
    fn time_only_leaves_no_samples_and_restores_period() {
        let m = parse_module(KERNEL).unwrap();
        let mut prof = Profiler::new(GpuSim::new(ArchConfig::small(1), SimConfig::default()));
        let buf = prof.gpu_mut().global_mut().alloc(4 * 64);
        let params: Vec<u8> = buf.to_le_bytes().to_vec();
        let cycles = prof.time_only(&m, "k", &LaunchConfig::new(1, 32), &params).unwrap();
        assert!(cycles > 0);
        assert_eq!(prof.gpu().config().sampling_period, SimConfig::default().sampling_period);
    }

    #[test]
    fn profile_repeat_one_equals_profile() {
        let m = parse_module(KERNEL).unwrap();
        let run = |repeats: Option<u32>| {
            let cfg = SimConfig { sampling_period: 13, ..SimConfig::default() };
            let mut prof = Profiler::new(GpuSim::new(ArchConfig::small(1), cfg));
            let buf = prof.gpu_mut().global_mut().alloc(4 * 64);
            let params: Vec<u8> = buf.to_le_bytes().to_vec();
            let launch = LaunchConfig::new(2, 32);
            match repeats {
                None => prof.profile(&m, "k", &launch, &params).unwrap(),
                Some(n) => prof.profile_repeat(&m, "k", &launch, &params, n).unwrap(),
            }
        };
        let (p, r) = run(None);
        let (p1, r1) = run(Some(1));
        assert_eq!(p, p1, "repeat-1 profile is the single-launch profile");
        assert_eq!(r, r1);
        assert_eq!(p.to_json(), p1.to_json(), "byte-identical JSON too");
    }

    #[test]
    fn profile_repeat_merges_replays_without_perturbing_results() {
        let m = parse_module(KERNEL).unwrap();
        let cfg = SimConfig { sampling_period: 13, ..SimConfig::default() };
        let mut prof = Profiler::new(GpuSim::new(ArchConfig::small(1), cfg));
        let buf = prof.gpu_mut().global_mut().alloc(4 * 64);
        let params: Vec<u8> = buf.to_le_bytes().to_vec();
        let launch = LaunchConfig::new(2, 32);
        let (single, single_result) = prof.profile(&m, "k", &launch, &params).unwrap();
        // Reset the increment the first run applied before replaying.
        prof.gpu_mut().global_mut().write_u32(buf, 0);
        let (merged, first) = prof.profile_repeat(&m, "k", &launch, &params, 3).unwrap();
        assert_eq!(first, single_result, "phase-0 replay is the single launch");
        assert_eq!(merged.cycles, single.cycles, "ground truth untouched by merging");
        assert_eq!(merged.issued, single.issued);
        assert!(
            merged.total_samples > single.total_samples,
            "three phases observe more cycles: {} vs {}",
            merged.total_samples,
            single.total_samples
        );
        // Memory restoration between replays: the buffer saw exactly one
        // increment per replayed launch... which all start from the same
        // snapshot, so the final value is the single-launch value.
        assert_eq!(prof.gpu().global().read_u32(buf), 1, "replays never see stale outputs");
        assert_eq!(
            prof.gpu().config().sampling_phase,
            SimConfig::default().sampling_phase,
            "phase restored after the replay sweep"
        );
    }

    #[test]
    fn profile_repeat_respects_a_configured_base_phase() {
        // A caller-configured sampling_phase is the sweep's base: replay
        // 0 must observe exactly what a plain profile() run would, for
        // any repeat count.
        let m = parse_module(KERNEL).unwrap();
        let run = |repeats: Option<u32>| {
            let cfg = SimConfig { sampling_period: 13, sampling_phase: 7, ..SimConfig::default() };
            let mut prof = Profiler::new(GpuSim::new(ArchConfig::small(1), cfg));
            let buf = prof.gpu_mut().global_mut().alloc(4 * 64);
            let params: Vec<u8> = buf.to_le_bytes().to_vec();
            let launch = LaunchConfig::new(2, 32);
            match repeats {
                None => prof.profile(&m, "k", &launch, &params).unwrap(),
                Some(n) => prof.profile_repeat(&m, "k", &launch, &params, n).unwrap(),
            }
        };
        let (single, single_result) = run(None);
        let (_, first) = run(Some(3));
        assert_eq!(first, single_result, "replay 0 keeps the configured phase");
        let (merged, _) = run(Some(3));
        assert!(merged.total_samples > single.total_samples);
    }

    #[test]
    fn sampling_period_changes_sample_count_not_shape() {
        let m = parse_module(KERNEL).unwrap();
        let run = |period: u32| {
            let cfg = SimConfig { sampling_period: period, ..SimConfig::default() };
            let mut prof = Profiler::new(GpuSim::new(ArchConfig::small(1), cfg));
            let buf = prof.gpu_mut().global_mut().alloc(4 * 128);
            let params: Vec<u8> = buf.to_le_bytes().to_vec();
            prof.profile(&m, "k", &LaunchConfig::new(4, 32), &params).unwrap().0
        };
        let fine = run(7);
        let coarse = run(29);
        assert!(fine.total_samples > coarse.total_samples);
        // Both see the kernel as memory-latency bound.
        for p in [&fine, &coarse] {
            let hist = p.stall_histogram();
            let mem = hist[StallReason::MemoryDependency.code() as usize];
            assert!(mem > 0, "memory stalls visible at any period");
        }
    }
}
