//! Volta-style control codes.
//!
//! Every Volta instruction word carries scheduling information the assembler
//! computed: how many cycles the scheduler must stall before issuing the
//! *next* instruction of the warp, whether the warp should yield, which
//! scoreboard barrier the instruction *writes* (set at issue, cleared when
//! the variable-latency result lands) or *reads* (set at issue, cleared when
//! source operands have been consumed — protects against WAR hazards), and a
//! *wait mask* of barriers that must all be clear before this instruction
//! may issue.

use crate::register::BarrierReg;
use crate::{IsaError, Result};
use std::fmt;

/// The control-code fields of one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ControlCode {
    /// Cycles the warp stalls after issuing this instruction (0–15).
    pub stall: u8,
    /// Hint that the scheduler may deprioritize this warp.
    pub yield_flag: bool,
    /// Barrier set at issue, cleared when the result is written back.
    pub write_barrier: Option<BarrierReg>,
    /// Barrier set at issue, cleared when source operands are read.
    pub read_barrier: Option<BarrierReg>,
    /// Bitmask over `B0..B5`; all named barriers must be clear to issue.
    pub wait_mask: u8,
}

impl ControlCode {
    /// A control code with `stall = 1` and nothing else set — the default
    /// for simple pipelined instructions.
    pub const fn none() -> Self {
        ControlCode {
            stall: 1,
            yield_flag: false,
            write_barrier: None,
            read_barrier: None,
            wait_mask: 0,
        }
    }

    /// Builder-style: sets the stall count.
    ///
    /// # Panics
    ///
    /// Panics if `stall > 15` (the field is 4 bits wide).
    pub fn with_stall(mut self, stall: u8) -> Self {
        assert!(stall <= 15, "stall count must fit in 4 bits");
        self.stall = stall;
        self
    }

    /// Builder-style: sets the write barrier.
    pub fn with_write_barrier(mut self, b: BarrierReg) -> Self {
        self.write_barrier = Some(b);
        self
    }

    /// Builder-style: sets the read barrier.
    pub fn with_read_barrier(mut self, b: BarrierReg) -> Self {
        self.read_barrier = Some(b);
        self
    }

    /// Builder-style: adds one barrier to the wait mask.
    pub fn with_wait(mut self, b: BarrierReg) -> Self {
        self.wait_mask |= 1 << b.index();
        self
    }

    /// Builder-style: sets the yield flag.
    pub fn with_yield(mut self) -> Self {
        self.yield_flag = true;
        self
    }

    /// Barriers named in the wait mask.
    pub fn waits(&self) -> impl Iterator<Item = BarrierReg> + '_ {
        (0u32..6)
            .filter(move |i| self.wait_mask & (1 << i) != 0)
            .map(|i| BarrierReg::new(i).expect("wait mask spans six barriers"))
    }

    /// Whether any scheduling constraint beyond default issue is present.
    pub fn is_trivial(&self) -> bool {
        self.stall <= 1
            && !self.yield_flag
            && self.write_barrier.is_none()
            && self.read_barrier.is_none()
            && self.wait_mask == 0
    }

    /// Validates field ranges (stall fits 4 bits, wait mask fits 6 bits).
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::EncodingOverflow`] when a field is out of range.
    pub fn validate(&self) -> Result<()> {
        if self.stall > 15 {
            return Err(IsaError::EncodingOverflow(format!(
                "stall count {} exceeds 4 bits",
                self.stall
            )));
        }
        if self.wait_mask & !0x3f != 0 {
            return Err(IsaError::EncodingOverflow(format!(
                "wait mask {:#x} exceeds 6 bits",
                self.wait_mask
            )));
        }
        Ok(())
    }
}

impl Default for ControlCode {
    fn default() -> Self {
        Self::none()
    }
}

impl fmt::Display for ControlCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if self.wait_mask != 0 {
            let names: Vec<String> = self.waits().map(|b| b.to_string()).collect();
            parts.push(format!("WT:[{}]", names.join(",")));
        }
        if let Some(b) = self.write_barrier {
            parts.push(format!("W:{b}"));
        }
        if let Some(b) = self.read_barrier {
            parts.push(format!("R:{b}"));
        }
        parts.push(format!("S:{}", self.stall));
        if self.yield_flag {
            parts.push("Y".to_string());
        }
        write!(f, "{{{}}}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_display() {
        let c = ControlCode::none()
            .with_stall(2)
            .with_write_barrier(BarrierReg::new(0).unwrap())
            .with_wait(BarrierReg::new(1).unwrap())
            .with_wait(BarrierReg::new(3).unwrap())
            .with_yield();
        assert_eq!(c.to_string(), "{WT:[B1,B3], W:B0, S:2, Y}");
        assert_eq!(c.waits().count(), 2);
        assert!(!c.is_trivial());
        assert!(ControlCode::none().is_trivial());
        c.validate().unwrap();
    }

    #[test]
    fn validate_rejects_wide_fields() {
        let mut c = ControlCode::none();
        c.stall = 16;
        assert!(c.validate().is_err());
        let mut c = ControlCode::none();
        c.wait_mask = 0x40;
        assert!(c.validate().is_err());
    }
}
