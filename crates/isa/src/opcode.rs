//! Opcodes and their static classification.

use std::fmt;

/// GPU memory spaces addressable by load/store opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Device (global) memory — 64-bit address space.
    Global,
    /// Per-block shared memory.
    Shared,
    /// Per-thread local memory (register spills live here).
    Local,
    /// Read-only constant banks.
    Constant,
}

/// The functional unit an instruction issues to.
///
/// Pipes bound issue throughput in the simulator; an instruction that cannot
/// issue because its pipe is busy reports a *pipe busy* stall.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pipe {
    /// Integer / logic ALU.
    Alu,
    /// FP32 fused multiply-add pipe.
    Fma,
    /// FP64 pipe (half rate on V100-like parts).
    Fp64,
    /// Special function unit (MUFU transcendentals).
    Sfu,
    /// Load/store unit.
    Lsu,
    /// Branch / control unit.
    Branch,
    /// Uniform datapath (moves, shuffles, special registers).
    Misc,
}

/// Coarse classification used by the optimizers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer arithmetic/logic.
    IntAlu,
    /// 32-bit floating point.
    FpAlu,
    /// 64-bit floating point.
    Fp64,
    /// Special-function (transcendental) instruction.
    Mufu,
    /// Width/type conversion.
    Conversion,
    /// Memory access.
    Memory,
    /// Control flow.
    Control,
    /// Block-level synchronization.
    Sync,
    /// Data movement and everything else.
    Other,
}

/// A Volta-like opcode.
///
/// The set covers the instructions the GPA paper's analyses distinguish:
/// global/shared/local/constant loads and stores, fixed-latency integer and
/// FP32 arithmetic, long-latency FP64 and conversion instructions,
/// transcendentals (`MUFU`), predicate-setting compares, control flow and
/// barriers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Opcode {
    // Memory.
    Ldg,
    Stg,
    Lds,
    Sts,
    Ldl,
    Stl,
    Ldc,
    AtomG,
    AtomS,
    Membar,
    // Integer.
    Mov,
    Mov32i,
    Iadd,
    Iadd3,
    Imad,
    Imul,
    Isetp,
    Lea,
    Lop3,
    Shf,
    Shl,
    Shr,
    Imnmx,
    Iabs,
    Popc,
    Sel,
    // FP32.
    Fadd,
    Fmul,
    Ffma,
    Fsetp,
    Fmnmx,
    Mufu,
    // FP64.
    Dadd,
    Dmul,
    Dfma,
    Dsetp,
    // Conversions.
    F2f,
    F2i,
    I2f,
    I2i,
    // Control.
    Bra,
    Exit,
    Cal,
    Ret,
    Bssy,
    Bsync,
    Bar,
    Nop,
    // Misc.
    S2r,
    Cs2r,
    Shfl,
    Vote,
    Prmt,
}

impl Opcode {
    /// All opcodes, in encoding order.
    pub const ALL: [Opcode; 53] = [
        Opcode::Ldg,
        Opcode::Stg,
        Opcode::Lds,
        Opcode::Sts,
        Opcode::Ldl,
        Opcode::Stl,
        Opcode::Ldc,
        Opcode::AtomG,
        Opcode::AtomS,
        Opcode::Membar,
        Opcode::Mov,
        Opcode::Mov32i,
        Opcode::Iadd,
        Opcode::Iadd3,
        Opcode::Imad,
        Opcode::Imul,
        Opcode::Isetp,
        Opcode::Lea,
        Opcode::Lop3,
        Opcode::Shf,
        Opcode::Shl,
        Opcode::Shr,
        Opcode::Imnmx,
        Opcode::Iabs,
        Opcode::Popc,
        Opcode::Sel,
        Opcode::Fadd,
        Opcode::Fmul,
        Opcode::Ffma,
        Opcode::Fsetp,
        Opcode::Fmnmx,
        Opcode::Mufu,
        Opcode::Dadd,
        Opcode::Dmul,
        Opcode::Dfma,
        Opcode::Dsetp,
        Opcode::F2f,
        Opcode::F2i,
        Opcode::I2f,
        Opcode::I2i,
        Opcode::Bra,
        Opcode::Exit,
        Opcode::Cal,
        Opcode::Ret,
        Opcode::Bssy,
        Opcode::Bsync,
        Opcode::Bar,
        Opcode::Nop,
        Opcode::S2r,
        Opcode::Cs2r,
        Opcode::Shfl,
        Opcode::Vote,
        Opcode::Prmt,
    ];

    /// Stable numeric code used by the binary encoding.
    pub fn code(self) -> u8 {
        Self::ALL.iter().position(|&o| o == self).unwrap() as u8
    }

    /// Inverse of [`Opcode::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        Self::ALL.get(code as usize).copied()
    }

    /// The assembly mnemonic.
    pub fn name(self) -> &'static str {
        match self {
            Opcode::Ldg => "LDG",
            Opcode::Stg => "STG",
            Opcode::Lds => "LDS",
            Opcode::Sts => "STS",
            Opcode::Ldl => "LDL",
            Opcode::Stl => "STL",
            Opcode::Ldc => "LDC",
            Opcode::AtomG => "ATOMG",
            Opcode::AtomS => "ATOMS",
            Opcode::Membar => "MEMBAR",
            Opcode::Mov => "MOV",
            Opcode::Mov32i => "MOV32I",
            Opcode::Iadd => "IADD",
            Opcode::Iadd3 => "IADD3",
            Opcode::Imad => "IMAD",
            Opcode::Imul => "IMUL",
            Opcode::Isetp => "ISETP",
            Opcode::Lea => "LEA",
            Opcode::Lop3 => "LOP3",
            Opcode::Shf => "SHF",
            Opcode::Shl => "SHL",
            Opcode::Shr => "SHR",
            Opcode::Imnmx => "IMNMX",
            Opcode::Iabs => "IABS",
            Opcode::Popc => "POPC",
            Opcode::Sel => "SEL",
            Opcode::Fadd => "FADD",
            Opcode::Fmul => "FMUL",
            Opcode::Ffma => "FFMA",
            Opcode::Fsetp => "FSETP",
            Opcode::Fmnmx => "FMNMX",
            Opcode::Mufu => "MUFU",
            Opcode::Dadd => "DADD",
            Opcode::Dmul => "DMUL",
            Opcode::Dfma => "DFMA",
            Opcode::Dsetp => "DSETP",
            Opcode::F2f => "F2F",
            Opcode::F2i => "F2I",
            Opcode::I2f => "I2F",
            Opcode::I2i => "I2I",
            Opcode::Bra => "BRA",
            Opcode::Exit => "EXIT",
            Opcode::Cal => "CAL",
            Opcode::Ret => "RET",
            Opcode::Bssy => "BSSY",
            Opcode::Bsync => "BSYNC",
            Opcode::Bar => "BAR",
            Opcode::Nop => "NOP",
            Opcode::S2r => "S2R",
            Opcode::Cs2r => "CS2R",
            Opcode::Shfl => "SHFL",
            Opcode::Vote => "VOTE",
            Opcode::Prmt => "PRMT",
        }
    }

    /// Parses the assembly mnemonic.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|o| o.name() == name)
    }

    /// The memory space touched, if this is a load/store/atomic.
    pub fn mem_space(self) -> Option<MemSpace> {
        match self {
            Opcode::Ldg | Opcode::Stg | Opcode::AtomG => Some(MemSpace::Global),
            Opcode::Lds | Opcode::Sts | Opcode::AtomS => Some(MemSpace::Shared),
            Opcode::Ldl | Opcode::Stl => Some(MemSpace::Local),
            Opcode::Ldc => Some(MemSpace::Constant),
            _ => None,
        }
    }

    /// Whether this opcode reads memory into a register.
    pub fn is_load(self) -> bool {
        matches!(
            self,
            Opcode::Ldg | Opcode::Lds | Opcode::Ldl | Opcode::Ldc | Opcode::AtomG | Opcode::AtomS
        )
    }

    /// Whether this opcode writes memory.
    pub fn is_store(self) -> bool {
        matches!(self, Opcode::Stg | Opcode::Sts | Opcode::Stl | Opcode::AtomG | Opcode::AtomS)
    }

    /// Whether this is any memory instruction.
    pub fn is_memory(self) -> bool {
        self.mem_space().is_some() || self == Opcode::Membar
    }

    /// Whether this opcode can change control flow.
    pub fn is_control(self) -> bool {
        matches!(self, Opcode::Bra | Opcode::Exit | Opcode::Cal | Opcode::Ret | Opcode::Bsync)
    }

    /// Whether this is the block-wide execution barrier (`BAR.SYNC`).
    pub fn is_block_sync(self) -> bool {
        self == Opcode::Bar
    }

    /// Whether the result latency is variable (completed through a
    /// scoreboard barrier) rather than a fixed pipeline latency.
    pub fn has_variable_latency(self) -> bool {
        matches!(
            self,
            Opcode::Ldg
                | Opcode::Stg
                | Opcode::Lds
                | Opcode::Sts
                | Opcode::Ldl
                | Opcode::Stl
                | Opcode::Ldc
                | Opcode::AtomG
                | Opcode::AtomS
                | Opcode::Mufu
                | Opcode::S2r
                | Opcode::Shfl
        )
    }

    /// The issue pipe.
    pub fn pipe(self) -> Pipe {
        match self {
            Opcode::Ldg
            | Opcode::Stg
            | Opcode::Lds
            | Opcode::Sts
            | Opcode::Ldl
            | Opcode::Stl
            | Opcode::Ldc
            | Opcode::AtomG
            | Opcode::AtomS
            | Opcode::Membar => Pipe::Lsu,
            Opcode::Fadd | Opcode::Fmul | Opcode::Ffma | Opcode::Fsetp | Opcode::Fmnmx => Pipe::Fma,
            Opcode::Dadd | Opcode::Dmul | Opcode::Dfma | Opcode::Dsetp => Pipe::Fp64,
            Opcode::Mufu => Pipe::Sfu,
            Opcode::Bra
            | Opcode::Exit
            | Opcode::Cal
            | Opcode::Ret
            | Opcode::Bssy
            | Opcode::Bsync
            | Opcode::Bar => Pipe::Branch,
            Opcode::S2r | Opcode::Cs2r | Opcode::Shfl | Opcode::Vote | Opcode::Nop => Pipe::Misc,
            _ => Pipe::Alu,
        }
    }

    /// Coarse class for optimizer matching.
    pub fn class(self) -> OpClass {
        match self {
            _ if self.mem_space().is_some() => OpClass::Memory,
            Opcode::Membar => OpClass::Memory,
            Opcode::Fadd | Opcode::Fmul | Opcode::Ffma | Opcode::Fsetp | Opcode::Fmnmx => {
                OpClass::FpAlu
            }
            Opcode::Dadd | Opcode::Dmul | Opcode::Dfma | Opcode::Dsetp => OpClass::Fp64,
            Opcode::Mufu => OpClass::Mufu,
            Opcode::F2f | Opcode::F2i | Opcode::I2f | Opcode::I2i => OpClass::Conversion,
            Opcode::Bra
            | Opcode::Exit
            | Opcode::Cal
            | Opcode::Ret
            | Opcode::Bssy
            | Opcode::Bsync => OpClass::Control,
            Opcode::Bar => OpClass::Sync,
            Opcode::Mov
            | Opcode::Mov32i
            | Opcode::Sel
            | Opcode::S2r
            | Opcode::Cs2r
            | Opcode::Shfl
            | Opcode::Vote
            | Opcode::Prmt
            | Opcode::Nop => OpClass::Other,
            _ => OpClass::IntAlu,
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_code(op.code()), Some(op));
            assert_eq!(Opcode::from_name(op.name()), Some(op));
        }
        assert_eq!(Opcode::from_code(200), None);
        assert_eq!(Opcode::from_name("FROB"), None);
    }

    #[test]
    fn classification() {
        assert_eq!(Opcode::Ldg.mem_space(), Some(MemSpace::Global));
        assert_eq!(Opcode::Ldc.mem_space(), Some(MemSpace::Constant));
        assert!(Opcode::Ldg.is_load());
        assert!(!Opcode::Ldg.is_store());
        assert!(Opcode::Stg.is_store());
        assert!(Opcode::AtomG.is_load() && Opcode::AtomG.is_store());
        assert!(Opcode::Bra.is_control());
        assert!(Opcode::Bar.is_block_sync());
        assert!(Opcode::Mufu.has_variable_latency());
        assert!(!Opcode::Ffma.has_variable_latency());
        assert_eq!(Opcode::Mufu.pipe(), Pipe::Sfu);
        assert_eq!(Opcode::Dfma.class(), OpClass::Fp64);
        assert_eq!(Opcode::F2f.class(), OpClass::Conversion);
    }
}
