//! Integration tests for the advisor daemon: concurrent clients against
//! a live `gpa-serve` on an ephemeral port.
//!
//! The acceptance bar for the subsystem: 8 concurrent clients over the
//! 21-app registry get responses byte-identical to `Session::run_one`,
//! a second wave of identical requests is answered from the report
//! store (cache hits observable via `status`), a full queue rejects
//! instead of growing, and shutdown is clean.

use gpa::core::schema;
use gpa::json::Json;
use gpa::pipeline::{AnalysisJob, Session};
use gpa::serve::{
    protocol, serve, serve_on, FaultPlan, PeerMeta, Request, Ring, ServeClient, ServerConfig,
    ServerEngine, WireOptions,
};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn test_server(config: ServerConfig) -> gpa::serve::ServerHandle {
    serve(Arc::new(Session::test()), config).expect("daemon binds an ephemeral port")
}

fn ephemeral() -> ServerConfig {
    ServerConfig { workers: 4, ..ServerConfig::ephemeral() }
}

/// The reference body: what `Session::run_one` yields, rendered exactly
/// as the daemon renders it.
fn reference_body(session: &Session, job: &AnalysisJob) -> String {
    protocol::analyze_body(&session.run_one(job).expect("reference run"), 1).compact()
}

#[test]
fn concurrent_clients_get_bytes_identical_to_run_one() {
    let handle = test_server(ephemeral());
    let addr = handle.local_addr();
    let reference = Session::test();
    let jobs: Vec<AnalysisJob> = reference.jobs_for_all_apps();
    assert_eq!(jobs.len(), 21);

    // 8 clients, each analyzing every app (first-come computes, the
    // rest hit the store — either way the bytes must match run_one).
    let bodies: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|client_idx| {
                let jobs = &jobs;
                scope.spawn(move || {
                    let mut client = ServeClient::connect(addr).expect("connect");
                    let mut out = Vec::new();
                    // Stagger the walk so clients collide on different apps.
                    for i in 0..jobs.len() {
                        let job = &jobs[(i + 3 * client_idx) % jobs.len()];
                        let response =
                            client.analyze(&job.app, job.variant).expect("analyze round-trip");
                        assert!(response.ok, "{}: {:?}", job, response.error);
                        out.push((job.clone(), response.result.expect("body").compact()));
                    }
                    out.sort_by(|(a, _), (b, _)| (&a.app, a.variant).cmp(&(&b.app, b.variant)));
                    out.into_iter().map(|(_, body)| body).collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    let mut sorted_jobs = jobs.clone();
    sorted_jobs.sort_by(|a, b| (&a.app, a.variant).cmp(&(&b.app, b.variant)));
    let expected: Vec<String> = sorted_jobs.iter().map(|j| reference_body(&reference, j)).collect();
    for (idx, client_bodies) in bodies.iter().enumerate() {
        assert_eq!(client_bodies, &expected, "client {idx} saw different bytes");
    }
    handle.shutdown();
    handle.join();
}

#[test]
fn second_wave_is_served_from_the_report_store() {
    let handle = test_server(ephemeral());
    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    let apps = ["rodinia/hotspot", "rodinia/gaussian", "rodinia/nw"];
    let first: Vec<String> = apps
        .iter()
        .map(|app| {
            let r = client.analyze(app, 0).expect("first wave");
            assert!(r.ok);
            r.result.unwrap().compact()
        })
        .collect();
    let mut cached_seen = 0;
    for (app, expected) in apps.iter().zip(&first) {
        let r = client.analyze(app, 0).expect("second wave");
        assert!(r.ok);
        cached_seen += usize::from(r.cached);
        assert_eq!(&r.result.unwrap().compact(), expected, "cached bytes identical");
    }
    assert_eq!(cached_seen, apps.len(), "entire second wave is cache hits");

    let status = client.status().expect("status").into_result().expect("ok");
    let store = status.field("store").unwrap();
    assert!(store.field("hits").unwrap().as_u64().unwrap() >= 3, "hits visible in metrics");
    assert_eq!(store.field("entries").unwrap().as_u64().unwrap(), 3);
    let ops = status.field("ops").unwrap();
    assert_eq!(ops.field("analyze").unwrap().as_u64().unwrap(), 6);
    handle.shutdown();
    handle.join();
}

#[test]
fn analyze_profile_decouples_profiling_from_advising() {
    let handle = test_server(ephemeral());
    let reference = Session::test();
    let job = AnalysisJob::new("rodinia/hotspot", 0);
    // "Client side": gather the profile locally (standing in for a real
    // CUPTI dump) and submit only the profile — the daemon must not
    // re-simulate.
    let (_, profile, _) = reference.profile_one(&job).expect("local profiling");
    let profile_doc = Json::parse(&profile.to_json()).expect("profile serializes");

    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    let response = client.analyze_profile(&job.app, job.variant, &profile_doc).expect("request");
    assert!(response.ok, "{:?}", response.error);
    let body = response.result.unwrap();

    let report = reference.advise_profile(&job, &profile).expect("local advising");
    let expected = protocol::profile_body(&job, &profile, &report, 1).compact();
    assert_eq!(body.compact(), expected, "daemon advice matches local advise_profile");

    // Same submission again: a content-addressed cache hit.
    let again = client.analyze_profile(&job.app, job.variant, &profile_doc).expect("repeat");
    assert!(again.cached, "identical profile submission hits the store");
    assert_eq!(again.result.unwrap().compact(), expected);
    handle.shutdown();
    handle.join();
}

/// The v2 negotiation contract: one daemon answers v1 and v2 clients
/// for the same request; the v1 body keeps the pre-v2 shape; each
/// version caches independently and byte-identically.
#[test]
fn daemon_answers_v1_and_v2_clients_for_the_same_request() {
    let handle = test_server(ephemeral());
    let reference = Session::test();
    let job = AnalysisJob::new("rodinia/hotspot", 0);
    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");

    // A client that never mentions `schema` gets the flat v1 body with
    // the pre-v2 field set, bytes equal to the local v1 rendering.
    let v1 = client.analyze(&job.app, job.variant).expect("v1 round-trip");
    assert!(v1.ok, "{:?}", v1.error);
    let v1_body = v1.result.unwrap();
    let keys: Vec<&str> = v1_body.entries().unwrap().iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        ["app", "variant", "kernel", "cycles", "total_samples", "issue_ratio", "advice", "text"],
        "v1 clients see the unchanged field set"
    );
    assert_eq!(v1_body.compact(), reference_body(&reference, &job));

    // The same request with `schema: 2` carries the structured report.
    let v2 = client.analyze_with(&job.app, job.variant, &WireOptions::v2()).expect("v2");
    assert!(v2.ok, "{:?}", v2.error);
    let v2_body = v2.result.unwrap();
    assert_eq!(v2_body.field("schema").unwrap().as_u64().unwrap(), 2);
    let report = schema::report_from_json(v2_body.field("report").unwrap()).expect("v2 parses");
    let local = reference.run_one(&job).unwrap().report;
    assert_eq!(report, local, "daemon v2 report equals local advise");
    assert_eq!(
        v2_body.field("text").unwrap(),
        v1_body.field("text").unwrap(),
        "rendered text identical across schema versions"
    );

    // Both versions hit the store independently, byte-identically.
    let v1_again = client.analyze(&job.app, job.variant).expect("v1 repeat");
    assert!(v1_again.cached, "v1 repeat is a cache hit");
    assert_eq!(v1_again.result.unwrap().compact(), v1_body.compact());
    let v2_again = client.analyze_with(&job.app, job.variant, &WireOptions::v2()).expect("v2");
    assert!(v2_again.cached, "v2 repeat is a cache hit");
    assert_eq!(v2_again.result.unwrap().compact(), v2_body.compact());

    // Request options shape the body (and address the cache) per call.
    let mut top1 = WireOptions::v2();
    top1.request.top = Some(1);
    let top = client.analyze_with(&job.app, job.variant, &top1).expect("top-1");
    assert!(!top.cached, "different options are a different content address");
    let top_report =
        schema::report_from_json(top.result.unwrap().field("report").unwrap()).unwrap();
    assert_eq!(top_report.items.len(), 1);
    assert_eq!(top_report.items[0], local.items[0]);

    // `status` advertises the negotiable versions.
    let status = client.status().unwrap().into_result().unwrap();
    let versions: Vec<u64> = status
        .field("schemas")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|v| v.as_u64().unwrap())
        .collect();
    assert_eq!(versions, vec![1, 2]);
    handle.shutdown();
    handle.join();
}

/// `analyze_profile` negotiates the schema the same way `analyze` does.
#[test]
fn analyze_profile_negotiates_v2() {
    let handle = test_server(ephemeral());
    let reference = Session::test();
    let job = AnalysisJob::new("rodinia/nw", 0);
    let (_, profile, _) = reference.profile_one(&job).expect("local profiling");
    let profile_doc = Json::parse(&profile.to_json()).expect("profile serializes");

    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    let response = client
        .analyze_profile_with(&job.app, job.variant, &profile_doc, &WireOptions::v2())
        .expect("request");
    assert!(response.ok, "{:?}", response.error);
    let body = response.result.unwrap();
    let report = schema::report_from_json(body.field("report").unwrap()).expect("v2 parses");
    let local = reference.advise_profile(&job, &profile).expect("local advising");
    assert_eq!(report, local);
    handle.shutdown();
    handle.join();
}

/// The chunked-upload path: a large profile split into pieces streams
/// in as `profile_begin` / `profile_chunk`* / `profile_end` and must
/// produce the **same body and the same store entry** as submitting the
/// whole profile in one `analyze_profile` frame.
#[test]
fn chunked_upload_matches_whole_profile_submission() {
    let handle = test_server(ephemeral());
    let reference = Session::test();
    let job = AnalysisJob::new("rodinia/hotspot", 0);
    let (_, profile, _) = reference.profile_one(&job).expect("local profiling");
    let chunks: Vec<Json> = profile
        .split_chunks(3)
        .iter()
        .map(|c| Json::parse(&c.to_json()).expect("chunk serializes"))
        .collect();
    assert!(chunks.len() > 1, "profile large enough to actually split");

    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    let response = client
        .analyze_profile_chunked(&job.app, job.variant, &chunks, &WireOptions::default())
        .expect("chunked upload");
    assert!(response.ok, "{:?}", response.error);
    assert!(!response.cached, "first submission computes");
    let body = response.result.unwrap().compact();

    let report = reference.advise_profile(&job, &profile).expect("local advising");
    let expected = protocol::profile_body(&job, &profile, &report, 1).compact();
    assert_eq!(body, expected, "merged upload equals advising on the whole profile");

    // The merged upload joined the content-addressed cache: submitting
    // the same profile whole is a hit, and vice versa.
    let profile_doc = Json::parse(&profile.to_json()).expect("profile serializes");
    let whole = client.analyze_profile(&job.app, job.variant, &profile_doc).expect("request");
    assert!(whole.cached, "whole-profile submission hits the chunked upload's entry");
    assert_eq!(whole.result.unwrap().compact(), expected);

    // Upload ops are visible in the metrics.
    let status = client.status().expect("status").into_result().expect("ok");
    let ops = status.field("ops").unwrap();
    assert_eq!(ops.field("profile_begin").unwrap().as_u64().unwrap(), 1);
    assert_eq!(ops.field("profile_chunk").unwrap().as_u64().unwrap(), chunks.len() as u64);
    assert_eq!(ops.field("profile_end").unwrap().as_u64().unwrap(), 1);
    handle.shutdown();
    handle.join();
}

#[test]
fn upload_error_paths_leave_the_connection_usable() {
    let handle = test_server(ephemeral());
    let reference = Session::test();
    let job = AnalysisJob::new("rodinia/hotspot", 0);
    let (_, profile, _) = reference.profile_one(&job).expect("local profiling");
    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");

    // A bad job fails at `profile_begin`, before any chunk is streamed.
    let err = client.profile_begin("no/such-app", 0, &WireOptions::default()).unwrap_err();
    assert!(err.to_string().contains("unknown app"), "{err}");
    let err = client.profile_begin(&job.app, 99, &WireOptions::default()).unwrap_err();
    assert!(err.to_string().contains("variant out of range"), "{err}");

    // Chunks and ends against unknown ids are errors, not hangs.
    let doc = Json::parse(&profile.to_json()).unwrap();
    let r = client.profile_chunk(99, &doc).expect("round-trip");
    assert!(!r.ok);
    assert!(r.error.unwrap().contains("unknown upload id 99"));
    let r = client.profile_end(99).expect("round-trip");
    assert!(!r.ok);

    // Ending an upload with no chunks is an error; the id is consumed.
    let id = client.profile_begin(&job.app, job.variant, &WireOptions::default()).unwrap();
    let r = client.profile_end(id).expect("round-trip");
    assert!(!r.ok);
    assert!(r.error.unwrap().contains("has no chunks"));

    // A chunk from a *different* kernel configuration is rejected but
    // the upload keeps its previous state.
    let id = client.profile_begin(&job.app, job.variant, &WireOptions::default()).unwrap();
    assert!(client.profile_chunk(id, &doc).expect("first chunk").ok);
    let (_, other, _) =
        reference.profile_one(&AnalysisJob::new("rodinia/nw", 0)).expect("other profile");
    let other_doc = Json::parse(&other.to_json()).unwrap();
    let r = client.profile_chunk(id, &other_doc).expect("round-trip");
    assert!(!r.ok);
    assert!(r.error.unwrap().contains("chunk does not merge"), "merge mismatch is named");
    let done = client.profile_end(id).expect("finalize");
    assert!(done.ok, "upload survived the bad chunk: {:?}", done.error);

    // Open uploads are bounded per connection; aborting one frees its
    // slot without running an analysis.
    let mut ids = Vec::new();
    for _ in 0..8 {
        ids.push(client.profile_begin(&job.app, job.variant, &WireOptions::default()).unwrap());
    }
    let err = client.profile_begin(&job.app, job.variant, &WireOptions::default()).unwrap_err();
    assert!(err.to_string().contains("too many open uploads"), "{err}");
    let aborted = client.profile_abort(ids[0]).expect("abort round-trip");
    assert!(aborted.ok, "{:?}", aborted.error);
    assert!(client.profile_begin(&job.app, job.variant, &WireOptions::default()).is_ok());
    let r = client.profile_abort(ids[0]).expect("round-trip");
    assert!(!r.ok, "double abort is an unknown id");
    handle.shutdown();
    handle.join();
}

/// Uploads bound what the daemon retains: at most 64 chunks per upload
/// (each chunk can add up to a frame's worth of PC entries to the
/// running merge, so the count cap is the memory cap).
#[test]
fn upload_chunk_count_is_bounded() {
    let handle = test_server(ephemeral());
    let reference = Session::test();
    let job = AnalysisJob::new("rodinia/hotspot", 0);
    let (_, profile, _) = reference.profile_one(&job).expect("local profiling");
    // An empty chunk (no PCs, zero totals) is valid and merges with
    // anything — cheap fuel for hitting the count cap.
    let empty = Json::parse(&profile.empty_like().to_json()).unwrap();
    let full = Json::parse(&profile.to_json()).unwrap();

    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    let id = client.profile_begin(&job.app, job.variant, &WireOptions::default()).unwrap();
    assert!(client.profile_chunk(id, &full).expect("real chunk").ok);
    for _ in 0..63 {
        assert!(client.profile_chunk(id, &empty).expect("filler chunk").ok);
    }
    let over = client.profile_chunk(id, &empty).expect("round-trip");
    assert!(!over.ok, "65th chunk must be rejected");
    assert!(over.error.unwrap().contains("64 chunks"), "limit is named");
    // The upload is still finalizable, and empty chunks were identity
    // merges: the result equals advising on the original profile.
    let done = client.profile_end(id).expect("finalize");
    assert!(done.ok, "{:?}", done.error);
    let report = reference.advise_profile(&job, &profile).expect("local advising");
    let expected = protocol::profile_body(&job, &profile, &report, 1).compact();
    assert_eq!(done.result.unwrap().compact(), expected);
    handle.shutdown();
    handle.join();
}

/// Daemon-side repeat profiling: `"repeat": n` on `analyze` merges `n`
/// replayed launches, matches the local repeat path byte for byte, and
/// caches separately from the single-launch request.
#[test]
fn analyze_repeat_merges_replays_daemon_side() {
    let handle = test_server(ephemeral());
    let reference = Session::test();
    let job = AnalysisJob::new("rodinia/hotspot", 0);
    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");

    let single = client.analyze(&job.app, job.variant).expect("single");
    assert!(single.ok);
    let single_body = single.result.unwrap();

    let options = WireOptions { repeat: 3, ..WireOptions::default() };
    let repeated = client.analyze_with(&job.app, job.variant, &options).expect("repeat");
    assert!(repeated.ok, "{:?}", repeated.error);
    assert!(!repeated.cached, "repeat count addresses its own cache entry");
    let repeated_body = repeated.result.unwrap();
    let samples = |b: &Json| b.field("total_samples").unwrap().as_u64().unwrap();
    let cycles = |b: &Json| b.field("cycles").unwrap().as_u64().unwrap();
    assert!(samples(&repeated_body) > samples(&single_body));
    assert_eq!(cycles(&repeated_body), cycles(&single_body), "ground truth unchanged");

    let local = reference
        .run_one_request_repeat(&job, &options.request, 3)
        .expect("local repeat reference");
    let expected = protocol::analyze_body(&local, 1).compact();
    assert_eq!(repeated_body.compact(), expected, "daemon repeat equals local repeat");
    handle.shutdown();
    handle.join();
}

/// A backpressure-rejected `profile_end` says "retry later" — and the
/// retry must actually work: the upload (and its merge) survives the
/// rejection instead of being discarded.
#[test]
fn profile_end_survives_backpressure_rejection() {
    let config = ServerConfig { workers: 1, queue: 1, ..ServerConfig::ephemeral() };
    let handle = test_server(config);
    let addr = handle.local_addr();
    let reference = Session::test();
    let job = AnalysisJob::new("rodinia/hotspot", 0);
    let (_, profile, _) = reference.profile_one(&job).expect("local profiling");
    let doc = Json::parse(&profile.to_json()).unwrap();

    let mut client = ServeClient::connect(addr).expect("connect");
    let id = client.profile_begin(&job.app, job.variant, &WireOptions::default()).unwrap();
    assert!(client.profile_chunk(id, &doc).expect("chunk").ok);

    // Occupy the single worker and fill the single queue slot.
    let occupier = std::thread::spawn(move || {
        let mut c = ServeClient::connect(addr).expect("connect");
        c.request(&Request::Sleep { ms: 1500 }).expect("sleep completes")
    });
    let queued = std::thread::spawn(move || {
        let mut c = ServeClient::connect(addr).expect("connect");
        std::thread::sleep(std::time::Duration::from_millis(200));
        c.request(&Request::Sleep { ms: 10 }).expect("queued sleep completes")
    });
    std::thread::sleep(std::time::Duration::from_millis(600));
    let rejected = client.profile_end(id).expect("round-trip");
    assert!(!rejected.ok, "profile_end hits backpressure");
    assert!(rejected.error.unwrap().contains("queue full"));

    assert!(occupier.join().unwrap().ok);
    assert!(queued.join().unwrap().ok);
    // The upload survived the rejection: retrying finalizes the same
    // merge, byte-identical to a whole-profile submission.
    let done = client.profile_end(id).expect("retry after drain");
    assert!(done.ok, "{:?}", done.error);
    let report = reference.advise_profile(&job, &profile).expect("local advising");
    let expected = protocol::profile_body(&job, &profile, &report, 1).compact();
    assert_eq!(done.result.unwrap().compact(), expected);
    handle.shutdown();
    handle.join();
}

#[test]
fn full_queue_rejects_with_backpressure_error() {
    // One worker, queue capacity 1: a long sleep occupies the worker,
    // a second fills the queue, the third must be rejected.
    let config = ServerConfig { workers: 1, queue: 1, ..ServerConfig::ephemeral() };
    let handle = test_server(config);
    let addr = handle.local_addr();

    let occupier = std::thread::spawn(move || {
        let mut c = ServeClient::connect(addr).expect("connect");
        c.request(&Request::Sleep { ms: 1500 }).expect("sleep completes")
    });
    let queued = std::thread::spawn(move || {
        let mut c = ServeClient::connect(addr).expect("connect");
        std::thread::sleep(std::time::Duration::from_millis(200));
        c.request(&Request::Sleep { ms: 10 }).expect("queued sleep completes")
    });
    // Give the first request time to reach the worker and the second to
    // park in the queue.
    std::thread::sleep(std::time::Duration::from_millis(600));
    let mut c = ServeClient::connect(addr).expect("connect");
    let rejected = c.request(&Request::Sleep { ms: 10 }).expect("round-trip");
    assert!(!rejected.ok, "third request must be rejected");
    let msg = rejected.error.expect("error message");
    assert!(msg.contains("queue full"), "explicit backpressure: {msg}");

    let status = c.status().expect("status").into_result().expect("ok");
    let queue = status.field("queue").unwrap();
    assert!(queue.field("rejected").unwrap().as_u64().unwrap() >= 1);
    assert_eq!(queue.field("capacity").unwrap().as_u64().unwrap(), 1);

    assert!(occupier.join().unwrap().ok);
    assert!(queued.join().unwrap().ok);
    handle.shutdown();
    handle.join();
}

#[test]
fn protocol_errors_are_reported_not_fatal() {
    let handle = test_server(ephemeral());
    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    for (line, needle) in [
        ("this is not json", "malformed request"),
        ("{\"op\":\"warp-speed\"}", "unknown op"),
        ("{\"no_op\":true}", "missing `op`"),
    ] {
        let frame = client.request_line(line).expect("server answers bad input");
        let doc = Json::parse(frame).expect("error frame is JSON");
        assert!(!doc.field("ok").unwrap().as_bool().unwrap());
        let msg = doc.field("error").unwrap().as_str().unwrap();
        assert!(msg.contains(needle), "{line}: {msg}");
    }
    // The connection survives protocol errors; real work still flows.
    let ok = client.analyze("rodinia/hotspot", 0).expect("connection still usable");
    assert!(ok.ok);

    // Analysis errors carry the job identity.
    let bad = client.analyze("no/such-app", 0).expect("round-trip");
    assert!(!bad.ok);
    assert!(bad.error.unwrap().contains("unknown app"));

    let status = client.status().expect("status").into_result().expect("ok");
    let errors = status.field("errors").unwrap();
    assert_eq!(errors.field("protocol").unwrap().as_u64().unwrap(), 3);
    assert_eq!(errors.field("analysis").unwrap().as_u64().unwrap(), 1);
    handle.shutdown();
    handle.join();
}

#[test]
fn shutdown_op_stops_the_daemon_cleanly() {
    let handle = test_server(ephemeral());
    let addr = handle.local_addr();
    let mut client = ServeClient::connect(addr).expect("connect");
    let response = client.shutdown().expect("shutdown acknowledged");
    assert!(response.ok);
    // join() returning proves the accept loop, workers, and connection
    // threads all exited.
    handle.join();
    // And the port is actually closed.
    std::thread::sleep(std::time::Duration::from_millis(50));
    assert!(ServeClient::connect(addr).is_err(), "daemon no longer listening after clean shutdown");
}

#[test]
fn lru_eviction_bounds_the_store() {
    let config = ServerConfig { workers: 2, store_capacity: 2, ..ServerConfig::ephemeral() };
    let handle = test_server(config);
    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    for app in ["rodinia/hotspot", "rodinia/gaussian", "rodinia/nw", "rodinia/bfs"] {
        assert!(client.analyze(app, 0).expect("analyze").ok);
    }
    let status = client.status().expect("status").into_result().expect("ok");
    let store = status.field("store").unwrap();
    assert_eq!(store.field("entries").unwrap().as_u64().unwrap(), 2, "memory stays bounded");
    assert!(store.field("evictions").unwrap().as_u64().unwrap() >= 2);
    handle.shutdown();
    handle.join();
}

#[test]
fn persisted_store_warms_a_restarted_daemon() {
    let dir = std::env::temp_dir().join(format!("gpa-serve-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config =
        || ServerConfig { workers: 2, persist_dir: Some(dir.clone()), ..ServerConfig::ephemeral() };

    let first = test_server(config());
    let mut client = ServeClient::connect(first.local_addr()).expect("connect");
    let original = client.analyze("rodinia/hotspot", 0).expect("analyze");
    assert!(original.ok && !original.cached);
    let original_body = original.result.unwrap().compact();
    first.shutdown();
    first.join();

    // A fresh daemon over the same directory answers from disk without
    // re-simulating.
    let second = test_server(config());
    let mut client = ServeClient::connect(second.local_addr()).expect("connect");
    let warmed = client.analyze("rodinia/hotspot", 0).expect("analyze");
    assert!(warmed.ok && warmed.cached, "restart served from the disk tier");
    assert_eq!(warmed.result.unwrap().compact(), original_body);
    let status = client.status().expect("status").into_result().expect("ok");
    assert!(status.field("store").unwrap().field("disk_hits").unwrap().as_u64().unwrap() >= 1);
    second.shutdown();
    second.join();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Reactor engine
// ---------------------------------------------------------------------

/// The wire line for a default-options `analyze` of `(app, 0)`.
fn analyze_wire(app: &str) -> String {
    Request::Analyze { job: AnalysisJob::new(app, 0), options: WireOptions::default() }.to_wire()
}

/// The content address of a default-options `analyze` of `(app, 0)` —
/// what the daemon's store and the cluster ring hash.
fn analyze_key(app: &str) -> String {
    Request::Analyze { job: AnalysisJob::new(app, 0), options: WireOptions::default() }
        .cache_key()
        .expect("analyze is cacheable")
}

/// The reactor must frame requests by newline, not by read boundary: a
/// frame trickling in over several writes parses once complete, and
/// several frames arriving in one write all answer, in order.
#[test]
fn reactor_reassembles_partial_frames_and_pipelines_in_order() {
    let handle = test_server(ephemeral());
    let reference = Session::test();
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // One frame, three writes, pauses in between.
    let frame = "{\"op\":\"status\"}\n";
    for piece in [&frame[..5], &frame[5..11], &frame[11..]] {
        stream.write_all(piece.as_bytes()).expect("partial write");
        std::thread::sleep(Duration::from_millis(40));
    }
    let mut line = String::new();
    reader.read_line(&mut line).expect("response to the reassembled frame");
    let doc = Json::parse(&line).expect("frame JSON");
    assert!(doc.field("ok").unwrap().as_bool().unwrap(), "partial-frame status answered");

    // Three frames, one write: responses come back in request order.
    let pipelined = format!(
        "{}\n{}\n{}\n",
        analyze_wire("rodinia/hotspot"),
        analyze_wire("rodinia/nw"),
        "{\"op\":\"status\"}"
    );
    stream.write_all(pipelined.as_bytes()).expect("pipelined write");
    let mut bodies = Vec::new();
    for _ in 0..3 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("pipelined response");
        bodies.push(Json::parse(&line).expect("frame JSON"));
    }
    for (idx, app) in ["rodinia/hotspot", "rodinia/nw"].iter().enumerate() {
        let job = AnalysisJob::new(*app, 0);
        assert_eq!(
            bodies[idx].field("result").unwrap().compact(),
            reference_body(&reference, &job),
            "pipelined response {idx} is {app}'s bytes, in order"
        );
    }
    assert!(bodies[2].field("result").unwrap().get("uptime_ms").is_some(), "status came last");
    handle.shutdown();
    handle.join();
}

/// The pending-byte budget is admission control, not buffering: with the
/// budget at zero, a job frame pipelined behind unflushed responses is
/// shed with an explicit error, and the shed is counted.
#[test]
fn pending_byte_budget_sheds_jobs_with_backpressure() {
    let config = ServerConfig { max_pending_bytes: 0, ..ephemeral() };
    let handle = test_server(config);
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // One small write, so every frame lands in the reactor's buffer in
    // one batch: the statuses queue response bytes, and the sleep job
    // behind them must be shed before it reaches the worker pool.
    let sleep_wire = Request::Sleep { ms: 10 }.to_wire();
    let burst = format!("{0}\n{0}\n{0}\n{1}\n", "{\"op\":\"status\"}", sleep_wire);
    stream.write_all(burst.as_bytes()).expect("burst write");
    let mut frames = Vec::new();
    for _ in 0..4 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("burst response");
        frames.push(Json::parse(&line).expect("frame JSON"));
    }
    for frame in &frames[..3] {
        assert!(frame.field("ok").unwrap().as_bool().unwrap(), "statuses answered normally");
    }
    assert!(!frames[3].field("ok").unwrap().as_bool().unwrap(), "job behind the backlog shed");
    let msg = frames[3].field("error").unwrap().as_str().unwrap();
    assert!(msg.contains("backlog over budget"), "shed names the budget: {msg}");

    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    let status = client.status().expect("status").into_result().expect("ok");
    let reactor = status.field("reactor").unwrap();
    assert!(reactor.field("byte_sheds").unwrap().as_u64().unwrap() >= 1, "shed counted");
    handle.shutdown();
    handle.join();
}

/// The slow-client guard: a connection that goes quiet past the idle
/// deadline is reaped by the reactor's sweep (observed as EOF) and
/// counted in the metrics.
#[test]
fn idle_connections_are_reaped_and_counted() {
    let config = ServerConfig { idle_timeout: Duration::from_millis(150), ..ephemeral() };
    let handle = test_server(config);
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    let mut buf = [0u8; 16];
    // The daemon closes us: read returns 0 well before our own 5s guard.
    let n = stream.read(&mut buf).expect("daemon closed the idle connection");
    assert_eq!(n, 0, "idle connection saw EOF");

    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    let status = client.status().expect("status").into_result().expect("ok");
    let reactor = status.field("reactor").unwrap();
    assert!(reactor.field("idle_reaped").unwrap().as_u64().unwrap() >= 1, "reap counted");
    assert_eq!(status.field("engine").unwrap().as_str().unwrap(), "reactor");
    handle.shutdown();
    handle.join();
}

/// The client's read timeout keeps a wedged (or just slow) daemon from
/// hanging `gpa request` forever.
#[test]
fn client_read_timeout_bounds_a_slow_daemon() {
    let handle = test_server(ephemeral());
    let mut slow = ServeClient::connect(handle.local_addr()).expect("connect");
    slow.set_timeouts(Some(Duration::from_millis(150))).expect("timeouts");
    let err = slow.request(&Request::Sleep { ms: 1500 }).expect_err("read must time out");
    assert!(
        matches!(err.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut),
        "timeout, not a hang: {err}"
    );
    // The daemon itself is healthy; a fresh client still gets answers.
    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    assert!(client.analyze("rodinia/hotspot", 0).expect("analyze").ok);
    handle.shutdown();
    handle.join();
}

/// The legacy thread-per-connection engine stays wire-compatible (it is
/// the bench baseline): same bytes, same cache behavior, clean shutdown.
#[test]
fn threads_engine_remains_byte_compatible() {
    let config = ServerConfig { engine: ServerEngine::Threads, ..ephemeral() };
    let handle = test_server(config);
    let reference = Session::test();
    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    for app in ["rodinia/hotspot", "rodinia/gaussian"] {
        let job = AnalysisJob::new(app, 0);
        let r = client.analyze(app, 0).expect("analyze");
        assert!(r.ok, "{:?}", r.error);
        assert_eq!(r.result.unwrap().compact(), reference_body(&reference, &job));
        let again = client.analyze(app, 0).expect("repeat");
        assert!(again.cached, "store works under the threads engine");
    }
    let status = client.status().expect("status").into_result().expect("ok");
    assert_eq!(status.field("engine").unwrap().as_str().unwrap(), "threads");
    handle.shutdown();
    handle.join();
}

// ---------------------------------------------------------------------
// Multi-reactor serving
// ---------------------------------------------------------------------

/// `--reactors 1` is the compatibility anchor: across the whole 21-app
/// registry, a one-reactor daemon's bytes equal both `Session::run_one`
/// and a default-config daemon's answers, and the status surface
/// reports one reactor with the full byte budget.
#[test]
fn single_reactor_stays_byte_identical_across_all_apps() {
    let one = test_server(ServerConfig { reactors: 1, ..ephemeral() });
    let fallback = test_server(ephemeral());
    let reference = Session::test();
    let jobs = reference.jobs_for_all_apps();
    assert_eq!(jobs.len(), 21);
    assert_eq!(one.reactors(), 1);
    assert_eq!(one.accept_path(), "round_robin", "one reactor needs no reuseport group");

    let mut c1 = ServeClient::connect(one.local_addr()).expect("connect");
    let mut cd = ServeClient::connect(fallback.local_addr()).expect("connect");
    for job in &jobs {
        let expected = reference_body(&reference, job);
        let a = c1.analyze(&job.app, job.variant).expect("one-reactor analyze");
        assert!(a.ok, "{job}: {:?}", a.error);
        assert_eq!(a.result.unwrap().compact(), expected, "{job}: one-reactor bytes");
        let b = cd.analyze(&job.app, job.variant).expect("default analyze");
        assert!(b.ok, "{job}: {:?}", b.error);
        assert_eq!(b.result.unwrap().compact(), expected, "{job}: default-config bytes");
    }

    let status = c1.status().expect("status").into_result().expect("ok");
    let reactor = status.field("reactor").unwrap();
    assert_eq!(reactor.field("count").unwrap().as_u64().unwrap(), 1);
    let per = status.field("reactors").unwrap().as_array().unwrap();
    assert_eq!(per.len(), 1, "one entry in status.reactors");
    assert_eq!(
        per[0].field("byte_budget").unwrap().as_u64().unwrap(),
        ServerConfig::default().max_pending_bytes,
        "a single reactor owns the whole byte budget"
    );
    assert!(per[0].field("accepted").unwrap().as_u64().unwrap() >= 1);
    one.shutdown();
    one.join();
    fallback.shutdown();
    fallback.join();
}

/// A requested reactor count above [`gpa::serve::MAX_REACTORS`] is
/// capped, and `status` reports the *effective* count.
#[test]
fn reactor_count_is_capped_and_reported_effectively() {
    let handle = test_server(ServerConfig { reactors: 64, ..ephemeral() });
    assert_eq!(handle.reactors(), gpa::serve::MAX_REACTORS);
    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    let status = client.status().expect("status").into_result().expect("ok");
    let reactor = status.field("reactor").unwrap();
    assert_eq!(
        reactor.field("count").unwrap().as_u64().unwrap(),
        gpa::serve::MAX_REACTORS as u64,
        "status reports the capped effective count"
    );
    let per = status.field("reactors").unwrap().as_array().unwrap();
    assert_eq!(per.len(), gpa::serve::MAX_REACTORS);
    let budget = ServerConfig::default().max_pending_bytes / gpa::serve::MAX_REACTORS as u64;
    for entry in per {
        assert_eq!(entry.field("byte_budget").unwrap().as_u64().unwrap(), budget);
    }
    handle.shutdown();
    handle.join();
}

/// On a multi-reactor daemon — kernel-balanced SO_REUSEPORT listeners —
/// pipelined frames on one connection still answer in order with
/// byte-identical bodies, and each reactor's own idle sweep still reaps
/// quiet connections.
#[test]
fn multi_reactor_pipelines_in_order_and_reaps_idle() {
    let config =
        ServerConfig { reactors: 2, idle_timeout: Duration::from_millis(200), ..ephemeral() };
    let handle = test_server(config);
    assert_eq!(handle.reactors(), 2);
    assert_eq!(handle.accept_path(), "reuseport");
    let reference = Session::test();

    // Enough fresh connections that the 4-tuple hash spreads them over
    // both listeners; each pipelines three frames and must get its
    // three answers in request order.
    for round in 0..8 {
        let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let pipelined = format!(
            "{}\n{}\n{}\n",
            analyze_wire("rodinia/hotspot"),
            analyze_wire("rodinia/nw"),
            "{\"op\":\"status\"}"
        );
        stream.write_all(pipelined.as_bytes()).expect("pipelined write");
        let mut bodies = Vec::new();
        for _ in 0..3 {
            let mut line = String::new();
            reader.read_line(&mut line).expect("pipelined response");
            bodies.push(Json::parse(&line).expect("frame JSON"));
        }
        for (idx, app) in ["rodinia/hotspot", "rodinia/nw"].iter().enumerate() {
            let job = AnalysisJob::new(*app, 0);
            assert_eq!(
                bodies[idx].field("result").unwrap().compact(),
                reference_body(&reference, &job),
                "round {round}: pipelined response {idx} is {app}'s bytes, in order"
            );
        }
        assert!(bodies[2].field("result").unwrap().get("uptime_ms").is_some(), "status last");
    }

    // A connection that goes quiet is reaped by whichever reactor owns
    // it (per-reactor sweeps, observed as EOF).
    let mut idle = TcpStream::connect(handle.local_addr()).expect("connect idle");
    idle.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    let mut buf = [0u8; 16];
    let n = idle.read(&mut buf).expect("daemon closed the idle connection");
    assert_eq!(n, 0, "idle connection saw EOF");

    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    let status = client.status().expect("status").into_result().expect("ok");
    let reactor = status.field("reactor").unwrap();
    assert_eq!(reactor.field("count").unwrap().as_u64().unwrap(), 2);
    assert_eq!(reactor.field("accept").unwrap().as_str().unwrap(), "reuseport");
    assert!(reactor.field("idle_reaped").unwrap().as_u64().unwrap() >= 1, "reap in the roll-up");
    let per = status.field("reactors").unwrap().as_array().unwrap();
    assert_eq!(per.len(), 2);
    let accepted: u64 = per.iter().map(|r| r.field("accepted").unwrap().as_u64().unwrap()).sum();
    assert!(accepted >= 10, "every connection was accepted by some reactor: {accepted}");
    let reaped: u64 = per.iter().map(|r| r.field("idle_reaped").unwrap().as_u64().unwrap()).sum();
    assert!(reaped >= 1, "the reap is attributed to a reactor");
    handle.shutdown();
    handle.join();
}

// ---------------------------------------------------------------------
// Cluster mode
// ---------------------------------------------------------------------

/// Binds `n` loopback listeners first (learning every ephemeral port),
/// then starts one daemon per listener with the full peer roster — the
/// same bootstrap the CI smoke uses with fixed ports.
fn test_cluster(n: usize) -> (Vec<gpa::serve::ServerHandle>, Vec<String>) {
    test_cluster_with(n, |_, config| config)
}

/// [`test_cluster`], but each shard's config passes through `tweak`
/// (indexed by shard) — how the failure tests plant fault plans and
/// shorten breaker cooldowns on specific members.
fn test_cluster_with(
    n: usize,
    tweak: impl Fn(usize, ServerConfig) -> ServerConfig,
) -> (Vec<gpa::serve::ServerHandle>, Vec<String>) {
    let listeners: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0").expect("bind shard")).collect();
    let addrs: Vec<String> =
        listeners.iter().map(|l| l.local_addr().expect("addr").to_string()).collect();
    let handles = listeners
        .into_iter()
        .enumerate()
        .map(|(i, listener)| {
            let peers =
                addrs.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, a)| a.clone()).collect();
            // Two reactors per shard: every cluster test (including the
            // chaos run) exercises the multi-reactor daemon on its
            // round-robin accept path (a pre-bound listener cannot grow
            // an SO_REUSEPORT group).
            let config = tweak(
                i,
                ServerConfig { workers: 2, reactors: 2, peers, ..ServerConfig::ephemeral() },
            );
            serve_on(Arc::new(Session::test()), listener, config).expect("shard starts")
        })
        .collect();
    (handles, addrs)
}

/// Polls a shard's local store for `key` (replication is asynchronous).
fn wait_for_replica(addr: &str, key: &str, deadline: Duration) -> Option<String> {
    let start = std::time::Instant::now();
    let mut client = ServeClient::connect(addr).ok()?;
    while start.elapsed() < deadline {
        let r =
            client.request(&Request::StoreGet { key: key.to_string() }).ok()?.into_result().ok()?;
        if r.field("found").unwrap().as_bool().unwrap() {
            return Some(r.field("body").unwrap().compact());
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    None
}

/// The cluster correctness anchor: whichever shard a client asks, over
/// all 21 apps, the bytes equal single-node `run_one` — computed,
/// forwarded, cached and replicated alike — and the second wave is
/// answered from the sharded store.
#[test]
fn three_shard_cluster_answers_byte_identically_from_any_shard() {
    let (handles, addrs) = test_cluster(3);
    let ring = Ring::new(addrs.iter().cloned());
    let reference = Session::test();
    let jobs = reference.jobs_for_all_apps();
    let expected: Vec<String> = jobs.iter().map(|j| reference_body(&reference, j)).collect();

    // Wave 1 through shard 0: every response byte-identical, none
    // cached (fresh cluster), and the keys shard 0 does not own were
    // forwarded.
    let mut client0 = ServeClient::connect(addrs[0].as_str()).expect("connect shard 0");
    for (job, want) in jobs.iter().zip(&expected) {
        let r = client0.analyze(&job.app, job.variant).expect("wave 1");
        assert!(r.ok, "{}: {:?}", job, r.error);
        assert!(!r.cached, "{job}: first ask computes");
        assert_eq!(&r.result.unwrap().compact(), want, "{job}: wave 1 bytes");
    }
    let status0 = client0.status().expect("status").into_result().expect("ok");
    let cluster0 = status0.field("cluster").unwrap();
    assert!(
        cluster0.field("forwards_out").unwrap().as_u64().unwrap() > 0,
        "shard 0 forwarded the keys it does not own"
    );
    assert_eq!(
        cluster0.field("members").unwrap().as_array().unwrap().len(),
        3,
        "all shards agree on the roster"
    );

    // Waves 2 and 3 through the other shards: byte-identical AND all
    // answered from the sharded store (every key's owner computed it in
    // wave 1).
    for addr in &addrs[1..] {
        let mut client = ServeClient::connect(addr.as_str()).expect("connect shard");
        for (job, want) in jobs.iter().zip(&expected) {
            let r = client.analyze(&job.app, job.variant).expect("later wave");
            assert!(r.ok, "{}: {:?}", job, r.error);
            assert!(r.cached, "{job}: the cluster already holds this report");
            assert_eq!(&r.result.unwrap().compact(), want, "{job}: later-wave bytes");
        }
    }

    // Replication: an owned key's bytes appear, verbatim, in the
    // owner's ring successor's local store.
    let probe = &jobs[0];
    let key = analyze_key(&probe.app);
    let owner = ring.owner(&key).to_string();
    let successor = ring.successor(&owner).expect("3-member ring").to_string();
    let replica = wait_for_replica(&successor, &key, Duration::from_secs(5))
        .expect("replica reaches the successor");
    assert_eq!(replica, expected[0], "replicated bytes identical");

    for handle in handles {
        handle.shutdown();
        handle.join();
    }
}

/// A restarted shard warms owned keys from its ring successor instead
/// of recomputing: the replica flows back over `store_get` and the
/// response stays byte-identical.
#[test]
fn restarted_shard_warms_from_its_neighbor() {
    let (mut handles, addrs) = test_cluster(2);
    let ring = Ring::new(addrs.iter().cloned());
    let reference = Session::test();

    // Pick an app owned by shard 0 (over 21 apps one always is).
    let (job, key) = reference
        .jobs_for_all_apps()
        .into_iter()
        .map(|j| {
            let key = analyze_key(&j.app);
            (j, key)
        })
        .find(|(_, key)| ring.owner(key) == addrs[0])
        .expect("some app hashes to shard 0");
    let expected = reference_body(&reference, &job);

    let mut client = ServeClient::connect(addrs[0].as_str()).expect("connect shard 0");
    let first = client.analyze(&job.app, job.variant).expect("compute on the owner");
    assert!(first.ok && !first.cached);
    assert_eq!(first.result.unwrap().compact(), expected);

    // Wait until the replica lands on shard 1 (shard 0's successor in a
    // 2-member ring), then kill shard 0 — memory store and all.
    assert!(
        wait_for_replica(&addrs[1], &key, Duration::from_secs(5)).is_some(),
        "replica reached the neighbor before the restart"
    );
    let shard0 = handles.remove(0);
    shard0.shutdown();
    shard0.join();

    // Restart shard 0 on the same address with a cold store.
    let listener = (0..50)
        .find_map(|_| {
            TcpListener::bind(addrs[0].as_str()).ok().or_else(|| {
                std::thread::sleep(Duration::from_millis(100));
                None
            })
        })
        .expect("rebind the shard's address");
    let config =
        ServerConfig { workers: 2, peers: vec![addrs[1].clone()], ..ServerConfig::ephemeral() };
    let restarted = serve_on(Arc::new(Session::test()), listener, config).expect("shard restarts");

    // The first ask after the restart is answered from the neighbor's
    // replica — cached, byte-identical, and counted as a warm hit.
    let mut client = ServeClient::connect(addrs[0].as_str()).expect("reconnect shard 0");
    let warmed = client.analyze(&job.app, job.variant).expect("analyze after restart");
    assert!(warmed.ok, "{:?}", warmed.error);
    assert!(warmed.cached, "warmed from the neighbor, not recomputed");
    assert_eq!(warmed.result.unwrap().compact(), expected, "warmed bytes identical");
    let status = client.status().expect("status").into_result().expect("ok");
    let cluster = status.field("cluster").unwrap();
    assert!(cluster.field("peer_warm_hits").unwrap().as_u64().unwrap() >= 1);

    restarted.shutdown();
    restarted.join();
    for handle in handles {
        handle.shutdown();
        handle.join();
    }
}

// ---------------------------------------------------------------------
// Membership & failure
// ---------------------------------------------------------------------

/// A shard cannot be its own peer, and cannot join through itself —
/// both misconfigurations are refused at startup instead of producing
/// a ring that forwards to itself.
#[test]
fn self_addressed_cluster_configs_are_rejected() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let config =
        ServerConfig { workers: 1, peers: vec![addr.clone()], ..ServerConfig::ephemeral() };
    let err = serve_on(Arc::new(Session::test()), listener, config)
        .err()
        .expect("a self-addressed peer list must not start");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    assert!(err.to_string().contains("duplicates a peer"), "names the mistake: {err}");

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let config = ServerConfig { workers: 1, join: Some(addr), ..ServerConfig::ephemeral() };
    let err = serve_on(Arc::new(Session::test()), listener, config)
        .err()
        .expect("joining through yourself must not start");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
}

/// Live membership: a third shard joins a running 2-shard cluster via
/// `--join` — no restarts — the epoch advances past the static
/// bootstrap, and the background handoff streams the keys the wider
/// ring moved onto the joiner, so it answers them from its store.
#[test]
fn join_grows_the_ring_and_handoff_warms_the_new_shard() {
    let (handles, addrs) = test_cluster(2);
    let reference = Session::test();
    let jobs = reference.jobs_for_all_apps();

    // Warm the whole keyspace through shard 0: every key ends up in its
    // (old-ring) owner's store.
    let mut client0 = ServeClient::connect(addrs[0].as_str()).expect("connect shard 0");
    for job in &jobs {
        assert!(client0.analyze(&job.app, job.variant).expect("warm wave").ok);
    }

    // Bind the joiner's address before it starts, so a store entry the
    // wider ring will assign to it can be planted in the seed's store —
    // the handoff probe does not depend on where the 21 apps hash.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind joiner");
    let joiner_addr = listener.local_addr().expect("addr").to_string();
    let new_ring = Ring::new([addrs[0].clone(), addrs[1].clone(), joiner_addr.clone()]);
    let probe_key = (0..)
        .map(|i| format!("probe-{i}"))
        .find(|k| new_ring.owner(k) == joiner_addr)
        .expect("some key hashes to the joiner");
    let probe_body = "{\"probe\":true}";
    let put = client0
        .request(&Request::StorePut {
            key: probe_key.clone(),
            body: probe_body.to_string(),
            meta: PeerMeta::default(),
        })
        .expect("store_put");
    assert!(put.ok, "{:?}", put.error);

    let config =
        ServerConfig { workers: 2, join: Some(addrs[0].clone()), ..ServerConfig::ephemeral() };
    let joiner = serve_on(Arc::new(Session::test()), listener, config).expect("joiner starts");

    // The joiner adopted the seed's roster plus itself; the seed's
    // epoch moved for the join.
    let mut jc = ServeClient::connect(joiner_addr.as_str()).expect("connect joiner");
    let view = jc.request(&Request::RingStatus).expect("ring").into_result().expect("ok");
    assert_eq!(view.field("members").unwrap().as_array().unwrap().len(), 3);
    assert!(view.field("epoch").unwrap().as_u64().unwrap() >= 2);
    let seed_view = client0.request(&Request::RingStatus).expect("ring").into_result().expect("ok");
    assert!(
        seed_view
            .field("members")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .any(|m| m.as_str().unwrap() == joiner_addr),
        "the seed's roster lists the joiner"
    );
    assert!(seed_view.field("epoch").unwrap().as_u64().unwrap() >= 2);

    // The seed's background handoff ships the planted entry to its new
    // owner without any client asking for it.
    let replica = wait_for_replica(&joiner_addr, &probe_key, Duration::from_secs(5))
        .expect("handoff ships the moved entry to the joiner");
    assert_eq!(replica, probe_body, "handed-off bytes identical");

    // Epoch-tagged peer traffic is the anti-entropy channel: shard 1
    // took no part in the join, but one forwarded frame carrying the
    // joiner's epoch makes it refresh its roster from the sender.
    let joiner_epoch = view.field("epoch").unwrap().as_u64().unwrap();
    let mut stream = TcpStream::connect(addrs[1].as_str()).expect("connect shard 1");
    let frame = format!(
        "{{\"op\":\"analyze\",\"app\":\"rodinia/hotspot\",\"variant\":0,\"schema\":2,\
         \"fwd\":true,\"epoch\":{joiner_epoch},\"from\":\"{joiner_addr}\"}}\n"
    );
    stream.write_all(frame.as_bytes()).expect("epoch-tagged forward");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("answer");
    assert!(Json::parse(&line).expect("frame JSON").field("ok").unwrap().as_bool().unwrap());
    let mut client1 = ServeClient::connect(addrs[1].as_str()).expect("connect shard 1");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let view = client1.request(&Request::RingStatus).expect("ring").into_result().expect("ok");
        if view.field("members").unwrap().as_array().unwrap().len() == 3 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "shard 1 never refreshed its roster");
        std::thread::sleep(Duration::from_millis(50));
    }

    // When the hash moved a real report onto the joiner, the handoff
    // delivered it too and the joiner answers it from its store.
    if let Some(moved) = jobs.iter().find(|j| new_ring.owner(&analyze_key(&j.app)) == joiner_addr) {
        let replica =
            wait_for_replica(&joiner_addr, &analyze_key(&moved.app), Duration::from_secs(5))
                .expect("handoff reaches the joiner");
        assert_eq!(replica, reference_body(&reference, moved), "moved bytes identical");
        let warmed = jc.analyze(&moved.app, moved.variant).expect("moved key via the joiner");
        assert!(warmed.ok && warmed.cached, "the joiner answers its new keys from the handoff");
    }

    joiner.shutdown();
    joiner.join();
    for handle in handles {
        handle.shutdown();
        handle.join();
    }
}

/// A forwarded frame from a sender whose roster epoch is behind gets
/// bounced with the receiver's fresh roster — never answered by a
/// non-owner — while a current-epoch forward is answered in place.
#[test]
fn stale_epoch_forwards_bounce_with_the_fresh_roster() {
    let (handles, addrs) = test_cluster(2);
    let mut stream = TcpStream::connect(addrs[0].as_str()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    let stale = "{\"op\":\"analyze\",\"app\":\"rodinia/hotspot\",\"variant\":0,\"schema\":2,\
                 \"fwd\":true,\"epoch\":0,\"from\":\"127.0.0.1:9\"}\n";
    stream.write_all(stale.as_bytes()).expect("stale forward");
    let mut line = String::new();
    reader.read_line(&mut line).expect("bounce");
    let doc = Json::parse(&line).expect("frame JSON");
    assert!(!doc.field("ok").unwrap().as_bool().unwrap(), "stale forward is refused");
    assert!(doc.field("stale_epoch").unwrap().as_bool().unwrap());
    let ring = doc.field("ring").unwrap();
    assert_eq!(ring.field("epoch").unwrap().as_u64().unwrap(), 1, "bootstrap epoch");
    assert_eq!(ring.field("members").unwrap().as_array().unwrap().len(), 2, "full fresh roster");

    // The same frame at the current epoch is answered in place.
    let current = "{\"op\":\"analyze\",\"app\":\"rodinia/hotspot\",\"variant\":0,\"schema\":2,\
                   \"fwd\":true,\"epoch\":1,\"from\":\"127.0.0.1:9\"}\n";
    stream.write_all(current.as_bytes()).expect("current forward");
    let mut line = String::new();
    reader.read_line(&mut line).expect("answer");
    let doc = Json::parse(&line).expect("frame JSON");
    assert!(doc.field("ok").unwrap().as_bool().unwrap(), "current-epoch forward answered");
    assert!(doc.field("result").is_ok());

    let mut client = ServeClient::connect(addrs[0].as_str()).expect("connect");
    let status = client.status().expect("status").into_result().expect("ok");
    let membership = status.field("cluster").unwrap().field("membership").unwrap();
    assert!(membership.field("stale_rejected").unwrap().as_u64().unwrap() >= 1, "bounce counted");

    for handle in handles {
        handle.shutdown();
        handle.join();
    }
}

/// Owner-down degradation: with the heaviest-owning shard killed (no
/// leave, no drain), every answer through a survivor still matches
/// `run_one` — one budgeted retry per dead forward, then a counted
/// local fallback — and the dead peer's breaker trips, fast-fails,
/// and is probed in the background.
#[test]
fn owner_down_falls_back_locally_and_trips_the_breaker() {
    let (mut handles, addrs) = test_cluster_with(3, |_, config| ServerConfig {
        peer_trip_cooldown: Duration::from_millis(100),
        ..config
    });
    let ring = Ring::new(addrs.iter().cloned());
    let reference = Session::test();
    let jobs = reference.jobs_for_all_apps();

    // Kill the shard that owns the most keys, so the wave is guaranteed
    // to hit the corpse several times.
    let mut owned = vec![0usize; addrs.len()];
    for job in &jobs {
        let owner = ring.owner(&analyze_key(&job.app)).to_string();
        owned[addrs.iter().position(|a| *a == owner).expect("owner is a member")] += 1;
    }
    let dead_idx = owned.iter().enumerate().max_by_key(|&(_, n)| *n).expect("3 shards").0;
    let dead_addr = addrs[dead_idx].clone();
    let dead = handles.remove(dead_idx);
    dead.shutdown();
    dead.join();

    let live = addrs.iter().find(|a| **a != dead_addr).expect("a survivor");
    let mut client = ServeClient::connect(live.as_str()).expect("connect survivor");
    for job in &jobs {
        let r = client.analyze(&job.app, job.variant).expect("degraded wave");
        assert!(r.ok, "{}: {:?}", job, r.error);
        assert_eq!(
            r.result.unwrap().compact(),
            reference_body(&reference, job),
            "{job}: owner-down answer still byte-identical"
        );
    }

    let status = client.status().expect("status").into_result().expect("ok");
    let cluster = status.field("cluster").unwrap();
    assert!(cluster.field("forward_failures").unwrap().as_u64().unwrap() >= 1);
    let retry = cluster.field("retry").unwrap();
    assert!(retry.field("spent").unwrap().as_u64().unwrap() >= 1, "budgeted retries were spent");
    let breaker = cluster.field("breaker").unwrap();
    assert!(breaker.field("trips").unwrap().as_u64().unwrap() >= 1, "dead peer's breaker tripped");
    assert!(
        breaker.field("fast_fails").unwrap().as_u64().unwrap()
            + breaker.field("probes").unwrap().as_u64().unwrap()
            >= 1,
        "post-trip calls fast-failed or probed"
    );

    // The background chore probes the tripped peer once its cooldown
    // elapses — visible without any client traffic.
    let deadline = std::time::Instant::now() + Duration::from_secs(3);
    loop {
        let status = client.status().expect("status").into_result().expect("ok");
        let probes = status
            .field("cluster")
            .unwrap()
            .field("breaker")
            .unwrap()
            .field("probes")
            .unwrap()
            .as_u64()
            .unwrap();
        if probes >= 1 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "breaker probe never happened");
        std::thread::sleep(Duration::from_millis(100));
    }

    for handle in handles {
        handle.shutdown();
        handle.join();
    }
}

/// The liveness heartbeat discovers a dead peer with *no client
/// traffic at all*: kill shard 1 outright, and within a few 1-second
/// heartbeat intervals shard 0's breaker for the corpse trips in the
/// background. The first real user call then fast-fails straight to a
/// byte-identical local computation instead of eating a connect
/// timeout. A seeded delay plan rides along to pin the heartbeat onto
/// the injected-fault path too (the counter proves it fired there).
#[test]
fn heartbeat_trips_a_dead_peers_breaker_before_any_user_call() {
    let plan = FaultPlan::parse("seed=11;delay:*:ms=1,count=2").expect("plan parses");
    let (mut handles, addrs) = test_cluster_with(2, |i, config| match i {
        0 => ServerConfig {
            faults: Some(plan.clone()),
            // Long cooldown: once tripped, stays tripped for the whole
            // test (no half-open probe races the assertions).
            peer_trip_cooldown: Duration::from_secs(60),
            ..config
        },
        _ => config,
    });

    // Kill shard 1 with no leave and no drain — a corpse, not a
    // departure.
    let dead = handles.remove(1);
    dead.shutdown();
    dead.join();

    // Only the chore thread talks: status is answered inline and never
    // touches the peer path. Three failed heartbeats trip the breaker.
    let mut client = ServeClient::connect(addrs[0].as_str()).expect("connect shard 0");
    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    loop {
        let status = client.status().expect("status").into_result().expect("ok");
        let cluster = status.field("cluster").unwrap();
        let trips = cluster.field("breaker").unwrap().field("trips").unwrap().as_u64().unwrap();
        if trips >= 1 {
            let heartbeats =
                cluster.field("membership").unwrap().field("heartbeats").unwrap().as_u64().unwrap();
            assert!(heartbeats >= 3, "the trip came from repeated heartbeats, got {heartbeats}");
            let peer = cluster.field("peers").unwrap().field(addrs[1].as_str()).unwrap();
            assert_eq!(peer.field("state").unwrap().as_str().unwrap(), "tripped");
            let faults = cluster.field("faults").unwrap();
            assert!(faults.field("active").unwrap().as_bool().unwrap());
            assert_eq!(
                faults.field("fired").unwrap().as_u64().unwrap(),
                2,
                "the heartbeats burned the scripted delay window"
            );
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "heartbeats never tripped the dead peer's breaker"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    // The FIRST user call that would forward to the dead member finds
    // the breaker already open: it fast-fails and computes locally.
    let reference = Session::test();
    let ring = Ring::new(addrs.iter().cloned());
    let job = reference
        .jobs_for_all_apps()
        .into_iter()
        .find(|j| ring.owner(&analyze_key(&j.app)) == addrs[1])
        .expect("some app hashes to shard 1");
    let r = client.analyze(&job.app, job.variant).expect("degraded call");
    assert!(r.ok, "{:?}", r.error);
    assert!(!r.cached, "the fallback computes locally");
    assert_eq!(r.result.unwrap().compact(), reference_body(&reference, &job));
    let status = client.status().expect("status").into_result().expect("ok");
    let cluster = status.field("cluster").unwrap();
    assert!(
        cluster.field("breaker").unwrap().field("fast_fails").unwrap().as_u64().unwrap() >= 1,
        "the user call never waited on the dead peer"
    );

    for handle in handles {
        handle.shutdown();
        handle.join();
    }
}

/// A seeded fault plan scripts the peer path: `deny:*:count=2` on
/// shard 0 kills exactly the first two forwards (each falling back to
/// a byte-identical local compute) and the third sails through — the
/// same way on every run.
#[test]
fn a_seeded_fault_plan_scripts_forward_failures_deterministically() {
    let plan = FaultPlan::parse("seed=7;deny:*:count=2").expect("plan parses");
    let (handles, addrs) = test_cluster_with(2, |i, config| match i {
        0 => ServerConfig { faults: Some(plan.clone()), ..config },
        _ => config,
    });
    let reference = Session::test();
    let ring = Ring::new(addrs.iter().cloned());
    let remote: Vec<AnalysisJob> = reference
        .jobs_for_all_apps()
        .into_iter()
        .filter(|j| ring.owner(&analyze_key(&j.app)) == addrs[1])
        .collect();
    assert!(remote.len() >= 3, "several apps hash to shard 1");

    let mut client = ServeClient::connect(addrs[0].as_str()).expect("connect shard 0");
    for job in &remote[..2] {
        let r = client.analyze(&job.app, job.variant).expect("denied forward");
        assert!(r.ok, "{:?}", r.error);
        assert!(!r.cached, "the fallback computes locally");
        assert_eq!(r.result.unwrap().compact(), reference_body(&reference, job));
    }
    let status = client.status().expect("status").into_result().expect("ok");
    let cluster = status.field("cluster").unwrap();
    let faults = cluster.field("faults").unwrap();
    assert!(faults.field("active").unwrap().as_bool().unwrap());
    assert_eq!(
        faults.field("fired").unwrap().as_u64().unwrap(),
        2,
        "the deny window burned exactly its two scripted calls"
    );
    assert!(cluster.field("forward_failures").unwrap().as_u64().unwrap() >= 2);

    // The window is spent: the next remote key forwards normally and
    // the plan stays quiet.
    let job = &remote[2];
    let r = client.analyze(&job.app, job.variant).expect("healthy forward");
    assert!(r.ok, "{:?}", r.error);
    assert_eq!(r.result.unwrap().compact(), reference_body(&reference, job));
    let status = client.status().expect("status").into_result().expect("ok");
    let cluster = status.field("cluster").unwrap();
    assert!(cluster.field("forwards_out").unwrap().as_u64().unwrap() >= 1);
    assert_eq!(cluster.field("faults").unwrap().field("fired").unwrap().as_u64().unwrap(), 2);

    for handle in handles {
        handle.shutdown();
        handle.join();
    }
}

/// `leave` drains a shard out of the ring: its store ships to the new
/// owners, the survivors' rosters shrink (down to a 1-member ring with
/// no successor), and the drained daemon keeps serving — it just owns
/// nothing.
#[test]
fn leave_drains_the_shard_into_the_survivors() {
    let (handles, addrs) = test_cluster(2);
    let reference = Session::test();
    let ring = Ring::new(addrs.iter().cloned());
    let (job, key) = reference
        .jobs_for_all_apps()
        .into_iter()
        .map(|j| {
            let key = analyze_key(&j.app);
            (j, key)
        })
        .find(|(_, key)| ring.owner(key) == addrs[1])
        .expect("some app hashes to shard 1");
    let expected = reference_body(&reference, &job);

    let mut client1 = ServeClient::connect(addrs[1].as_str()).expect("connect shard 1");
    let computed = client1.analyze(&job.app, job.variant).expect("compute on the owner");
    assert!(computed.ok && !computed.cached);

    let drained = client1
        .request(&Request::Leave { addr: None, meta: PeerMeta::default() })
        .expect("leave")
        .into_result()
        .expect("drain ok");
    assert!(drained.field("left").unwrap().as_bool().unwrap());
    assert!(drained.field("epoch").unwrap().as_u64().unwrap() >= 2);
    assert!(drained.field("handed_off").unwrap().as_u64().unwrap() >= 1, "store shipped out");
    assert_eq!(drained.field("handoff_failed").unwrap().as_u64().unwrap(), 0);

    // The survivor heard the departure announce: a 1-member ring, no
    // successor, and the drained shard's entry in its store.
    let mut client0 = ServeClient::connect(addrs[0].as_str()).expect("connect shard 0");
    let view = client0.request(&Request::RingStatus).expect("ring").into_result().expect("ok");
    assert_eq!(view.field("members").unwrap().as_array().unwrap().len(), 1);
    assert!(view.field("epoch").unwrap().as_u64().unwrap() >= 2);
    assert_eq!(view.field("successor").unwrap(), &Json::Null, "1-member ring");
    let replica = wait_for_replica(&addrs[0], &key, Duration::from_secs(5))
        .expect("drained entry reached the survivor");
    assert_eq!(replica, expected, "drained bytes identical");

    // The drained shard still answers — from its store or by
    // forwarding to the survivor — and reports its state.
    let view = client1.request(&Request::RingStatus).expect("ring").into_result().expect("ok");
    assert!(view.field("draining").unwrap().as_bool().unwrap());
    let again = client1.analyze(&job.app, job.variant).expect("serve while drained");
    assert!(again.ok && again.cached);

    for handle in handles {
        handle.shutdown();
        handle.join();
    }
}

/// The acceptance chaos run: a seeded fault plan delays shard 0's peer
/// calls, a shard is killed mid-sweep and evicted, a replacement joins
/// the live ring, and every survivor still answers all 21 apps with
/// bytes identical to `run_one` — with the churn (epoch bumps, spent
/// retries, fired faults, handoff) visible in `status`.
#[test]
fn chaos_membership_churn_keeps_bytes_identical() {
    let plan = FaultPlan::parse("seed=42;delay:*:ms=2,count=8").expect("plan parses");
    let (mut handles, addrs) = test_cluster_with(3, |i, config| match i {
        0 => ServerConfig { faults: Some(plan.clone()), ..config },
        _ => config,
    });
    let reference = Session::test();
    let jobs = reference.jobs_for_all_apps();
    let expected: Vec<String> = jobs.iter().map(|j| reference_body(&reference, j)).collect();
    let old_ring = Ring::new(addrs.iter().cloned());

    // Wave 1 through shard 0, cluster healthy (the delay faults slow
    // its forwards without failing them).
    let mut client0 = ServeClient::connect(addrs[0].as_str()).expect("connect shard 0");
    for (job, want) in jobs.iter().zip(&expected) {
        let r = client0.analyze(&job.app, job.variant).expect("wave 1");
        assert!(r.ok, "{}: {:?}", job, r.error);
        assert_eq!(&r.result.unwrap().compact(), want, "{job}: wave 1 bytes");
    }

    // A shard dies mid-sweep — no leave, no drain, store and all. Of
    // the two non-fault-planted shards, kill the one owning more keys,
    // so some key is guaranteed lost with the corpse.
    let owned =
        |addr: &str| jobs.iter().filter(|j| old_ring.owner(&analyze_key(&j.app)) == addr).count();
    let dead_idx = if owned(&addrs[1]) > owned(&addrs[2]) { 1 } else { 2 };
    let dead_addr = addrs[dead_idx].clone();
    let survivors: Vec<String> = addrs.iter().filter(|a| **a != dead_addr).cloned().collect();
    let dead = handles.remove(dead_idx);
    dead.shutdown();
    dead.join();

    // A key the corpse owned, asked through the survivor that does NOT
    // hold the corpse's replicas: the forward burns a budgeted retry,
    // then falls back to a local compute — and the bytes do not change.
    // (The corpse's ring successor would answer from its replica set
    // instead, which is the other designed degraded path.)
    let replica_holder = old_ring.successor(&dead_addr).expect("3-member ring").to_string();
    let degraded_addr =
        survivors.iter().find(|a| **a != replica_holder).expect("a replica-free survivor").clone();
    let (lost_idx, lost_job) = jobs
        .iter()
        .enumerate()
        .find(|(_, j)| old_ring.owner(&analyze_key(&j.app)) == dead_addr)
        .expect("some app hashed to the dead shard");
    let mut degraded = ServeClient::connect(degraded_addr.as_str()).expect("connect survivor");
    let r = degraded.analyze(&lost_job.app, lost_job.variant).expect("degraded analyze");
    assert!(r.ok, "{:?}", r.error);
    assert_eq!(r.result.unwrap().compact(), expected[lost_idx], "fallback bytes identical");
    let status = degraded.status().expect("status").into_result().expect("ok");
    assert!(
        status
            .field("cluster")
            .unwrap()
            .field("retry")
            .unwrap()
            .field("spent")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 1,
        "the dead owner cost a budgeted retry"
    );

    // Evict the corpse, then a replacement joins through shard 0.
    let evicted = client0
        .request(&Request::Leave { addr: Some(dead_addr.clone()), meta: PeerMeta::default() })
        .expect("leave")
        .into_result()
        .expect("evict ok");
    assert!(evicted.field("removed").unwrap().as_bool().unwrap());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind replacement");
    let new_addr = listener.local_addr().expect("addr").to_string();
    let config =
        ServerConfig { workers: 2, join: Some(addrs[0].clone()), ..ServerConfig::ephemeral() };
    handles.push(serve_on(Arc::new(Session::test()), listener, config).expect("replacement joins"));

    // If the new ring moved one of shard 0's stored keys onto the
    // replacement, the background handoff delivers it before any
    // client asks.
    let new_ring = Ring::new(survivors.iter().cloned().chain(std::iter::once(new_addr.clone())));
    if let Some((idx, job)) = jobs.iter().enumerate().find(|(_, j)| {
        let key = analyze_key(&j.app);
        old_ring.owner(&key) == addrs[0] && new_ring.owner(&key) == new_addr
    }) {
        let replica = wait_for_replica(&new_addr, &analyze_key(&job.app), Duration::from_secs(5))
            .expect("handoff reaches the replacement");
        assert_eq!(replica, expected[idx], "handed-off bytes identical");
    }

    // Wave 2 through every survivor: the shard that saw the churn, the
    // shard that must catch up lazily, and the brand-new member.
    for addr in survivors.iter().cloned().chain(std::iter::once(new_addr.clone())) {
        let mut client = ServeClient::connect(addr.as_str()).expect("connect survivor");
        for (job, want) in jobs.iter().zip(&expected) {
            let r = client.analyze(&job.app, job.variant).expect("wave 2");
            assert!(r.ok, "{}: {:?}", job, r.error);
            assert_eq!(&r.result.unwrap().compact(), want, "{job}: wave 2 bytes via {addr}");
        }
    }

    // The churn is visible in shard 0's status.
    let status = client0.status().expect("status").into_result().expect("ok");
    let cluster = status.field("cluster").unwrap();
    assert!(cluster.field("epoch").unwrap().as_u64().unwrap() >= 3, "eviction + join epochs");
    let members = cluster.field("members").unwrap().as_array().unwrap();
    assert_eq!(members.len(), 3);
    assert!(members.iter().any(|m| m.as_str().unwrap() == new_addr));
    assert!(members.iter().all(|m| m.as_str().unwrap() != dead_addr));
    let faults = cluster.field("faults").unwrap();
    assert!(faults.field("active").unwrap().as_bool().unwrap());
    assert!(faults.field("fired").unwrap().as_u64().unwrap() >= 1, "the seeded plan fired");

    for handle in handles {
        handle.shutdown();
        handle.join();
    }
}

/// Connection-scoped state survives the multi-reactor split: with every
/// shard running two reactors (round-robin accept), chunked uploads —
/// whose open-upload table lives on the connection — complete with
/// byte-identical results from connections landing on different
/// reactors, and membership ops (`join`/`leave`/`ring_status`) behave
/// identically no matter which reactor answers.
#[test]
fn uploads_and_membership_ops_work_across_reactors() {
    let (handles, addrs) = test_cluster(2);
    for handle in &handles {
        assert_eq!(handle.reactors(), 2, "cluster shards run two reactors");
        assert_eq!(handle.accept_path(), "round_robin");
    }
    let reference = Session::test();
    let job = AnalysisJob::new("rodinia/hotspot", 0);
    let (_, profile, _) = reference.profile_one(&job).expect("local profiling");
    let chunks: Vec<Json> = profile
        .split_chunks(3)
        .iter()
        .map(|c| Json::parse(&c.to_json()).expect("chunk serializes"))
        .collect();
    let report = reference.advise_profile(&job, &profile).expect("local advising");
    let expected = protocol::profile_body(&job, &profile, &report, 1).compact();

    // Four fresh connections, alternating shards: the round-robin
    // acceptor parks consecutive sockets on different reactors, and
    // each must hold its own upload state from begin to end.
    for i in 0..4 {
        let mut client = ServeClient::connect(addrs[i % 2].as_str()).expect("connect");
        let r = client
            .analyze_profile_chunked(&job.app, job.variant, &chunks, &WireOptions::default())
            .expect("chunked upload");
        assert!(r.ok, "upload {i}: {:?}", r.error);
        assert_eq!(r.result.unwrap().compact(), expected, "upload {i} bytes identical");
    }

    // ring_status from fresh connections agrees on every shard.
    for addr in &addrs {
        let mut client = ServeClient::connect(addr.as_str()).expect("connect");
        let view = client.request(&Request::RingStatus).expect("ring").into_result().expect("ok");
        assert_eq!(view.field("members").unwrap().as_array().unwrap().len(), 2);
    }

    // A third shard (itself two reactors) joins via shard 0; both
    // incumbents converge on the 3-member roster.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind joiner");
    let joiner_addr = listener.local_addr().expect("addr").to_string();
    let config = ServerConfig {
        workers: 2,
        reactors: 2,
        join: Some(addrs[0].clone()),
        ..ServerConfig::ephemeral()
    };
    let joiner = serve_on(Arc::new(Session::test()), listener, config).expect("joiner starts");
    assert_eq!(joiner.reactors(), 2);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    for addr in &addrs {
        let mut client = ServeClient::connect(addr.as_str()).expect("connect");
        loop {
            let view =
                client.request(&Request::RingStatus).expect("ring").into_result().expect("ok");
            if view.field("members").unwrap().as_array().unwrap().len() == 3 {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "{addr} never saw the joiner");
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    // The joiner leaves again (drain through whichever reactor its
    // connection lands on); the incumbents shrink back to two members.
    let mut jc = ServeClient::connect(joiner_addr.as_str()).expect("connect joiner");
    let drained = jc
        .request(&Request::Leave { addr: None, meta: PeerMeta::default() })
        .expect("leave")
        .into_result()
        .expect("drain ok");
    assert!(drained.field("left").unwrap().as_bool().unwrap());
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    for addr in &addrs {
        let mut client = ServeClient::connect(addr.as_str()).expect("connect");
        loop {
            let view =
                client.request(&Request::RingStatus).expect("ring").into_result().expect("ok");
            let members = view.field("members").unwrap().as_array().unwrap();
            if members.len() == 2 && members.iter().all(|m| m.as_str().unwrap() != joiner_addr) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "{addr} never saw the leave");
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    joiner.shutdown();
    joiner.join();
    for handle in handles {
        handle.shutdown();
        handle.join();
    }
}
