//! Memory spaces and cache models.

use std::collections::HashMap;

const PAGE_SIZE: u64 = 4096;

/// Generates an ordered batch-write method: words are committed page-run
/// at a time (one page lookup per run of same-page addresses), with
/// page-straddling words falling back to the byte path in place so write
/// order — and thus same-address last-lane-wins semantics — is preserved.
macro_rules! gen_write_batch {
    ($(#[$doc:meta])* $name:ident, $ty:ty, $width:expr, $fallback:ident) => {
        $(#[$doc])*
        pub fn $name(&mut self, items: &[(u64, $ty)]) {
            let mut i = 0;
            while i < items.len() {
                let (addr, v) = items[i];
                let off = (addr % PAGE_SIZE) as usize;
                if off + $width > PAGE_SIZE as usize {
                    self.$fallback(addr, v);
                    i += 1;
                    continue;
                }
                let id = addr / PAGE_SIZE;
                let mut j = i;
                while j < items.len()
                    && items[j].0 / PAGE_SIZE == id
                    && (items[j].0 % PAGE_SIZE) as usize + $width <= PAGE_SIZE as usize
                {
                    j += 1;
                }
                let page = self.page_mut(addr);
                for &(a, v) in &items[i..j] {
                    let o = (a % PAGE_SIZE) as usize;
                    page[o..o + $width].copy_from_slice(&v.to_le_bytes());
                }
                i = j;
            }
        }
    };
}

/// Paged device (global) memory.
///
/// Reads of unwritten memory return zero, like freshly `cudaMalloc`ed and
/// zeroed buffers; kernels allocate regions through [`GlobalMem::alloc`].
#[derive(Debug, Default, Clone)]
pub struct GlobalMem {
    pages: HashMap<u64, Box<[u8]>>,
    brk: u64,
}

impl GlobalMem {
    /// Creates an empty memory with the allocator starting at a non-zero
    /// base (so that address 0 stays an obvious "null").
    pub fn new() -> Self {
        GlobalMem { pages: HashMap::new(), brk: 0x10_0000 }
    }

    /// Bump-allocates `size` bytes, 256-byte aligned (like `cudaMalloc`).
    pub fn alloc(&mut self, size: u64) -> u64 {
        let addr = self.brk;
        self.brk = (self.brk + size + 255) & !255;
        addr
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8] {
        self.pages
            .entry(addr / PAGE_SIZE)
            .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice())
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        self.pages.get(&(addr / PAGE_SIZE)).map_or(0, |p| p[(addr % PAGE_SIZE) as usize])
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        let off = (addr % PAGE_SIZE) as usize;
        self.page_mut(addr)[off] = v;
    }

    /// Reads a little-endian `u32`.
    ///
    /// The simulator issues these for every lane of every load, so the
    /// common case — the word lies within one page — resolves the page
    /// once instead of hashing per byte.
    pub fn read_u32(&self, addr: u64) -> u32 {
        let off = (addr % PAGE_SIZE) as usize;
        if off + 4 <= PAGE_SIZE as usize {
            return self.pages.get(&(addr / PAGE_SIZE)).map_or(0, |p| {
                u32::from_le_bytes(p[off..off + 4].try_into().expect("4-byte slice"))
            });
        }
        u32::from_le_bytes([
            self.read_u8(addr),
            self.read_u8(addr + 1),
            self.read_u8(addr + 2),
            self.read_u8(addr + 3),
        ])
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, v: u32) {
        let off = (addr % PAGE_SIZE) as usize;
        if off + 4 <= PAGE_SIZE as usize {
            self.page_mut(addr)[off..off + 4].copy_from_slice(&v.to_le_bytes());
            return;
        }
        for (i, b) in v.to_le_bytes().iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let off = (addr % PAGE_SIZE) as usize;
        if off + 8 <= PAGE_SIZE as usize {
            return self.pages.get(&(addr / PAGE_SIZE)).map_or(0, |p| {
                u64::from_le_bytes(p[off..off + 8].try_into().expect("8-byte slice"))
            });
        }
        (self.read_u32(addr) as u64) | ((self.read_u32(addr + 4) as u64) << 32)
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        let off = (addr % PAGE_SIZE) as usize;
        if off + 8 <= PAGE_SIZE as usize {
            self.page_mut(addr)[off..off + 8].copy_from_slice(&v.to_le_bytes());
            return;
        }
        self.write_u32(addr, v as u32);
        self.write_u32(addr + 4, (v >> 32) as u32);
    }

    /// Reads an `f32`.
    pub fn read_f32(&self, addr: u64) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an `f32`.
    pub fn write_f32(&mut self, addr: u64, v: f32) {
        self.write_u32(addr, v.to_bits());
    }

    /// Reads an `f64`.
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an `f64`.
    pub fn write_f64(&mut self, addr: u64, v: f64) {
        self.write_u64(addr, v.to_bits());
    }

    gen_write_batch!(
        /// Writes a batch of `u32`s in order, resolving each page once per
        /// run of same-page addresses — the warp-wide store path (32 lanes
        /// usually span one or two pages, so per-lane hashing is wasted).
        write_batch_u32,
        u32,
        4,
        write_u32
    );

    gen_write_batch!(
        /// Writes a batch of `u64`s in order; see
        /// [`GlobalMem::write_batch_u32`].
        write_batch_u64,
        u64,
        8,
        write_u64
    );

    /// Copies a byte slice into memory.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Reads `len` bytes.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_u8(addr + i as u64)).collect()
    }

    /// A read cursor that memoizes the last page lookup — the warp-wide
    /// load path.
    pub fn reader(&self) -> GlobalReader<'_> {
        GlobalReader { mem: self, page_id: u64::MAX, page: None }
    }
}

/// Memoizing read cursor over [`GlobalMem`]: consecutive lane addresses
/// usually share a page, so the page hash is resolved once per run.
pub struct GlobalReader<'a> {
    mem: &'a GlobalMem,
    page_id: u64,
    page: Option<&'a [u8]>,
}

impl GlobalReader<'_> {
    #[inline]
    fn page_for(&mut self, addr: u64) -> Option<&[u8]> {
        let id = addr / PAGE_SIZE;
        if id != self.page_id {
            self.page_id = id;
            self.page = self.mem.pages.get(&id).map(|p| &p[..]);
        }
        self.page
    }

    /// Reads a little-endian `u32`.
    #[inline]
    pub fn read_u32(&mut self, addr: u64) -> u32 {
        let off = (addr % PAGE_SIZE) as usize;
        if off + 4 <= PAGE_SIZE as usize {
            return self.page_for(addr).map_or(0, |p| {
                u32::from_le_bytes(p[off..off + 4].try_into().expect("4-byte slice"))
            });
        }
        self.mem.read_u32(addr)
    }

    /// Reads a little-endian `u64`.
    #[inline]
    pub fn read_u64(&mut self, addr: u64) -> u64 {
        let off = (addr % PAGE_SIZE) as usize;
        if off + 8 <= PAGE_SIZE as usize {
            return self.page_for(addr).map_or(0, |p| {
                u64::from_le_bytes(p[off..off + 8].try_into().expect("8-byte slice"))
            });
        }
        self.mem.read_u64(addr)
    }
}

/// A direct-mapped cache model keyed by line address; deterministic and
/// cheap, used for both the device L2 and the per-SM instruction cache.
#[derive(Debug, Clone)]
pub struct DirectCache {
    tags: Vec<u64>,
    line: u64,
    hits: u64,
    misses: u64,
}

impl DirectCache {
    /// A cache of `size` bytes with `line`-byte lines.
    pub fn new(size: u32, line: u32) -> Self {
        let sets = (size / line).max(1) as usize;
        DirectCache { tags: vec![u64::MAX; sets], line: line as u64, hits: 0, misses: 0 }
    }

    /// Accesses `addr`; returns whether it hit, filling the line on a miss.
    pub fn access(&mut self, addr: u64) -> bool {
        let line_addr = addr / self.line;
        let set = (line_addr % self.tags.len() as u64) as usize;
        if self.tags[set] == line_addr {
            self.hits += 1;
            true
        } else {
            self.tags[set] = line_addr;
            self.misses += 1;
            false
        }
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// Constant banks (bank 0 holds kernel parameters, bank 1 user data).
#[derive(Debug, Clone, Default)]
pub struct ConstMem {
    banks: Vec<Vec<u8>>,
}

impl ConstMem {
    /// Creates empty banks.
    pub fn new() -> Self {
        ConstMem { banks: vec![Vec::new(); 4] }
    }

    /// Replaces the contents of a bank.
    pub fn set_bank(&mut self, bank: u8, data: Vec<u8>) {
        let b = bank as usize;
        if self.banks.len() <= b {
            self.banks.resize(b + 1, Vec::new());
        }
        self.banks[b] = data;
    }

    /// Reads a `u32` from a bank (zero beyond the end).
    pub fn read_u32(&self, bank: u8, offset: u32) -> u32 {
        let Some(b) = self.banks.get(bank as usize) else { return 0 };
        let o = offset as usize;
        let mut bytes = [0u8; 4];
        for (i, byte) in bytes.iter_mut().enumerate() {
            *byte = b.get(o + i).copied().unwrap_or(0);
        }
        u32::from_le_bytes(bytes)
    }

    /// Reads a `u64` from a bank.
    pub fn read_u64(&self, bank: u8, offset: u32) -> u64 {
        (self.read_u32(bank, offset) as u64) | ((self.read_u32(bank, offset + 4) as u64) << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_rw_roundtrip() {
        let mut m = GlobalMem::new();
        let a = m.alloc(1024);
        assert_eq!(a % 256, 0);
        m.write_u32(a, 0xdeadbeef);
        assert_eq!(m.read_u32(a), 0xdeadbeef);
        m.write_f64(a + 8, 2.5);
        assert_eq!(m.read_f64(a + 8), 2.5);
        // Cross-page access.
        let edge = a + PAGE_SIZE - 2;
        m.write_u32(edge, 0x11223344);
        assert_eq!(m.read_u32(edge), 0x11223344);
        // Unwritten memory reads zero.
        assert_eq!(m.read_u32(0x9999_0000), 0);
    }

    #[test]
    fn allocations_do_not_overlap() {
        let mut m = GlobalMem::new();
        let a = m.alloc(100);
        let b = m.alloc(100);
        assert!(b >= a + 100);
    }

    #[test]
    fn direct_cache_hits_and_misses() {
        let mut c = DirectCache::new(1024, 64);
        assert!(!c.access(0));
        assert!(c.access(4), "same line");
        assert!(!c.access(1024), "conflict: same set, different tag");
        assert!(!c.access(0), "evicted");
        let (h, m) = c.stats();
        assert_eq!((h, m), (1, 3));
    }

    #[test]
    fn const_banks() {
        let mut c = ConstMem::new();
        c.set_bank(0, vec![1, 0, 0, 0, 2, 0, 0, 0]);
        assert_eq!(c.read_u32(0, 0), 1);
        assert_eq!(c.read_u32(0, 4), 2);
        assert_eq!(c.read_u32(0, 100), 0, "out of range reads zero");
        assert_eq!(c.read_u64(0, 0), 1 | (2u64 << 32));
    }
}
