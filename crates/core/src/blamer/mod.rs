//! The instruction blamer.
//!
//! CUPTI attributes stall reasons to the *stalled* instruction; memory
//! dependency, execution dependency, and synchronization stalls, however,
//! are caused by *source* instructions. The blamer finds those sources:
//!
//! 1. [`slice`](mod@slice) — backward slicing over def–use chains, with virtual
//!    barrier registers (Figure 3) and predicate-cover search (Figure 4a),
//! 2. [`graph`] — dependency-graph construction, the three cold-edge
//!    pruning rules, and Eq. 1 apportioning (Figures 4b–4d),
//! 3. [`coverage`] — the single-dependency coverage metric of Figure 7.

pub mod coverage;
pub mod graph;
pub mod slice;

pub use coverage::{single_dependency_coverage, CoverageReport};
pub use graph::{BlamedEdge, DepEdge, DepGraph, PruneRule};

use gpa_arch::LatencyTable;
use gpa_isa::{Module, Opcode};
use gpa_sampling::{KernelProfile, StallReason};
use gpa_structure::ProgramStructure;
use std::collections::HashMap;
use std::fmt;

/// Figure 5's detailed stall classification, keyed by the *source*
/// instruction's opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetailedReason {
    /// Memory dependency on a global load (`LDG`, global atomics).
    GlobalMem,
    /// Memory dependency on a local load (`LDL`) — register pressure.
    LocalMem,
    /// Memory dependency on a constant load (`LDC`).
    ConstMem,
    /// Execution dependency on a shared-memory load (`LDS`).
    SharedMem,
    /// Write-after-read dependency on a store's read barrier.
    War,
    /// Execution dependency on arithmetic (fixed-latency or MUFU).
    Arith,
    /// Synchronization dependency on a `BAR.SYNC`.
    Sync,
}

impl DetailedReason {
    /// The CUPTI-level reason this detail refines.
    pub fn base(self) -> StallReason {
        match self {
            DetailedReason::GlobalMem | DetailedReason::LocalMem | DetailedReason::ConstMem => {
                StallReason::MemoryDependency
            }
            DetailedReason::SharedMem | DetailedReason::War | DetailedReason::Arith => {
                StallReason::ExecutionDependency
            }
            DetailedReason::Sync => StallReason::Synchronization,
        }
    }

    /// Classifies a dependency by its source instruction, per Figure 5.
    pub fn of_def(op: Opcode) -> DetailedReason {
        match op {
            Opcode::Ldc => DetailedReason::ConstMem,
            Opcode::Ldl => DetailedReason::LocalMem,
            Opcode::Ldg | Opcode::AtomG => DetailedReason::GlobalMem,
            Opcode::Lds | Opcode::AtomS => DetailedReason::SharedMem,
            Opcode::Stg | Opcode::Sts | Opcode::Stl => DetailedReason::War,
            Opcode::Bar => DetailedReason::Sync,
            _ => DetailedReason::Arith,
        }
    }

    /// All detailed reasons.
    pub const ALL: [DetailedReason; 7] = [
        DetailedReason::GlobalMem,
        DetailedReason::LocalMem,
        DetailedReason::ConstMem,
        DetailedReason::SharedMem,
        DetailedReason::War,
        DetailedReason::Arith,
        DetailedReason::Sync,
    ];
}

impl fmt::Display for DetailedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DetailedReason::GlobalMem => "global memory dependency",
            DetailedReason::LocalMem => "local memory dependency",
            DetailedReason::ConstMem => "constant memory dependency",
            DetailedReason::SharedMem => "shared memory dependency",
            DetailedReason::War => "write-after-read dependency",
            DetailedReason::Arith => "arithmetic dependency",
            DetailedReason::Sync => "synchronization dependency",
        };
        f.write_str(s)
    }
}

/// Blame analysis of one function.
#[derive(Debug, Clone)]
pub struct FunctionBlame {
    /// Function index in the module.
    pub func: usize,
    /// The dependency graph (with pruning flags, for Figure 7).
    pub graph: DepGraph,
    /// Apportioned blame per surviving edge.
    pub edges: Vec<BlamedEdge>,
    /// Attributable stalls with no surviving source, by instruction:
    /// `(instr, reason, stalls, latency_stalls)`.
    pub unattributed: Vec<(usize, StallReason, f64, f64)>,
}

/// Blame analysis of a whole module against one profile.
#[derive(Debug, Clone)]
pub struct ModuleBlame {
    /// Per-function results, aligned with `Module::functions`.
    pub functions: Vec<FunctionBlame>,
}

impl ModuleBlame {
    /// Runs the full blame pipeline: slicing, graph construction, pruning,
    /// and apportioning, for every function with attributable stalls.
    pub fn build(
        module: &Module,
        structure: &ProgramStructure,
        profile: &KernelProfile,
        latency: &LatencyTable,
    ) -> Self {
        let functions = structure
            .functions()
            .iter()
            .map(|fi| graph::blame_function(module, fi, profile, latency))
            .collect();
        ModuleBlame { functions }
    }

    /// All blamed edges with their function index.
    pub fn edges(&self) -> impl Iterator<Item = (usize, &BlamedEdge)> {
        self.functions.iter().flat_map(|f| f.edges.iter().map(move |e| (f.func, e)))
    }

    /// Total blamed (stalls, latency stalls) per detailed reason.
    pub fn totals_by_detail(&self) -> HashMap<DetailedReason, (f64, f64)> {
        let mut out: HashMap<DetailedReason, (f64, f64)> = HashMap::new();
        for (_, e) in self.edges() {
            let entry = out.entry(e.detail).or_insert((0.0, 0.0));
            entry.0 += e.stalls;
            entry.1 += e.latency;
        }
        out
    }
}
