//! Memory-hierarchy optimizers — advice classes that only exist when the
//! simulator's timed memory model ([`gpa_arch::MemModel::Hierarchy`]) is
//! enabled, because the flat model never emits their stall reasons.
//!
//! Both are stall-elimination advisors with *residual* estimators (see
//! [`crate::estimators::residual_elimination_speedup`]): rewriting an
//! access pattern shrinks its serialization but cannot remove the access,
//! so the predicted speedup is bounded above by plain Eq. 2 on the same
//! match — the Theorem-5.1 shape for memory rewrites.

use super::{Hotspot, MatchResult, Optimizer, OptimizerId};
use crate::advisor::AnalysisCtx;
use gpa_sampling::StallReason;

/// Accumulates every sample with one of `reasons` into a per-PC match.
fn match_reasons(ctx: &AnalysisCtx<'_>, reasons: &[StallReason]) -> MatchResult {
    let mut m = MatchResult::default();
    for (&pc, st) in &ctx.profile.pcs {
        let mut stalls = 0.0;
        let mut latency = 0.0;
        for &r in reasons {
            stalls += st.stalls(r) as f64;
            latency += st.latency_stalls(r) as f64;
        }
        if stalls > 0.0 {
            m.matched += stalls;
            m.matched_latency += latency;
            m.hotspots.push(Hotspot { def_pc: None, use_pc: pc, samples: stalls, distance: None });
        }
    }
    m
}

/// Matches uncoalesced-access stalls and the structural backpressure
/// they cause (full MSHR file, full L2 queue). Hierarchy model only —
/// the flat model never classifies these reasons, so this optimizer is
/// silent (and omitted from reports) under the default configuration.
pub struct MemoryCoalescing;

impl Optimizer for MemoryCoalescing {
    fn id(&self) -> OptimizerId {
        OptimizerId::MemoryCoalescing
    }

    fn hints(&self) -> Vec<&'static str> {
        vec![
            "Warp accesses split into many memory sectors: make consecutive lanes touch consecutive addresses.",
            "Restructure array-of-structs into struct-of-arrays so a warp's loads share cache lines.",
            "Stage strided data through shared memory with a coalesced global access pattern.",
            "A full MSHR file or L2 queue means the sector storm is saturating the memory pipeline; coalescing shrinks it at the source.",
        ]
    }

    fn match_stalls(&self, ctx: &AnalysisCtx<'_>) -> MatchResult {
        let mut m = match_reasons(
            ctx,
            &[StallReason::Uncoalesced, StallReason::MshrFull, StallReason::L2Queue],
        );
        if m.matched > 0.0 {
            m.notes.push(format!(
                "{} global transactions observed ({} L2 hits, {} misses)",
                ctx.profile.mem_transactions, ctx.profile.l2_hits, ctx.profile.l2_misses
            ));
        }
        m
    }
}

/// Matches shared-memory bank-conflict stalls. Hierarchy model only.
pub struct BankConflictResolution;

impl Optimizer for BankConflictResolution {
    fn id(&self) -> OptimizerId {
        OptimizerId::BankConflictResolution
    }

    fn hints(&self) -> Vec<&'static str> {
        vec![
            "Lanes of a warp hit the same shared-memory bank; accesses serialize up to 32-way.",
            "Pad shared arrays (e.g. [32][33] instead of [32][32]) so column walks touch distinct banks.",
            "Swizzle indices (xor the row into the column) to spread accesses over banks.",
        ]
    }

    fn match_stalls(&self, ctx: &AnalysisCtx<'_>) -> MatchResult {
        match_reasons(ctx, &[StallReason::BankConflict])
    }
}
