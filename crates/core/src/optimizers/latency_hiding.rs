//! Latency-hiding optimizers (Table 2, middle).

use super::{Hotspot, MatchResult, Optimizer, OptimizerId};
use crate::advisor::AnalysisCtx;
use crate::blamer::DetailedReason;
use gpa_isa::{Opcode, Visibility};
use gpa_structure::Scope;

/// Details a latency-hiding optimizer can overlap: global-memory and
/// execution dependencies (the paper's matching rule).
fn hideable(detail: DetailedReason) -> bool {
    matches!(
        detail,
        DetailedReason::GlobalMem
            | DetailedReason::LocalMem
            | DetailedReason::SharedMem
            | DetailedReason::War
            | DetailedReason::Arith
    )
}

/// Matches hideable latency samples whose def and use sit in the same
/// loop: unrolling interleaves iterations to fill the stall slots (bfs,
/// heartwall, kmeans, lavaMD).
pub struct LoopUnrolling;

impl Optimizer for LoopUnrolling {
    fn id(&self) -> OptimizerId {
        OptimizerId::LoopUnrolling
    }

    fn hints(&self) -> Vec<&'static str> {
        vec![
            "Dependent instructions inside the loop leave issue slots empty.",
            "Add `#pragma unroll` (or unroll by hand) so independent iterations overlap the latency.",
            "If the compiler refuses (unknown trip count), hoist the bound into a constant.",
        ]
    }

    fn match_stalls(&self, ctx: &AnalysisCtx<'_>) -> MatchResult {
        let mut m = MatchResult::default();
        for (func, e) in ctx.blamed_edges() {
            if !hideable(e.detail) {
                continue;
            }
            let use_pc = ctx.pc_of(func, e.use_);
            let def_pc = ctx.pc_of(func, e.def);
            let Some(scope) = ctx.structure.scope_of(use_pc) else { continue };
            let Scope::Loop(..) = scope else { continue };
            if !ctx.structure.scope_contains(scope, def_pc) {
                continue;
            }
            m.matched += e.stalls;
            m.matched_latency += e.latency;
            m.add_scope(scope, e.latency);
            m.hotspots.push(Hotspot {
                def_pc: Some(def_pc),
                use_pc,
                samples: e.latency.max(e.stalls),
                distance: Some(e.distance),
            });
        }
        m
    }
}

/// Matches hideable latency samples with a *short* def→use distance:
/// reordering moves the producer earlier (b+tree, lud, pathfinder,
/// Minimod).
pub struct CodeReordering;

/// Below this def→use distance, reordering can plausibly create slack.
const REORDER_WINDOW: u32 = 48;

impl Optimizer for CodeReordering {
    fn id(&self) -> OptimizerId {
        OptimizerId::CodeReordering
    }

    fn hints(&self) -> Vec<&'static str> {
        vec![
            "The distance between the producing load/operation and its use is short.",
            "Hoist subscripted loads well before their use (e.g. read the next iteration's address before the synchronization).",
            "Separate address computation from dereference so the compiler can schedule them apart.",
        ]
    }

    fn match_stalls(&self, ctx: &AnalysisCtx<'_>) -> MatchResult {
        let mut m = MatchResult::default();
        for (func, e) in ctx.blamed_edges() {
            if !hideable(e.detail) || e.distance > REORDER_WINDOW {
                continue;
            }
            let use_pc = ctx.pc_of(func, e.use_);
            let def_pc = ctx.pc_of(func, e.def);
            let scope = ctx.structure.scope_of(use_pc).unwrap_or(Scope::Kernel);
            m.matched += e.stalls;
            m.matched_latency += e.latency;
            m.add_scope(scope, e.latency);
            m.hotspots.push(Hotspot {
                def_pc: Some(def_pc),
                use_pc,
                samples: e.latency.max(e.stalls),
                distance: Some(e.distance),
            });
        }
        m
    }
}

/// Matches stalls in (non-math) device functions and at their call sites:
/// inlining removes call overhead and lets the scheduler mix caller and
/// callee instructions (the Quicksilver case).
pub struct FunctionInlining;

impl Optimizer for FunctionInlining {
    fn id(&self) -> OptimizerId {
        OptimizerId::FunctionInlining
    }

    fn hints(&self) -> Vec<&'static str> {
        vec![
            "Hot device functions are called out of line: calls serialize the pipeline and hide nothing.",
            "Mark small hot callees __forceinline__, or inline their bodies by hand when the compiler refuses for size reasons.",
        ]
    }

    fn match_stalls(&self, ctx: &AnalysisCtx<'_>) -> MatchResult {
        let mut m = MatchResult::default();
        for f in ctx.structure.functions() {
            if f.visibility != Visibility::Device || f.is_math_function() {
                continue;
            }
            let mut func_samples = 0.0;
            for (&pc, st) in ctx.profile.pcs.range(f.base..f.end) {
                let stalls = st.total_stalls() as f64;
                if stalls > 0.0 {
                    m.matched += stalls;
                    m.matched_latency += st.latency_total() as f64;
                    func_samples += stalls;
                    m.hotspots.push(Hotspot {
                        def_pc: None,
                        use_pc: pc,
                        samples: stalls,
                        distance: None,
                    });
                }
            }
            if func_samples > 0.0 {
                m.notes.push(format!(
                    "device function `{}` accounts for {:.1} stall samples",
                    f.name, func_samples
                ));
            }
        }
        // Call sites of device functions.
        for (fi, f) in ctx.module.functions.iter().enumerate() {
            for (idx, instr) in f.instrs.iter().enumerate() {
                if instr.opcode != Opcode::Cal {
                    continue;
                }
                let pc = ctx.pc_of(fi, idx);
                if let Some(st) = ctx.profile.pc(pc) {
                    let stalls = st.total_stalls() as f64;
                    if stalls > 0.0 {
                        m.matched += stalls;
                        m.matched_latency += st.latency_total() as f64;
                        m.hotspots.push(Hotspot {
                            def_pc: None,
                            use_pc: pc,
                            samples: stalls,
                            distance: None,
                        });
                    }
                }
            }
        }
        // Inlining rearranges code across the whole kernel.
        let total_latency = m.matched_latency;
        m.add_scope(Scope::Kernel, total_latency);
        m
    }
}
