//! Reproduces **Table 3**: achieved vs estimated speedups for every
//! optimization row, with the expected optimizer's rank in GPA's report.
//!
//! Run with `cargo run --release -p gpa-bench --bin table3`. Pass an app
//! name (e.g. `rodinia/hotspot`) to run a single application.

use gpa_bench::{geomean, print_table3_header, print_table3_row, run_apps_parallel};
use gpa_kernels::all_apps;
use gpa_pipeline::Session;

fn main() {
    let filter = std::env::args().nth(1);
    let session = Session::full();
    let apps: Vec<_> = all_apps()
        .into_iter()
        .filter(|a| filter.as_deref().is_none_or(|f| a.name.contains(f)))
        .collect();
    println!(
        "GPA Table 3 reproduction — {} applications, {} SM device, {} workers\n",
        apps.len(),
        session.params().sms,
        session.workers()
    );
    print_table3_header();
    let mut rows = Vec::new();
    // Stages of one app must run in order, but apps are independent.
    for res in run_apps_parallel(&session, &apps) {
        match res {
            Ok(run) => {
                for r in &run.rows {
                    print_table3_row(r);
                }
                rows.extend(run.rows);
            }
            Err(e) => println!("ERROR: {e}"),
        }
    }
    println!("{}", "-".repeat(128));
    let g_ach = geomean(rows.iter().map(|r| r.achieved));
    let g_est = geomean(rows.iter().map(|r| r.estimated));
    let g_err = geomean(rows.iter().map(|r| r.error.max(0.001)));
    let in_top5 = rows.iter().filter(|r| r.rank.is_some_and(|k| k <= 5)).count();
    println!(
        "geomean: achieved {g_ach:.2}x  estimated {g_est:.2}x  error {:.1}%  (paper: 1.22x / 1.26x / 4.0%)",
        100.0 * g_err
    );
    println!("expected optimizer in top-5 advice: {}/{} rows", in_top5, rows.len());
}
