//! `rodinia/cfd` — `cuda_compute_flux`.
//!
//! The flux computation leans on precise CUDA math functions
//! (`__nv_sqrtf`, `__nv_expf`): long dependent polynomial/Newton chains
//! called per face. With `--use_fast_math` they collapse to single SFU
//! instructions (Fast Math; paper: 1.46× achieved, 1.54× estimated).

use crate::data::ParamBlock;
use crate::dsl::Asm;
use crate::{App, KernelSpec, Params, Stage};
use gpa_arch::LaunchConfig;

/// Builds the cfd app entry.
pub fn app() -> App {
    App {
        name: "rodinia/cfd",
        kernel: "cuda_compute_flux",
        stages: vec![Stage { name: "Fast Math", optimizer: "GPUFastMathOptimizer" }],
        build,
    }
}

const FACES: u32 = 8;

/// Precise sqrt: RSQ seed + three dependent Newton steps (argument and
/// result in R40/R41).
fn emit_nv_sqrtf(a: &mut Asm) {
    a.func("__nv_sqrtf");
    a.line("device_functions.h", 501);
    a.i("MUFU.RSQ R42, R40 {W:B5, S:1}");
    for _ in 0..3 {
        a.i("FMUL R43, R42, R42 {WT:[B5], S:4}");
        a.i("FFMA R44, R40, R43, -3.0 {S:4}");
        a.i("FMUL R44, R44, -0.5 {S:4}");
        a.i("FMUL R42, R42, R44 {S:4}");
    }
    a.i("FMUL R41, R40, R42 {S:4}");
    a.i("RET {S:5}");
    a.endfunc();
}

/// Precise exp: range reduction + 8-term Horner chain (R40 → R41).
fn emit_nv_expf(a: &mut Asm) {
    a.func("__nv_expf");
    a.line("device_functions.h", 742);
    a.i("FMUL R42, R40, 1.4427 {S:4}");
    a.i("F2I.S32.F32 R43, R42 {S:2}");
    a.i("I2F.F32 R44, R43 {S:2}");
    a.i("FFMA R45, R44, -0.6931, R40 {S:4}");
    a.i("MOV32I R41, 0x3f800000 {S:1}"); // 1.0
    for k in 0..8 {
        let c = 1.0 / (1.0 + k as f64 * 0.9);
        a.i(format!("FFMA R41, R41, R45, {c:.4} {{S:4}}"));
    }
    a.i("FMUL R41, R41, R42 {S:4}");
    a.i("RET {S:5}");
    a.endfunc();
}

fn build(variant: usize, p: &Params) -> KernelSpec {
    let fast = variant >= 1;
    let mut a = Asm::module("cfd");
    a.kernel("cuda_compute_flux");
    a.line("euler3d.cu", 155);
    a.global_tid();
    a.param_u64(4, 0); // variables
    a.param_u32(9, 24); // n elements
    a.i("MOV32I R22, 0 {S:1}"); // flux acc
    a.i("MOV32I R17, 0 {S:1}"); // face
    a.line("euler3d.cu", 160);
    a.label("face_loop");
    a.i("IMAD R10, R17, R9, R0 {S:5}");
    a.addr(12, 4, 10, 2);
    a.i("LDG.E.32 R14, [R12:R13] {W:B0, S:1}");
    a.i("FFMA R40, R14, R14, 0.5 {WT:[B0], S:4}"); // pressure-ish
    if fast {
        a.i("MUFU.SQRT R41, R40 {W:B1, S:1}");
        a.i("NOP {WT:[B1], S:1}");
    } else {
        a.i("CAL __nv_sqrtf {S:5}");
    }
    a.i("FADD R22, R22, R41 {S:4}");
    a.i("FMUL R40, R14, -0.25 {S:4}");
    if fast {
        a.i("FMUL R40, R40, 1.4427 {S:4}");
        a.i("MUFU.EX2 R41, R40 {W:B1, S:1}");
        a.i("NOP {WT:[B1], S:1}");
    } else {
        a.i("CAL __nv_expf {S:5}");
    }
    a.i("FFMA R22, R41, 0.125, R22 {S:4}");
    a.i("IADD R17, R17, 1 {S:4}");
    a.i(format!("ISETP.LT.AND P1, R17, {FACES} {{S:2}}"));
    a.i("@P1 BRA face_loop {S:5}");
    a.param_u64(28, 8);
    a.addr(30, 28, 0, 2);
    a.i("STG.E.32 [R30:R31], R22 {R:B5, S:2}");
    a.i("EXIT {WT:[B5], S:1}");
    a.endfunc();
    emit_nv_sqrtf(&mut a);
    emit_nv_expf(&mut a);
    let module = a.build();

    let blocks = p.sms * 2;
    let threads: u32 = 256;
    let n = blocks * threads;
    KernelSpec {
        module,
        entry: "cuda_compute_flux".into(),
        launch: LaunchConfig::new(blocks, threads),
        setup: Box::new(move |gpu| {
            let mut rng = crate::data::rng(0x5057_0011);
            let m = n as u64 * FACES as u64;
            let vars = gpu.global_mut().alloc(4 * m);
            gpu.global_mut()
                .write_bytes(vars, &crate::data::f32_bytes(&mut rng, m as usize, 0.1, 2.0));
            let out = gpu.global_mut().alloc(4 * n as u64);
            let mut pb = ParamBlock::new();
            pb.push_u64(vars);
            pb.push_u64(out);
            pb.push_u32(n); // @24
            pb.finish()
        }),
        const_bank1: None,
    }
}
