//! Program structure — GPA's static-analysis product.
//!
//! The paper's static analyzer emits a *program structure file* holding
//! function symbols (global vs device), inline stacks, loop nests, and
//! source-line mappings. [`ProgramStructure`] is that artifact: built once
//! per module, it answers the queries the optimizers and the report need:
//!
//! * which function/loop/source line a PC belongs to,
//! * the [`Scope`] hierarchy for Eq. 5's scope-limited latency hiding,
//! * whether a function is a device function or a CUDA-math-library
//!   function (`__nv_*` / `__internal_*`), which the Function Inlining and
//!   Fast Math optimizers match on.

use gpa_cfg::{Cfg, LoopForest, LoopId};
use gpa_isa::{InlineFrame, Module, SourceLoc, Visibility};
use std::fmt;

/// Analyzed structure of one function.
#[derive(Debug, Clone)]
pub struct FunctionInfo {
    /// Index into `Module::functions`.
    pub index: usize,
    /// Symbol name.
    pub name: String,
    /// Global kernel or device function.
    pub visibility: Visibility,
    /// Base PC.
    pub base: u64,
    /// One past the last PC.
    pub end: u64,
    /// Control-flow graph.
    pub cfg: Cfg,
    /// Natural-loop forest.
    pub loops: LoopForest,
}

impl FunctionInfo {
    /// Whether this is a CUDA math-library style function.
    pub fn is_math_function(&self) -> bool {
        self.name.starts_with("__nv_") || self.name.starts_with("__internal_")
    }

    /// Whether this is a device (callee) function.
    pub fn is_device(&self) -> bool {
        self.visibility == Visibility::Device
    }
}

/// An optimization scope: a loop, a whole function, or the kernel.
///
/// Scopes order Eq. 5's analysis: "optimizations such as loop unrolling
/// only arrange code for a specific scope so that only the active samples
/// within the scope can be used to reduce latency samples".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scope {
    /// The whole kernel (all functions).
    Kernel,
    /// One function.
    Function(usize),
    /// One loop (function index, loop id).
    Loop(usize, LoopId),
}

/// The program structure of a module.
#[derive(Debug, Clone)]
pub struct ProgramStructure {
    functions: Vec<FunctionInfo>,
}

impl ProgramStructure {
    /// Analyzes a linked module.
    pub fn build(module: &Module) -> Self {
        let functions = module
            .functions
            .iter()
            .enumerate()
            .map(|(index, f)| {
                let cfg = Cfg::build(f);
                let loops = LoopForest::build(&cfg);
                FunctionInfo {
                    index,
                    name: f.name.clone(),
                    visibility: f.visibility,
                    base: f.base,
                    end: f.end(),
                    cfg,
                    loops,
                }
            })
            .collect();
        ProgramStructure { functions }
    }

    /// All analyzed functions.
    pub fn functions(&self) -> &[FunctionInfo] {
        &self.functions
    }

    /// The function containing `pc`, with the instruction index inside it.
    pub fn locate(&self, pc: u64) -> Option<(&FunctionInfo, usize)> {
        self.functions.iter().find_map(|f| {
            if pc >= f.base && pc < f.end && (pc - f.base).is_multiple_of(gpa_isa::INSTR_BYTES) {
                Some((f, ((pc - f.base) / gpa_isa::INSTR_BYTES) as usize))
            } else {
                None
            }
        })
    }

    /// The innermost scope containing `pc` (a loop if any, else the
    /// function).
    pub fn scope_of(&self, pc: u64) -> Option<Scope> {
        let (f, idx) = self.locate(pc)?;
        match f.loops.innermost_of_instr(&f.cfg, idx) {
            Some(l) => Some(Scope::Loop(f.index, l)),
            None => Some(Scope::Function(f.index)),
        }
    }

    /// All scopes containing `pc`, innermost first, ending with the
    /// function and the kernel.
    pub fn scope_stack(&self, pc: u64) -> Vec<Scope> {
        let Some((f, idx)) = self.locate(pc) else { return vec![Scope::Kernel] };
        let mut out: Vec<Scope> = f
            .loops
            .loop_stack_of_instr(&f.cfg, idx)
            .into_iter()
            .map(|l| Scope::Loop(f.index, l))
            .collect();
        out.push(Scope::Function(f.index));
        out.push(Scope::Kernel);
        out
    }

    /// Whether `scope` contains `pc`.
    pub fn scope_contains(&self, scope: Scope, pc: u64) -> bool {
        match scope {
            Scope::Kernel => true,
            Scope::Function(fi) => self.locate(pc).is_some_and(|(f, _)| f.index == fi),
            Scope::Loop(fi, l) => self.locate(pc).is_some_and(|(f, idx)| {
                f.index == fi && f.loops.loop_contains_instr(&f.cfg, l, idx)
            }),
        }
    }

    /// `scope` plus everything nested inside it (Eq. 5's `nested(l)`),
    /// restricted to loop/function scopes.
    pub fn nested_scopes(&self, scope: Scope) -> Vec<Scope> {
        match scope {
            Scope::Kernel => {
                let mut out = vec![Scope::Kernel];
                for f in &self.functions {
                    out.extend(self.nested_scopes(Scope::Function(f.index)));
                }
                out
            }
            Scope::Function(fi) => {
                let f = &self.functions[fi];
                let mut out = vec![Scope::Function(fi)];
                for l in f.loops.loops() {
                    out.push(Scope::Loop(fi, l.id));
                }
                out
            }
            Scope::Loop(fi, l) => {
                self.functions[fi].loops.nested(l).into_iter().map(|n| Scope::Loop(fi, n)).collect()
            }
        }
    }

    /// Source location of `pc` in `module`, as `(file, line)`.
    pub fn source_of<'m>(&self, module: &'m Module, pc: u64) -> Option<(&'m str, u32)> {
        let (f, idx) = self.locate(pc)?;
        let loc = module.functions[f.index].lines.get(idx).copied().flatten()?;
        Some((module.file(loc.file), loc.line))
    }

    /// Inline stack of `pc` (innermost frame last; empty when not inlined).
    pub fn inline_stack_of<'m>(&self, module: &'m Module, pc: u64) -> &'m [InlineFrame] {
        match self.locate(pc) {
            Some((f, idx)) => {
                module.functions[f.index].inline_stacks.get(idx).map_or(&[], |s| s.as_slice())
            }
            None => &[],
        }
    }

    /// Human-readable description of a scope, with source info when
    /// available (e.g. `Loop at hotspot.cu:142 in calculate_temp`).
    pub fn describe_scope(&self, module: &Module, scope: Scope) -> String {
        match scope {
            Scope::Kernel => "Kernel".to_string(),
            Scope::Function(fi) => format!("Function {}", self.functions[fi].name),
            Scope::Loop(fi, l) => {
                let f = &self.functions[fi];
                let header = f.loops.get(l).header;
                let head_idx = f.cfg.block(header).start;
                let pc = f.base + head_idx as u64 * gpa_isa::INSTR_BYTES;
                match self.source_of(module, pc) {
                    Some((file, line)) => format!("Loop at {file}:{line} in {}", f.name),
                    None => format!("Loop at {pc:#x} in {}", f.name),
                }
            }
        }
    }

    /// The source loc of a loop header, when line info exists.
    pub fn loop_header_loc(&self, module: &Module, fi: usize, l: LoopId) -> Option<SourceLoc> {
        let f = &self.functions[fi];
        let head_idx = f.cfg.block(f.loops.get(l).header).start;
        module.functions[fi].lines.get(head_idx).copied().flatten()
    }
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scope::Kernel => write!(f, "kernel"),
            Scope::Function(i) => write!(f, "function#{i}"),
            Scope::Loop(i, l) => write!(f, "loop#{}.{}", i, l.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_isa::parse_module;

    fn module() -> Module {
        parse_module(
            r#"
.module demo
.kernel main
.line demo.cu 5
  MOV32I R0, 0 {S:1}
outer:
.line demo.cu 7
  MOV32I R1, 0 {S:1}
inner:
.line demo.cu 9
  IADD R1, R1, 1 {S:4}
  ISETP.LT.AND P0, R1, 8 {S:2}
  @P0 BRA inner {S:5}
.line demo.cu 11
  IADD R0, R0, 1 {S:4}
  ISETP.LT.AND P1, R0, 4 {S:2}
  @P1 BRA outer {S:5}
  CAL __nv_expf {S:5}
  EXIT
.endfunc
.func __nv_expf
  MUFU.EX2 R2, R2 {W:B0, S:1}
  RET {WT:[B0], S:5}
.endfunc
"#,
        )
        .unwrap()
    }

    #[test]
    fn locate_and_source() {
        let m = module();
        let s = ProgramStructure::build(&m);
        let f0 = m.function("main").unwrap();
        let (fi, idx) = s.locate(f0.pc_of(2)).unwrap();
        assert_eq!(fi.name, "main");
        assert_eq!(idx, 2);
        assert_eq!(s.source_of(&m, f0.pc_of(2)), Some(("demo.cu", 9)));
        assert!(s.locate(0x5).is_none());
    }

    #[test]
    fn scopes_and_nesting() {
        let m = module();
        let s = ProgramStructure::build(&m);
        let f0 = m.function("main").unwrap();
        // Instruction 2 (inner loop body) is two loops deep.
        let stack = s.scope_stack(f0.pc_of(2));
        assert_eq!(stack.len(), 4, "inner loop, outer loop, function, kernel");
        let inner = stack[0];
        let outer = stack[1];
        assert!(matches!(inner, Scope::Loop(0, _)));
        assert!(s.scope_contains(outer, f0.pc_of(2)));
        assert!(s.scope_contains(outer, f0.pc_of(5)));
        assert!(!s.scope_contains(inner, f0.pc_of(5)));
        let nested = s.nested_scopes(outer);
        assert!(nested.contains(&inner) && nested.contains(&outer));
        // describe_scope names the header line.
        let desc = s.describe_scope(&m, inner);
        assert!(desc.contains("demo.cu:9"), "got {desc}");
    }

    #[test]
    fn math_and_device_functions() {
        let m = module();
        let s = ProgramStructure::build(&m);
        let expf = s.functions().iter().find(|f| f.name == "__nv_expf").unwrap();
        assert!(expf.is_math_function());
        assert!(expf.is_device());
        let main = s.functions().iter().find(|f| f.name == "main").unwrap();
        assert!(!main.is_math_function());
        assert!(!main.is_device());
        // Scope of a PC in the device function.
        let scope = s.scope_of(expf.base).unwrap();
        assert_eq!(scope, Scope::Function(expf.index));
    }
}
