//! `demo/membound` — `stride_copy`, the memory-hierarchy demo kernel.
//!
//! Not part of the paper's Table 3 registry (and deliberately kept out
//! of [`super::all_apps`] so the 21-app suites are unchanged): this
//! kernel exists to exercise the timed memory hierarchy
//! ([`gpa_arch::MemModel::Hierarchy`]). The baseline walks global
//! memory with a 128-byte stride — every lane of a warp touches its own
//! sector — and stages values through shared memory at the same stride,
//! which maps every lane onto bank 0 (a 32-way conflict). The two
//! optimization stages fix exactly what the memory advisors flag:
//!
//! * variant 1 coalesces the global walk (consecutive lanes, adjacent
//!   words), collapsing the sector storm;
//! * variant 2 additionally switches the shared staging to a unit
//!   stride, spreading lanes over distinct banks.

use crate::data::ParamBlock;
use crate::dsl::Asm;
use crate::{App, KernelSpec, Params, Stage};
use gpa_arch::LaunchConfig;

/// Builds the demo app entry (resolve it directly — it is not
/// registered in [`super::all_apps`]).
pub fn app() -> App {
    App {
        name: "demo/membound",
        kernel: "stride_copy",
        stages: vec![
            Stage { name: "Memory Coalescing", optimizer: "GPUMemoryCoalescingOptimizer" },
            Stage {
                name: "Bank Conflict Resolution",
                optimizer: "GPUBankConflictResolutionOptimizer",
            },
        ],
        build,
    }
}

const THREADS: u32 = 64;
const ROUNDS: u32 = 12;

fn build(variant: usize, p: &Params) -> KernelSpec {
    let coalesced = variant >= 1;
    let padded = variant >= 2;
    let mut a = Asm::module("membound");
    a.kernel("stride_copy");
    a.line("membound.cu", 12);
    a.global_tid();
    a.i("LOP3.AND R1, R0, 63 {S:4}"); // tid within the block
                                      // Global byte offset: stride 128 scatters each lane onto its own
                                      // sector; stride 4 packs a warp into four sectors.
    if coalesced {
        a.i("SHL R2, R0, 2 {S:4}");
    } else {
        a.i("SHL R2, R0, 7 {S:4}");
    }
    // Shared byte offset: stride 128 is 32 words, so every lane lands
    // on bank 0; stride 4 walks the banks one by one.
    if padded {
        a.i("SHL R3, R1, 2 {S:4}");
    } else {
        a.i("SHL R3, R1, 7 {S:4}");
    }
    a.param_u64(4, 0); // in
    a.param_u64(6, 8); // out
    a.addr(12, 4, 2, 0);
    a.addr(14, 6, 2, 0);
    a.i("MOV32I R10, 0 {S:1}"); // accumulator
    a.i("MOV32I R16, 0 {S:1}"); // round counter
    a.line("membound.cu", 20);
    a.label("round_loop");
    a.i("LDG.E.32 R8, [R12:R13] {W:B1, S:1}");
    a.i("STS.32 [R3], R8 {WT:[B1], R:B2, S:1}");
    a.i("LDS.32 R9, [R3] {WT:[B2], W:B3, S:1}");
    a.i("IADD R10, R10, R9 {WT:[B3], S:4}");
    a.i("IADD R16, R16, 1 {S:4}");
    a.i(format!("ISETP.LT.AND P1, R16, {ROUNDS} {{S:2}}"));
    a.i("@P1 BRA round_loop {S:5}");
    a.line("membound.cu", 28);
    a.i("STG.E.32 [R14:R15], R10 {R:B4, S:1}");
    a.i("EXIT {WT:[B4], S:1}");
    a.endfunc();
    let module = a.build();

    let blocks = p.sms * 2 * p.scale;
    let n = blocks * THREADS;
    KernelSpec {
        module,
        entry: "stride_copy".into(),
        // The conflicted variants need 128 bytes of staging per thread;
        // the padded variant keeps the same reservation so occupancy is
        // identical and the speedup isolates the memory behavior.
        launch: LaunchConfig {
            smem_per_block: THREADS * 128,
            ..LaunchConfig::new(blocks, THREADS)
        },
        setup: Box::new(move |gpu| {
            let bytes = 128 * n as u64;
            let input = gpu.global_mut().alloc(bytes);
            let out = gpu.global_mut().alloc(bytes);
            // Seed the strided walk's landing spots; the coalesced walk
            // reads a prefix of the same buffer (zero-filled gaps are
            // fine — the demo measures timing, not a checksum).
            for i in 0..n as u64 {
                gpu.global_mut().write_u32(input + 128 * i, i as u32);
            }
            let mut pb = ParamBlock::new();
            pb.push_u64(input);
            pb.push_u64(out);
            pb.finish()
        }),
        const_bank1: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{arch_for, time_spec};

    /// Every variant runs on both memory models, and the timed
    /// hierarchy rewards each fix: coalescing beats the baseline, and
    /// conflict-free staging beats coalescing alone.
    #[test]
    fn hierarchy_rewards_each_memory_fix() {
        let p = Params::test();
        let app = app();
        assert_eq!(app.variants(), 3);
        let flat = arch_for(&p);
        let hier = arch_for(&p).with_hierarchy();
        let mut timed = Vec::new();
        for v in 0..app.variants() {
            let cycles = time_spec(&(app.build)(v, &p), &flat).unwrap();
            assert!(cycles > 0, "variant {v} on the flat model");
            timed.push(time_spec(&(app.build)(v, &p), &hier).unwrap());
        }
        assert!(timed[0] > timed[1], "coalescing helps: {timed:?}");
        assert!(timed[1] > timed[2], "bank-conflict fix helps: {timed:?}");
    }
}
