//! `rodinia/backprop` — `bpnn_layerforward_CUDA`.
//!
//! Two Table 3 rows share this kernel:
//!
//! 1. **Warp Balance** (1.18× / est 1.21×): after staging inputs to
//!    shared memory, only warp 0 reduces them while the other seven warps
//!    wait at the final `__syncthreads()`. The fix reduces within every
//!    warp via shuffles first.
//! 2. **Strength Reduction** (1.21× / est 1.13×): the weight-index
//!    computation divides by a runtime parameter that is in fact a power
//!    of two; replacing the software-division sequence with a shift
//!    removes a long-latency SFU/conversion chain. (The divisor is 8 in
//!    both variants, so results are identical.)

use crate::data::ParamBlock;
use crate::dsl::{emit_idiv, Asm};
use crate::{App, KernelSpec, Params, Stage};
use gpa_arch::LaunchConfig;

/// Builds the backprop app entry.
pub fn app() -> App {
    App {
        name: "rodinia/backprop",
        kernel: "bpnn_layerforward_CUDA",
        stages: vec![
            Stage { name: "Warp Balance", optimizer: "GPUWarpBalanceOptimizer" },
            Stage { name: "Strength Reduction", optimizer: "GPUStrengthReductionOptimizer" },
        ],
        build,
    }
}

fn build(variant: usize, p: &Params) -> KernelSpec {
    let balanced = variant >= 1;
    let shifted = variant >= 2;
    let mut a = Asm::module("backprop");
    a.kernel("bpnn_layerforward_CUDA");
    a.line("backprop_cuda_kernel.cu", 30);
    a.global_tid();
    a.i("LOP3.AND R1, R0, 255 {S:4}"); // tid within block
    a.param_u64(4, 0); // inputs
    a.param_u64(6, 8); // weights
                       // Weight index: (tid * 13) / divisor — the divisor is the parameter
                       // at @24 (it is 8, a power of two).
    a.i("IMAD R9, R0, 13, 0 {S:5}");
    if shifted {
        a.i("SHR.U32 R12, R9, 3 {S:4}");
    } else {
        a.param_u32(11, 24);
        emit_idiv(&mut a, 12, 9, 11, 44);
    }
    a.line("backprop_cuda_kernel.cu", 36);
    // input[tid] * weight[idx] → shared[tid].
    a.addr(14, 4, 0, 2);
    a.i("LDG.E.32 R16, [R14:R15] {W:B0, S:1}");
    a.addr(18, 6, 12, 2);
    a.i("LDG.E.32 R20, [R18:R19] {W:B1, S:1}");
    a.i("FMUL R22, R16, R20 {WT:[B0,B1], S:4}");
    a.i("SHL R23, R1, 2 {S:4}");
    a.i("STS.32 [R23], R22 {R:B2, S:2}");
    a.i("BAR.SYNC {S:2}");
    a.line("backprop_cuda_kernel.cu", 43);
    if balanced {
        // Every warp reduces its own 32 values with shuffles, leaders
        // store partials, warp 0 folds them.
        a.i("S2R R25, SR_LANEID {W:B3, S:1}");
        a.i("NOP {WT:[B3], S:1}");
        for d in [16u32, 8, 4, 2, 1] {
            a.i(format!("IADD R26, R25, {d} {{S:4}}"));
            a.i("SHFL R27, R22, R26 {W:B4, S:1}");
            a.i("FADD R22, R22, R27 {WT:[B4], S:4}");
        }
        a.i("ISETP.EQ.AND P0, R25, 0 {S:2}");
        a.i("SHR.U32 R29, R1, 5 {S:4}"); // warp id
        a.i("SHL R30, R29, 2 {S:4}");
        a.i("@P0 STS.32 [R30+0x400], R22 {R:B2, S:2}");
        a.i("BAR.SYNC {S:2}");
        // Warp 0 folds the partials (one per warp).
        a.i("ISETP.GE.AND P1, R1, 8 {S:2}");
        a.i("@P1 BRA fold_done {S:5}");
        a.i("SHL R31, R1, 2 {S:4}");
        a.i("LDS.32 R32, [R31+0x400] {W:B5, S:1}");
        a.i("MOV R22, R32 {WT:[B5], S:2}");
        for d in [4u32, 2, 1] {
            a.i(format!("IADD R26, R1, {d} {{S:4}}"));
            a.i("SHFL R27, R22, R26 {W:B4, S:1}");
            a.i("FADD R22, R22, R27 {WT:[B4], S:4}");
        }
        a.label("fold_done");
        a.i("BAR.SYNC {S:2}");
    } else {
        // Only warp 0 works: each of its lanes serially sums the strided
        // entries; the other warps sit at the barrier.
        a.i("ISETP.GE.AND P1, R1, 32 {S:2}");
        a.i("@P1 BRA reduce_done {S:5}");
        a.i("MOV32I R24, 0 {S:1}"); // k
        a.i("MOV32I R22, 0 {S:1}");
        a.label("serial_sum");
        a.i("IMAD R26, R24, 32, R1 {S:5}");
        a.i("SHL R27, R26, 2 {S:4}");
        a.i("LDS.32 R28, [R27] {W:B3, S:1}");
        a.i("FADD R22, R22, R28 {WT:[B3], S:4}");
        a.i("IADD R24, R24, 1 {S:4}");
        a.i("ISETP.LT.AND P2, R24, 8 {S:2}");
        a.i("@P2 BRA serial_sum {S:5}");
        a.label("reduce_done");
        a.i("BAR.SYNC {S:2}");
    }
    // Lane 0 of warp 0 writes the block's partial sum.
    a.i("ISETP.NE.AND P3, R1, 0 {S:2}");
    a.param_u64(34, 16);
    a.i("S2R R36, SR_CTAID.X {W:B3, S:1}");
    a.i("NOP {WT:[B3], S:1}");
    a.addr(38, 34, 36, 2);
    a.i("@!P3 STG.E.32 [R38:R39], R22 {R:B2, S:2}");
    a.i("EXIT {WT:[B2], S:1}");
    a.endfunc();
    let module = a.build();

    let blocks = p.sms * 2;
    let threads: u32 = 256;
    let n = blocks * threads;
    KernelSpec {
        module,
        entry: "bpnn_layerforward_CUDA".into(),
        launch: LaunchConfig { smem_per_block: 4096 + 64, ..LaunchConfig::new(blocks, threads) },
        setup: Box::new(move |gpu| {
            let mut rng = crate::data::rng(0x5057_0009);
            let inputs = gpu.global_mut().alloc(4 * n as u64);
            gpu.global_mut()
                .write_bytes(inputs, &crate::data::f32_bytes(&mut rng, n as usize, 0.0, 1.0));
            let weights = gpu.global_mut().alloc(4 * (n as u64 * 2 + 16));
            gpu.global_mut().write_bytes(
                weights,
                &crate::data::f32_bytes(&mut rng, (n * 2 + 16) as usize, -0.5, 0.5),
            );
            let out = gpu.global_mut().alloc(4 * blocks as u64);
            let mut pb = ParamBlock::new();
            pb.push_u64(inputs);
            pb.push_u64(weights);
            pb.push_u64(out);
            pb.push_u32(8); // divisor @24 (a power of two)
            pb.finish()
        }),
        const_bank1: None,
    }
}
