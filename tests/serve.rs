//! Integration tests for the advisor daemon: concurrent clients against
//! a live `gpa-serve` on an ephemeral port.
//!
//! The acceptance bar for the subsystem: 8 concurrent clients over the
//! 21-app registry get responses byte-identical to `Session::run_one`,
//! a second wave of identical requests is answered from the report
//! store (cache hits observable via `status`), a full queue rejects
//! instead of growing, and shutdown is clean.

use gpa::core::schema;
use gpa::json::Json;
use gpa::pipeline::{AnalysisJob, Session};
use gpa::serve::{protocol, serve, Request, ServeClient, ServerConfig, WireOptions};
use std::sync::Arc;

fn test_server(config: ServerConfig) -> gpa::serve::ServerHandle {
    serve(Arc::new(Session::test()), config).expect("daemon binds an ephemeral port")
}

fn ephemeral() -> ServerConfig {
    ServerConfig { workers: 4, ..ServerConfig::ephemeral() }
}

/// The reference body: what `Session::run_one` yields, rendered exactly
/// as the daemon renders it.
fn reference_body(session: &Session, job: &AnalysisJob) -> String {
    protocol::analyze_body(&session.run_one(job).expect("reference run"), 1).compact()
}

#[test]
fn concurrent_clients_get_bytes_identical_to_run_one() {
    let handle = test_server(ephemeral());
    let addr = handle.local_addr();
    let reference = Session::test();
    let jobs: Vec<AnalysisJob> = reference.jobs_for_all_apps();
    assert_eq!(jobs.len(), 21);

    // 8 clients, each analyzing every app (first-come computes, the
    // rest hit the store — either way the bytes must match run_one).
    let bodies: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|client_idx| {
                let jobs = &jobs;
                scope.spawn(move || {
                    let mut client = ServeClient::connect(addr).expect("connect");
                    let mut out = Vec::new();
                    // Stagger the walk so clients collide on different apps.
                    for i in 0..jobs.len() {
                        let job = &jobs[(i + 3 * client_idx) % jobs.len()];
                        let response =
                            client.analyze(&job.app, job.variant).expect("analyze round-trip");
                        assert!(response.ok, "{}: {:?}", job, response.error);
                        out.push((job.clone(), response.result.expect("body").compact()));
                    }
                    out.sort_by(|(a, _), (b, _)| (&a.app, a.variant).cmp(&(&b.app, b.variant)));
                    out.into_iter().map(|(_, body)| body).collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    let mut sorted_jobs = jobs.clone();
    sorted_jobs.sort_by(|a, b| (&a.app, a.variant).cmp(&(&b.app, b.variant)));
    let expected: Vec<String> = sorted_jobs.iter().map(|j| reference_body(&reference, j)).collect();
    for (idx, client_bodies) in bodies.iter().enumerate() {
        assert_eq!(client_bodies, &expected, "client {idx} saw different bytes");
    }
    handle.shutdown();
    handle.join();
}

#[test]
fn second_wave_is_served_from_the_report_store() {
    let handle = test_server(ephemeral());
    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    let apps = ["rodinia/hotspot", "rodinia/gaussian", "rodinia/nw"];
    let first: Vec<String> = apps
        .iter()
        .map(|app| {
            let r = client.analyze(app, 0).expect("first wave");
            assert!(r.ok);
            r.result.unwrap().compact()
        })
        .collect();
    let mut cached_seen = 0;
    for (app, expected) in apps.iter().zip(&first) {
        let r = client.analyze(app, 0).expect("second wave");
        assert!(r.ok);
        cached_seen += usize::from(r.cached);
        assert_eq!(&r.result.unwrap().compact(), expected, "cached bytes identical");
    }
    assert_eq!(cached_seen, apps.len(), "entire second wave is cache hits");

    let status = client.status().expect("status").into_result().expect("ok");
    let store = status.field("store").unwrap();
    assert!(store.field("hits").unwrap().as_u64().unwrap() >= 3, "hits visible in metrics");
    assert_eq!(store.field("entries").unwrap().as_u64().unwrap(), 3);
    let ops = status.field("ops").unwrap();
    assert_eq!(ops.field("analyze").unwrap().as_u64().unwrap(), 6);
    handle.shutdown();
    handle.join();
}

#[test]
fn analyze_profile_decouples_profiling_from_advising() {
    let handle = test_server(ephemeral());
    let reference = Session::test();
    let job = AnalysisJob::new("rodinia/hotspot", 0);
    // "Client side": gather the profile locally (standing in for a real
    // CUPTI dump) and submit only the profile — the daemon must not
    // re-simulate.
    let (_, profile, _) = reference.profile_one(&job).expect("local profiling");
    let profile_doc = Json::parse(&profile.to_json()).expect("profile serializes");

    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    let response = client.analyze_profile(&job.app, job.variant, &profile_doc).expect("request");
    assert!(response.ok, "{:?}", response.error);
    let body = response.result.unwrap();

    let report = reference.advise_profile(&job, &profile).expect("local advising");
    let expected = protocol::profile_body(&job, &profile, &report, 1).compact();
    assert_eq!(body.compact(), expected, "daemon advice matches local advise_profile");

    // Same submission again: a content-addressed cache hit.
    let again = client.analyze_profile(&job.app, job.variant, &profile_doc).expect("repeat");
    assert!(again.cached, "identical profile submission hits the store");
    assert_eq!(again.result.unwrap().compact(), expected);
    handle.shutdown();
    handle.join();
}

/// The v2 negotiation contract: one daemon answers v1 and v2 clients
/// for the same request; the v1 body keeps the pre-v2 shape; each
/// version caches independently and byte-identically.
#[test]
fn daemon_answers_v1_and_v2_clients_for_the_same_request() {
    let handle = test_server(ephemeral());
    let reference = Session::test();
    let job = AnalysisJob::new("rodinia/hotspot", 0);
    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");

    // A client that never mentions `schema` gets the flat v1 body with
    // the pre-v2 field set, bytes equal to the local v1 rendering.
    let v1 = client.analyze(&job.app, job.variant).expect("v1 round-trip");
    assert!(v1.ok, "{:?}", v1.error);
    let v1_body = v1.result.unwrap();
    let keys: Vec<&str> = v1_body.entries().unwrap().iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        ["app", "variant", "kernel", "cycles", "total_samples", "issue_ratio", "advice", "text"],
        "v1 clients see the unchanged field set"
    );
    assert_eq!(v1_body.compact(), reference_body(&reference, &job));

    // The same request with `schema: 2` carries the structured report.
    let v2 = client.analyze_with(&job.app, job.variant, &WireOptions::v2()).expect("v2");
    assert!(v2.ok, "{:?}", v2.error);
    let v2_body = v2.result.unwrap();
    assert_eq!(v2_body.field("schema").unwrap().as_u64().unwrap(), 2);
    let report = schema::report_from_json(v2_body.field("report").unwrap()).expect("v2 parses");
    let local = reference.run_one(&job).unwrap().report;
    assert_eq!(report, local, "daemon v2 report equals local advise");
    assert_eq!(
        v2_body.field("text").unwrap(),
        v1_body.field("text").unwrap(),
        "rendered text identical across schema versions"
    );

    // Both versions hit the store independently, byte-identically.
    let v1_again = client.analyze(&job.app, job.variant).expect("v1 repeat");
    assert!(v1_again.cached, "v1 repeat is a cache hit");
    assert_eq!(v1_again.result.unwrap().compact(), v1_body.compact());
    let v2_again = client.analyze_with(&job.app, job.variant, &WireOptions::v2()).expect("v2");
    assert!(v2_again.cached, "v2 repeat is a cache hit");
    assert_eq!(v2_again.result.unwrap().compact(), v2_body.compact());

    // Request options shape the body (and address the cache) per call.
    let mut top1 = WireOptions::v2();
    top1.request.top = Some(1);
    let top = client.analyze_with(&job.app, job.variant, &top1).expect("top-1");
    assert!(!top.cached, "different options are a different content address");
    let top_report =
        schema::report_from_json(top.result.unwrap().field("report").unwrap()).unwrap();
    assert_eq!(top_report.items.len(), 1);
    assert_eq!(top_report.items[0], local.items[0]);

    // `status` advertises the negotiable versions.
    let status = client.status().unwrap().into_result().unwrap();
    let versions: Vec<u64> = status
        .field("schemas")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|v| v.as_u64().unwrap())
        .collect();
    assert_eq!(versions, vec![1, 2]);
    handle.shutdown();
    handle.join();
}

/// `analyze_profile` negotiates the schema the same way `analyze` does.
#[test]
fn analyze_profile_negotiates_v2() {
    let handle = test_server(ephemeral());
    let reference = Session::test();
    let job = AnalysisJob::new("rodinia/nw", 0);
    let (_, profile, _) = reference.profile_one(&job).expect("local profiling");
    let profile_doc = Json::parse(&profile.to_json()).expect("profile serializes");

    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    let response = client
        .analyze_profile_with(&job.app, job.variant, &profile_doc, &WireOptions::v2())
        .expect("request");
    assert!(response.ok, "{:?}", response.error);
    let body = response.result.unwrap();
    let report = schema::report_from_json(body.field("report").unwrap()).expect("v2 parses");
    let local = reference.advise_profile(&job, &profile).expect("local advising");
    assert_eq!(report, local);
    handle.shutdown();
    handle.join();
}

/// The chunked-upload path: a large profile split into pieces streams
/// in as `profile_begin` / `profile_chunk`* / `profile_end` and must
/// produce the **same body and the same store entry** as submitting the
/// whole profile in one `analyze_profile` frame.
#[test]
fn chunked_upload_matches_whole_profile_submission() {
    let handle = test_server(ephemeral());
    let reference = Session::test();
    let job = AnalysisJob::new("rodinia/hotspot", 0);
    let (_, profile, _) = reference.profile_one(&job).expect("local profiling");
    let chunks: Vec<Json> = profile
        .split_chunks(3)
        .iter()
        .map(|c| Json::parse(&c.to_json()).expect("chunk serializes"))
        .collect();
    assert!(chunks.len() > 1, "profile large enough to actually split");

    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    let response = client
        .analyze_profile_chunked(&job.app, job.variant, &chunks, &WireOptions::default())
        .expect("chunked upload");
    assert!(response.ok, "{:?}", response.error);
    assert!(!response.cached, "first submission computes");
    let body = response.result.unwrap().compact();

    let report = reference.advise_profile(&job, &profile).expect("local advising");
    let expected = protocol::profile_body(&job, &profile, &report, 1).compact();
    assert_eq!(body, expected, "merged upload equals advising on the whole profile");

    // The merged upload joined the content-addressed cache: submitting
    // the same profile whole is a hit, and vice versa.
    let profile_doc = Json::parse(&profile.to_json()).expect("profile serializes");
    let whole = client.analyze_profile(&job.app, job.variant, &profile_doc).expect("request");
    assert!(whole.cached, "whole-profile submission hits the chunked upload's entry");
    assert_eq!(whole.result.unwrap().compact(), expected);

    // Upload ops are visible in the metrics.
    let status = client.status().expect("status").into_result().expect("ok");
    let ops = status.field("ops").unwrap();
    assert_eq!(ops.field("profile_begin").unwrap().as_u64().unwrap(), 1);
    assert_eq!(ops.field("profile_chunk").unwrap().as_u64().unwrap(), chunks.len() as u64);
    assert_eq!(ops.field("profile_end").unwrap().as_u64().unwrap(), 1);
    handle.shutdown();
    handle.join();
}

#[test]
fn upload_error_paths_leave_the_connection_usable() {
    let handle = test_server(ephemeral());
    let reference = Session::test();
    let job = AnalysisJob::new("rodinia/hotspot", 0);
    let (_, profile, _) = reference.profile_one(&job).expect("local profiling");
    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");

    // A bad job fails at `profile_begin`, before any chunk is streamed.
    let err = client.profile_begin("no/such-app", 0, &WireOptions::default()).unwrap_err();
    assert!(err.to_string().contains("unknown app"), "{err}");
    let err = client.profile_begin(&job.app, 99, &WireOptions::default()).unwrap_err();
    assert!(err.to_string().contains("variant out of range"), "{err}");

    // Chunks and ends against unknown ids are errors, not hangs.
    let doc = Json::parse(&profile.to_json()).unwrap();
    let r = client.profile_chunk(99, &doc).expect("round-trip");
    assert!(!r.ok);
    assert!(r.error.unwrap().contains("unknown upload id 99"));
    let r = client.profile_end(99).expect("round-trip");
    assert!(!r.ok);

    // Ending an upload with no chunks is an error; the id is consumed.
    let id = client.profile_begin(&job.app, job.variant, &WireOptions::default()).unwrap();
    let r = client.profile_end(id).expect("round-trip");
    assert!(!r.ok);
    assert!(r.error.unwrap().contains("has no chunks"));

    // A chunk from a *different* kernel configuration is rejected but
    // the upload keeps its previous state.
    let id = client.profile_begin(&job.app, job.variant, &WireOptions::default()).unwrap();
    assert!(client.profile_chunk(id, &doc).expect("first chunk").ok);
    let (_, other, _) =
        reference.profile_one(&AnalysisJob::new("rodinia/nw", 0)).expect("other profile");
    let other_doc = Json::parse(&other.to_json()).unwrap();
    let r = client.profile_chunk(id, &other_doc).expect("round-trip");
    assert!(!r.ok);
    assert!(r.error.unwrap().contains("chunk does not merge"), "merge mismatch is named");
    let done = client.profile_end(id).expect("finalize");
    assert!(done.ok, "upload survived the bad chunk: {:?}", done.error);

    // Open uploads are bounded per connection; aborting one frees its
    // slot without running an analysis.
    let mut ids = Vec::new();
    for _ in 0..8 {
        ids.push(client.profile_begin(&job.app, job.variant, &WireOptions::default()).unwrap());
    }
    let err = client.profile_begin(&job.app, job.variant, &WireOptions::default()).unwrap_err();
    assert!(err.to_string().contains("too many open uploads"), "{err}");
    let aborted = client.profile_abort(ids[0]).expect("abort round-trip");
    assert!(aborted.ok, "{:?}", aborted.error);
    assert!(client.profile_begin(&job.app, job.variant, &WireOptions::default()).is_ok());
    let r = client.profile_abort(ids[0]).expect("round-trip");
    assert!(!r.ok, "double abort is an unknown id");
    handle.shutdown();
    handle.join();
}

/// Uploads bound what the daemon retains: at most 64 chunks per upload
/// (each chunk can add up to a frame's worth of PC entries to the
/// running merge, so the count cap is the memory cap).
#[test]
fn upload_chunk_count_is_bounded() {
    let handle = test_server(ephemeral());
    let reference = Session::test();
    let job = AnalysisJob::new("rodinia/hotspot", 0);
    let (_, profile, _) = reference.profile_one(&job).expect("local profiling");
    // An empty chunk (no PCs, zero totals) is valid and merges with
    // anything — cheap fuel for hitting the count cap.
    let empty = Json::parse(&profile.empty_like().to_json()).unwrap();
    let full = Json::parse(&profile.to_json()).unwrap();

    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    let id = client.profile_begin(&job.app, job.variant, &WireOptions::default()).unwrap();
    assert!(client.profile_chunk(id, &full).expect("real chunk").ok);
    for _ in 0..63 {
        assert!(client.profile_chunk(id, &empty).expect("filler chunk").ok);
    }
    let over = client.profile_chunk(id, &empty).expect("round-trip");
    assert!(!over.ok, "65th chunk must be rejected");
    assert!(over.error.unwrap().contains("64 chunks"), "limit is named");
    // The upload is still finalizable, and empty chunks were identity
    // merges: the result equals advising on the original profile.
    let done = client.profile_end(id).expect("finalize");
    assert!(done.ok, "{:?}", done.error);
    let report = reference.advise_profile(&job, &profile).expect("local advising");
    let expected = protocol::profile_body(&job, &profile, &report, 1).compact();
    assert_eq!(done.result.unwrap().compact(), expected);
    handle.shutdown();
    handle.join();
}

/// Daemon-side repeat profiling: `"repeat": n` on `analyze` merges `n`
/// replayed launches, matches the local repeat path byte for byte, and
/// caches separately from the single-launch request.
#[test]
fn analyze_repeat_merges_replays_daemon_side() {
    let handle = test_server(ephemeral());
    let reference = Session::test();
    let job = AnalysisJob::new("rodinia/hotspot", 0);
    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");

    let single = client.analyze(&job.app, job.variant).expect("single");
    assert!(single.ok);
    let single_body = single.result.unwrap();

    let options = WireOptions { repeat: 3, ..WireOptions::default() };
    let repeated = client.analyze_with(&job.app, job.variant, &options).expect("repeat");
    assert!(repeated.ok, "{:?}", repeated.error);
    assert!(!repeated.cached, "repeat count addresses its own cache entry");
    let repeated_body = repeated.result.unwrap();
    let samples = |b: &Json| b.field("total_samples").unwrap().as_u64().unwrap();
    let cycles = |b: &Json| b.field("cycles").unwrap().as_u64().unwrap();
    assert!(samples(&repeated_body) > samples(&single_body));
    assert_eq!(cycles(&repeated_body), cycles(&single_body), "ground truth unchanged");

    let local = reference
        .run_one_request_repeat(&job, &options.request, 3)
        .expect("local repeat reference");
    let expected = protocol::analyze_body(&local, 1).compact();
    assert_eq!(repeated_body.compact(), expected, "daemon repeat equals local repeat");
    handle.shutdown();
    handle.join();
}

/// A backpressure-rejected `profile_end` says "retry later" — and the
/// retry must actually work: the upload (and its merge) survives the
/// rejection instead of being discarded.
#[test]
fn profile_end_survives_backpressure_rejection() {
    let config = ServerConfig { workers: 1, queue: 1, ..ServerConfig::ephemeral() };
    let handle = test_server(config);
    let addr = handle.local_addr();
    let reference = Session::test();
    let job = AnalysisJob::new("rodinia/hotspot", 0);
    let (_, profile, _) = reference.profile_one(&job).expect("local profiling");
    let doc = Json::parse(&profile.to_json()).unwrap();

    let mut client = ServeClient::connect(addr).expect("connect");
    let id = client.profile_begin(&job.app, job.variant, &WireOptions::default()).unwrap();
    assert!(client.profile_chunk(id, &doc).expect("chunk").ok);

    // Occupy the single worker and fill the single queue slot.
    let occupier = std::thread::spawn(move || {
        let mut c = ServeClient::connect(addr).expect("connect");
        c.request(&Request::Sleep { ms: 1500 }).expect("sleep completes")
    });
    let queued = std::thread::spawn(move || {
        let mut c = ServeClient::connect(addr).expect("connect");
        std::thread::sleep(std::time::Duration::from_millis(200));
        c.request(&Request::Sleep { ms: 10 }).expect("queued sleep completes")
    });
    std::thread::sleep(std::time::Duration::from_millis(600));
    let rejected = client.profile_end(id).expect("round-trip");
    assert!(!rejected.ok, "profile_end hits backpressure");
    assert!(rejected.error.unwrap().contains("queue full"));

    assert!(occupier.join().unwrap().ok);
    assert!(queued.join().unwrap().ok);
    // The upload survived the rejection: retrying finalizes the same
    // merge, byte-identical to a whole-profile submission.
    let done = client.profile_end(id).expect("retry after drain");
    assert!(done.ok, "{:?}", done.error);
    let report = reference.advise_profile(&job, &profile).expect("local advising");
    let expected = protocol::profile_body(&job, &profile, &report, 1).compact();
    assert_eq!(done.result.unwrap().compact(), expected);
    handle.shutdown();
    handle.join();
}

#[test]
fn full_queue_rejects_with_backpressure_error() {
    // One worker, queue capacity 1: a long sleep occupies the worker,
    // a second fills the queue, the third must be rejected.
    let config = ServerConfig { workers: 1, queue: 1, ..ServerConfig::ephemeral() };
    let handle = test_server(config);
    let addr = handle.local_addr();

    let occupier = std::thread::spawn(move || {
        let mut c = ServeClient::connect(addr).expect("connect");
        c.request(&Request::Sleep { ms: 1500 }).expect("sleep completes")
    });
    let queued = std::thread::spawn(move || {
        let mut c = ServeClient::connect(addr).expect("connect");
        std::thread::sleep(std::time::Duration::from_millis(200));
        c.request(&Request::Sleep { ms: 10 }).expect("queued sleep completes")
    });
    // Give the first request time to reach the worker and the second to
    // park in the queue.
    std::thread::sleep(std::time::Duration::from_millis(600));
    let mut c = ServeClient::connect(addr).expect("connect");
    let rejected = c.request(&Request::Sleep { ms: 10 }).expect("round-trip");
    assert!(!rejected.ok, "third request must be rejected");
    let msg = rejected.error.expect("error message");
    assert!(msg.contains("queue full"), "explicit backpressure: {msg}");

    let status = c.status().expect("status").into_result().expect("ok");
    let queue = status.field("queue").unwrap();
    assert!(queue.field("rejected").unwrap().as_u64().unwrap() >= 1);
    assert_eq!(queue.field("capacity").unwrap().as_u64().unwrap(), 1);

    assert!(occupier.join().unwrap().ok);
    assert!(queued.join().unwrap().ok);
    handle.shutdown();
    handle.join();
}

#[test]
fn protocol_errors_are_reported_not_fatal() {
    let handle = test_server(ephemeral());
    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    for (line, needle) in [
        ("this is not json", "malformed request"),
        ("{\"op\":\"warp-speed\"}", "unknown op"),
        ("{\"no_op\":true}", "missing `op`"),
    ] {
        let frame = client.request_line(line).expect("server answers bad input");
        let doc = Json::parse(&frame).expect("error frame is JSON");
        assert!(!doc.field("ok").unwrap().as_bool().unwrap());
        let msg = doc.field("error").unwrap().as_str().unwrap();
        assert!(msg.contains(needle), "{line}: {msg}");
    }
    // The connection survives protocol errors; real work still flows.
    let ok = client.analyze("rodinia/hotspot", 0).expect("connection still usable");
    assert!(ok.ok);

    // Analysis errors carry the job identity.
    let bad = client.analyze("no/such-app", 0).expect("round-trip");
    assert!(!bad.ok);
    assert!(bad.error.unwrap().contains("unknown app"));

    let status = client.status().expect("status").into_result().expect("ok");
    let errors = status.field("errors").unwrap();
    assert_eq!(errors.field("protocol").unwrap().as_u64().unwrap(), 3);
    assert_eq!(errors.field("analysis").unwrap().as_u64().unwrap(), 1);
    handle.shutdown();
    handle.join();
}

#[test]
fn shutdown_op_stops_the_daemon_cleanly() {
    let handle = test_server(ephemeral());
    let addr = handle.local_addr();
    let mut client = ServeClient::connect(addr).expect("connect");
    let response = client.shutdown().expect("shutdown acknowledged");
    assert!(response.ok);
    // join() returning proves the accept loop, workers, and connection
    // threads all exited.
    handle.join();
    // And the port is actually closed.
    std::thread::sleep(std::time::Duration::from_millis(50));
    assert!(ServeClient::connect(addr).is_err(), "daemon no longer listening after clean shutdown");
}

#[test]
fn lru_eviction_bounds_the_store() {
    let config = ServerConfig { workers: 2, store_capacity: 2, ..ServerConfig::ephemeral() };
    let handle = test_server(config);
    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    for app in ["rodinia/hotspot", "rodinia/gaussian", "rodinia/nw", "rodinia/bfs"] {
        assert!(client.analyze(app, 0).expect("analyze").ok);
    }
    let status = client.status().expect("status").into_result().expect("ok");
    let store = status.field("store").unwrap();
    assert_eq!(store.field("entries").unwrap().as_u64().unwrap(), 2, "memory stays bounded");
    assert!(store.field("evictions").unwrap().as_u64().unwrap() >= 2);
    handle.shutdown();
    handle.join();
}

#[test]
fn persisted_store_warms_a_restarted_daemon() {
    let dir = std::env::temp_dir().join(format!("gpa-serve-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config =
        || ServerConfig { workers: 2, persist_dir: Some(dir.clone()), ..ServerConfig::ephemeral() };

    let first = test_server(config());
    let mut client = ServeClient::connect(first.local_addr()).expect("connect");
    let original = client.analyze("rodinia/hotspot", 0).expect("analyze");
    assert!(original.ok && !original.cached);
    let original_body = original.result.unwrap().compact();
    first.shutdown();
    first.join();

    // A fresh daemon over the same directory answers from disk without
    // re-simulating.
    let second = test_server(config());
    let mut client = ServeClient::connect(second.local_addr()).expect("connect");
    let warmed = client.analyze("rodinia/hotspot", 0).expect("analyze");
    assert!(warmed.ok && warmed.cached, "restart served from the disk tier");
    assert_eq!(warmed.result.unwrap().compact(), original_body);
    let status = client.status().expect("status").into_result().expect("ok");
    assert!(status.field("store").unwrap().field("disk_hits").unwrap().as_u64().unwrap() >= 1);
    second.shutdown();
    second.join();
    let _ = std::fs::remove_dir_all(&dir);
}
