//! # GPA-rs — a GPU Performance Advisor based on instruction sampling
//!
//! A from-scratch Rust reproduction of *"GPA: A GPU Performance Advisor
//! Based on Instruction Sampling"* (CGO 2021): a performance advisor that
//! attributes PC-sampling stalls to their root-cause instructions and
//! matches them with optimization suggestions — plus every substrate the
//! paper depends on (a Volta-like ISA, a cycle-level SIMT simulator
//! standing in for the V100, a CUPTI-like sampling layer, and the
//! benchmark suite of its evaluation).
//!
//! The crates re-exported here:
//!
//! * [`isa`] — instructions, control codes, 128-bit encoding, assembler.
//! * [`cfg`](mod@cfg) — control-flow graphs, dominators, loop nests, path queries.
//! * [`arch`] — machine description, latency tables, occupancy.
//! * [`sim`] — the SIMT simulator with PC-sampling hooks.
//! * [`sampling`] — profile aggregation (the CUPTI substitute).
//! * [`structure`] — program structure: functions, loops, lines, scopes.
//! * [`core`] — the paper's contribution: blamer, optimizers, estimators,
//!   and the advice report.
//! * [`kernels`] — the 21-application benchmark suite with
//!   baseline/optimized variants.
//! * [`pipeline`] — the reusable analysis flow: cached [`pipeline::Session`]s,
//!   [`pipeline::AnalysisJob`]s, and the parallel `run_batch` the CLI and
//!   harnesses are built on.
//! * [`serve`] — the advisor as a daemon: a concurrent TCP service with
//!   a JSON-lines protocol, bounded worker pool, and a content-addressed
//!   report store over one shared session.
//!
//! # Quickstart
//!
//! ```
//! use gpa::arch::{ArchConfig, LaunchConfig};
//! use gpa::core::Advisor;
//! use gpa::sampling::Profiler;
//! use gpa::sim::{GpuSim, SimConfig};
//!
//! // A kernel whose loads are consumed immediately (reorder candidate).
//! let module = gpa::isa::parse_module(r#"
//! .module demo
//! .kernel axpy
//!   S2R R0, SR_TID.X {W:B0, S:1}
//!   MOV R2, c[0][0] {S:1}
//!   MOV R3, c[0][4] {S:1}
//!   SHL R1, R0, 2 {WT:[B0], S:2}
//!   IADD R2:R3, R2:R3, R1 {S:2}
//!   LDG.E.32 R4, [R2:R3] {W:B1, S:1}
//!   FFMA R5, R4, 2.0, R4 {WT:[B1], S:4}
//!   STG.E.32 [R2:R3], R5 {R:B2, S:1}
//!   EXIT {WT:[B2], S:1}
//! .endfunc
//! "#)?;
//!
//! let arch = ArchConfig::small(1);
//! let mut profiler = Profiler::new(GpuSim::new(arch.clone(), SimConfig::default()));
//! let buf = profiler.gpu_mut().global_mut().alloc(4 * 64);
//! let params: Vec<u8> = buf.to_le_bytes().to_vec();
//! let (profile, _) = profiler
//!     .profile(&module, "axpy", &LaunchConfig::new(2, 32), &params)
//!     .expect("kernel runs");
//!
//! let report = Advisor::new().advise(&module, &profile, &arch);
//! assert!(report.total_samples > 0);
//! # Ok::<(), gpa::isa::IsaError>(())
//! ```

pub use gpa_arch as arch;
pub use gpa_cfg as cfg;
pub use gpa_core as core;
pub use gpa_isa as isa;
pub use gpa_json as json;
pub use gpa_kernels as kernels;
pub use gpa_pipeline as pipeline;
pub use gpa_sampling as sampling;
pub use gpa_serve as serve;
pub use gpa_sim as sim;
pub use gpa_structure as structure;
