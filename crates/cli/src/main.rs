//! The `gpa` command-line tool.
//!
//! Mirrors the paper's workflow: GPA "is a command line tool that
//! automates profiling and analysis stages". Subcommands:
//!
//! ```text
//! gpa list                              enumerate built-in benchmark kernels
//! gpa analyze <app> [variant] [--json]  profile a kernel and print the advice report
//! gpa analyze --all [--json]            analyze all 21 apps in parallel, with a summary
//! gpa profile <app> [variant]           dump the PC-sampling profile as JSON
//! gpa asm <app> [variant]               print the kernel's assembly
//! ```
//!
//! `analyze --all` fans out over the worker pool via the pipeline's
//! [`Session::run_batch`] and ends with a per-app wall-clock summary;
//! the exit code is nonzero when any app faults.

use gpa_core::report;
use gpa_json::Json;
use gpa_kernels::all_apps;
use gpa_kernels::apps::app_by_name;
use gpa_pipeline::{AnalysisJob, Session};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: gpa <command> [args]\n\n  \
         list                              list built-in kernels\n  \
         analyze <app> [variant] [--json]  profile + advise (default variant 0)\n  \
         analyze --all [--json]            analyze every app in parallel, with summary\n  \
         profile <app> [variant]           dump the profile JSON\n  \
         asm <app> [variant]               print kernel assembly"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = {
        let before = args.len();
        args.retain(|a| a != "--json");
        args.len() != before
    };
    let all = {
        let before = args.len();
        args.retain(|a| a != "--all");
        args.len() != before
    };
    let Some(cmd) = args.first() else { return usage() };
    if (json || all) && cmd != "analyze" {
        eprintln!("--json and --all are only supported with `analyze`");
        return ExitCode::from(2);
    }
    match cmd.as_str() {
        "list" => {
            for app in all_apps() {
                let stages: Vec<&str> = app.stages.iter().map(|s| s.name).collect();
                println!(
                    "{:<24} kernel {:<28} stages: {}",
                    app.name,
                    app.kernel,
                    stages.join(", ")
                );
            }
            ExitCode::SUCCESS
        }
        "analyze" if all => analyze_all(json),
        "analyze" | "profile" | "asm" => {
            let Some(name) = args.get(1) else { return usage() };
            let Some(app) = app_by_name(name) else {
                eprintln!("unknown app `{name}` (try `gpa list`)");
                return ExitCode::FAILURE;
            };
            let variant: usize = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(0);
            if variant >= app.variants() {
                eprintln!("{name} has variants 0..{}", app.variants() - 1);
                return ExitCode::FAILURE;
            }
            let session = Session::full();
            let job = AnalysisJob::new(app.name, variant);
            if cmd == "asm" {
                match session.artifacts(&job) {
                    Ok(art) => {
                        print!("{}", art.spec.module.write_asm());
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        ExitCode::FAILURE
                    }
                }
            } else {
                let outcome = match session.run_one(&job) {
                    Ok(o) => o,
                    Err(e) => {
                        eprintln!("simulation failed: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                match cmd.as_str() {
                    "profile" => println!("{}", outcome.profile.to_json()),
                    _ if json => println!("{}", outcome.to_json()),
                    _ => {
                        print!("{}", report::render(&outcome.report, 5));
                        println!("kernel cycles: {}", outcome.cycles);
                    }
                }
                ExitCode::SUCCESS
            }
        }
        _ => usage(),
    }
}

/// `gpa analyze --all [--json]`: every registry app (baseline variant)
/// through the parallel batch pipeline, then an end-of-run summary.
fn analyze_all(json: bool) -> ExitCode {
    let session = Session::full();
    let jobs = session.jobs_for_all_apps();
    let t0 = std::time::Instant::now();
    let results = session.run_batch(&jobs);
    let total_wall = t0.elapsed();
    let faults = results.iter().filter(|r| r.is_err()).count();

    if json {
        let apps: Vec<Json> = results
            .iter()
            .map(|r| match r {
                Ok(out) => out.to_json(),
                Err(e) => e.to_json(),
            })
            .collect();
        let doc = Json::object().with("apps", Json::Arr(apps)).with(
            "summary",
            Json::object()
                .with("analyzed", results.len())
                .with("faulted", faults)
                .with("wall_ms", total_wall.as_secs_f64() * 1e3)
                .with("workers", session.workers()),
        );
        println!("{doc}");
    } else {
        println!(
            "{:<24} {:<28} {:>12} {:>9} {:>10}  {}",
            "application", "kernel", "cycles", "samples", "wall", "top advice"
        );
        println!("{}", "-".repeat(118));
        for result in &results {
            match result {
                Ok(out) => {
                    let top = out.report.top().map_or("(no advice matched)".to_string(), |i| {
                        format!("{} {:.2}x", i.optimizer, i.estimated_speedup)
                    });
                    println!(
                        "{:<24} {:<28} {:>10}cy {:>9} {:>8.1}ms  {}",
                        out.job.app,
                        out.kernel,
                        out.cycles,
                        out.profile.total_samples,
                        out.wall.as_secs_f64() * 1e3,
                        top
                    );
                }
                Err(e) => println!("{:<24} FAULT: {}", e.job.app, e.message),
            }
        }
        println!("{}", "-".repeat(118));
        let slowest = results.iter().flatten().max_by_key(|o| o.wall);
        println!(
            "{} apps analyzed in {:.1}ms wall ({} workers{})",
            results.len(),
            total_wall.as_secs_f64() * 1e3,
            session.workers(),
            slowest.map_or(String::new(), |o| format!(
                ", slowest: {} at {:.1}ms",
                o.job.app,
                o.wall.as_secs_f64() * 1e3
            )),
        );
        if faults > 0 {
            println!("{faults} app(s) FAULTED");
        }
    }
    if faults > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
