//! Differential and property tests for the streaming measurement layer.
//!
//! The acceptance bar for the refactor: across **every** app in the
//! registry, the default at-source aggregating sink must reproduce the
//! old buffered `Vec<RawSample>` path byte for byte — same `SampleSet`,
//! same `KernelProfile`, same profile JSON, same advice — and
//! `KernelProfile::merge` must behave as a proper commutative monoid
//! (associative, commutative, identity = the empty profile), which is
//! what makes repeat profiling and chunked uploads order-insensitive.

use gpa::arch::{ArchConfig, LaunchConfig, Occupancy};
use gpa::core::{report, Advisor};
use gpa::kernels::runner::{
    arch_for, launch_spec_with, launch_spec_with_sink, profiler_for, sim_config,
};
use gpa::kernels::{all_apps, Params};
use gpa::sampling::{KernelProfile, PcStats, ProfileBuilder, StallReason};
use gpa::sim::{RawSample, SampleSet};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// The tentpole differential check: for all 21 apps, the streaming sink
/// equals the buffered path — in the aggregated set, the profile, the
/// profile JSON bytes, and the advice the profile produces.
#[test]
fn sink_equals_buffered_path_across_all_apps() {
    let p = Params::test();
    let arch = arch_for(&p);
    let advisor = Advisor::new();
    for app in all_apps() {
        let spec = (app.build)(0, &p);

        // Default path: samples aggregate at the source.
        let streamed = launch_spec_with(&spec, &arch, sim_config()).unwrap();

        // Buffered path: collect the raw stream (the pre-refactor
        // layout), then aggregate after the fact.
        let mut raw: Vec<RawSample> = Vec::new();
        let buffered = launch_spec_with_sink(&spec, &arch, sim_config(), &mut raw).unwrap();

        assert!(!raw.is_empty(), "{}: kernel produced samples", app.name);
        assert_eq!(
            SampleSet::from_raw(&raw),
            streamed.samples,
            "{}: at-source aggregation equals buffered aggregation",
            app.name
        );

        let period = sim_config().sampling_period;
        let from_stream = KernelProfile::from_launch(
            &spec.entry,
            &spec.module.name,
            &spec.module.arch,
            period,
            &streamed,
        );
        let from_buffer = KernelProfile::from_set(
            &spec.entry,
            &spec.module.name,
            &spec.module.arch,
            period,
            &SampleSet::from_raw(&raw),
            &buffered,
        );
        assert_eq!(from_stream, from_buffer, "{}: profiles identical", app.name);
        assert_eq!(
            from_stream.to_json(),
            from_buffer.to_json(),
            "{}: profile JSON byte-identical",
            app.name
        );

        // And the artifact the user sees: identical advice.
        let a = advisor.advise(&spec.module, &from_stream, &arch);
        let b = advisor.advise(&spec.module, &from_buffer, &arch);
        assert_eq!(a, b, "{}: advice reports identical", app.name);
        assert_eq!(
            report::render(&a, 5),
            report::render(&b, 5),
            "{}: rendered advice byte-identical",
            app.name
        );
    }
}

/// `profile_repeat(1)` must be exactly `profile` — same profile, same
/// JSON — for a sample of real apps (the full sweep runs in the sim's
/// own unit tests).
#[test]
fn profile_repeat_one_equals_profile_on_real_apps() {
    let p = Params::test();
    let arch = arch_for(&p);
    for app in all_apps().into_iter().take(4) {
        let spec = (app.build)(0, &p);
        let run = |repeat: Option<u32>| {
            let (mut prof, params) = profiler_for(&spec, &arch);
            match repeat {
                None => prof.profile(&spec.module, &spec.entry, &spec.launch, &params).unwrap().0,
                Some(n) => {
                    prof.profile_repeat(&spec.module, &spec.entry, &spec.launch, &params, n)
                        .unwrap()
                        .0
                }
            }
        };
        let single = run(None);
        let repeat1 = run(Some(1));
        assert_eq!(single, repeat1, "{}: repeat-1 equals single", app.name);
        assert_eq!(single.to_json(), repeat1.to_json(), "{}: JSON bytes equal", app.name);
    }
}

/// A deterministic pseudo-random profile for the merge monoid laws. All
/// generated profiles share one header (merge requires it) and are
/// internally consistent by construction.
fn gen_profile(seed: u64) -> KernelProfile {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let arch = ArchConfig::small(1);
    let launch = LaunchConfig::new(4, 64);
    let occupancy: Occupancy = arch.occupancy(&launch);
    let n_reasons = StallReason::ALL.len();
    let mut pcs: BTreeMap<u64, PcStats> = BTreeMap::new();
    let n_pcs = (next() % 6) as usize;
    for _ in 0..n_pcs {
        let pc = (next() % 24) * 16;
        let mut st = PcStats::default();
        for code in 0..n_reasons {
            let all = next() % 5;
            st.by_reason[code] = all;
            st.latency_by_reason[code] = if all == 0 { 0 } else { next() % (all + 1) };
            st.total += all;
        }
        // Colliding PCs overwrite; totals are recomputed below either way.
        pcs.insert(pc, st);
    }
    let total: u64 = pcs.values().map(|s| s.total).sum();
    let latency: u64 = pcs.values().map(PcStats::latency_total).sum();
    KernelProfile {
        kernel: "k".into(),
        module_name: "m".into(),
        arch: "volta".into(),
        period: 509,
        launch,
        occupancy,
        cycles: next() % 10_000,
        issued: next() % 10_000,
        pcs,
        total_samples: total,
        active_samples: total - latency,
        latency_samples: latency,
        mem_transactions: next() % 1_000,
        l2_hits: next() % 1_000,
        l2_misses: next() % 1_000,
        icache_misses: next() % 100,
    }
}

/// Re-renders `a`'s JSON with the first PC's `by_reason` array passed
/// through `f` — the schema-surgery helper for the rejection tests.
fn with_mutated_columns(
    a: &KernelProfile,
    f: impl Fn(Vec<gpa::json::Json>) -> Vec<gpa::json::Json>,
) -> String {
    use gpa::json::Json;
    let doc = Json::parse(&a.to_json()).unwrap();
    let mut new_pcs = Json::object();
    for (i, (pc, stats)) in doc.field("pcs").unwrap().entries().unwrap().iter().enumerate() {
        let stats = if i == 0 {
            let mut s = Json::object();
            for (k, v) in stats.entries().unwrap() {
                if k == "by_reason" {
                    s = s.with(k, Json::Arr(f(v.as_array().unwrap().to_vec())));
                } else {
                    s = s.with(k, v.clone());
                }
            }
            s
        } else {
            stats.clone()
        };
        new_pcs = new_pcs.with(pc, stats);
    }
    let mut out = Json::object();
    for (k, v) in doc.entries().unwrap() {
        out = out.with(k, if k == "pcs" { new_pcs.clone() } else { v.clone() });
    }
    out.compact()
}

/// The hierarchy stall reasons appended in the taxonomy extension —
/// the columns the rejection/overflow tests below pin.
const HIER_REASONS: [StallReason; 4] = [
    StallReason::BankConflict,
    StallReason::Uncoalesced,
    StallReason::MshrFull,
    StallReason::L2Queue,
];

proptest! {
    /// Strict validation rejects histograms with unknown stall-reason
    /// columns (a longer array than this build's taxonomy) and legacy
    /// pre-hierarchy rows (the 9-column shape) alike — the wire format
    /// is positional, so column count IS the schema version.
    #[test]
    fn unknown_stall_reason_columns_are_rejected(sa in 0u64..1_000_000) {
        // The shim has no prop_assume: walk seeds to a non-empty profile.
        let a = (0..8).map(|i| gen_profile(sa + i)).find(|p| !p.pcs.is_empty()).unwrap();
        let extended = with_mutated_columns(&a, |mut cols| {
            cols.push(gpa::json::Json::from(0u64));
            cols
        });
        let err = KernelProfile::from_json(&extended).unwrap_err().to_string();
        prop_assert!(err.contains("stall-reason counters"), "{}", err);
        let legacy = with_mutated_columns(&a, |cols| cols[..9].to_vec());
        let err = KernelProfile::from_json(&legacy).unwrap_err().to_string();
        prop_assert!(err.contains("stall-reason counters"), "{}", err);
    }

    /// Merging adds the hierarchy columns like any other — per PC and
    /// reason, the merged count is the sum of the inputs'.
    #[test]
    fn merge_adds_the_hierarchy_columns(sa in 0u64..1_000_000, sb in 0u64..1_000_000) {
        let (a, b) = (gen_profile(sa), gen_profile(sb));
        let merged = a.merge(&b).unwrap();
        for r in HIER_REASONS {
            for (&pc, st) in &merged.pcs {
                let want = a.pcs.get(&pc).map_or(0, |s| s.stalls(r))
                    + b.pcs.get(&pc).map_or(0, |s| s.stalls(r));
                prop_assert_eq!(st.stalls(r), want);
            }
        }
    }

    /// A hierarchy column at `u64::MAX` overflows on merge: the merge
    /// is rejected (`CounterOverflow`) and the receiver is untouched —
    /// a poisoned chunk cannot corrupt an open upload.
    #[test]
    fn hierarchy_column_overflow_rejects_the_merge_untouched(sa in 0u64..1_000_000, r in 0usize..4) {
        let mut a = (0..8).map(|i| gen_profile(sa + i)).find(|p| !p.pcs.is_empty()).unwrap();
        let pc = *a.pcs.keys().next().unwrap();
        let code = HIER_REASONS[r].code() as usize;
        a.pcs.get_mut(&pc).unwrap().by_reason[code] = u64::MAX;
        let b = a.clone();
        prop_assert!(a.merge(&b).is_err());
        let mut receiver = a.clone();
        prop_assert!(receiver.merge_in(&b).is_err());
        prop_assert_eq!(receiver, a, "failed merge left the receiver untouched");
    }

    /// Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
    #[test]
    fn merge_is_associative(sa in 0u64..1_000_000, sb in 0u64..1_000_000, sc in 0u64..1_000_000) {
        let (a, b, c) = (gen_profile(sa), gen_profile(sb), gen_profile(sc));
        let left = a.merge(&b).unwrap().merge(&c).unwrap();
        let right = a.merge(&b.merge(&c).unwrap()).unwrap();
        prop_assert_eq!(left, right);
    }

    /// Commutativity: a ⊕ b == b ⊕ a.
    #[test]
    fn merge_is_commutative(sa in 0u64..1_000_000, sb in 0u64..1_000_000) {
        let (a, b) = (gen_profile(sa), gen_profile(sb));
        prop_assert_eq!(a.merge(&b).unwrap(), b.merge(&a).unwrap());
    }

    /// Identity: a ⊕ empty == empty ⊕ a == a.
    #[test]
    fn empty_profile_is_the_merge_identity(sa in 0u64..1_000_000) {
        let a = gen_profile(sa);
        let empty = a.empty_like();
        prop_assert_eq!(a.merge(&empty).unwrap(), a.clone());
        prop_assert_eq!(empty.merge(&a).unwrap(), a);
    }

    /// Splitting into chunks and folding them back (in any grouping the
    /// builder chooses) reproduces the original profile.
    #[test]
    fn split_chunks_round_trips(sa in 0u64..1_000_000, n in 1usize..6) {
        let a = gen_profile(sa);
        let mut builder = ProfileBuilder::new();
        for chunk in a.split_chunks(n) {
            builder.add(&chunk).unwrap();
        }
        prop_assert_eq!(builder.build().unwrap(), a);
    }

    /// Generated profiles are themselves valid under the strict JSON
    /// validator (so the generator exercises the real schema).
    #[test]
    fn generated_profiles_round_trip_strict_validation(sa in 0u64..1_000_000) {
        let a = gen_profile(sa);
        prop_assert_eq!(KernelProfile::from_json(&a.to_json()).unwrap(), a);
    }
}
