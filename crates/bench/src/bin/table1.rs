//! Reproduces **Table 1**: dissection of the fields of
//! `@P0 LDG.32 R0, [R2]` (wait mask, write/read barrier, predicate,
//! opcode, modifiers, destination and source operands).

use gpa_isa::{
    dissect, encode, BarrierReg, ControlCode, Instruction, MemRef, Modifier, Opcode, Operand,
    PredReg, Predicate, Register,
};

fn main() {
    let instr = Instruction::new(
        Opcode::Ldg,
        vec![Operand::Reg(Register::from_u8(0))],
        vec![Operand::Mem(MemRef { base: Register::from_u8(2), offset: 0, wide: true })],
    )
    .with_mod(Modifier::Sz32)
    .with_pred(Predicate::pos(PredReg::new(0).unwrap()))
    .with_ctrl(
        ControlCode::none()
            .with_write_barrier(BarrierReg::new(0).unwrap())
            .with_read_barrier(BarrierReg::new(1).unwrap())
            .with_wait(BarrierReg::new(0).unwrap())
            .with_wait(BarrierReg::new(1).unwrap()),
    );
    println!("Table 1 — dissection of `{instr}`\n");
    for (field, value) in dissect(&instr) {
        println!("  {field:<22} {value}");
    }
    let word = encode(&instr).expect("encodes");
    println!("\n128-bit word (little endian): {:02x?}", word);
}
