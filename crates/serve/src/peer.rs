//! The hardened peer path: pooled connections, a circuit breaker, a
//! retry budget, and deterministic fault injection.
//!
//! Every peer call in the daemon — forwarding, replication, handoff,
//! membership announces — goes through [`PeerTable::call`], which
//! layers, in order:
//!
//! 1. **Fault injection** ([`FaultPlan`]): a scripted deny/delay/sever
//!    decided before any real I/O, so chaos runs replay exactly.
//! 2. **Circuit breaker**: after [`TRIP_THRESHOLD`] consecutive
//!    failures a peer is *tripped* — calls fail fast (no dial) until a
//!    cooldown elapses, then exactly one call probes half-open. A
//!    probe success closes the breaker; a failure re-trips it.
//! 3. **Connection pool**: up to [`POOL_CAP`] idle connections per
//!    peer. A pooled connection that fails on reuse is *stale*
//!    ([`ClientError::StaleConnection`]) and retried on a fresh dial
//!    for free — the far end merely reaped it.
//! 4. **Retry budget**: a token bucket shared across all peers. A
//!    failed fresh call may retry once, after a jittered exponential
//!    backoff, if a token is available — so retries cannot amplify an
//!    outage into a retry storm. Callers on best-effort paths
//!    (replication, handoff, probes) pass `retry: false` and never
//!    spend budget.
//!
//! Everything observable — trips, fast-fails, probes, stale retries,
//! budget spent/denied — lands in [`Metrics`] and surfaces in
//! `status`.

use crate::client::{ClientError, ServeClient};
use crate::faults::{FaultAction, FaultPlan};
use crate::metrics::Metrics;
use gpa_json::Json;
use std::collections::HashMap;
use std::io;
use std::sync::atomic::Ordering;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Idle pooled connections kept per peer. Forwarding fan-in is bounded
/// by the worker pool, so a handful of warm connections covers the
/// steady state without holding file descriptors on every shard for
/// every other shard.
pub(crate) const POOL_CAP: usize = 4;

/// Consecutive fresh-connection failures before a peer's breaker
/// trips.
const TRIP_THRESHOLD: u32 = 3;

/// Base backoff before a budgeted retry; doubled per attempt and
/// widened by up to one base of seeded jitter.
const BACKOFF_BASE_MS: u64 = 25;

/// Retry-budget refill rate (tokens per second). Refill is lazy, on
/// the next budget check.
const BUDGET_REFILL_PER_SEC: f64 = 4.0;

/// Per-peer live state: pooled connections plus breaker bookkeeping.
#[derive(Default)]
struct PeerState {
    idle: Vec<ServeClient>,
    consecutive_failures: u32,
    /// `Some(when)` while the breaker is open; calls fail fast until
    /// `when`, then one call probes half-open.
    tripped_until: Option<Instant>,
    trips: u64,
}

/// The shared retry-budget token bucket.
struct Budget {
    tokens: f64,
    last_refill: Instant,
}

/// All peer-path state for one daemon.
pub(crate) struct PeerTable {
    peers: Mutex<HashMap<String, PeerState>>,
    budget: Mutex<Budget>,
    budget_capacity: u32,
    trip_cooldown: Duration,
    io_timeout: Duration,
    /// Seeded LCG for backoff jitter (from the fault plan's seed when
    /// present, so chaos timing replays).
    jitter: Mutex<u64>,
    faults: Option<FaultPlan>,
}

impl PeerTable {
    pub(crate) fn new(
        io_timeout: Duration,
        trip_cooldown: Duration,
        budget_capacity: u32,
        faults: Option<FaultPlan>,
    ) -> PeerTable {
        let seed = faults.as_ref().map_or(0x5eed, FaultPlan::seed);
        PeerTable {
            peers: Mutex::new(HashMap::new()),
            budget: Mutex::new(Budget {
                tokens: f64::from(budget_capacity),
                last_refill: Instant::now(),
            }),
            budget_capacity,
            trip_cooldown,
            io_timeout,
            jitter: Mutex::new(seed | 1),
            faults,
        }
    }

    /// The active fault plan, if any.
    pub(crate) fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Runs `f` against a connection to `addr`, through the full
    /// hardening stack. `retry` decides whether a failed fresh call
    /// may spend a budget token on one backed-off retry.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] once every layer has given up; the breaker
    /// and the fault plan surface as synthetic refusals.
    pub(crate) fn call<T>(
        &self,
        addr: &str,
        metrics: &Metrics,
        retry: bool,
        mut f: impl FnMut(&mut ServeClient) -> io::Result<T>,
    ) -> Result<T, ClientError> {
        match self.faults.as_ref().and_then(|plan| plan.check(addr)) {
            Some(FaultAction::Deny) => {
                self.record_failure(addr, metrics);
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    format!("fault injection denies {addr}"),
                )));
            }
            Some(FaultAction::Delay(ms)) => std::thread::sleep(Duration::from_millis(ms)),
            Some(FaultAction::Sever) => {
                self.drop_pool(addr);
                self.record_failure(addr, metrics);
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    format!("fault injection severs {addr}"),
                )));
            }
            None => {}
        }
        self.breaker_gate(addr, metrics)?;
        // Pooled attempt: a failure here means the far end reaped the
        // idle connection — typed as retryable, so it earns a fresh
        // dial without spending budget.
        if let Some(outcome) = self.attempt_pooled(addr, &mut f) {
            match outcome {
                Ok(value) => return Ok(value),
                Err(stale) if stale.is_retryable() => {
                    metrics.stale_retries.fetch_add(1, Ordering::Relaxed);
                }
                Err(fatal) => return Err(fatal),
            }
        }
        // Fresh dial, with at most one budgeted, backed-off retry.
        let mut attempt = 0u32;
        loop {
            match self.dial(addr).and_then(|mut client| match f(&mut client) {
                Ok(value) => Ok((value, client)),
                Err(e) => Err(e),
            }) {
                Ok((value, client)) => {
                    self.record_success(addr, client);
                    return Ok(value);
                }
                Err(e) => {
                    self.record_failure(addr, metrics);
                    if retry && attempt == 0 && self.take_token(metrics) {
                        attempt += 1;
                        std::thread::sleep(self.backoff(attempt));
                        continue;
                    }
                    return Err(ClientError::Io(e));
                }
            }
        }
    }

    /// Tries `f` on a pooled connection, if one is parked. A failure
    /// is [`ClientError::StaleConnection`] — the far end reaped the
    /// idle socket, which says nothing about the peer's health.
    fn attempt_pooled<T>(
        &self,
        addr: &str,
        f: &mut impl FnMut(&mut ServeClient) -> io::Result<T>,
    ) -> Option<Result<T, ClientError>> {
        let mut client = self.checkout(addr)?;
        match f(&mut client) {
            Ok(value) => {
                self.record_success(addr, client);
                Some(Ok(value))
            }
            Err(e) => Some(Err(ClientError::StaleConnection(e))),
        }
    }

    fn dial(&self, addr: &str) -> io::Result<ServeClient> {
        let mut client = ServeClient::connect_timeout(addr, self.io_timeout)?;
        client.set_timeouts(Some(self.io_timeout))?;
        Ok(client)
    }

    /// Fast-fails while `addr`'s breaker is open; lets exactly the
    /// first post-cooldown call through as the half-open probe.
    fn breaker_gate(&self, addr: &str, metrics: &Metrics) -> Result<(), ClientError> {
        let mut peers = self.peers.lock().expect("peer table lock");
        let state = peers.entry(addr.to_string()).or_default();
        if let Some(until) = state.tripped_until {
            if Instant::now() < until {
                metrics.breaker_fast_fails.fetch_add(1, Ordering::Relaxed);
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    format!("peer {addr} breaker open"),
                )));
            }
            // Half-open: this call probes. On failure the (still at
            // threshold) failure count re-trips immediately.
            state.tripped_until = None;
            metrics.peer_probes.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    fn checkout(&self, addr: &str) -> Option<ServeClient> {
        self.peers.lock().expect("peer table lock").get_mut(addr)?.idle.pop()
    }

    fn drop_pool(&self, addr: &str) {
        if let Some(state) = self.peers.lock().expect("peer table lock").get_mut(addr) {
            state.idle.clear();
        }
    }

    fn record_success(&self, addr: &str, client: ServeClient) {
        let mut peers = self.peers.lock().expect("peer table lock");
        let state = peers.entry(addr.to_string()).or_default();
        state.consecutive_failures = 0;
        state.tripped_until = None;
        if state.idle.len() < POOL_CAP {
            state.idle.push(client);
        }
    }

    fn record_failure(&self, addr: &str, metrics: &Metrics) {
        let mut peers = self.peers.lock().expect("peer table lock");
        let state = peers.entry(addr.to_string()).or_default();
        state.consecutive_failures += 1;
        if state.consecutive_failures >= TRIP_THRESHOLD && state.tripped_until.is_none() {
            state.tripped_until = Some(Instant::now() + self.trip_cooldown);
            state.trips += 1;
            metrics.breaker_trips.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Takes one retry token if available, refilling lazily.
    fn take_token(&self, metrics: &Metrics) -> bool {
        let mut budget = self.budget.lock().expect("retry budget lock");
        let now = Instant::now();
        let refill = now.duration_since(budget.last_refill).as_secs_f64() * BUDGET_REFILL_PER_SEC;
        budget.tokens = (budget.tokens + refill).min(f64::from(self.budget_capacity));
        budget.last_refill = now;
        if budget.tokens >= 1.0 {
            budget.tokens -= 1.0;
            metrics.retries_spent.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            metrics.retries_denied.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Jittered exponential backoff for attempt `n` (1-based).
    fn backoff(&self, attempt: u32) -> Duration {
        let mut lcg = self.jitter.lock().expect("jitter lock");
        *lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let jitter = (*lcg >> 33) % BACKOFF_BASE_MS;
        Duration::from_millis(BACKOFF_BASE_MS * 2u64.pow(attempt.saturating_sub(1)) + jitter)
    }

    /// Whether `addr`'s breaker is currently open (calls fail fast).
    /// The liveness heartbeat skips tripped peers — the cooldown probe
    /// path owns them until they answer again.
    pub(crate) fn is_tripped(&self, addr: &str) -> bool {
        let now = Instant::now();
        self.peers
            .lock()
            .expect("peer table lock")
            .get(addr)
            .is_some_and(|state| state.tripped_until.is_some_and(|until| now < until))
    }

    /// Peers whose breaker cooldown has elapsed — candidates for a
    /// background probe.
    pub(crate) fn ready_to_probe(&self) -> Vec<String> {
        let now = Instant::now();
        self.peers
            .lock()
            .expect("peer table lock")
            .iter()
            .filter(|(_, state)| state.tripped_until.is_some_and(|until| now >= until))
            .map(|(addr, _)| addr.clone())
            .collect()
    }

    /// The `status.cluster.peers` object: one entry per peer the
    /// daemon has talked to.
    pub(crate) fn status_json(&self) -> Json {
        let now = Instant::now();
        let mut doc = Json::object();
        let mut peers: Vec<_> = self
            .peers
            .lock()
            .expect("peer table lock")
            .iter()
            .map(|(addr, state)| {
                let tripped = state.tripped_until.is_some_and(|until| now < until);
                (addr.clone(), tripped, state.consecutive_failures, state.trips, state.idle.len())
            })
            .collect();
        peers.sort_by(|a, b| a.0.cmp(&b.0));
        for (addr, tripped, failures, trips, pooled) in peers {
            doc = doc.with(
                &addr,
                Json::object()
                    .with("state", if tripped { "tripped" } else { "ok" })
                    .with("failures", u64::from(failures))
                    .with("trips", trips)
                    .with("pooled", pooled as u64),
            );
        }
        doc
    }

    /// The `status.cluster.retry` object: budget capacity and what is
    /// left of it right now.
    pub(crate) fn retry_json(&self, metrics: &Metrics) -> Json {
        let available = {
            let budget = self.budget.lock().expect("retry budget lock");
            budget.tokens.floor().max(0.0) as u64
        };
        Json::object()
            .with("budget", u64::from(self.budget_capacity))
            .with("available", available)
            .with("spent", metrics.retries_spent.load(Ordering::Relaxed))
            .with("denied", metrics.retries_denied.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(faults: Option<FaultPlan>) -> PeerTable {
        PeerTable::new(Duration::from_millis(200), Duration::from_millis(100), 2, faults)
    }

    /// An address nothing listens on: reserved port 0 never accepts.
    const DEAD: &str = "127.0.0.1:1";

    #[test]
    fn breaker_trips_after_consecutive_failures_and_fast_fails() {
        let metrics = Metrics::default();
        let peers = table(None);
        for _ in 0..TRIP_THRESHOLD {
            let err = peers.call(DEAD, &metrics, false, |_| Ok(())).unwrap_err();
            assert!(!err.is_retryable());
        }
        assert_eq!(metrics.breaker_trips.load(Ordering::Relaxed), 1);
        let err = peers.call(DEAD, &metrics, false, |_| Ok(())).unwrap_err();
        assert!(err.as_io().to_string().contains("breaker open"), "{err}");
        assert_eq!(metrics.breaker_fast_fails.load(Ordering::Relaxed), 1);
        // After the cooldown the next call probes (and fails again,
        // re-tripping).
        std::thread::sleep(Duration::from_millis(120));
        let _ = peers.call(DEAD, &metrics, false, |_| Ok(()));
        assert_eq!(metrics.peer_probes.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.breaker_trips.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn retry_budget_is_spent_then_denied() {
        let metrics = Metrics::default();
        let peers = table(None);
        // One budgeted end-to-end retry against a dead peer spends a
        // token...
        let _ = peers.call(DEAD, &metrics, true, |_| Ok(()));
        assert_eq!(metrics.retries_spent.load(Ordering::Relaxed), 1);
        // ...then drain the bucket directly: capacity 2 leaves one
        // token, and the request after it is denied.
        assert!(peers.take_token(&metrics));
        assert!(!peers.take_token(&metrics), "bucket empty until the lazy refill");
        assert_eq!(metrics.retries_denied.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn fault_deny_is_deterministic_and_counted() {
        let metrics = Metrics::default();
        let plan = FaultPlan::parse("seed=7;deny:*:count=2").unwrap();
        let peers = table(Some(plan.clone()));
        for _ in 0..2 {
            let err = peers.call(DEAD, &metrics, false, |_| Ok(())).unwrap_err();
            assert!(err.as_io().to_string().contains("fault injection"), "{err}");
        }
        assert_eq!(plan.fired(), 2);
        // The window is spent; the next call reaches the (dead) peer
        // and fails with a real dial error instead.
        let err = peers.call(DEAD, &metrics, false, |_| Ok(())).unwrap_err();
        assert!(!err.as_io().to_string().contains("fault injection"), "{err}");
    }

    #[test]
    fn backoff_is_bounded_and_seeded() {
        let peers = table(Some(FaultPlan::parse("seed=9;delay:127.0.0.1:9:ms=1,count=1").unwrap()));
        let replica =
            table(Some(FaultPlan::parse("seed=9;delay:127.0.0.1:9:ms=1,count=1").unwrap()));
        for attempt in 1..=2 {
            let (a, b) = (peers.backoff(attempt), replica.backoff(attempt));
            assert_eq!(a, b, "same seed, same jitter stream");
            let base = BACKOFF_BASE_MS * 2u64.pow(attempt - 1);
            assert!(
                a.as_millis() as u64 >= base && (a.as_millis() as u64) < base + BACKOFF_BASE_MS
            );
        }
    }
}
