//! `rodinia/nw` — `needle_cuda_shared_1`.
//!
//! The anti-diagonal wavefront serializes on `__syncthreads()` between
//! steps, and the baseline lets a single thread walk each diagonal's
//! cells serially — every other warp piles up synchronization stalls.
//! Distributing the diagonal's cells across threads balances the warps
//! (Warp Balance; paper: 1.10× achieved, 1.09× estimated).

use crate::data::ParamBlock;
use crate::dsl::Asm;
use crate::{App, KernelSpec, Params, Stage};
use gpa_arch::LaunchConfig;

/// Builds the nw app entry.
pub fn app() -> App {
    App {
        name: "rodinia/nw",
        kernel: "needle_cuda_shared_1",
        stages: vec![Stage { name: "Warp Balance", optimizer: "GPUWarpBalanceOptimizer" }],
        build,
    }
}

const STEPS: u32 = 16;
const CELLS: u32 = 4;

fn build(variant: usize, p: &Params) -> KernelSpec {
    let balanced = variant >= 1;
    let mut a = Asm::module("nw");
    a.kernel("needle_cuda_shared_1");
    a.line("needle.cu", 120);
    a.global_tid();
    a.i("LOP3.AND R1, R0, 127 {S:4}");
    // Stage the reference row into shared memory.
    a.param_u64(4, 0);
    a.addr(6, 4, 0, 2);
    a.i("LDG.E.32 R8, [R6:R7] {W:B0, S:1}");
    a.i("SHL R9, R1, 2 {S:4}");
    a.i("STS.32 [R9], R8 {WT:[B0], R:B1, S:2}");
    a.i("BAR.SYNC {S:2}");
    a.i("MOV32I R16, 0 {S:1}"); // step
    a.i("MOV32I R22, 0 {S:1}"); // score acc
    a.line("needle.cu", 128);
    a.label("diag_loop");
    // Common per-step work for every thread.
    for _ in 0..8 {
        a.i("FFMA R22, R22, 0.5, 1.0 {S:4}");
    }
    if balanced {
        // Cells spread across threads: thread c handles cell c.
        a.i(format!("ISETP.GE.AND P0, R1, {CELLS} {{S:2}}"));
        a.i("@P0 BRA cells_done {S:5}");
        a.i("IMAD R24, R16, 4, R1 {S:5}");
        a.i("LOP3.AND R24, R24, 127 {S:4}");
        a.i("SHL R25, R24, 2 {S:4}");
        a.i("LDS.32 R26, [R25] {W:B2, S:1}"); // up
        a.i("LDS.32 R27, [R25+0x4] {W:B3, S:1}"); // left
        a.i("IMNMX.GT R28, R26, R27 {WT:[B2,B3], S:4}");
        a.i("IADD R28, R28, 1 {S:4}");
        a.i("STS.32 [R25], R28 {R:B1, S:2}");
        a.label("cells_done");
    } else {
        // Thread 0 walks all the diagonal's cells serially.
        a.i("ISETP.NE.AND P0, R1, 0 {S:2}");
        a.i("@P0 BRA cells_done {S:5}");
        a.i("MOV32I R23, 0 {S:1}"); // cell
        a.label("cell_loop");
        a.i("IMAD R24, R16, 4, R23 {S:5}");
        a.i("LOP3.AND R24, R24, 127 {S:4}");
        a.i("SHL R25, R24, 2 {S:4}");
        a.i("LDS.32 R26, [R25] {W:B2, S:1}");
        a.i("LDS.32 R27, [R25+0x4] {W:B3, S:1}");
        a.i("IMNMX.GT R28, R26, R27 {WT:[B2,B3], S:4}");
        a.i("IADD R28, R28, 1 {S:4}");
        a.i("STS.32 [R25], R28 {R:B1, S:2}");
        a.i("IADD R23, R23, 1 {S:4}");
        a.i(format!("ISETP.LT.AND P2, R23, {CELLS} {{S:2}}"));
        a.i("@P2 BRA cell_loop {S:5}");
        a.label("cells_done");
    }
    a.i("BAR.SYNC {S:2}");
    a.i("IADD R16, R16, 1 {S:4}");
    a.i(format!("ISETP.LT.AND P1, R16, {STEPS} {{S:2}}"));
    a.i("@P1 BRA diag_loop {S:5}");
    // Write back a per-thread value.
    a.i("SHL R29, R1, 2 {S:4}");
    a.i("LDS.32 R30, [R29] {W:B4, S:1}");
    a.param_u64(32, 8);
    a.addr(34, 32, 0, 2);
    a.i("STG.E.32 [R34:R35], R30 {WT:[B4], R:B1, S:2}");
    a.i("EXIT {WT:[B1], S:1}");
    a.endfunc();
    let module = a.build();

    let blocks = p.sms * 4 * p.scale;
    let threads: u32 = 128;
    let n = blocks * threads;
    KernelSpec {
        module,
        entry: "needle_cuda_shared_1".into(),
        launch: LaunchConfig { smem_per_block: 1024, ..LaunchConfig::new(blocks, threads) },
        setup: Box::new(move |gpu| {
            let mut rng = crate::data::rng(0x5057_000B);
            let reference = gpu.global_mut().alloc(4 * n as u64);
            gpu.global_mut()
                .write_bytes(reference, &crate::data::u32_bytes(&mut rng, n as usize, 0, 100));
            let out = gpu.global_mut().alloc(4 * n as u64);
            let mut pb = ParamBlock::new();
            pb.push_u64(reference);
            pb.push_u64(out);
            pb.finish()
        }),
        const_bank1: None,
    }
}
