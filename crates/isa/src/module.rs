//! Modules and functions — the "virtual CUBIN" container.
//!
//! A [`Module`] plays the role of a CUBIN: it holds functions (global
//! kernels and device functions), per-instruction source-line mappings
//! (the product of compiling with `-lineinfo`), and inline stacks. After
//! [`Module::link`], every function has an absolute base address and all
//! symbolic branch/call targets are resolved to absolute PCs; one
//! instruction occupies [`INSTR_BYTES`] bytes.

use crate::instruction::Instruction;
use crate::opcode::Opcode;
use crate::operand::Operand;
use crate::{IsaError, Result};
use std::collections::HashMap;
use std::fmt;

/// Size of one encoded instruction in bytes.
pub const INSTR_BYTES: u64 = 16;

/// Function symbol visibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Visibility {
    /// A `__global__` kernel entry point.
    Global,
    /// A `__device__` function.
    Device,
}

/// A source location: an index into the module's file table plus a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SourceLoc {
    /// Index into [`Module::files`].
    pub file: u16,
    /// 1-based source line.
    pub line: u32,
}

/// One frame of an inline stack: `callee` was inlined at `call_loc`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct InlineFrame {
    /// Name of the inlined function.
    pub callee: String,
    /// Call-site location in the caller.
    pub call_loc: SourceLoc,
}

/// Pending symbolic target recorded by the assembler, resolved at link time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FixupTarget {
    /// A function-local label.
    Label(String),
    /// Another function's entry point.
    Function(String),
}

#[derive(Debug, Clone, PartialEq)]
struct Fixup {
    func: usize,
    instr: usize,
    src_slot: usize,
    target: FixupTarget,
}

/// A function: a named, contiguous run of instructions with line/inline
/// metadata and (after linking) an absolute base address.
///
/// Equality ignores label *names*: after linking, branch targets are
/// absolute PCs and labels are purely cosmetic, so a printed-and-reparsed
/// function compares equal to the original even though the assembler
/// generated fresh label names.
#[derive(Debug, Clone)]
pub struct Function {
    /// Symbol name.
    pub name: String,
    /// Global kernel or device function.
    pub visibility: Visibility,
    /// The instruction stream.
    pub instrs: Vec<Instruction>,
    /// Absolute address of the first instruction (valid after linking).
    pub base: u64,
    /// Per-instruction source location (parallel to `instrs`).
    pub lines: Vec<Option<SourceLoc>>,
    /// Per-instruction inline stack, innermost frame last (parallel to
    /// `instrs`; empty for non-inlined code).
    pub inline_stacks: Vec<Vec<InlineFrame>>,
    /// Label name → instruction index.
    pub labels: HashMap<String, usize>,
}

impl Function {
    /// Creates an empty function.
    pub fn new(name: impl Into<String>, visibility: Visibility) -> Self {
        Function {
            name: name.into(),
            visibility,
            instrs: Vec::new(),
            base: 0,
            lines: Vec::new(),
            inline_stacks: Vec::new(),
            labels: HashMap::new(),
        }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the function has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Absolute PC of instruction `idx`.
    pub fn pc_of(&self, idx: usize) -> u64 {
        self.base + idx as u64 * INSTR_BYTES
    }

    /// Instruction index for an absolute `pc` inside this function.
    pub fn index_of_pc(&self, pc: u64) -> Option<usize> {
        if pc < self.base {
            return None;
        }
        let off = pc - self.base;
        if !off.is_multiple_of(INSTR_BYTES) {
            return None;
        }
        let idx = (off / INSTR_BYTES) as usize;
        (idx < self.instrs.len()).then_some(idx)
    }

    /// End address (one past the last instruction).
    pub fn end(&self) -> u64 {
        self.base + self.instrs.len() as u64 * INSTR_BYTES
    }
}

impl PartialEq for Function {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.visibility == other.visibility
            && self.instrs == other.instrs
            && self.base == other.base
            && self.lines == other.lines
            && self.inline_stacks == other.inline_stacks
    }
}

/// A reference to one instruction inside a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InstrRef {
    /// Function index in [`Module::functions`].
    pub func: usize,
    /// Instruction index within the function.
    pub idx: usize,
}

/// A linked or un-linked collection of functions — the unit GPA analyzes.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Module name (usually the kernel or benchmark name).
    pub name: String,
    /// Architecture tag (`"volta"`).
    pub arch: String,
    /// Source-file table referenced by [`SourceLoc::file`].
    pub files: Vec<String>,
    /// Functions in layout order.
    pub functions: Vec<Function>,
    fixups: Vec<Fixup>,
    linked: bool,
}

impl Module {
    /// Creates an empty module for the Volta-like architecture.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            arch: "volta".into(),
            files: Vec::new(),
            functions: Vec::new(),
            fixups: Vec::new(),
            linked: false,
        }
    }

    /// Whether [`Module::link`] has completed.
    pub fn is_linked(&self) -> bool {
        self.linked
    }

    /// Adds `path` to the file table (deduplicating) and returns its index.
    pub fn add_file(&mut self, path: &str) -> u16 {
        if let Some(i) = self.files.iter().position(|f| f == path) {
            return i as u16;
        }
        self.files.push(path.to_string());
        (self.files.len() - 1) as u16
    }

    /// The path for a file-table index.
    pub fn file(&self, id: u16) -> &str {
        self.files.get(id as usize).map_or("<unknown>", |s| s.as_str())
    }

    /// Adds a function and returns its index.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ModuleError`] on duplicate function names.
    pub fn add_function(&mut self, f: Function) -> Result<usize> {
        if self.functions.iter().any(|g| g.name == f.name) {
            return Err(IsaError::ModuleError(format!("duplicate function `{}`", f.name)));
        }
        self.functions.push(f);
        self.linked = false;
        Ok(self.functions.len() - 1)
    }

    /// Records a symbolic branch/call target to be resolved by
    /// [`Module::link`]. `src_slot` indexes the instruction's `srcs`.
    pub fn add_fixup(&mut self, func: usize, instr: usize, src_slot: usize, target: FixupTarget) {
        self.fixups.push(Fixup { func, instr, src_slot, target });
        self.linked = false;
    }

    /// Assigns base addresses (256-byte aligned, first function at 0x1000)
    /// and resolves all symbolic targets to absolute PCs.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::UnresolvedSymbol`] if a label or function named
    /// by a fixup does not exist.
    pub fn link(&mut self) -> Result<()> {
        let mut addr: u64 = 0x1000;
        for f in &mut self.functions {
            f.base = addr;
            addr = (addr + f.instrs.len() as u64 * INSTR_BYTES + 255) & !255;
        }
        let fixups = std::mem::take(&mut self.fixups);
        for fx in &fixups {
            let target_pc = match &fx.target {
                FixupTarget::Label(name) => {
                    let f = &self.functions[fx.func];
                    let idx = *f.labels.get(name).ok_or_else(|| {
                        IsaError::UnresolvedSymbol(format!("label `{name}` in `{}`", f.name))
                    })?;
                    f.pc_of(idx)
                }
                FixupTarget::Function(name) => self
                    .functions
                    .iter()
                    .find(|f| &f.name == name)
                    .map(|f| f.base)
                    .ok_or_else(|| IsaError::UnresolvedSymbol(name.clone()))?,
            };
            let instr = &mut self.functions[fx.func].instrs[fx.instr];
            if fx.src_slot >= instr.srcs.len() {
                return Err(IsaError::ModuleError(format!(
                    "fixup slot {} out of range in `{}`",
                    fx.src_slot, self.functions[fx.func].name
                )));
            }
            instr.srcs[fx.src_slot] = Operand::Imm(target_pc as i64);
        }
        self.linked = true;
        Ok(())
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Index of a function by name.
    pub fn function_index(&self, name: &str) -> Option<usize> {
        self.functions.iter().position(|f| f.name == name)
    }

    /// Kernel entry points (functions with global visibility).
    pub fn kernels(&self) -> impl Iterator<Item = &Function> {
        self.functions.iter().filter(|f| f.visibility == Visibility::Global)
    }

    /// Locates the instruction at an absolute PC.
    pub fn locate(&self, pc: u64) -> Option<InstrRef> {
        self.functions
            .iter()
            .enumerate()
            .find_map(|(fi, f)| f.index_of_pc(pc).map(|idx| InstrRef { func: fi, idx }))
    }

    /// The instruction at an absolute PC.
    pub fn instruction_at(&self, pc: u64) -> Option<&Instruction> {
        self.locate(pc).map(|r| &self.functions[r.func].instrs[r.idx])
    }

    /// Total instruction count across all functions.
    pub fn instr_count(&self) -> usize {
        self.functions.iter().map(|f| f.instrs.len()).sum()
    }

    /// Writes the module back out as assembly text (parseable by
    /// [`crate::parse_module`]).
    pub fn write_asm(&self) -> String {
        let mut out = String::new();
        use fmt::Write;
        writeln!(out, ".module {}", self.name).unwrap();
        writeln!(out, ".arch {}", self.arch).unwrap();
        for f in &self.functions {
            let kw = match f.visibility {
                Visibility::Global => ".kernel",
                Visibility::Device => ".func",
            };
            writeln!(out, "{kw} {}", f.name).unwrap();
            // Collect branch-target PCs that land inside this function so we
            // can emit labels instead of raw addresses.
            let mut target_labels: HashMap<usize, String> = HashMap::new();
            for i in &f.instrs {
                if let Some(t) = i.branch_target() {
                    if let Some(idx) = f.index_of_pc(t) {
                        let n = target_labels.len();
                        target_labels.entry(idx).or_insert_with(|| format!("L{n}"));
                    }
                }
            }
            let mut cur_line: Option<SourceLoc> = None;
            let mut cur_stack: Vec<InlineFrame> = Vec::new();
            for (idx, instr) in f.instrs.iter().enumerate() {
                let loc = f.lines.get(idx).copied().flatten();
                if loc != cur_line {
                    if let Some(l) = loc {
                        writeln!(out, ".line {} {}", self.file(l.file), l.line).unwrap();
                    }
                    cur_line = loc;
                }
                let stack = f.inline_stacks.get(idx).cloned().unwrap_or_default();
                if stack != cur_stack {
                    // Pop frames that no longer apply, push new ones.
                    let common =
                        cur_stack.iter().zip(stack.iter()).take_while(|(a, b)| a == b).count();
                    for _ in common..cur_stack.len() {
                        writeln!(out, ".inline pop").unwrap();
                    }
                    for fr in &stack[common..] {
                        writeln!(
                            out,
                            ".inline push {} {} {}",
                            fr.callee,
                            self.file(fr.call_loc.file),
                            fr.call_loc.line
                        )
                        .unwrap();
                    }
                    cur_stack = stack;
                }
                if let Some(lbl) = target_labels.get(&idx) {
                    writeln!(out, "{lbl}:").unwrap();
                }
                // Substitute symbolic targets back in for readability.
                let mut text = instr.to_string();
                if let Some(t) = instr.branch_target() {
                    let sym = if instr.opcode == Opcode::Cal {
                        self.functions.iter().find(|g| g.base == t).map(|g| g.name.clone())
                    } else {
                        f.index_of_pc(t).and_then(|i| target_labels.get(&i).cloned())
                    };
                    if let Some(sym) = sym {
                        text = text.replace(&Operand::Imm(t as i64).to_string(), &sym);
                    }
                }
                writeln!(out, "  {text}").unwrap();
            }
            for _ in 0..cur_stack.len() {
                writeln!(out, ".inline pop").unwrap();
            }
            writeln!(out, ".endfunc").unwrap();
        }
        out
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.write_asm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::Opcode;

    fn simple_module() -> Module {
        let mut m = Module::new("t");
        let mut f = Function::new("k", Visibility::Global);
        f.instrs.push(Instruction::new(Opcode::Nop, vec![], vec![]));
        f.instrs.push(Instruction::new(Opcode::Bra, vec![], vec![Operand::Imm(0)]));
        f.instrs.push(Instruction::new(Opcode::Exit, vec![], vec![]));
        f.labels.insert("top".into(), 0);
        f.lines = vec![None; 3];
        f.inline_stacks = vec![Vec::new(); 3];
        let fi = m.add_function(f).unwrap();
        m.add_fixup(fi, 1, 0, FixupTarget::Label("top".into()));
        m
    }

    #[test]
    fn link_resolves_labels_and_addresses() {
        let mut m = simple_module();
        m.link().unwrap();
        assert!(m.is_linked());
        let f = m.function("k").unwrap();
        assert_eq!(f.base, 0x1000);
        assert_eq!(f.instrs[1].branch_target(), Some(0x1000));
        assert_eq!(m.locate(0x1010), Some(InstrRef { func: 0, idx: 1 }));
        assert!(m.locate(0x1008).is_none(), "unaligned PC must not resolve");
        assert_eq!(m.instr_count(), 3);
    }

    #[test]
    fn unresolved_symbol_is_an_error() {
        let mut m = simple_module();
        m.add_fixup(0, 1, 0, FixupTarget::Function("missing".into()));
        assert!(matches!(m.link(), Err(IsaError::UnresolvedSymbol(_))));
    }

    #[test]
    fn duplicate_function_rejected() {
        let mut m = simple_module();
        let f = Function::new("k", Visibility::Device);
        assert!(m.add_function(f).is_err());
    }
}
