//! Consistent hashing over the cluster's members: which shard owns
//! which content address.
//!
//! Every member is projected onto a `u64` ring at [`VNODES`] points
//! (virtual nodes smooth the keyspace split); a key belongs to the
//! member owning the first point at or clockwise-after the key's hash.
//! All shards build the ring from the same sorted member list, so they
//! agree on ownership without any coordination traffic — and because
//! the hash is over member *addresses* and content *addresses* only,
//! adding a member remaps just the slices it takes over (the classic
//! consistent-hashing property, pinned by a test below).
//!
//! Replication pairs with ownership through [`Ring::successor`]: a
//! member's hot store entries are copied to the next member of the
//! canonical (sorted) roster, so a restarted shard can warm its cache
//! from one well-known neighbor instead of only its disk tier. Roster
//! order — not point order — keeps the replication graph a single
//! cycle covering every member (clockwise-from-first-point can strand
//! a member with no replica source when vnode points interleave
//! unluckily).

use crate::store::fingerprint;

/// Virtual nodes per member. 64 points keeps the largest/smallest
/// ownership share within a small factor for realistic cluster sizes
/// while the ring stays a few hundred entries — binary-searched, so
/// lookup cost is irrelevant next to a single request parse.
pub const VNODES: usize = 64;

/// The hash ring: sorted points mapping to member indices.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point, member index)` sorted by point.
    points: Vec<(u64, usize)>,
    /// Member addresses, sorted and deduplicated — the canonical
    /// cluster roster every shard must share.
    members: Vec<String>,
}

impl Ring {
    /// Builds the ring over the given member addresses. Members are
    /// sorted and deduplicated first, so every shard that was handed
    /// the same roster (in any order) builds the identical ring.
    pub fn new(members: impl IntoIterator<Item = String>) -> Ring {
        let mut members: Vec<String> = members.into_iter().collect();
        members.sort_unstable();
        members.dedup();
        let mut points = Vec::with_capacity(members.len() * VNODES);
        for (idx, member) in members.iter().enumerate() {
            for vnode in 0..VNODES {
                points.push((fingerprint(&format!("{member}#{vnode}")), idx));
            }
        }
        // Ties (two members hashing a vnode to the same point) resolve
        // by member index, i.e. lexicographic address order — still
        // deterministic on every shard.
        points.sort_unstable();
        Ring { points, members }
    }

    /// The canonical (sorted, deduplicated) member roster.
    pub fn members(&self) -> &[String] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member owning `key`: the first ring point at or after the
    /// key's hash, wrapping at the top of the `u64` space.
    ///
    /// # Panics
    ///
    /// On an empty ring (a cluster has at least its own shard).
    pub fn owner(&self, key: &str) -> &str {
        assert!(!self.points.is_empty(), "ownership query on an empty ring");
        let hash = fingerprint(key);
        let idx = match self.points.binary_search(&(hash, 0)) {
            Ok(i) => i,
            Err(i) if i == self.points.len() => 0, // wrap past the top
            Err(i) => i,
        };
        &self.members[self.points[idx].1]
    }

    /// `member`'s replication target: the next member of the canonical
    /// sorted roster, wrapping at the end — one cycle through every
    /// member, so each shard has exactly one replica source and one
    /// target. `None` for unknown members and single-member rings
    /// (nothing to replicate to).
    pub fn successor(&self, member: &str) -> Option<&str> {
        let me = self.members.iter().position(|m| m == member)?;
        if self.members.len() < 2 {
            return None;
        }
        Some(self.members[(me + 1) % self.members.len()].as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("analyze\0app-{i}\00\0s1")).collect()
    }

    #[test]
    fn every_key_has_exactly_one_owner_and_all_members_own_something() {
        let members = ["127.0.0.1:7071", "127.0.0.1:7072", "127.0.0.1:7073"];
        let ring = Ring::new(members.iter().map(ToString::to_string));
        let mut counts = std::collections::HashMap::new();
        for key in keys(1000) {
            *counts.entry(ring.owner(&key).to_string()).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), members.len(), "every member owns a slice: {counts:?}");
        for (member, count) in &counts {
            assert!(*count >= 100, "{member} owns a degenerate share: {counts:?}");
        }
    }

    #[test]
    fn roster_order_and_duplicates_do_not_change_the_ring() {
        let a = Ring::new(["b".to_string(), "a".to_string(), "c".to_string()]);
        let b = Ring::new(["c".to_string(), "a".to_string(), "b".to_string(), "a".to_string()]);
        assert_eq!(a.members(), b.members());
        for key in keys(200) {
            assert_eq!(a.owner(&key), b.owner(&key));
        }
    }

    #[test]
    fn adding_a_member_only_remaps_keys_onto_the_new_member() {
        let old = Ring::new(["a".to_string(), "b".to_string(), "c".to_string()]);
        let new = Ring::new(["a".to_string(), "b".to_string(), "c".to_string(), "d".to_string()]);
        let (mut moved, mut stayed) = (0usize, 0usize);
        for key in keys(1000) {
            let (before, after) = (old.owner(&key), new.owner(&key));
            if before == after {
                stayed += 1;
            } else {
                assert_eq!(after, "d", "a remapped key may only move to the new member");
                moved += 1;
            }
        }
        assert!(moved > 0, "the new member took over some keys");
        assert!(stayed > moved, "most keys did not move");
    }

    #[test]
    fn successor_is_a_distinct_member_and_covers_the_ring() {
        let ring = Ring::new(["a".to_string(), "b".to_string(), "c".to_string()]);
        for member in ring.members() {
            let succ = ring.successor(member).expect("multi-member rings have successors");
            assert_ne!(succ, member);
        }
        // Following successors visits every member (the replication
        // graph is one cycle, so no shard is left without a replica
        // source).
        let mut seen = std::collections::HashSet::new();
        let mut at = "a";
        for _ in 0..ring.len() {
            seen.insert(at);
            at = ring.successor(at).unwrap();
        }
        assert_eq!(seen.len(), ring.len());
    }

    #[test]
    fn degenerate_rings() {
        let solo = Ring::new(["only".to_string()]);
        assert_eq!(solo.owner("anything"), "only");
        assert!(solo.successor("only").is_none(), "nobody to replicate to");
        assert!(solo.successor("stranger").is_none());
        assert!(!solo.is_empty());
        assert!(Ring::new(std::iter::empty()).is_empty());
    }
}
