//! Timed memory-hierarchy servers ([`gpa_arch::MemModel::Hierarchy`]).
//!
//! The flat model charges each memory instruction a fixed per-space
//! latency; nothing in the machine can be *full*. This module adds the
//! structural half of a memory subsystem: a [`TimedServer`] is a bounded
//! pool of in-flight requests ordered by completion time, and [`SmHier`]
//! bundles the per-SM instances (L1 tag array, MSHR file, L2 request
//! queue) that the issue path consults.
//!
//! The design constraint is the event core's bound validity: occupancy
//! may only *rise* from new issues (which happen under the scheduler's
//! eye) and *fall* at completion times that were fixed at admission.
//! `clear_time` is therefore a pure prefix scan over frozen state — the
//! same shape as the LSU `throttle_clear_time` — so cached
//! `sched_next_ready` bounds stay valid lower bounds and dense vs. event
//! scheduling stays byte-identical with the hierarchy enabled.

use crate::mem::DirectCache;
use gpa_arch::HierarchyConfig;

/// A bounded pool of in-flight requests, each occupying `n` slots until
/// a completion time fixed at admission.
#[derive(Debug, Clone)]
pub struct TimedServer {
    /// In-flight entries `(done_at, slots)`, sorted by completion time.
    occ: Vec<(u64, u32)>,
    /// Total occupied slots (sum of the `slots` fields).
    count: u32,
    /// Slot capacity; at or above it the server back-pressures issue.
    capacity: u32,
    /// Earliest completion among `occ` (`u64::MAX` when empty) so the
    /// per-cycle retire sweep is a cheap comparison in the common case.
    next_done: u64,
}

impl TimedServer {
    /// An empty server with `capacity` slots.
    pub fn new(capacity: u32) -> Self {
        TimedServer { occ: Vec::new(), count: 0, capacity, next_done: u64::MAX }
    }

    /// Occupied slots.
    pub fn occupancy(&self) -> u32 {
        self.count
    }

    /// Whether admission is currently blocked.
    pub fn is_full(&self) -> bool {
        self.count >= self.capacity
    }

    /// Releases every entry whose completion time has passed. Occupancy
    /// after this call is a pure function of (admission history, `now`),
    /// which is what makes dense and event stepping agree at jump targets.
    pub fn retire(&mut self, now: u64) {
        if self.next_done > now {
            return;
        }
        let mut next = u64::MAX;
        let count = &mut self.count;
        self.occ.retain(|&(done, n)| {
            if done <= now {
                *count -= n;
                false
            } else {
                next = next.min(done);
                true
            }
        });
        self.next_done = next;
    }

    /// Admits `n` slots completing at `done_at` (sorted insert, so
    /// [`TimedServer::clear_time`] stays a prefix scan). Admission is
    /// allowed while full — the *next* request is what stalls.
    pub fn admit(&mut self, done_at: u64, n: u32) {
        if n == 0 {
            return;
        }
        let pos = self.occ.partition_point(|&(d, _)| d <= done_at);
        self.occ.insert(pos, (done_at, n));
        self.count += n;
        self.next_done = self.next_done.min(done_at);
    }

    /// Earliest cycle occupancy drops below capacity assuming no new
    /// admissions (frozen machine): 0 when not full, else the completion
    /// time of the prefix that frees enough slots.
    pub fn clear_time(&self) -> u64 {
        if !self.is_full() {
            return 0;
        }
        let mut count = self.count;
        for &(done, n) in &self.occ {
            count -= n;
            if count < self.capacity {
                return done;
            }
        }
        u64::MAX
    }
}

/// Per-SM memory-hierarchy state: the L1 data-cache tag array plus the
/// two bounded servers whose fullness back-pressures issue (MSHR file,
/// this SM's share of the L2 request queue).
#[derive(Debug, Clone)]
pub struct SmHier {
    /// The hierarchy knobs this SM was built with.
    pub cfg: HierarchyConfig,
    /// Per-SM L1 data cache (direct-mapped tag array, fills on miss).
    pub l1: DirectCache,
    /// Miss-status holding registers: one slot per in-flight L1 miss.
    pub mshr: TimedServer,
    /// This SM's share of the L2 request queue.
    pub l2q: TimedServer,
}

impl SmHier {
    /// Fresh per-SM state for one launch.
    pub fn new(cfg: &HierarchyConfig) -> Self {
        SmHier {
            cfg: cfg.clone(),
            l1: DirectCache::new(cfg.l1_size, cfg.l1_line),
            mshr: TimedServer::new(cfg.mshr_capacity),
            l2q: TimedServer::new(cfg.l2_queue_capacity),
        }
    }

    /// Retires both servers up to `now` (top of every SM step).
    pub fn retire(&mut self, now: u64) {
        self.mshr.retire(now);
        self.l2q.retire(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_and_retirement() {
        let mut s = TimedServer::new(4);
        assert!(!s.is_full());
        assert_eq!(s.clear_time(), 0);
        s.admit(10, 3);
        s.admit(5, 1);
        assert_eq!(s.occupancy(), 4);
        assert!(s.is_full());
        // The earliest completion that frees a slot is cycle 5.
        assert_eq!(s.clear_time(), 5);
        s.retire(4);
        assert!(s.is_full(), "nothing completes before cycle 5");
        s.retire(5);
        assert_eq!(s.occupancy(), 3);
        assert!(!s.is_full());
        s.retire(100);
        assert_eq!(s.occupancy(), 0);
    }

    #[test]
    fn clear_time_scans_past_insufficient_prefixes() {
        let mut s = TimedServer::new(2);
        s.admit(7, 1);
        s.admit(9, 1);
        s.admit(3, 0); // no-op
        assert_eq!(s.occupancy(), 2);
        // Freeing one slot at cycle 7 already drops below capacity.
        assert_eq!(s.clear_time(), 7);
        s.admit(8, 2);
        // Now 4 occupied with capacity 2: freeing at 7 leaves 3, at 8
        // leaves 1 < 2.
        assert_eq!(s.clear_time(), 8);
    }

    #[test]
    fn retirement_is_a_function_of_now_not_of_step_count() {
        // Dense stepping (retire every cycle) and event stepping (retire
        // only at jump targets) must observe identical occupancy.
        let mut dense = TimedServer::new(8);
        let mut event = TimedServer::new(8);
        for s in [&mut dense, &mut event] {
            s.admit(3, 2);
            s.admit(11, 1);
            s.admit(20, 4);
        }
        for c in 0..=15u64 {
            dense.retire(c);
        }
        event.retire(15);
        assert_eq!(dense.occupancy(), event.occupancy());
        assert_eq!(dense.clear_time(), event.clear_time());
    }

    #[test]
    fn sm_hier_builds_from_config() {
        let cfg = HierarchyConfig::default();
        let mut h = SmHier::new(&cfg);
        assert!(!h.mshr.is_full());
        assert!(!h.l2q.is_full());
        assert!(!h.l1.access(0), "cold cache misses");
        assert!(h.l1.access(0), "fills on miss");
        h.retire(0);
    }
}
