//! GPA's dynamic analyzer — the paper's primary contribution.
//!
//! Given a PC-sampling profile ([`gpa_sampling::KernelProfile`]) and the
//! static analysis of the kernel's module ([`gpa_structure`], [`gpa_cfg`],
//! [`gpa_arch`]), this crate produces the performance advice report:
//!
//! 1. **Instruction blamer** ([`blamer`]): backward slicing over def–use
//!    chains extended with *virtual barrier registers* and
//!    *predicate-cover* search; dependency-graph construction; three
//!    cold-edge pruning rules (opcode, dominator, latency based); stall
//!    apportioning by Eq. 1; and Figure 5's detailed stall
//!    sub-classification.
//! 2. **Performance optimizers** ([`optimizers`]): the Table 2 catalog —
//!    six stall-elimination, three latency-hiding, and two parallel
//!    optimizers, each matching its inefficiency pattern against the
//!    blamed stalls and program structure.
//! 3. **Performance estimators** ([`estimators`]): `Se = T/(T−M)`
//!    (Eq. 2), scope-aware latency hiding `Sh = T/(T−min(ΣA, M_L))`
//!    (Eqs. 4–5, with Theorem 5.1's 2× bound), and the parallel model of
//!    Eqs. 6–10.
//! 4. **Advisor and report** ([`advisor`], [`report`]): ranks optimizers
//!    by estimated speedup and renders the Figure 8 style advice text.

pub mod advisor;
pub mod blamer;
pub mod estimators;
pub mod optimizers;
pub mod report;
pub mod schema;

pub use advisor::{
    AdviceItem, AdviceReport, AdviceRequest, Advisor, AdvisorBuilder, AnalysisCtx, EstimatorInputs,
    HotspotReport, LocationReport, RegionReport, SCHEMA_VERSION,
};
pub use blamer::{
    BlamedEdge, DepEdge, DepGraph, DetailedReason, FunctionBlame, ModuleBlame, PruneRule,
};
pub use optimizers::{
    Hint, HintKind, Hotspot, MatchResult, Optimizer, OptimizerCategory, OptimizerId,
    OptimizerRegistry,
};
