//! The paper's hotspot walkthrough (§2.3 and Table 3): profile the
//! baseline `calculate_temp`, read GPA's advice (the float→double
//! conversion chain), apply the suggested fix, and measure the speedup.
//!
//! ```sh
//! cargo run --release --example hotspot_advisor
//! ```

use gpa::core::{report, OptimizerId};
use gpa::pipeline::{AnalysisJob, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::full();

    // Profile the baseline (variant 0: the `2.0` double constant).
    let run = session.run_one(&AnalysisJob::new("rodinia/hotspot", 0))?;
    println!("baseline: {} cycles\n", run.cycles);
    print!("{}", report::render(&run.report, 2));

    // Apply the suggestion (variant 1: the constant typed `2.0f`).
    let opt_cycles = session.time_one(&AnalysisJob::new("rodinia/hotspot", 1))?;
    let achieved = run.cycles as f64 / opt_cycles as f64;
    let estimated =
        run.report.item(OptimizerId::StrengthReduction).map_or(1.0, |i| i.estimated_speedup);
    println!("optimized: {opt_cycles} cycles");
    println!("achieved speedup {achieved:.2}x, GPA estimated {estimated:.2}x");
    println!("(paper: 1.15x achieved, 1.10x estimated)");
    Ok(())
}
