//! Functional (value-level) execution of instructions.
//!
//! Execution happens lane-wise at issue time: values land in registers
//! immediately while the *timing* layer (scoreboards, barriers) decides
//! when consumers may observe them. This keeps functional correctness
//! independent of the timing model.

use crate::mem::{ConstMem, GlobalMem};
use crate::warp::{DivEntry, WarpState, WARP_LANES};
use crate::{Result, SimError};
use gpa_isa::{
    Instruction, MemSpace, Modifier, Opcode, Operand, Register, SpecialReg, INSTR_BYTES,
};

/// Shared-state view handed to the executor for one instruction.
pub struct ExecCtx<'a> {
    /// Device global memory.
    pub global: &'a mut GlobalMem,
    /// The executing block's shared memory.
    pub smem: &'a mut Vec<u8>,
    /// Constant banks.
    pub consts: &'a ConstMem,
    /// Block id of the executing block.
    pub block_id: u32,
    /// Grid size in blocks.
    pub grid_blocks: u32,
    /// Threads per block.
    pub block_threads: u32,
}

/// Control-flow outcome of one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Fall through to the next instruction.
    Next,
    /// Redirect to an absolute PC (taken branch / divergence).
    Jump(u64),
    /// The warp finished.
    Exit,
    /// Park at a block barrier (PC already advanced past it).
    Sync,
    /// Call: push the return address and jump.
    Call(u64),
    /// Return to the call stack's top.
    Ret,
}

/// The memory traffic of one issued instruction, for the timing model.
#[derive(Debug, Clone)]
pub struct MemAccess {
    /// Which space was touched.
    pub space: MemSpace,
    /// Per-lane byte addresses (only executing lanes).
    pub addrs: Vec<u64>,
    /// Whether this was a store.
    pub store: bool,
}

/// Result of functionally executing one instruction.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// Where control flow goes.
    pub outcome: Outcome,
    /// Memory traffic, if any.
    pub mem: Option<MemAccess>,
}

fn fault(pc: u64, message: impl Into<String>) -> SimError {
    SimError::Fault { pc, message: message.into() }
}

/// A source operand resolved once per instruction: lane-invariant values
/// (immediates, constant-bank reads) are computed up front so the hot
/// per-lane loops only touch the register file.
#[derive(Clone, Copy)]
enum Src {
    /// Lane-invariant 32-bit value.
    Val(u32),
    /// Lane-invariant 64-bit value.
    Val64(u64),
    /// Per-lane register read (zero-extended in 64-bit contexts).
    Reg(Register),
    /// Per-lane register-pair read (low half in 32-bit contexts).
    Pair(Register),
    /// Per-lane special-register read.
    SReg(SpecialReg),
}

/// Resolves an operand for 32-bit lane reads.
#[inline]
fn resolve32(w: &WarpState, op: &Operand, ctx: &ExecCtx) -> Result<Src> {
    Ok(match *op {
        Operand::Reg(r) => Src::Reg(r),
        Operand::Imm(v) => Src::Val(v as i32 as u32),
        Operand::FImm(v) => Src::Val((v as f32).to_bits()),
        Operand::CMem { bank, offset } => Src::Val(ctx.consts.read_u32(bank, offset as u32)),
        Operand::SReg(s) => Src::SReg(s),
        Operand::RegPair(r) => Src::Pair(r), // low half
        _ => return Err(fault(w.pc, format!("operand {op:?} is not a 32-bit source"))),
    })
}

/// Resolves an operand for 64-bit lane reads.
#[inline]
fn resolve64(w: &WarpState, op: &Operand, ctx: &ExecCtx) -> Result<Src> {
    Ok(match *op {
        Operand::RegPair(r) => Src::Pair(r),
        Operand::Reg(r) => Src::Reg(r),
        Operand::Imm(v) => Src::Val64(v as u64),
        Operand::FImm(v) => Src::Val64(v.to_bits()),
        Operand::CMem { bank, offset } => Src::Val64(ctx.consts.read_u64(bank, offset as u32)),
        _ => return Err(fault(w.pc, format!("operand {op:?} is not a 64-bit source"))),
    })
}

/// Reads a resolved 32-bit source for one lane.
#[inline]
fn get32(w: &WarpState, lane: usize, s: Src, ctx: &ExecCtx) -> u32 {
    match s {
        Src::Val(v) => v,
        Src::Val64(v) => v as u32,
        Src::Reg(r) | Src::Pair(r) => w.read_reg(lane, r),
        Src::SReg(sr) => w.special(lane, sr, ctx.block_id, ctx.grid_blocks, ctx.block_threads),
    }
}

/// Reads a resolved 64-bit source for one lane.
#[inline]
fn get64(w: &WarpState, lane: usize, s: Src, ctx: &ExecCtx) -> u64 {
    match s {
        Src::Val(v) => v as u64,
        Src::Val64(v) => v,
        Src::Reg(r) => w.read_reg(lane, r) as u64,
        Src::Pair(r) => w.read_pair(lane, r),
        Src::SReg(sr) => {
            w.special(lane, sr, ctx.block_id, ctx.grid_blocks, ctx.block_threads) as u64
        }
    }
}

/// Lane indices of a fully active warp.
const ALL_LANES: [usize; WARP_LANES] = {
    let mut a = [0usize; WARP_LANES];
    let mut i = 0;
    while i < WARP_LANES {
        a[i] = i;
        i += 1;
    }
    a
};

/// Materializes a resolved 32-bit source into per-lane values: one row
/// copy (or broadcast) per instruction instead of an enum match per lane.
/// Safe because lane writes are strictly lane-local — no instruction
/// observes another lane's same-instruction result through the register
/// file (SHFL snapshots explicitly).
#[inline]
fn fill32(w: &WarpState, s: Src, ctx: &ExecCtx, out: &mut [u32; WARP_LANES]) {
    match s {
        Src::Val(v) => out.fill(v),
        Src::Val64(v) => out.fill(v as u32),
        Src::Reg(r) | Src::Pair(r) => {
            if r.is_zero() {
                out.fill(0);
            } else {
                *out = w.regs[r.index() as usize];
            }
        }
        Src::SReg(sr) => {
            for (l, slot) in out.iter_mut().enumerate() {
                *slot = w.special(l, sr, ctx.block_id, ctx.grid_blocks, ctx.block_threads);
            }
        }
    }
}

/// Materializes a resolved 64-bit source into per-lane values.
#[inline]
fn fill64(w: &WarpState, s: Src, ctx: &ExecCtx, out: &mut [u64; WARP_LANES]) {
    match s {
        Src::Val(v) => out.fill(v as u64),
        Src::Val64(v) => out.fill(v),
        Src::Reg(r) => {
            for (l, slot) in out.iter_mut().enumerate() {
                *slot = w.read_reg(l, r) as u64;
            }
        }
        Src::Pair(r) => {
            for (l, slot) in out.iter_mut().enumerate() {
                *slot = w.read_pair(l, r);
            }
        }
        Src::SReg(sr) => {
            for (l, slot) in out.iter_mut().enumerate() {
                *slot = w.special(l, sr, ctx.block_id, ctx.grid_blocks, ctx.block_threads) as u64;
            }
        }
    }
}

/// Writes per-lane results to a destination register for the given lanes.
#[inline]
fn store32(w: &mut WarpState, d: Register, lanes: &[usize], vals: &[u32; WARP_LANES]) {
    if d.is_zero() {
        return;
    }
    let row = &mut w.regs[d.index() as usize];
    for &l in lanes {
        row[l] = vals[l];
    }
}

/// Writes per-lane results to a destination register pair.
#[inline]
fn store64(w: &mut WarpState, d: Register, lanes: &[usize], vals: &[u64; WARP_LANES]) {
    for &l in lanes {
        w.write_pair(l, d, vals[l]);
    }
}

/// Unary 32-bit lane op over materialized sources.
#[inline]
fn un32(
    w: &mut WarpState,
    d: Register,
    lanes: &[usize],
    sa: Src,
    ctx: &ExecCtx,
    f: impl Fn(u32) -> u32,
) {
    let mut a = [0u32; WARP_LANES];
    fill32(w, sa, ctx, &mut a);
    let mut o = [0u32; WARP_LANES];
    for &l in lanes {
        o[l] = f(a[l]);
    }
    store32(w, d, lanes, &o);
}

/// Binary 32-bit lane op over materialized sources.
#[inline]
fn bin32(
    w: &mut WarpState,
    d: Register,
    lanes: &[usize],
    sa: Src,
    sb: Src,
    ctx: &ExecCtx,
    f: impl Fn(u32, u32) -> u32,
) {
    let mut a = [0u32; WARP_LANES];
    let mut b = [0u32; WARP_LANES];
    fill32(w, sa, ctx, &mut a);
    fill32(w, sb, ctx, &mut b);
    let mut o = [0u32; WARP_LANES];
    for &l in lanes {
        o[l] = f(a[l], b[l]);
    }
    store32(w, d, lanes, &o);
}

/// Ternary 32-bit lane op over materialized sources.
#[inline]
#[allow(clippy::too_many_arguments)]
fn tri32(
    w: &mut WarpState,
    d: Register,
    lanes: &[usize],
    sa: Src,
    sb: Src,
    sc: Src,
    ctx: &ExecCtx,
    f: impl Fn(u32, u32, u32) -> u32,
) {
    let mut a = [0u32; WARP_LANES];
    let mut b = [0u32; WARP_LANES];
    let mut c = [0u32; WARP_LANES];
    fill32(w, sa, ctx, &mut a);
    fill32(w, sb, ctx, &mut b);
    fill32(w, sc, ctx, &mut c);
    let mut o = [0u32; WARP_LANES];
    for &l in lanes {
        o[l] = f(a[l], b[l], c[l]);
    }
    store32(w, d, lanes, &o);
}

/// Unary 64-bit lane op over materialized sources.
#[inline]
fn un64(
    w: &mut WarpState,
    d: Register,
    lanes: &[usize],
    sa: Src,
    ctx: &ExecCtx,
    f: impl Fn(u64) -> u64,
) {
    let mut a = [0u64; WARP_LANES];
    fill64(w, sa, ctx, &mut a);
    let mut o = [0u64; WARP_LANES];
    for &l in lanes {
        o[l] = f(a[l]);
    }
    store64(w, d, lanes, &o);
}

/// Binary 64-bit lane op over materialized sources.
#[inline]
fn bin64(
    w: &mut WarpState,
    d: Register,
    lanes: &[usize],
    sa: Src,
    sb: Src,
    ctx: &ExecCtx,
    f: impl Fn(u64, u64) -> u64,
) {
    let mut a = [0u64; WARP_LANES];
    let mut b = [0u64; WARP_LANES];
    fill64(w, sa, ctx, &mut a);
    fill64(w, sb, ctx, &mut b);
    let mut o = [0u64; WARP_LANES];
    for &l in lanes {
        o[l] = f(a[l], b[l]);
    }
    store64(w, d, lanes, &o);
}

/// Ternary 64-bit lane op over materialized sources.
#[inline]
#[allow(clippy::too_many_arguments)]
fn tri64(
    w: &mut WarpState,
    d: Register,
    lanes: &[usize],
    sa: Src,
    sb: Src,
    sc: Src,
    ctx: &ExecCtx,
    f: impl Fn(u64, u64, u64) -> u64,
) {
    let mut a = [0u64; WARP_LANES];
    let mut b = [0u64; WARP_LANES];
    let mut c = [0u64; WARP_LANES];
    fill64(w, sa, ctx, &mut a);
    fill64(w, sb, ctx, &mut b);
    fill64(w, sc, ctx, &mut c);
    let mut o = [0u64; WARP_LANES];
    for &l in lanes {
        o[l] = f(a[l], b[l], c[l]);
    }
    store64(w, d, lanes, &o);
}

/// 32→64-bit conversion lane op.
#[inline]
fn cvt32to64(
    w: &mut WarpState,
    d: Register,
    lanes: &[usize],
    sa: Src,
    ctx: &ExecCtx,
    f: impl Fn(u32) -> u64,
) {
    let mut a = [0u32; WARP_LANES];
    fill32(w, sa, ctx, &mut a);
    let mut o = [0u64; WARP_LANES];
    for &l in lanes {
        o[l] = f(a[l]);
    }
    store64(w, d, lanes, &o);
}

/// 64→32-bit conversion lane op.
#[inline]
fn cvt64to32(
    w: &mut WarpState,
    d: Register,
    lanes: &[usize],
    sa: Src,
    ctx: &ExecCtx,
    f: impl Fn(u64) -> u32,
) {
    let mut a = [0u64; WARP_LANES];
    fill64(w, sa, ctx, &mut a);
    let mut o = [0u32; WARP_LANES];
    for &l in lanes {
        o[l] = f(a[l]);
    }
    store32(w, d, lanes, &o);
}

/// Predicate-setting comparison over materialized 32-bit sources.
#[inline]
fn setp32(
    w: &mut WarpState,
    p: gpa_isa::PredReg,
    lanes: &[usize],
    sa: Src,
    sb: Src,
    ctx: &ExecCtx,
    f: impl Fn(u32, u32) -> bool,
) {
    let mut a = [0u32; WARP_LANES];
    let mut b = [0u32; WARP_LANES];
    fill32(w, sa, ctx, &mut a);
    fill32(w, sb, ctx, &mut b);
    for &l in lanes {
        w.write_pred(l, p, f(a[l], b[l]));
    }
}

/// Predicate-setting comparison over materialized 64-bit sources.
#[inline]
fn setp64(
    w: &mut WarpState,
    p: gpa_isa::PredReg,
    lanes: &[usize],
    sa: Src,
    sb: Src,
    ctx: &ExecCtx,
    f: impl Fn(u64, u64) -> bool,
) {
    let mut a = [0u64; WARP_LANES];
    let mut b = [0u64; WARP_LANES];
    fill64(w, sa, ctx, &mut a);
    fill64(w, sb, ctx, &mut b);
    for &l in lanes {
        w.write_pred(l, p, f(a[l], b[l]));
    }
}

fn f32v(bits: u32) -> f32 {
    f32::from_bits(bits)
}

fn dst_reg(instr: &Instruction, pc: u64) -> Result<gpa_isa::Register> {
    match instr.dsts.first() {
        Some(Operand::Reg(r)) | Some(Operand::RegPair(r)) => Ok(*r),
        _ => Err(fault(pc, format!("{} missing register destination", instr.opcode))),
    }
}

fn dst_is_pair(instr: &Instruction) -> bool {
    matches!(instr.dsts.first(), Some(Operand::RegPair(_)))
}

/// A comparison selected once per instruction (the first ordering
/// modifier wins; no modifier means equality, matching `ISETP` defaults).
#[derive(Clone, Copy)]
enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

fn cmp_op(mods: &[Modifier]) -> CmpOp {
    for m in mods {
        return match m {
            Modifier::Lt => CmpOp::Lt,
            Modifier::Le => CmpOp::Le,
            Modifier::Gt => CmpOp::Gt,
            Modifier::Ge => CmpOp::Ge,
            Modifier::Eq => CmpOp::Eq,
            Modifier::Ne => CmpOp::Ne,
            _ => continue,
        };
    }
    CmpOp::Eq
}

#[inline]
fn cmp_apply(op: CmpOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Lt => ord == Less,
        CmpOp::Le => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::Ge => ord != Less,
        CmpOp::Eq => ord == Equal,
        CmpOp::Ne => ord != Equal,
    }
}

fn load_width(instr: &Instruction) -> u64 {
    if instr.mods.contains(&Modifier::Sz64) || dst_is_pair(instr) {
        8
    } else {
        4
    }
}

/// Executes one instruction functionally for all guarded active lanes.
///
/// `reconv_pc` is the precomputed reconvergence point of the instruction's
/// basic block (needed only for divergent predicated branches).
///
/// # Errors
///
/// Returns [`SimError::Fault`] on malformed operands, divergent branches
/// without a reconvergence point, partial-warp `EXIT`, shared-memory
/// overflow, or `RET` with an empty call stack.
pub fn execute(
    w: &mut WarpState,
    instr: &Instruction,
    reconv_pc: Option<u64>,
    ctx: &mut ExecCtx,
) -> Result<ExecResult> {
    let exec_mask = w.active & w.pred_mask(instr.pred);
    let pc = w.pc;

    // Control flow first: BRA handles divergence on its own.
    match instr.opcode {
        Opcode::Bra => {
            let target =
                instr.branch_target().ok_or_else(|| fault(pc, "BRA without resolved target"))?;
            let taken = exec_mask;
            let outcome = if taken == 0 {
                Outcome::Next
            } else if taken == w.active {
                Outcome::Jump(target)
            } else {
                let reconv = reconv_pc
                    .ok_or_else(|| fault(pc, "divergent branch without reconvergence point"))?;
                w.div_stack.push(DivEntry {
                    reconv,
                    else_pc: pc + INSTR_BYTES,
                    else_mask: w.active & !taken,
                    merged: w.active,
                    else_done: false,
                });
                w.active = taken;
                Outcome::Jump(target)
            };
            return Ok(ExecResult { outcome, mem: None });
        }
        Opcode::Exit => {
            if exec_mask != w.active {
                return Err(fault(pc, "partial-warp EXIT is not supported"));
            }
            return Ok(ExecResult { outcome: Outcome::Exit, mem: None });
        }
        Opcode::Cal => {
            let target =
                instr.branch_target().ok_or_else(|| fault(pc, "CAL without resolved target"))?;
            return Ok(ExecResult { outcome: Outcome::Call(target), mem: None });
        }
        Opcode::Ret => {
            return Ok(ExecResult { outcome: Outcome::Ret, mem: None });
        }
        Opcode::Bar => {
            return Ok(ExecResult { outcome: Outcome::Sync, mem: None });
        }
        Opcode::Nop | Opcode::Membar | Opcode::Bssy | Opcode::Bsync => {
            return Ok(ExecResult { outcome: Outcome::Next, mem: None });
        }
        _ => {}
    }

    if exec_mask == 0 {
        // Predicated off for every lane: issues, but no effects.
        return Ok(ExecResult { outcome: Outcome::Next, mem: None });
    }

    let mut mem: Option<MemAccess> = None;
    // Full warps are the common case: reuse a constant lane list and only
    // build one for partial masks.
    let mut lanes_buf = [0usize; WARP_LANES];
    let lanes: &[usize] = if exec_mask == u32::MAX {
        &ALL_LANES
    } else {
        let mut nlanes = 0;
        let mut mask = exec_mask;
        while mask != 0 {
            lanes_buf[nlanes] = mask.trailing_zeros() as usize;
            nlanes += 1;
            mask &= mask - 1;
        }
        &lanes_buf[..nlanes]
    };

    use Opcode::*;
    match instr.opcode {
        Mov | Mov32i | I2i => {
            let d = dst_reg(instr, pc)?;
            if dst_is_pair(instr) {
                let sa = resolve64(w, &instr.srcs[0], ctx)?;
                un64(w, d, lanes, sa, ctx, |a| a);
            } else {
                let sa = resolve32(w, &instr.srcs[0], ctx)?;
                un32(w, d, lanes, sa, ctx, |a| a);
            }
        }
        Iadd => {
            let d = dst_reg(instr, pc)?;
            if dst_is_pair(instr) {
                let sa = resolve64(w, &instr.srcs[0], ctx)?;
                let sb = resolve64(w, &instr.srcs[1], ctx)?;
                bin64(w, d, lanes, sa, sb, ctx, |a, b| a.wrapping_add(b));
            } else {
                let sa = resolve32(w, &instr.srcs[0], ctx)?;
                let sb = resolve32(w, &instr.srcs[1], ctx)?;
                bin32(w, d, lanes, sa, sb, ctx, |a, b| a.wrapping_add(b));
            }
        }
        Iadd3 => {
            let d = dst_reg(instr, pc)?;
            let sa = resolve32(w, &instr.srcs[0], ctx)?;
            let sb = resolve32(w, &instr.srcs[1], ctx)?;
            let sc = resolve32(w, &instr.srcs[2], ctx)?;
            tri32(w, d, lanes, sa, sb, sc, ctx, |a, b, c| a.wrapping_add(b).wrapping_add(c));
        }
        Imad => {
            let d = dst_reg(instr, pc)?;
            let signed = instr.mods.contains(&Modifier::S32);
            if instr.mods.contains(&Modifier::Wide) {
                let sa = resolve32(w, &instr.srcs[0], ctx)?;
                let sb = resolve32(w, &instr.srcs[1], ctx)?;
                let sc = resolve64(w, &instr.srcs[2], ctx)?;
                let mut a = [0u32; WARP_LANES];
                let mut b = [0u32; WARP_LANES];
                let mut c = [0u64; WARP_LANES];
                fill32(w, sa, ctx, &mut a);
                fill32(w, sb, ctx, &mut b);
                fill64(w, sc, ctx, &mut c);
                let mut o = [0u64; WARP_LANES];
                for &l in lanes {
                    let prod = if signed {
                        (a[l] as i32 as i64).wrapping_mul(b[l] as i32 as i64) as u64
                    } else {
                        (a[l] as u64).wrapping_mul(b[l] as u64)
                    };
                    o[l] = prod.wrapping_add(c[l]);
                }
                store64(w, d, lanes, &o);
            } else {
                let sa = resolve32(w, &instr.srcs[0], ctx)?;
                let sb = resolve32(w, &instr.srcs[1], ctx)?;
                let sc = resolve32(w, &instr.srcs[2], ctx)?;
                tri32(w, d, lanes, sa, sb, sc, ctx, |a, b, c| a.wrapping_mul(b).wrapping_add(c));
            }
        }
        Imul => {
            let d = dst_reg(instr, pc)?;
            let sa = resolve32(w, &instr.srcs[0], ctx)?;
            let sb = resolve32(w, &instr.srcs[1], ctx)?;
            bin32(w, d, lanes, sa, sb, ctx, |a, b| a.wrapping_mul(b));
        }
        Isetp => {
            let p = instr.dsts[0]
                .pred()
                .ok_or_else(|| fault(pc, "ISETP needs a predicate destination"))?;
            let sa = resolve32(w, &instr.srcs[0], ctx)?;
            let sb = resolve32(w, &instr.srcs[1], ctx)?;
            let op = cmp_op(&instr.mods);
            let unsigned = instr.mods.contains(&Modifier::U32);
            setp32(w, p, lanes, sa, sb, ctx, |a, b| {
                let ord = if unsigned { a.cmp(&b) } else { (a as i32).cmp(&(b as i32)) };
                cmp_apply(op, ord)
            });
        }
        Lea => {
            let d = dst_reg(instr, pc)?;
            let shift = if instr.srcs.len() > 2 {
                match instr.srcs[2] {
                    Operand::Imm(v) => v as u32 & 63,
                    _ => 0,
                }
            } else {
                0
            };
            if dst_is_pair(instr) {
                let sa = resolve32(w, &instr.srcs[0], ctx)?;
                let sb = resolve64(w, &instr.srcs[1], ctx)?;
                let mut a = [0u32; WARP_LANES];
                let mut b = [0u64; WARP_LANES];
                fill32(w, sa, ctx, &mut a);
                fill64(w, sb, ctx, &mut b);
                let mut o = [0u64; WARP_LANES];
                for &l in lanes {
                    o[l] = b[l].wrapping_add((a[l] as u64) << shift);
                }
                store64(w, d, lanes, &o);
            } else {
                let sa = resolve32(w, &instr.srcs[0], ctx)?;
                let sb = resolve32(w, &instr.srcs[1], ctx)?;
                bin32(w, d, lanes, sa, sb, ctx, |a, b| b.wrapping_add(a << shift));
            }
        }
        Lop3 => {
            let d = dst_reg(instr, pc)?;
            let sa = resolve32(w, &instr.srcs[0], ctx)?;
            let sb = resolve32(w, &instr.srcs[1], ctx)?;
            let or = instr.mods.contains(&Modifier::Or);
            let xor = instr.mods.contains(&Modifier::Xor);
            bin32(w, d, lanes, sa, sb, ctx, |a, b| {
                if or {
                    a | b
                } else if xor {
                    a ^ b
                } else {
                    a & b
                }
            });
        }
        Shl | Shr | Shf => {
            let d = dst_reg(instr, pc)?;
            let right =
                instr.opcode == Shr || (instr.opcode == Shf && instr.mods.contains(&Modifier::R));
            let arith = instr.mods.contains(&Modifier::S32);
            let sa = resolve32(w, &instr.srcs[0], ctx)?;
            let sb = resolve32(w, &instr.srcs[1], ctx)?;
            bin32(w, d, lanes, sa, sb, ctx, |a, s| {
                let s = s & 31;
                if !right {
                    a << s
                } else if arith {
                    ((a as i32) >> s) as u32
                } else {
                    a >> s
                }
            });
        }
        Imnmx => {
            let d = dst_reg(instr, pc)?;
            let take_max = instr.mods.contains(&Modifier::Gt);
            let unsigned = instr.mods.contains(&Modifier::U32);
            let sa = resolve32(w, &instr.srcs[0], ctx)?;
            let sb = resolve32(w, &instr.srcs[1], ctx)?;
            bin32(w, d, lanes, sa, sb, ctx, |a, b| match (unsigned, take_max) {
                (true, true) => a.max(b),
                (true, false) => a.min(b),
                (false, true) => (a as i32).max(b as i32) as u32,
                (false, false) => (a as i32).min(b as i32) as u32,
            });
        }
        Iabs => {
            let d = dst_reg(instr, pc)?;
            let sa = resolve32(w, &instr.srcs[0], ctx)?;
            un32(w, d, lanes, sa, ctx, |a| (a as i32).unsigned_abs());
        }
        Popc => {
            let d = dst_reg(instr, pc)?;
            let sa = resolve32(w, &instr.srcs[0], ctx)?;
            un32(w, d, lanes, sa, ctx, |a| a.count_ones());
        }
        Sel => {
            let d = dst_reg(instr, pc)?;
            let p =
                instr.srcs[2].pred().ok_or_else(|| fault(pc, "SEL needs a predicate source"))?;
            let sa = resolve32(w, &instr.srcs[0], ctx)?;
            let sb = resolve32(w, &instr.srcs[1], ctx)?;
            let mut a = [0u32; WARP_LANES];
            let mut b = [0u32; WARP_LANES];
            fill32(w, sa, ctx, &mut a);
            fill32(w, sb, ctx, &mut b);
            let mut o = [0u32; WARP_LANES];
            for &l in lanes {
                o[l] = if w.read_pred(l, p) { a[l] } else { b[l] };
            }
            store32(w, d, lanes, &o);
        }
        Fadd | Fmul | Ffma | Fmnmx => {
            let d = dst_reg(instr, pc)?;

            let sa = resolve32(w, &instr.srcs[0], ctx)?;
            let sb = resolve32(w, &instr.srcs[1], ctx)?;
            let sc =
                if instr.opcode == Ffma { Some(resolve32(w, &instr.srcs[2], ctx)?) } else { None };
            let take_max = instr.opcode == Fmnmx && instr.mods.contains(&Modifier::Gt);
            for &l in lanes {
                let a = f32v(get32(w, l, sa, ctx));
                let b = f32v(get32(w, l, sb, ctx));
                let v = match instr.opcode {
                    Fadd => a + b,
                    Fmul => a * b,
                    Ffma => {
                        let c = f32v(get32(w, l, sc.expect("resolved above"), ctx));
                        a.mul_add(b, c)
                    }
                    _ => {
                        if take_max {
                            a.max(b)
                        } else {
                            a.min(b)
                        }
                    }
                };
                w.write_reg(l, d, v.to_bits());
            }
        }
        Fsetp => {
            let p = instr.dsts[0]
                .pred()
                .ok_or_else(|| fault(pc, "FSETP needs a predicate destination"))?;
            let sa = resolve32(w, &instr.srcs[0], ctx)?;
            let sb = resolve32(w, &instr.srcs[1], ctx)?;
            let op = cmp_op(&instr.mods);
            setp32(w, p, lanes, sa, sb, ctx, |a, b| {
                let ord = f32v(a).partial_cmp(&f32v(b)).unwrap_or(std::cmp::Ordering::Greater);
                cmp_apply(op, ord)
            });
        }
        Mufu => {
            let d = dst_reg(instr, pc)?;
            let sa = resolve32(w, &instr.srcs[0], ctx)?;
            let func = instr
                .mods
                .iter()
                .find(|m| {
                    matches!(
                        m,
                        Modifier::Rcp
                            | Modifier::Rsq
                            | Modifier::Sqrt
                            | Modifier::Sin
                            | Modifier::Cos
                            | Modifier::Ex2
                            | Modifier::Lg2
                    )
                })
                .ok_or_else(|| fault(pc, "MUFU needs a function modifier"))?;
            un32(w, d, lanes, sa, ctx, |a| {
                let a = f32v(a);
                let v = match func {
                    Modifier::Rcp => 1.0 / a,
                    Modifier::Rsq => 1.0 / a.sqrt(),
                    Modifier::Sqrt => a.sqrt(),
                    Modifier::Sin => a.sin(),
                    Modifier::Cos => a.cos(),
                    Modifier::Ex2 => a.exp2(),
                    _ => a.log2(),
                };
                v.to_bits()
            });
        }
        Dadd | Dmul | Dfma => {
            let d = dst_reg(instr, pc)?;
            let sa = resolve64(w, &instr.srcs[0], ctx)?;
            let sb = resolve64(w, &instr.srcs[1], ctx)?;
            match instr.opcode {
                Dadd => bin64(w, d, lanes, sa, sb, ctx, |a, b| {
                    (f64::from_bits(a) + f64::from_bits(b)).to_bits()
                }),
                Dmul => bin64(w, d, lanes, sa, sb, ctx, |a, b| {
                    (f64::from_bits(a) * f64::from_bits(b)).to_bits()
                }),
                _ => {
                    let sc = resolve64(w, &instr.srcs[2], ctx)?;
                    tri64(w, d, lanes, sa, sb, sc, ctx, |a, b, c| {
                        f64::from_bits(a).mul_add(f64::from_bits(b), f64::from_bits(c)).to_bits()
                    });
                }
            }
        }
        Dsetp => {
            let p = instr.dsts[0]
                .pred()
                .ok_or_else(|| fault(pc, "DSETP needs a predicate destination"))?;
            let sa = resolve64(w, &instr.srcs[0], ctx)?;
            let sb = resolve64(w, &instr.srcs[1], ctx)?;
            let op = cmp_op(&instr.mods);
            setp64(w, p, lanes, sa, sb, ctx, |a, b| {
                let ord = f64::from_bits(a)
                    .partial_cmp(&f64::from_bits(b))
                    .unwrap_or(std::cmp::Ordering::Greater);
                cmp_apply(op, ord)
            });
        }
        F2f => {
            let d = dst_reg(instr, pc)?;
            // Modifier order is [dst, src].
            let to64 = instr.mods.first() == Some(&Modifier::F64);
            if to64 {
                let sa = resolve32(w, &instr.srcs[0], ctx)?;
                cvt32to64(w, d, lanes, sa, ctx, |a| (f32v(a) as f64).to_bits());
            } else {
                let sa = resolve64(w, &instr.srcs[0], ctx)?;
                cvt64to32(w, d, lanes, sa, ctx, |a| (f64::from_bits(a) as f32).to_bits());
            }
        }
        F2i => {
            let d = dst_reg(instr, pc)?;
            let from64 = instr.mods.contains(&Modifier::F64);
            if from64 {
                let sa = resolve64(w, &instr.srcs[0], ctx)?;
                cvt64to32(w, d, lanes, sa, ctx, |a| f64::from_bits(a) as i32 as u32);
            } else {
                let sa = resolve32(w, &instr.srcs[0], ctx)?;
                un32(w, d, lanes, sa, ctx, |a| f32v(a) as i32 as u32);
            }
        }
        I2f => {
            let d = dst_reg(instr, pc)?;
            let to64 = instr.mods.contains(&Modifier::F64);
            let sa = resolve32(w, &instr.srcs[0], ctx)?;
            if to64 {
                cvt32to64(w, d, lanes, sa, ctx, |a| (a as i32 as f64).to_bits());
            } else {
                un32(w, d, lanes, sa, ctx, |a| (a as i32 as f32).to_bits());
            }
        }
        S2r | Cs2r => {
            let d = dst_reg(instr, pc)?;
            let s = match instr.srcs[0] {
                Operand::SReg(s) => s,
                _ => return Err(fault(pc, "S2R needs a special-register source")),
            };
            for &l in lanes {
                let v = w.special(l, s, ctx.block_id, ctx.grid_blocks, ctx.block_threads);
                w.write_reg(l, d, v);
            }
        }
        Shfl => {
            let d = dst_reg(instr, pc)?;
            let src_r = match instr.srcs[0] {
                Operand::Reg(r) => r,
                _ => return Err(fault(pc, "SHFL needs a register source")),
            };
            // Snapshot before writing (source and destination may alias).
            let snapshot =
                if src_r.is_zero() { [0u32; WARP_LANES] } else { w.regs[src_r.index() as usize] };
            let si = resolve32(w, &instr.srcs[1], ctx)?;
            for &l in lanes {
                let idx = (get32(w, l, si, ctx) as usize) % WARP_LANES;
                w.write_reg(l, d, snapshot[idx]);
            }
        }
        Vote => {
            let d = dst_reg(instr, pc)?;
            let p =
                instr.srcs[0].pred().ok_or_else(|| fault(pc, "VOTE needs a predicate source"))?;
            let all_mode = instr.mods.contains(&Modifier::All);
            let votes: Vec<bool> = lanes.iter().map(|&l| w.read_pred(l, p)).collect();
            let agg = if all_mode { votes.iter().all(|&v| v) } else { votes.iter().any(|&v| v) };
            for &l in lanes {
                w.write_reg(l, d, agg as u32);
            }
        }
        Prmt => {
            let d = dst_reg(instr, pc)?;
            let sa = resolve32(w, &instr.srcs[0], ctx)?;
            let sb = resolve32(w, &instr.srcs[1], ctx)?;
            let ss = resolve32(w, &instr.srcs[2], ctx)?;
            tri32(w, d, lanes, sa, sb, ss, ctx, |a, b, sel| {
                let pool = ((b as u64) << 32) | a as u64;
                let mut v = 0u32;
                for i in 0..4 {
                    let s = ((sel >> (4 * i)) & 0x7) as u64;
                    let byte = (pool >> (8 * s)) & 0xFF;
                    v |= (byte as u32) << (8 * i);
                }
                v
            });
        }
        Ldg | Stg | Lds | Sts | Ldl | Stl | Ldc | AtomG | AtomS => {
            mem = Some(memory_op(w, instr, lanes, ctx)?);
        }
        Bra | Exit | Cal | Ret | Bar | Nop | Membar | Bssy | Bsync => unreachable!(),
    }

    Ok(ExecResult { outcome: Outcome::Next, mem })
}

fn memory_op(
    w: &mut WarpState,
    instr: &Instruction,
    lanes: &[usize],
    ctx: &mut ExecCtx,
) -> Result<MemAccess> {
    use Opcode::*;
    let pc = w.pc;
    let space = instr.opcode.mem_space().expect("memory opcode");
    let store = instr.opcode.is_store();
    let width = load_width(instr);
    let mut addrs = Vec::with_capacity(lanes.len());

    // Locate the memory operand and the data operand.
    let mem_op = instr.dsts.iter().chain(instr.srcs.iter()).find_map(|o| match o {
        Operand::Mem(m) => Some(*m),
        _ => None,
    });
    let cmem_op = instr.srcs.iter().find_map(|o| match o {
        Operand::CMem { bank, offset } => Some((*bank, *offset)),
        _ => None,
    });

    match instr.opcode {
        Ldg => {
            let m = mem_op.ok_or_else(|| fault(pc, "load needs a memory operand"))?;
            let d = dst_reg(instr, pc)?;
            // Page-memoized reads: lanes usually share one or two pages.
            let mut rd = ctx.global.reader();
            for &l in lanes {
                let base =
                    if m.wide { w.read_pair(l, m.base) } else { w.read_reg(l, m.base) as u64 };
                let addr = base.wrapping_add(m.offset as i64 as u64);
                addrs.push(addr);
                if width == 8 {
                    let v = rd.read_u64(addr);
                    w.write_pair(l, d, v);
                } else {
                    let v = rd.read_u32(addr);
                    w.write_reg(l, d, v);
                }
            }
        }
        Ldl => {
            let m = mem_op.ok_or_else(|| fault(pc, "load needs a memory operand"))?;
            let d = dst_reg(instr, pc)?;
            for &l in lanes {
                let base =
                    if m.wide { w.read_pair(l, m.base) } else { w.read_reg(l, m.base) as u64 };
                let addr = base.wrapping_add(m.offset as i64 as u64);
                addrs.push(addr);
                let v = read_local(w, l, addr, width, pc)?;
                if width == 8 {
                    w.write_pair(l, d, v);
                } else {
                    w.write_reg(l, d, v as u32);
                }
            }
        }
        Stg | Stl => {
            let m = mem_op.ok_or_else(|| fault(pc, "store needs a memory operand"))?;
            let data = instr
                .srcs
                .iter()
                .find(|o| !matches!(o, Operand::Mem(_)))
                .ok_or_else(|| fault(pc, "store needs a data operand"))?;
            let sdata =
                if width == 8 { resolve64(w, data, ctx)? } else { resolve32(w, data, ctx)? };
            if instr.opcode == Stg {
                // Collect the warp's stores and commit them page-run at a
                // time (stores never feed back into this instruction's
                // register reads, so deferring them is exact).
                let mut b32 = [(0u64, 0u32); WARP_LANES];
                let mut b64 = [(0u64, 0u64); WARP_LANES];
                let mut n = 0;
                for &l in lanes {
                    let base =
                        if m.wide { w.read_pair(l, m.base) } else { w.read_reg(l, m.base) as u64 };
                    let addr = base.wrapping_add(m.offset as i64 as u64);
                    addrs.push(addr);
                    if width == 8 {
                        b64[n] = (addr, get64(w, l, sdata, ctx));
                    } else {
                        b32[n] = (addr, get32(w, l, sdata, ctx));
                    }
                    n += 1;
                }
                if width == 8 {
                    ctx.global.write_batch_u64(&b64[..n]);
                } else {
                    ctx.global.write_batch_u32(&b32[..n]);
                }
            } else {
                for &l in lanes {
                    let base =
                        if m.wide { w.read_pair(l, m.base) } else { w.read_reg(l, m.base) as u64 };
                    let addr = base.wrapping_add(m.offset as i64 as u64);
                    addrs.push(addr);
                    let v: u64 = if width == 8 {
                        get64(w, l, sdata, ctx)
                    } else {
                        get32(w, l, sdata, ctx) as u64
                    };
                    write_local(w, l, addr, v, width, pc)?;
                }
            }
        }
        Lds => {
            let m = mem_op.ok_or_else(|| fault(pc, "LDS needs a memory operand"))?;
            let d = dst_reg(instr, pc)?;
            for &l in lanes {
                let addr = (w.read_reg(l, m.base) as u64).wrapping_add(m.offset as i64 as u64);
                addrs.push(addr);
                let v = read_smem(ctx.smem, addr, width, pc)?;
                if width == 8 {
                    w.write_pair(l, d, v);
                } else {
                    w.write_reg(l, d, v as u32);
                }
            }
        }
        Sts => {
            let m = mem_op.ok_or_else(|| fault(pc, "STS needs a memory operand"))?;
            let data = instr
                .srcs
                .iter()
                .find(|o| !matches!(o, Operand::Mem(_)))
                .ok_or_else(|| fault(pc, "STS needs a data operand"))?;
            let sdata =
                if width == 8 { resolve64(w, data, ctx)? } else { resolve32(w, data, ctx)? };
            for &l in lanes {
                let addr = (w.read_reg(l, m.base) as u64).wrapping_add(m.offset as i64 as u64);
                addrs.push(addr);
                let v: u64 = if width == 8 {
                    get64(w, l, sdata, ctx)
                } else {
                    get32(w, l, sdata, ctx) as u64
                };
                write_smem(ctx.smem, addr, v, width, pc)?;
            }
        }
        Ldc => {
            let d = dst_reg(instr, pc)?;
            if let Some((bank, offset)) = cmem_op {
                for &l in lanes {
                    addrs.push(offset as u64);
                    if width == 8 {
                        w.write_pair(l, d, ctx.consts.read_u64(bank, offset as u32));
                    } else {
                        w.write_reg(l, d, ctx.consts.read_u32(bank, offset as u32));
                    }
                }
            } else if let Some(m) = mem_op {
                // Register-indexed constant load from bank 1.
                for &l in lanes {
                    let addr = (w.read_reg(l, m.base) as u64).wrapping_add(m.offset as i64 as u64);
                    addrs.push(addr);
                    if width == 8 {
                        w.write_pair(l, d, ctx.consts.read_u64(1, addr as u32));
                    } else {
                        w.write_reg(l, d, ctx.consts.read_u32(1, addr as u32));
                    }
                }
            } else {
                return Err(fault(pc, "LDC needs a constant or memory operand"));
            }
        }
        AtomG => {
            let m = mem_op.ok_or_else(|| fault(pc, "ATOMG needs a memory operand"))?;
            let d = dst_reg(instr, pc)?;
            let data = instr
                .srcs
                .iter()
                .find(|o| !matches!(o, Operand::Mem(_)))
                .ok_or_else(|| fault(pc, "ATOMG needs a data operand"))?;
            let sdata = resolve32(w, data, ctx)?;
            for &l in lanes {
                let base =
                    if m.wide { w.read_pair(l, m.base) } else { w.read_reg(l, m.base) as u64 };
                let addr = base.wrapping_add(m.offset as i64 as u64);
                addrs.push(addr);
                let old = ctx.global.read_u32(addr);
                let v = get32(w, l, sdata, ctx);
                ctx.global.write_u32(addr, old.wrapping_add(v));
                w.write_reg(l, d, old);
            }
        }
        AtomS => {
            let m = mem_op.ok_or_else(|| fault(pc, "ATOMS needs a memory operand"))?;
            let d = dst_reg(instr, pc)?;
            let data = instr
                .srcs
                .iter()
                .find(|o| !matches!(o, Operand::Mem(_)))
                .ok_or_else(|| fault(pc, "ATOMS needs a data operand"))?;
            let sdata = resolve32(w, data, ctx)?;
            for &l in lanes {
                let addr = (w.read_reg(l, m.base) as u64).wrapping_add(m.offset as i64 as u64);
                addrs.push(addr);
                let old = read_smem(ctx.smem, addr, 4, pc)? as u32;
                let v = get32(w, l, sdata, ctx);
                write_smem(ctx.smem, addr, old.wrapping_add(v) as u64, 4, pc)?;
                w.write_reg(l, d, old);
            }
        }
        _ => unreachable!("non-memory opcode in memory_op"),
    }

    Ok(MemAccess { space, addrs, store })
}

const MAX_SMEM: u64 = 96 * 1024;
const MAX_LOCAL: u64 = 64 * 1024;

fn read_smem(smem: &mut Vec<u8>, addr: u64, width: u64, pc: u64) -> Result<u64> {
    ensure_smem(smem, addr + width, pc)?;
    let mut v = 0u64;
    for i in 0..width {
        v |= (smem[(addr + i) as usize] as u64) << (8 * i);
    }
    Ok(v)
}

fn write_smem(smem: &mut Vec<u8>, addr: u64, v: u64, width: u64, pc: u64) -> Result<()> {
    ensure_smem(smem, addr + width, pc)?;
    for i in 0..width {
        smem[(addr + i) as usize] = (v >> (8 * i)) as u8;
    }
    Ok(())
}

fn ensure_smem(smem: &mut Vec<u8>, end: u64, pc: u64) -> Result<()> {
    if end > MAX_SMEM {
        return Err(fault(pc, format!("shared-memory access at {end:#x} exceeds 96 KiB")));
    }
    if smem.len() < end as usize {
        smem.resize(end as usize, 0);
    }
    Ok(())
}

fn read_local(w: &mut WarpState, lane: usize, addr: u64, width: u64, pc: u64) -> Result<u64> {
    ensure_local(w, lane, addr + width, pc)?;
    let buf = &w.local[lane];
    let mut v = 0u64;
    for i in 0..width {
        v |= (buf[(addr + i) as usize] as u64) << (8 * i);
    }
    Ok(v)
}

fn write_local(
    w: &mut WarpState,
    lane: usize,
    addr: u64,
    v: u64,
    width: u64,
    pc: u64,
) -> Result<()> {
    ensure_local(w, lane, addr + width, pc)?;
    let buf = &mut w.local[lane];
    for i in 0..width {
        buf[(addr + i) as usize] = (v >> (8 * i)) as u8;
    }
    Ok(())
}

fn ensure_local(w: &mut WarpState, lane: usize, end: u64, pc: u64) -> Result<()> {
    if end > MAX_LOCAL {
        return Err(fault(pc, format!("local-memory access at {end:#x} exceeds 64 KiB")));
    }
    if w.local[lane].len() < end as usize {
        w.local[lane].resize(end as usize, 0);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_isa::{MemRef, PredReg, Predicate, Register};

    fn r(n: u8) -> Register {
        Register::from_u8(n)
    }

    fn setup() -> (WarpState, GlobalMem, Vec<u8>, ConstMem) {
        (WarpState::new(0, 0, 0, 0, 32, 256), GlobalMem::new(), Vec::new(), ConstMem::new())
    }

    fn ctx<'a>(g: &'a mut GlobalMem, s: &'a mut Vec<u8>, c: &'a ConstMem) -> ExecCtx<'a> {
        ExecCtx { global: g, smem: s, consts: c, block_id: 3, grid_blocks: 8, block_threads: 64 }
    }

    #[test]
    fn integer_and_float_arithmetic() {
        let (mut w, mut g, mut s, c) = setup();
        let mut cx = ctx(&mut g, &mut s, &c);
        for l in 0..32 {
            w.write_reg(l, r(1), l as u32);
            w.write_reg(l, r(2), 10);
        }
        let iadd = Instruction::new(
            Opcode::Iadd,
            vec![Operand::Reg(r(0))],
            vec![Operand::Reg(r(1)), Operand::Reg(r(2))],
        );
        execute(&mut w, &iadd, None, &mut cx).unwrap();
        assert_eq!(w.read_reg(5, r(0)), 15);

        let ffma = Instruction::new(
            Opcode::Ffma,
            vec![Operand::Reg(r(3))],
            vec![Operand::FImm(2.0), Operand::FImm(3.0), Operand::FImm(1.0)],
        );
        execute(&mut w, &ffma, None, &mut cx).unwrap();
        assert_eq!(f32::from_bits(w.read_reg(0, r(3))), 7.0);
    }

    #[test]
    fn f64_demotion_roundtrip() {
        let (mut w, mut g, mut s, c) = setup();
        let mut cx = ctx(&mut g, &mut s, &c);
        // Write 2.5f32, promote to f64, demote back.
        for l in 0..32 {
            w.write_reg(l, r(1), 2.5f32.to_bits());
        }
        let promote =
            Instruction::new(Opcode::F2f, vec![Operand::RegPair(r(4))], vec![Operand::Reg(r(1))])
                .with_mod(Modifier::F64)
                .with_mod(Modifier::F32);
        execute(&mut w, &promote, None, &mut cx).unwrap();
        assert_eq!(f64::from_bits(w.read_pair(7, r(4))), 2.5);
        let demote =
            Instruction::new(Opcode::F2f, vec![Operand::Reg(r(6))], vec![Operand::RegPair(r(4))])
                .with_mod(Modifier::F32)
                .with_mod(Modifier::F64);
        execute(&mut w, &demote, None, &mut cx).unwrap();
        assert_eq!(f32::from_bits(w.read_reg(7, r(6))), 2.5);
    }

    #[test]
    fn guarded_execution_skips_lanes() {
        let (mut w, mut g, mut s, c) = setup();
        let mut cx = ctx(&mut g, &mut s, &c);
        let p0 = PredReg::new(0).unwrap();
        for l in 0..16 {
            w.write_pred(l, p0, true);
        }
        let mov = Instruction::new(Opcode::Mov32i, vec![Operand::Reg(r(0))], vec![Operand::Imm(9)])
            .with_pred(Predicate::pos(p0));
        execute(&mut w, &mov, None, &mut cx).unwrap();
        assert_eq!(w.read_reg(3, r(0)), 9);
        assert_eq!(w.read_reg(20, r(0)), 0, "lane 20 guarded off");
    }

    #[test]
    fn global_load_store_and_coalescing_addresses() {
        let (mut w, mut g, mut s, c) = setup();
        let base = g.alloc(4096);
        for l in 0..32 {
            w.write_pair(l, r(2), base + l as u64 * 4);
            w.write_reg(l, r(0), 100 + l as u32);
        }
        let mut cx = ctx(&mut g, &mut s, &c);
        let stg = Instruction::new(
            Opcode::Stg,
            vec![],
            vec![Operand::Mem(MemRef { base: r(2), offset: 0, wide: true }), Operand::Reg(r(0))],
        )
        .with_mod(Modifier::E)
        .with_mod(Modifier::Sz32);
        let res = execute(&mut w, &stg, None, &mut cx).unwrap();
        let mem = res.mem.unwrap();
        assert!(mem.store);
        assert_eq!(mem.addrs.len(), 32);
        assert_eq!(g.read_u32(base + 4 * 31), 131);

        let mut cx = ctx(&mut g, &mut s, &c);
        let ldg = Instruction::new(
            Opcode::Ldg,
            vec![Operand::Reg(r(5))],
            vec![Operand::Mem(MemRef { base: r(2), offset: 0, wide: true })],
        );
        execute(&mut w, &ldg, None, &mut cx).unwrap();
        assert_eq!(w.read_reg(31, r(5)), 131);
    }

    #[test]
    fn shared_and_local_memory() {
        let (mut w, mut g, mut s, c) = setup();
        for l in 0..32 {
            w.write_reg(l, r(1), l as u32 * 4);
            w.write_reg(l, r(0), l as u32 + 7);
        }
        let mut cx = ctx(&mut g, &mut s, &c);
        let sts = Instruction::new(
            Opcode::Sts,
            vec![],
            vec![Operand::Mem(MemRef { base: r(1), offset: 0, wide: false }), Operand::Reg(r(0))],
        );
        execute(&mut w, &sts, None, &mut cx).unwrap();
        let mut cx = ctx(&mut g, &mut s, &c);
        let lds = Instruction::new(
            Opcode::Lds,
            vec![Operand::Reg(r(3))],
            vec![Operand::Mem(MemRef { base: r(1), offset: 0, wide: false })],
        );
        execute(&mut w, &lds, None, &mut cx).unwrap();
        assert_eq!(w.read_reg(9, r(3)), 16);

        // Local spill: each lane sees private storage.
        let mut cx = ctx(&mut g, &mut s, &c);
        let stl = Instruction::new(
            Opcode::Stl,
            vec![],
            vec![
                Operand::Mem(MemRef { base: Register::ZERO, offset: 16, wide: false }),
                Operand::Reg(r(0)),
            ],
        );
        execute(&mut w, &stl, None, &mut cx).unwrap();
        let mut cx = ctx(&mut g, &mut s, &c);
        let ldl = Instruction::new(
            Opcode::Ldl,
            vec![Operand::Reg(r(4))],
            vec![Operand::Mem(MemRef { base: Register::ZERO, offset: 16, wide: false })],
        );
        execute(&mut w, &ldl, None, &mut cx).unwrap();
        assert_eq!(w.read_reg(0, r(4)), 7);
        assert_eq!(w.read_reg(10, r(4)), 17, "lane-private local memory");
    }

    #[test]
    fn divergent_branch_pushes_stack() {
        let (mut w, mut g, mut s, c) = setup();
        let mut cx = ctx(&mut g, &mut s, &c);
        let p0 = PredReg::new(0).unwrap();
        for l in 0..8 {
            w.write_pred(l, p0, true);
        }
        w.pc = 0x1000;
        let bra = Instruction::new(Opcode::Bra, vec![], vec![Operand::Imm(0x1100)])
            .with_pred(Predicate::pos(p0));
        let res = execute(&mut w, &bra, Some(0x1200), &mut cx).unwrap();
        assert_eq!(res.outcome, Outcome::Jump(0x1100));
        assert_eq!(w.active, 0xFF);
        assert_eq!(w.div_stack.len(), 1);
        assert_eq!(w.div_stack[0].else_pc, 0x1010);
        assert_eq!(w.div_stack[0].else_mask, !0xFFu32);
    }

    #[test]
    fn uniform_branch_does_not_diverge() {
        let (mut w, mut g, mut s, c) = setup();
        let mut cx = ctx(&mut g, &mut s, &c);
        w.pc = 0x1000;
        let bra = Instruction::new(Opcode::Bra, vec![], vec![Operand::Imm(0x1040)]);
        let res = execute(&mut w, &bra, None, &mut cx).unwrap();
        assert_eq!(res.outcome, Outcome::Jump(0x1040));
        assert!(w.div_stack.is_empty());
    }

    #[test]
    fn special_registers() {
        let (mut w, mut g, mut s, c) = setup();
        let mut cx = ctx(&mut g, &mut s, &c);
        let s2r = Instruction::new(
            Opcode::S2r,
            vec![Operand::Reg(r(0))],
            vec![Operand::SReg(gpa_isa::SpecialReg::TidX)],
        );
        execute(&mut w, &s2r, None, &mut cx).unwrap();
        assert_eq!(w.read_reg(13, r(0)), 13);
        let s2r2 = Instruction::new(
            Opcode::S2r,
            vec![Operand::Reg(r(1))],
            vec![Operand::SReg(gpa_isa::SpecialReg::CtaIdX)],
        );
        execute(&mut w, &s2r2, None, &mut cx).unwrap();
        assert_eq!(w.read_reg(0, r(1)), 3);
    }

    #[test]
    fn atomics_accumulate() {
        let (mut w, mut g, mut s, c) = setup();
        let base = g.alloc(64);
        for l in 0..32 {
            w.write_pair(l, r(2), base); // all lanes hit the same address
            w.write_reg(l, r(0), 1);
        }
        let mut cx = ctx(&mut g, &mut s, &c);
        let atom = Instruction::new(
            Opcode::AtomG,
            vec![Operand::Reg(r(4))],
            vec![Operand::Mem(MemRef { base: r(2), offset: 0, wide: true }), Operand::Reg(r(0))],
        );
        execute(&mut w, &atom, None, &mut cx).unwrap();
        assert_eq!(g.read_u32(base), 32, "32 lanes each added 1");
        assert_eq!(w.read_reg(0, r(4)), 0);
        assert_eq!(w.read_reg(31, r(4)), 31, "serialized lane order");
    }
}
