//! Dominator and postdominator trees (Cooper–Harvey–Kennedy).

use crate::block::{BlockId, Cfg};

/// The dominator tree of a [`Cfg`].
#[derive(Debug, Clone, PartialEq)]
pub struct Dominators {
    idom: Vec<Option<BlockId>>,
    rpo_index: Vec<usize>,
}

impl Dominators {
    /// Computes dominators with the iterative algorithm of Cooper, Harvey
    /// and Kennedy ("A Simple, Fast Dominance Algorithm").
    pub fn build(cfg: &Cfg) -> Self {
        let n = cfg.blocks().len();
        let rpo = cfg.reverse_postorder();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.0] = i;
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        let entry = cfg.entry();
        idom[entry.0] = Some(entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if idom[p.0].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.0] != Some(ni) {
                        idom[b.0] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators { idom, rpo_index }
    }

    /// The immediate dominator of `b` (`None` for the entry block or
    /// unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        match self.idom[b.0] {
            Some(d) if d != b => Some(d),
            Some(_) => None, // entry dominates itself
            None => None,
        }
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.0] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[a.0] > rpo_index[b.0] {
            a = idom[a.0].expect("processed block has idom");
        }
        while rpo_index[b.0] > rpo_index[a.0] {
            b = idom[b.0].expect("processed block has idom");
        }
    }
    a
}

/// The postdominator tree, computed over the reversed CFG with a virtual
/// exit node joining all function exits.
///
/// Postdominators give the simulator its branch-reconvergence points (the
/// immediate postdominator of a divergent branch block).
#[derive(Debug, Clone, PartialEq)]
pub struct PostDominators {
    /// Immediate postdominator per block; `None` means the virtual exit.
    ipdom: Vec<Option<BlockId>>,
}

impl PostDominators {
    /// Computes postdominators of `cfg`.
    pub fn build(cfg: &Cfg) -> Self {
        let n = cfg.blocks().len();
        // Virtual node id = n.
        let virt = n;
        let exits = cfg.exits();
        // Predecessors in the reversed graph: the CFG successors, plus the
        // virtual exit for blocks that end the function.
        let preds = |b: usize| -> Vec<usize> {
            let mut ps: Vec<usize> = cfg.succs(BlockId(b)).iter().map(|s| s.0).collect();
            if exits.iter().any(|e| e.0 == b) {
                ps.push(virt);
            }
            ps
        };
        // Reverse postorder on the reversed graph, starting at the virtual
        // exit.
        let mut visited = vec![false; n + 1];
        let mut order = Vec::new();
        let mut stack = vec![(virt, false)];
        while let Some((b, post)) = stack.pop() {
            if post {
                order.push(b);
                continue;
            }
            if visited[b] {
                continue;
            }
            visited[b] = true;
            stack.push((b, true));
            let ps: Vec<usize> = if b == virt {
                cfg.exits().iter().map(|e| e.0).collect()
            } else {
                cfg.preds(BlockId(b)).iter().map(|p| p.0).collect()
            };
            // In the reversed graph, successors of b are the CFG
            // predecessors of b.
            for s in ps {
                if !visited[s] {
                    stack.push((s, false));
                }
            }
        }
        order.reverse();
        let mut rpo_index = vec![usize::MAX; n + 1];
        for (i, &b) in order.iter().enumerate() {
            rpo_index[b] = i;
        }
        let mut idom: Vec<Option<usize>> = vec![None; n + 1];
        idom[virt] = Some(virt);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in order.iter().skip(1) {
                let mut new_idom: Option<usize> = None;
                for p in preds(b) {
                    if idom[p].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => {
                            let (mut x, mut y) = (p, cur);
                            while x != y {
                                while rpo_index[x] > rpo_index[y] {
                                    x = idom[x].expect("processed");
                                }
                                while rpo_index[y] > rpo_index[x] {
                                    y = idom[y].expect("processed");
                                }
                            }
                            x
                        }
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b] != Some(ni) {
                        idom[b] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        let ipdom = (0..n)
            .map(|b| match idom[b] {
                Some(d) if d != b && d != virt => Some(BlockId(d)),
                _ => None,
            })
            .collect();
        PostDominators { ipdom }
    }

    /// The immediate postdominator of `b`, or `None` if it is the virtual
    /// exit (i.e. `b` ends the function).
    pub fn ipdom(&self, b: BlockId) -> Option<BlockId> {
        self.ipdom[b.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_isa::parse_module;

    fn build(src: &str) -> (Cfg, Dominators, PostDominators) {
        let m = parse_module(src).unwrap();
        let cfg = Cfg::build(m.function("k").unwrap());
        let dom = Dominators::build(&cfg);
        let pdom = PostDominators::build(&cfg);
        (cfg, dom, pdom)
    }

    const DIAMOND: &str = r#"
.kernel k
  ISETP.LT.AND P0, R0, R1 {S:2}
  @P0 BRA else_part {S:5}
  MOV R2, R3 {S:1}
  BRA join {S:5}
else_part:
  MOV R2, R4 {S:1}
join:
  IADD R5, R2, 1 {S:4}
  EXIT
.endfunc
"#;

    #[test]
    fn diamond_dominators() {
        let (cfg, dom, pdom) = build(DIAMOND);
        let entry = cfg.entry();
        let then_b = cfg.block_of(2);
        let else_b = cfg.block_of(4);
        let join = cfg.block_of(5);
        assert_eq!(dom.idom(then_b), Some(entry));
        assert_eq!(dom.idom(else_b), Some(entry));
        assert_eq!(dom.idom(join), Some(entry));
        assert!(dom.dominates(entry, join));
        assert!(!dom.dominates(then_b, join));
        assert!(dom.dominates(join, join));
        // Reconvergence point of the divergent entry branch is the join.
        assert_eq!(pdom.ipdom(entry), Some(join));
        assert_eq!(pdom.ipdom(then_b), Some(join));
        assert_eq!(pdom.ipdom(join), None);
    }

    #[test]
    fn loop_dominators() {
        let (cfg, dom, pdom) = build(
            r#"
.kernel k
  MOV32I R0, 0 {S:1}
top:
  IADD R0, R0, 1 {S:4}
  ISETP.LT.AND P0, R0, 10 {S:2}
  @P0 BRA top {S:5}
  EXIT
.endfunc
"#,
        );
        let entry = cfg.entry();
        let body = cfg.block_of(1);
        let exit = cfg.block_of(4);
        assert_eq!(dom.idom(body), Some(entry));
        assert_eq!(dom.idom(exit), Some(body));
        assert_eq!(pdom.ipdom(body), Some(exit));
    }
}
