//! `rodinia/lavaMD` — `kernel_gpu_cuda`.
//!
//! The particle-interaction inner loop chains a distance computation
//! (with an SFU reciprocal) into a single force accumulator per
//! iteration. Unrolling by two overlaps the neighbor loads and the SFU
//! latency (Loop Unrolling; paper: 1.11× achieved, 1.12× estimated).

use crate::data::ParamBlock;
use crate::dsl::Asm;
use crate::{App, KernelSpec, Params, Stage};
use gpa_arch::LaunchConfig;

/// Builds the lavaMD app entry.
pub fn app() -> App {
    App {
        name: "rodinia/lavaMD",
        kernel: "kernel_gpu_cuda",
        stages: vec![Stage { name: "Loop Unrolling", optimizer: "GPULoopUnrollOptimizer" }],
        build,
    }
}

const NEIGHBORS: u32 = 48;

/// One interaction: load neighbor position/charge, accumulate force.
fn interaction(a: &mut Asm, off: u8, pos_r: u8, q_r: u8, acc: u8, bars: (u8, u8)) {
    a.i(format!("IADD R10, R17, {off} {{S:4}}"));
    a.i(format!("IMAD R10, R10, {NEIGHBORS}, R0 {{S:5}}"));
    a.addr(12, 4, 10, 2);
    a.i(format!("LDG.E.32 R{pos_r}, [R12:R13] {{W:B{}, S:1}}", bars.0));
    a.addr(14, 6, 10, 2);
    a.i(format!("LDG.E.32 R{q_r}, [R14:R15] {{W:B{}, S:1}}", bars.1));
    // dx = pos - mypos; r2 = dx*dx + softening; inv = 1/r2; f += q*inv.
    a.i(format!("FFMA R30, R{pos_r}, -1.0, R8 {{WT:[B{}], S:4}}", bars.0));
    a.i("FFMA R32, R30, R30, 0.01 {S:4}");
    a.i(format!("MUFU.RCP R34, R32 {{W:B{}, S:1}}", bars.0));
    a.i(format!("FFMA R{acc}, R{q_r}, R34, R{acc} {{WT:[B{},B{}], S:4}}", bars.0, bars.1));
}

fn build(variant: usize, p: &Params) -> KernelSpec {
    let unrolled = variant >= 1;
    let mut a = Asm::module("lavamd");
    a.kernel("kernel_gpu_cuda");
    a.line("lavaMD.cu", 120);
    a.global_tid();
    a.param_u64(4, 0); // neighbor positions
    a.param_u64(6, 8); // neighbor charges
                       // My position.
    a.addr(12, 4, 0, 2);
    a.i("LDG.E.32 R8, [R12:R13] {W:B5, S:1}");
    a.i("MOV32I R22, 0 {S:1}"); // force acc
    a.i("MOV32I R17, 0 {S:1}");
    a.i("NOP {WT:[B5], S:1}");
    a.line("lavaMD.cu", 126);
    a.label("nei_loop");
    if unrolled {
        interaction(&mut a, 0, 40, 42, 22, (0, 1));
        interaction(&mut a, 1, 44, 46, 26, (2, 3));
        a.i("IADD R17, R17, 2 {S:4}");
    } else {
        interaction(&mut a, 0, 40, 42, 22, (0, 1));
        a.i("IADD R17, R17, 1 {S:4}");
    }
    a.i(format!("ISETP.LT.AND P1, R17, {NEIGHBORS} {{S:2}}"));
    a.i("@P1 BRA nei_loop {S:5}");
    if unrolled {
        a.i("FADD R22, R22, R26 {S:4}");
    }
    a.param_u64(28, 16);
    a.addr(36, 28, 0, 2);
    a.i("STG.E.32 [R36:R37], R22 {R:B5, S:2}");
    a.i("EXIT {WT:[B5], S:1}");
    a.endfunc();
    let module = a.build();

    let blocks = p.sms * p.scale;
    let threads: u32 = 128;
    let n = blocks * threads;
    KernelSpec {
        module,
        entry: "kernel_gpu_cuda".into(),
        launch: LaunchConfig::new(blocks, threads),
        setup: Box::new(move |gpu| {
            let mut rng = crate::data::rng(0x5057_0008);
            let m = (n as u64) * NEIGHBORS as u64 + n as u64;
            let pos = gpu.global_mut().alloc(4 * m);
            gpu.global_mut()
                .write_bytes(pos, &crate::data::f32_bytes(&mut rng, m as usize, -2.0, 2.0));
            let q = gpu.global_mut().alloc(4 * m);
            gpu.global_mut()
                .write_bytes(q, &crate::data::f32_bytes(&mut rng, m as usize, 0.0, 1.0));
            let out = gpu.global_mut().alloc(4 * n as u64);
            let mut pb = ParamBlock::new();
            pb.push_u64(pos);
            pb.push_u64(q);
            pb.push_u64(out);
            pb.finish()
        }),
        const_bank1: None,
    }
}
