//! Parallel optimizers (Table 2, bottom) — Eqs. 6–10.

use super::{MatchResult, Optimizer, OptimizerId};
use crate::advisor::AnalysisCtx;
use crate::estimators::ParallelParams;
use gpa_arch::LaunchConfig;
use gpa_sampling::StallReason;

/// Eq. 10's optimizer-specific factor `f`: when work spreads over more
/// SMs (or lanes fill up), per-SM queueing stalls relax — the paper's
/// optimizers "assume there is no pipeline, memory throttle, and no
/// select stall" after the change.
fn relief_factor(ctx: &AnalysisCtx<'_>) -> f64 {
    let t = ctx.profile.total_samples as f64;
    if t == 0.0 {
        return 1.0;
    }
    let hist = ctx.profile.stall_histogram();
    let relieved = hist[StallReason::MemoryThrottle.code() as usize]
        + hist[StallReason::PipeBusy.code() as usize];
    let share = (relieved as f64 / t).min(0.5);
    1.0 / (1.0 - share)
}

fn lane_efficiency(block_threads: u32, warp_size: u32) -> f64 {
    let warps = block_threads.div_ceil(warp_size).max(1);
    block_threads as f64 / (warps * warp_size) as f64
}

/// Matches kernels whose grid leaves SMs idle (fewer blocks than the
/// device hosts): split blocks to raise the busy-SM count (particlefilter,
/// streamcluster, PeleC).
pub struct BlockIncrease;

impl Optimizer for BlockIncrease {
    fn id(&self) -> OptimizerId {
        OptimizerId::BlockIncrease
    }

    fn hints(&self) -> Vec<&'static str> {
        vec![
            "The grid has fewer blocks than the device has SMs: most SMs idle.",
            "Halve the threads per block and double the block count (total threads unchanged) until every SM hosts work.",
        ]
    }

    fn match_stalls(&self, ctx: &AnalysisCtx<'_>) -> MatchResult {
        let mut m = MatchResult::default();
        let launch = &ctx.profile.launch;
        let arch = ctx.arch;
        if launch.grid_blocks >= arch.num_sms {
            return m; // every SM already has a block
        }
        // Propose halving threads/block (keeping whole warps) until either
        // the grid covers the SMs or blocks reach one warp.
        let mut threads = launch.block_threads;
        let mut blocks = launch.grid_blocks;
        while blocks < arch.num_sms && threads >= 2 * arch.warp_size {
            threads /= 2;
            blocks *= 2;
        }
        if blocks == launch.grid_blocks {
            return m; // cannot split further
        }
        let new_launch = LaunchConfig { grid_blocks: blocks, block_threads: threads, ..*launch };
        let occ_old = ctx.profile.occupancy;
        let occ_new = arch.occupancy(&new_launch);
        m.parallel = Some(ParallelParams {
            w_old: occ_old.warps_per_scheduler.max(0.25),
            w_new: occ_new.warps_per_scheduler.max(0.25),
            busy_sms_old: launch.grid_blocks.min(arch.num_sms) as f64,
            busy_sms_new: blocks.min(arch.num_sms) as f64,
            lane_eff_old: lane_efficiency(launch.block_threads, arch.warp_size),
            lane_eff_new: lane_efficiency(threads, arch.warp_size),
            factor: relief_factor(ctx),
        });
        m.notes.push(format!(
            "launch uses {} blocks of {} threads on {} SMs; suggest {} blocks of {} threads",
            launch.grid_blocks, launch.block_threads, arch.num_sms, blocks, threads
        ));
        m
    }
}

/// Matches kernels whose tiny blocks cap occupancy through the block-slot
/// limit (and waste lanes on partial warps): grow the blocks
/// (the gaussian Fan2 case).
pub struct ThreadIncrease;

impl Optimizer for ThreadIncrease {
    fn id(&self) -> OptimizerId {
        OptimizerId::ThreadIncrease
    }

    fn hints(&self) -> Vec<&'static str> {
        vec![
            "Blocks are too small: the per-SM block-slot limit caps resident warps, and sub-warp blocks waste lanes.",
            "Increase threads per block (merging blocks) so each SM hosts more full warps.",
        ]
    }

    fn match_stalls(&self, ctx: &AnalysisCtx<'_>) -> MatchResult {
        let mut m = MatchResult::default();
        let launch = &ctx.profile.launch;
        let arch = ctx.arch;
        if launch.block_threads >= 4 * arch.warp_size {
            return m; // blocks already reasonably sized
        }
        // Propose merging blocks up to 256 threads, preserving total
        // threads.
        let target_threads = (4 * arch.warp_size).min(arch.max_threads_per_block);
        let merge = (target_threads / launch.block_threads.max(1)).max(1);
        let new_blocks = (launch.grid_blocks / merge).max(1);
        let new_threads = launch.block_threads * merge;
        if new_blocks == launch.grid_blocks {
            return m;
        }
        let new_launch =
            LaunchConfig { grid_blocks: new_blocks, block_threads: new_threads, ..*launch };
        let occ_old = ctx.profile.occupancy;
        let occ_new = arch.occupancy(&new_launch);
        if occ_new.warps_per_scheduler <= occ_old.warps_per_scheduler
            && lane_efficiency(new_threads, arch.warp_size)
                <= lane_efficiency(launch.block_threads, arch.warp_size)
        {
            return m; // no benefit
        }
        m.parallel = Some(ParallelParams {
            w_old: occ_old.warps_per_scheduler.max(0.25),
            w_new: occ_new.warps_per_scheduler.max(0.25),
            busy_sms_old: launch.grid_blocks.min(arch.num_sms) as f64,
            busy_sms_new: new_blocks.min(arch.num_sms) as f64,
            lane_eff_old: lane_efficiency(launch.block_threads, arch.warp_size),
            lane_eff_new: lane_efficiency(new_threads, arch.warp_size),
            factor: 1.0,
        });
        m.notes.push(format!(
            "blocks of {} threads occupy {:.1} warps/scheduler ({}); suggest {} threads per block",
            launch.block_threads, occ_old.warps_per_scheduler, occ_old.limiter, new_threads
        ));
        m
    }
}
