//! The advisor: orchestrates blame → match → estimate → rank.

use crate::blamer::{BlamedEdge, ModuleBlame};
use crate::estimators::{
    parallel_speedup, scoped_latency_hiding_speedup, stall_elimination_speedup,
};
use crate::optimizers::{all_optimizers, Hotspot, Optimizer, OptimizerCategory};
use gpa_arch::{ArchConfig, LatencyTable};
use gpa_isa::Module;
use gpa_sampling::{KernelProfile, StallReason};
use gpa_structure::{ProgramStructure, Scope};

/// Everything an optimizer may inspect.
pub struct AnalysisCtx<'a> {
    /// The kernel's module (virtual CUBIN).
    pub module: &'a Module,
    /// Static program structure.
    pub structure: &'a ProgramStructure,
    /// The PC-sampling profile.
    pub profile: &'a KernelProfile,
    /// Machine description.
    pub arch: &'a ArchConfig,
    /// Latency tables.
    pub latency: &'a LatencyTable,
    /// Blame analysis.
    pub blame: &'a ModuleBlame,
}

impl<'a> AnalysisCtx<'a> {
    /// Absolute PC of an instruction.
    pub fn pc_of(&self, func: usize, idx: usize) -> u64 {
        self.module.functions[func].pc_of(idx)
    }

    /// The instruction at `(func, idx)`.
    pub fn instr(&self, func: usize, idx: usize) -> &gpa_isa::Instruction {
        &self.module.functions[func].instrs[idx]
    }

    /// All blamed edges as `(function, edge)`.
    pub fn blamed_edges(&self) -> impl Iterator<Item = (usize, &BlamedEdge)> {
        self.blame.edges()
    }

    /// Total samples `T`.
    pub fn total_samples(&self) -> f64 {
        self.profile.total_samples as f64
    }

    /// Active samples within a scope (Eq. 5's `Σ A`, since a scope's
    /// blocks include all scopes nested inside it).
    pub fn active_in_scope(&self, scope: Scope) -> f64 {
        self.profile
            .pcs
            .iter()
            .filter(|(pc, _)| self.structure.scope_contains(scope, **pc))
            .map(|(_, st)| st.active_total() as f64)
            .sum()
    }

    /// Observed (unattributed) stalls of one reason at one PC.
    pub fn stalls_at(&self, pc: u64, reason: StallReason) -> f64 {
        self.profile.pc(pc).map_or(0.0, |st| st.stalls(reason) as f64)
    }

    /// Whether a PC lies in CUDA-math-library code (by containing function
    /// or inline stack).
    pub fn is_math_pc(&self, pc: u64) -> bool {
        if let Some((f, _)) = self.structure.locate(pc) {
            if f.is_math_function() {
                return true;
            }
        }
        self.structure
            .inline_stack_of(self.module, pc)
            .iter()
            .any(|fr| fr.callee.starts_with("__nv_") || fr.callee.starts_with("__internal_"))
    }
}

/// A source-annotated def/use location in the report.
#[derive(Debug, Clone, PartialEq)]
pub struct LocationReport {
    /// Absolute PC.
    pub pc: u64,
    /// Containing function.
    pub function: String,
    /// Source file, when line info exists.
    pub file: Option<String>,
    /// Source line.
    pub line: Option<u32>,
    /// Enclosing scope description (e.g. `Loop at x.cu:30 in k`).
    pub scope: String,
}

/// One ranked hotspot in an advice item.
#[derive(Debug, Clone, PartialEq)]
pub struct HotspotReport {
    /// Blamed (source) location.
    pub def: Option<LocationReport>,
    /// Stalled location.
    pub use_: LocationReport,
    /// Matched samples / total samples.
    pub ratio: f64,
    /// Speedup from fixing this hotspot alone.
    pub speedup: f64,
    /// def→use distance in instructions.
    pub distance: Option<u32>,
}

/// One optimizer's advice.
#[derive(Debug, Clone, PartialEq)]
pub struct AdviceItem {
    /// Optimizer name.
    pub optimizer: String,
    /// Optimizer family.
    pub category: OptimizerCategory,
    /// Matched samples / total samples.
    pub matched_ratio: f64,
    /// Estimated speedup if the advice is applied.
    pub estimated_speedup: f64,
    /// Static hints.
    pub hints: Vec<String>,
    /// Dynamic findings.
    pub notes: Vec<String>,
    /// Top hotspots.
    pub hotspots: Vec<HotspotReport>,
}

/// The full advice report for one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct AdviceReport {
    /// Kernel name.
    pub kernel: String,
    /// Total samples.
    pub total_samples: u64,
    /// Active samples.
    pub active_samples: u64,
    /// Latency samples.
    pub latency_samples: u64,
    /// Kernel stall histogram `(reason name, samples)`.
    pub stall_histogram: Vec<(String, u64)>,
    /// Advice items sorted by estimated speedup, best first.
    pub items: Vec<AdviceItem>,
}

impl AdviceReport {
    /// The best advice item, if any matched.
    pub fn top(&self) -> Option<&AdviceItem> {
        self.items.first()
    }

    /// The item for a given optimizer name.
    pub fn item(&self, optimizer: &str) -> Option<&AdviceItem> {
        self.items.iter().find(|i| i.optimizer == optimizer)
    }

    /// Rank (1-based) of an optimizer in the report.
    pub fn rank_of(&self, optimizer: &str) -> Option<usize> {
        self.items.iter().position(|i| i.optimizer == optimizer).map(|p| p + 1)
    }
}

/// The GPA advisor: a configurable set of optimizers.
pub struct Advisor {
    optimizers: Vec<Box<dyn Optimizer>>,
    hotspots_per_item: usize,
}

impl Default for Advisor {
    fn default() -> Self {
        Self::new()
    }
}

impl Advisor {
    /// An advisor with the full Table 2 catalog.
    pub fn new() -> Self {
        Advisor { optimizers: all_optimizers(), hotspots_per_item: 5 }
    }

    /// An advisor with a custom optimizer set (the paper notes users can
    /// add custom optimizers to match other inefficiency patterns).
    pub fn with_optimizers(optimizers: Vec<Box<dyn Optimizer>>) -> Self {
        Advisor { optimizers, hotspots_per_item: 5 }
    }

    /// Runs the full dynamic analysis and produces the advice report.
    ///
    /// Builds the static analyses from scratch; callers that analyze
    /// many profiles of the same module (the pipeline's [`Session`]
    /// cache) should pre-build them once and use
    /// [`Advisor::advise_with`].
    ///
    /// [`Session`]: https://docs.rs/gpa-pipeline
    pub fn advise(
        &self,
        module: &Module,
        profile: &KernelProfile,
        arch: &ArchConfig,
    ) -> AdviceReport {
        let structure = ProgramStructure::build(module);
        let latency = LatencyTable::for_arch(arch);
        self.advise_with(module, &structure, &latency, profile, arch)
    }

    /// [`Advisor::advise`] with caller-provided static analyses, so a
    /// cached `ProgramStructure`/`LatencyTable` is reused across repeated
    /// runs instead of being rebuilt per profile.
    pub fn advise_with(
        &self,
        module: &Module,
        structure: &ProgramStructure,
        latency: &LatencyTable,
        profile: &KernelProfile,
        arch: &ArchConfig,
    ) -> AdviceReport {
        let blame = ModuleBlame::build(module, structure, profile, latency);
        let ctx = AnalysisCtx { module, structure, profile, arch, latency, blame: &blame };
        let total = ctx.total_samples();
        let active = profile.active_samples as f64;
        let mut items = Vec::new();
        for opt in &self.optimizers {
            let mut m = opt.match_stalls(&ctx);
            if m.is_empty() || total == 0.0 {
                continue;
            }
            m.keep_top_hotspots(self.hotspots_per_item);
            let estimated_speedup = match opt.category() {
                OptimizerCategory::StallElimination => stall_elimination_speedup(total, m.matched),
                OptimizerCategory::LatencyHiding => {
                    let pairs: Vec<(f64, f64)> =
                        m.scopes.iter().map(|(s, ml)| (ctx.active_in_scope(*s), *ml)).collect();
                    scoped_latency_hiding_speedup(total, active, &pairs)
                }
                OptimizerCategory::Parallel => match &m.parallel {
                    Some(p) => parallel_speedup(profile.issue_ratio(), p),
                    None => 1.0,
                },
            };
            if estimated_speedup < 1.001 {
                continue;
            }
            let hotspots = m.hotspots.iter().map(|h| self.hotspot_report(&ctx, h, total)).collect();
            items.push(AdviceItem {
                optimizer: opt.name().to_string(),
                category: opt.category(),
                matched_ratio: if m.matched > 0.0 {
                    m.matched / total
                } else {
                    m.matched_latency / total
                },
                estimated_speedup,
                hints: opt.hints().iter().map(|s| s.to_string()).collect(),
                notes: m.notes.clone(),
                hotspots,
            });
        }
        items.sort_by(|a, b| {
            b.estimated_speedup.partial_cmp(&a.estimated_speedup).expect("speedups are finite")
        });
        let hist = profile.stall_histogram();
        AdviceReport {
            kernel: profile.kernel.clone(),
            total_samples: profile.total_samples,
            active_samples: profile.active_samples,
            latency_samples: profile.latency_samples,
            stall_histogram: StallReason::ALL
                .iter()
                .map(|r| (r.name().to_string(), hist[r.code() as usize]))
                .filter(|(_, c)| *c > 0)
                .collect(),
            items,
        }
    }

    fn hotspot_report(&self, ctx: &AnalysisCtx<'_>, h: &Hotspot, total: f64) -> HotspotReport {
        HotspotReport {
            def: h.def_pc.map(|pc| self.location(ctx, pc)),
            use_: self.location(ctx, h.use_pc),
            ratio: h.samples / total,
            speedup: stall_elimination_speedup(total, h.samples),
            distance: h.distance,
        }
    }

    fn location(&self, ctx: &AnalysisCtx<'_>, pc: u64) -> LocationReport {
        let function = ctx
            .structure
            .locate(pc)
            .map_or_else(|| "<unknown>".to_string(), |(f, _)| f.name.clone());
        let (file, line) = match ctx.structure.source_of(ctx.module, pc) {
            Some((f, l)) => (Some(f.to_string()), Some(l)),
            None => (None, None),
        };
        let scope = ctx
            .structure
            .scope_of(pc)
            .map_or_else(String::new, |s| ctx.structure.describe_scope(ctx.module, s));
        LocationReport { pc, function, file, line, scope }
    }
}
