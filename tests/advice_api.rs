//! The advisor API contract: typed registry, per-call requests, and the
//! versioned v2 advice schema.
//!
//! The acceptance bar: default-option v2 reports round-trip through
//! `gpa-json` byte-identically and rank exactly like the classic
//! `advise` output for **all 21 registry apps**, and every
//! [`AdviceRequest`] knob provably narrows the default report.

use gpa::core::{
    schema, AdviceRequest, Advisor, EstimatorInputs, OptimizerCategory, OptimizerId,
    OptimizerRegistry, SCHEMA_VERSION,
};
use gpa::json::Json;
use gpa::pipeline::{AnalysisJob, Session};

#[test]
fn default_v2_rankings_match_classic_advise_for_all_apps() {
    let session = Session::test();
    let jobs = session.jobs_for_all_apps();
    assert_eq!(jobs.len(), 21);
    let results = session.run_batch(&jobs);
    let mut nonempty = 0;
    for (job, result) in jobs.iter().zip(&results) {
        let out = result.as_ref().unwrap_or_else(|e| panic!("{job}: {e}"));
        let report = &out.report;
        assert_eq!(report.schema_version, SCHEMA_VERSION, "{job}");
        nonempty += usize::from(!report.items.is_empty());

        // The explicit-request path with default options is the same
        // analysis.
        let again = session.run_one_request(job, &AdviceRequest::default()).unwrap();
        assert_eq!(again.report, *report, "{job}: explicit default request differs");

        // Ranking is deterministic: strictly ordered by (speedup desc,
        // id asc) — the v1 summary order IS the v2 item order.
        for pair in report.items.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            assert!(
                a.estimated_speedup > b.estimated_speedup
                    || (a.estimated_speedup == b.estimated_speedup && a.id < b.id),
                "{job}: ranking violation between {} and {}",
                a.id,
                b.id
            );
        }
        let v1 = out.to_json();
        let v1_names: Vec<String> = v1
            .field("advice")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|i| i.field("optimizer").unwrap().as_str().unwrap().to_string())
            .collect();
        let v2_names: Vec<String> =
            report.items.iter().map(|i| i.optimizer().to_string()).collect();
        assert_eq!(v1_names, v2_names, "{job}: v1 summary and v2 report disagree on ranking");

        // The v2 document round-trips byte-identically.
        let doc = schema::report_to_json(report);
        let compact = doc.compact();
        let back = schema::report_from_json(&Json::parse(&compact).unwrap())
            .unwrap_or_else(|e| panic!("{job}: {e}"));
        assert_eq!(back, *report, "{job}: structural round trip");
        assert_eq!(schema::report_to_json(&back).compact(), compact, "{job}: byte identity");

        // Every item carries consistent typed identity and estimator
        // inputs matching its category.
        for item in &report.items {
            assert_eq!(item.category, item.id.category(), "{job}");
            match (&item.estimator, item.category) {
                (EstimatorInputs::StallElimination { .. }, OptimizerCategory::StallElimination)
                | (EstimatorInputs::LatencyHiding { .. }, OptimizerCategory::LatencyHiding)
                | (EstimatorInputs::Parallel { .. }, OptimizerCategory::Parallel) => {}
                (est, cat) => panic!("{job}: estimator {est:?} does not match category {cat}"),
            }
            assert!(!item.hints.is_empty(), "{job}: every optimizer ships guidance");
        }
    }
    assert!(nonempty >= 15, "most apps produce advice ({nonempty}/21)");
}

#[test]
fn advice_request_knobs_narrow_the_report() {
    let session = Session::test();
    let job = AnalysisJob::new("rodinia/hotspot", 0);
    let full = session.run_one(&job).unwrap().report;
    assert!(full.items.len() >= 2, "hotspot yields a rich report");

    // top-k truncates after ranking.
    let top1 = session.run_one_request(&job, &AdviceRequest::default().with_top(1)).unwrap().report;
    assert_eq!(top1.items.len(), 1);
    assert_eq!(top1.items[0], full.items[0], "top-1 is the full report's best item");

    // Category filter keeps only that family, ranked as before.
    let stall = AdviceRequest::default().with_category(OptimizerCategory::StallElimination);
    let stall_report = session.run_one_request(&job, &stall).unwrap().report;
    assert!(!stall_report.items.is_empty());
    assert!(stall_report.items.iter().all(|i| i.category == OptimizerCategory::StallElimination));
    let expected: Vec<OptimizerId> = full
        .items
        .iter()
        .filter(|i| i.category == OptimizerCategory::StallElimination)
        .map(|i| i.id)
        .collect();
    assert_eq!(stall_report.items.iter().map(|i| i.id).collect::<Vec<_>>(), expected);

    // Optimizer filter pins a single id.
    let only = AdviceRequest::default().with_optimizers(&[full.items[0].id]);
    let one = session.run_one_request(&job, &only).unwrap().report;
    assert_eq!(one.items.len(), 1);
    assert_eq!(one.items[0].id, full.items[0].id);

    // min-speedup raises the bar.
    let bar = full.items[0].estimated_speedup;
    let strict = session
        .run_one_request(&job, &AdviceRequest::default().with_min_speedup(bar))
        .unwrap()
        .report;
    assert!(strict.items.iter().all(|i| i.estimated_speedup >= bar));
    assert!(strict.items.len() < full.items.len(), "the bar prunes something");

    // Hotspot budget caps evidence size; evidence=false removes it.
    let budget =
        session.run_one_request(&job, &AdviceRequest::default().with_hotspots(1)).unwrap().report;
    assert!(budget.items.iter().all(|i| i.hotspots.len() <= 1));
    let summary = session
        .run_one_request(&job, &AdviceRequest::default().with_evidence(false))
        .unwrap()
        .report;
    assert!(summary.items.iter().all(|i| i.hotspots.is_empty()));
    // ... without disturbing ranking or estimates.
    assert_eq!(
        summary.items.iter().map(|i| (i.id, i.estimated_speedup)).collect::<Vec<_>>(),
        full.items.iter().map(|i| (i.id, i.estimated_speedup)).collect::<Vec<_>>()
    );
}

#[test]
fn custom_registry_composition_flows_through_the_session() {
    let session = Session::test().with_advisor(
        Advisor::builder()
            .registry(OptimizerRegistry::of(&[
                OptimizerId::ThreadIncrease,
                OptimizerId::BlockIncrease,
            ]))
            .build(),
    );
    let report = session.run_one(&AnalysisJob::new("rodinia/gaussian", 0)).unwrap().report;
    assert!(!report.items.is_empty(), "gaussian's tiny blocks match a parallel optimizer");
    assert!(report.items.iter().all(|i| i.category == OptimizerCategory::Parallel));
    assert!(report.item(OptimizerId::ThreadIncrease).is_some());
}

#[test]
fn advisor_default_request_is_honored_by_the_session() {
    // An advisor built with default options (top-1, summary-only) must
    // shape every Session path that does not pass an explicit request.
    let session = Session::test().with_advisor(
        Advisor::builder()
            .defaults(AdviceRequest::default().with_top(1).with_evidence(false))
            .build(),
    );
    let job = AnalysisJob::new("rodinia/hotspot", 0);
    let report = session.run_one(&job).unwrap().report;
    assert_eq!(report.items.len(), 1, "builder defaults flow through run_one");
    assert!(report.items[0].hotspots.is_empty());
    // An explicit per-call request still overrides the defaults.
    let full = session.run_one_request(&job, &AdviceRequest::default()).unwrap().report;
    assert!(full.items.len() > 1);
}

#[test]
fn hotspot_evidence_carries_source_regions() {
    let session = Session::test();
    let report = session.run_one(&AnalysisJob::new("rodinia/hotspot", 0)).unwrap().report;
    let with_evidence: Vec<_> = report.items.iter().filter(|i| !i.hotspots.is_empty()).collect();
    assert!(!with_evidence.is_empty());
    for item in with_evidence {
        for h in &item.hotspots {
            let r = &h.region;
            assert!(r.pc_begin < r.pc_end, "{}: region is a nonempty PC range", item.id);
            assert!(
                h.use_.pc >= r.pc_begin && h.use_.pc < r.pc_end,
                "{}: the stalled PC lies inside its region",
                item.id
            );
            assert!(!r.function.is_empty());
            if let (Some(b), Some(e)) = (r.line_begin, r.line_end) {
                assert!(b <= e, "{}: line range ordered", item.id);
            }
        }
    }
}
