//! Criterion benches for the tool's own components: simulator throughput,
//! blamer, and end-to-end advise latency. (The paper argues PC sampling's
//! post-mortem analysis is cheap — these benches quantify our analogue.)

use criterion::{criterion_group, criterion_main, Criterion};
use gpa_arch::LatencyTable;
use gpa_core::{Advisor, ModuleBlame};
use gpa_kernels::apps;
use gpa_kernels::runner::{arch_for, run_spec};
use gpa_kernels::Params;
use gpa_structure::ProgramStructure;

fn bench_simulator(c: &mut Criterion) {
    let p = Params::test();
    let arch = arch_for(&p);
    let spec = (apps::hotspot::app().build)(0, &p);
    c.bench_function("sim/hotspot_baseline_launch", |b| {
        b.iter(|| run_spec(&spec, &arch).expect("launch"))
    });
}

fn bench_blamer(c: &mut Criterion) {
    let p = Params::test();
    let arch = arch_for(&p);
    let app = apps::bfs::app();
    let spec = (app.build)(0, &p);
    let run = run_spec(&spec, &arch).expect("launch");
    let structure = ProgramStructure::build(&spec.module);
    let lat = LatencyTable::for_arch(&arch);
    c.bench_function("blamer/bfs_module_blame", |b| {
        b.iter(|| ModuleBlame::build(&spec.module, &structure, &run.profile, &lat))
    });
}

fn bench_advisor(c: &mut Criterion) {
    let p = Params::test();
    let arch = arch_for(&p);
    let app = apps::exatensor::app();
    let spec = (app.build)(0, &p);
    let run = run_spec(&spec, &arch).expect("launch");
    let advisor = Advisor::new();
    c.bench_function("advisor/exatensor_advise", |b| {
        b.iter(|| advisor.advise(&spec.module, &run.profile, &arch))
    });
}

fn bench_static_analysis(c: &mut Criterion) {
    let p = Params::test();
    let spec = (apps::myocyte::app().build)(0, &p);
    c.bench_function("static/myocyte_program_structure", |b| {
        b.iter(|| ProgramStructure::build(&spec.module))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simulator, bench_blamer, bench_advisor, bench_static_analysis
}
criterion_main!(benches);
