//! Reproduces **Figure 8**: the advice report for ExaTENSOR's
//! tensor_transpose kernel, with ranked optimizers and per-hotspot
//! def/use source locations and distances.

use gpa_bench::{advise_variant, render_report};
use gpa_kernels::{apps, Params};

fn main() {
    let report = advise_variant(&apps::exatensor::app(), 0, &Params::full()).expect("advises");
    print!("{}", render_report(&report, 3));
}
