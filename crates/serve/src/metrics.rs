//! Daemon counters: per-op totals, queue depth, rejections, errors.
//!
//! Everything is a relaxed atomic — the counters feed the `status` op
//! and tests, not synchronization.

use crate::Request;
use gpa_json::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The daemon's live counters.
pub struct Metrics {
    started: Instant,
    /// `analyze` requests received.
    pub analyze: AtomicU64,
    /// `analyze_profile` requests received.
    pub analyze_profile: AtomicU64,
    /// `profile_begin` requests received (chunked uploads opened).
    pub profile_begin: AtomicU64,
    /// `profile_chunk` requests received.
    pub profile_chunk: AtomicU64,
    /// `profile_end` requests received (chunked uploads finalized).
    pub profile_end: AtomicU64,
    /// `profile_abort` requests received (chunked uploads discarded).
    pub profile_abort: AtomicU64,
    /// `status` requests received.
    pub status: AtomicU64,
    /// `shutdown` requests received.
    pub shutdown: AtomicU64,
    /// `sleep` requests received.
    pub sleep: AtomicU64,
    /// Lines that failed to parse as a request.
    pub protocol_errors: AtomicU64,
    /// Accepted requests whose analysis failed.
    pub analysis_errors: AtomicU64,
    /// Requests rejected because the queue was full (backpressure).
    pub rejected: AtomicU64,
    /// Requests currently waiting in the queue.
    pub queue_depth: AtomicU64,
    /// High-water mark of [`Metrics::queue_depth`].
    pub queue_peak: AtomicU64,
    /// Connections accepted over the daemon's lifetime.
    pub connections: AtomicU64,
    /// `store_get` peer requests received.
    pub store_get: AtomicU64,
    /// `store_put` peer requests received.
    pub store_put: AtomicU64,
    /// Connections currently open (reactor gauge).
    pub open_connections: AtomicU64,
    /// Response bytes buffered but not yet written (reactor gauge).
    pub pending_bytes: AtomicU64,
    /// Requests shed because [`Metrics::pending_bytes`] hit the budget.
    pub byte_sheds: AtomicU64,
    /// Idle connections reaped by the reactor's deadline sweep.
    pub idle_reaped: AtomicU64,
    /// Requests forwarded to their owning shard.
    pub forwards_out: AtomicU64,
    /// Forwarded requests received from a peer shard.
    pub forwards_in: AtomicU64,
    /// Forwards that failed and fell back to local computation.
    pub forward_failures: AtomicU64,
    /// Store entries replicated out to the ring successor.
    pub replicated_out: AtomicU64,
    /// Replicas accepted from a peer (`store_put` admitted).
    pub replicated_in: AtomicU64,
    /// Replications dropped because the replicator queue was full.
    pub replication_dropped: AtomicU64,
    /// Local misses answered by warming the key from the ring successor.
    pub peer_warm_hits: AtomicU64,
    /// `join` peer requests received.
    pub join: AtomicU64,
    /// `leave` peer requests received.
    pub leave: AtomicU64,
    /// `ring_status` peer requests received.
    pub ring_status: AtomicU64,
    /// Forwarded frames rejected because the sender's epoch was stale.
    pub stale_epoch_rejected: AtomicU64,
    /// Roster refreshes adopted from a peer (anti-entropy catches).
    pub ring_refreshes: AtomicU64,
    /// Store entries handed off to their new owner after an epoch bump.
    pub handoff_shipped: AtomicU64,
    /// Handoff shipments that failed (the new owner was unreachable).
    pub handoff_failed: AtomicU64,
    /// Replications currently queued behind the replicator (gauge).
    pub replication_queued: AtomicU64,
    /// Budgeted peer retries actually spent.
    pub retries_spent: AtomicU64,
    /// Peer retries denied because the token bucket was empty.
    pub retries_denied: AtomicU64,
    /// Free retries after a stale pooled connection failed on reuse.
    pub stale_retries: AtomicU64,
    /// Peer circuit breakers tripped open.
    pub breaker_trips: AtomicU64,
    /// Peer calls failed fast because the breaker was open.
    pub breaker_fast_fails: AtomicU64,
    /// Half-open probes let through a cooled-down breaker.
    pub peer_probes: AtomicU64,
    /// Liveness heartbeats sent to healthy roster members on the chore
    /// tick — a dead peer fails these and trips its breaker before the
    /// first user call would have to.
    pub heartbeats: AtomicU64,
    /// The most recent replication/handoff shipment error, for
    /// `status.cluster.replication.last_error`.
    pub last_replication_error: std::sync::Mutex<Option<String>>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            started: Instant::now(),
            analyze: AtomicU64::new(0),
            analyze_profile: AtomicU64::new(0),
            profile_begin: AtomicU64::new(0),
            profile_chunk: AtomicU64::new(0),
            profile_end: AtomicU64::new(0),
            profile_abort: AtomicU64::new(0),
            status: AtomicU64::new(0),
            shutdown: AtomicU64::new(0),
            sleep: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            analysis_errors: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            queue_peak: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            store_get: AtomicU64::new(0),
            store_put: AtomicU64::new(0),
            open_connections: AtomicU64::new(0),
            pending_bytes: AtomicU64::new(0),
            byte_sheds: AtomicU64::new(0),
            idle_reaped: AtomicU64::new(0),
            forwards_out: AtomicU64::new(0),
            forwards_in: AtomicU64::new(0),
            forward_failures: AtomicU64::new(0),
            replicated_out: AtomicU64::new(0),
            replicated_in: AtomicU64::new(0),
            replication_dropped: AtomicU64::new(0),
            peer_warm_hits: AtomicU64::new(0),
            join: AtomicU64::new(0),
            leave: AtomicU64::new(0),
            ring_status: AtomicU64::new(0),
            stale_epoch_rejected: AtomicU64::new(0),
            ring_refreshes: AtomicU64::new(0),
            handoff_shipped: AtomicU64::new(0),
            handoff_failed: AtomicU64::new(0),
            replication_queued: AtomicU64::new(0),
            retries_spent: AtomicU64::new(0),
            retries_denied: AtomicU64::new(0),
            stale_retries: AtomicU64::new(0),
            breaker_trips: AtomicU64::new(0),
            breaker_fast_fails: AtomicU64::new(0),
            peer_probes: AtomicU64::new(0),
            heartbeats: AtomicU64::new(0),
            last_replication_error: std::sync::Mutex::new(None),
        }
    }
}

impl Metrics {
    /// Fresh counters with the uptime clock starting now.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Counts one received request by op.
    pub fn count_op(&self, request: &Request) {
        let counter = match request {
            Request::Analyze { .. } => &self.analyze,
            Request::AnalyzeProfile { .. } => &self.analyze_profile,
            Request::ProfileBegin { .. } => &self.profile_begin,
            Request::ProfileChunk { .. } => &self.profile_chunk,
            Request::ProfileEnd { .. } => &self.profile_end,
            Request::ProfileAbort { .. } => &self.profile_abort,
            Request::Status => &self.status,
            Request::Shutdown => &self.shutdown,
            Request::Sleep { .. } => &self.sleep,
            Request::StoreGet { .. } => &self.store_get,
            Request::StorePut { .. } => &self.store_put,
            Request::Join { .. } => &self.join,
            Request::Leave { .. } => &self.leave,
            Request::RingStatus => &self.ring_status,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one dropped replication/handoff shipment, remembering
    /// the failure for `status` and warning on the daemon's stderr the
    /// first time — an operator watching logs learns replicas are
    /// degrading before a shard dies and the misses show up.
    pub fn note_replication_drop(&self, detail: &str) {
        if self.replication_dropped.fetch_add(1, Ordering::Relaxed) == 0 {
            eprintln!(
                "gpa-serve: warning: replication dropped ({detail}); \
                 further drops are counted in status.cluster.replication"
            );
        }
        *self.last_replication_error.lock().expect("replication error lock") =
            Some(detail.to_string());
    }

    /// Records a queue push and keeps the high-water mark current.
    pub fn note_enqueued(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records a queue pop.
    pub fn note_dequeued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// The per-op counter object used inside `status` responses.
    pub fn ops_json(&self) -> Json {
        Json::object()
            .with("analyze", self.analyze.load(Ordering::Relaxed))
            .with("analyze_profile", self.analyze_profile.load(Ordering::Relaxed))
            .with("profile_begin", self.profile_begin.load(Ordering::Relaxed))
            .with("profile_chunk", self.profile_chunk.load(Ordering::Relaxed))
            .with("profile_end", self.profile_end.load(Ordering::Relaxed))
            .with("profile_abort", self.profile_abort.load(Ordering::Relaxed))
            .with("status", self.status.load(Ordering::Relaxed))
            .with("shutdown", self.shutdown.load(Ordering::Relaxed))
            .with("sleep", self.sleep.load(Ordering::Relaxed))
            .with("store_get", self.store_get.load(Ordering::Relaxed))
            .with("store_put", self.store_put.load(Ordering::Relaxed))
            .with("join", self.join.load(Ordering::Relaxed))
            .with("leave", self.leave.load(Ordering::Relaxed))
            .with("ring_status", self.ring_status.load(Ordering::Relaxed))
    }

    /// The reactor/connection gauge object used inside `status`
    /// responses.
    pub fn reactor_json(&self) -> Json {
        Json::object()
            .with("open_connections", self.open_connections.load(Ordering::Relaxed))
            .with("pending_jobs", self.queue_depth.load(Ordering::Relaxed))
            .with("pending_bytes", self.pending_bytes.load(Ordering::Relaxed))
            .with("byte_sheds", self.byte_sheds.load(Ordering::Relaxed))
            .with("idle_reaped", self.idle_reaped.load(Ordering::Relaxed))
    }

    /// The cluster counter object used inside `status` responses.
    pub fn cluster_json(&self) -> Json {
        Json::object()
            .with("forwards_out", self.forwards_out.load(Ordering::Relaxed))
            .with("forwards_in", self.forwards_in.load(Ordering::Relaxed))
            .with("forward_failures", self.forward_failures.load(Ordering::Relaxed))
            .with("replicated_out", self.replicated_out.load(Ordering::Relaxed))
            .with("replicated_in", self.replicated_in.load(Ordering::Relaxed))
            .with("replication_dropped", self.replication_dropped.load(Ordering::Relaxed))
            .with("peer_warm_hits", self.peer_warm_hits.load(Ordering::Relaxed))
    }

    /// Milliseconds since the daemon started.
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }
}

/// One reactor thread's counters. The daemon-wide [`Metrics`] gauges
/// keep counting everything (so `status.reactor` stays the roll-up it
/// always was); these split the same events by owning reactor for the
/// `status.reactors` array, and `pending_bytes` doubles as the gauge
/// the reactor's *own* byte-budget share is enforced against.
#[derive(Default)]
pub struct ReactorStats {
    /// Connections this reactor accepted (or was handed) over the
    /// daemon's lifetime.
    pub accepted: AtomicU64,
    /// Connections currently owned by this reactor.
    pub open_connections: AtomicU64,
    /// Response bytes buffered on this reactor's connections but not
    /// yet written.
    pub pending_bytes: AtomicU64,
    /// Jobs shed because this reactor's byte-budget share was spent.
    pub byte_sheds: AtomicU64,
    /// Idle connections reaped by this reactor's deadline sweep.
    pub idle_reaped: AtomicU64,
    /// Connection buffers served from this reactor's recycle pool
    /// instead of a fresh allocation.
    pub buffer_reuses: AtomicU64,
}

impl ReactorStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        ReactorStats::default()
    }

    /// One entry of the `status.reactors` array; `byte_budget` is the
    /// reactor's share of the daemon's pending-byte budget.
    pub fn json(&self, byte_budget: u64) -> Json {
        Json::object()
            .with("accepted", self.accepted.load(Ordering::Relaxed))
            .with("open_connections", self.open_connections.load(Ordering::Relaxed))
            .with("pending_bytes", self.pending_bytes.load(Ordering::Relaxed))
            .with("byte_budget", byte_budget)
            .with("byte_sheds", self.byte_sheds.load(Ordering::Relaxed))
            .with("idle_reaped", self.idle_reaped.load(Ordering::Relaxed))
            .with("buffer_reuses", self.buffer_reuses.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_are_counted_by_kind() {
        let m = Metrics::new();
        m.count_op(&Request::Status);
        m.count_op(&Request::Status);
        m.count_op(&Request::Sleep { ms: 1 });
        assert_eq!(m.status.load(Ordering::Relaxed), 2);
        assert_eq!(m.sleep.load(Ordering::Relaxed), 1);
        assert_eq!(m.analyze.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn queue_peak_tracks_the_high_water_mark() {
        let m = Metrics::new();
        m.note_enqueued();
        m.note_enqueued();
        m.note_dequeued();
        m.note_enqueued();
        assert_eq!(m.queue_depth.load(Ordering::Relaxed), 2);
        assert_eq!(m.queue_peak.load(Ordering::Relaxed), 2);
    }
}
