//! Benches the daemon's multi-client throughput: 8 concurrent clients
//! sweeping the 21-app registry against a live `gpa-serve` on an
//! ephemeral port, versus the serial in-process baseline.
//!
//! Two daemon variants are measured: cold-ish (first pass computes,
//! later passes hit the report store — the steady state of an iterative
//! profile/advise workflow) and an explicit all-hits pass, which
//! isolates wire + store overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use gpa_pipeline::{AnalysisJob, Session};
use gpa_serve::{serve, serve_on, ServeClient, ServerConfig, ServerEngine};
use std::sync::Arc;

const CLIENTS: usize = 8;

/// The engine-comparison concurrency level: enough connections that
/// thread-per-connection pays real scheduler and stack cost, while the
/// reactor keeps them all on one thread.
const SWARM: usize = 64;

fn sweep(addr: std::net::SocketAddr, jobs: &[AnalysisJob]) {
    std::thread::scope(|scope| {
        for client_idx in 0..CLIENTS {
            scope.spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                for (i, job) in jobs.iter().enumerate() {
                    if i % CLIENTS != client_idx {
                        continue;
                    }
                    let response = client.analyze(&job.app, job.variant).expect("analyze");
                    assert!(response.ok, "{}: {:?}", job, response.error);
                }
            });
        }
    });
}

fn bench_serve_throughput(c: &mut Criterion) {
    let session = Arc::new(Session::test());
    let jobs = session.jobs_for_all_apps();

    // Serial in-process baseline (no daemon, no cache reuse between
    // iterations beyond the session's artifact cache).
    let baseline = Arc::clone(&session);
    c.bench_function("serve/serial_in_process_21_apps", |b| {
        b.iter(|| baseline.run_batch_serial(&jobs))
    });

    let config = ServerConfig { workers: CLIENTS, queue: 64, ..ServerConfig::ephemeral() };
    let handle = serve(session, config).expect("daemon starts");
    let addr = handle.local_addr();
    println!("serve bench: daemon on {addr}, {CLIENTS} clients over {} jobs", jobs.len());

    // First iteration computes every report; the rest are store hits —
    // i.e. the daemon's steady-state throughput for repeat traffic.
    c.bench_function("serve/8_clients_21_apps", |b| b.iter(|| sweep(addr, &jobs)));

    // All-hits: everything is warm by now, so this isolates protocol
    // and store overhead per request.
    sweep(addr, &jobs);
    c.bench_function("serve/8_clients_21_apps_warm", |b| b.iter(|| sweep(addr, &jobs)));

    handle.shutdown();
    handle.join();
}

/// Client threads driving the swarm. Few on purpose: with one thread
/// per *connection* on the client too, the bench mostly measures its
/// own 64 threads thrashing the scheduler, identically for both
/// engines. A handful of drivers multiplexing 64 sockets keeps the
/// client cheap so the measured difference is the server's.
const DRIVERS: usize = 4;

/// One swarm pass: the 21-app repeat sweep issued by `SWARM` concurrent
/// client slots that dial a **fresh connection per request** — the
/// traffic shape of real repeat users (`gpa request` connects, asks,
/// disconnects). Per round, each driver opens its share of the 64
/// connections, writes one frame on each, then reads the responses
/// back, so all 64 are in flight together. Connection churn is exactly
/// what the engines disagree on: thread-per-conn pays a thread
/// spawn/join and registry bookkeeping per connection, the reactor an
/// epoll registration on its one thread.
fn swarm_sweep(addr: std::net::SocketAddr, frames: &[String]) {
    use std::io::{BufRead, BufReader, Write};
    std::thread::scope(|scope| {
        for _ in 0..DRIVERS {
            scope.spawn(move || {
                let mut line = String::new();
                for frame in frames {
                    let mut conns = Vec::with_capacity(SWARM / DRIVERS);
                    for _ in 0..SWARM / DRIVERS {
                        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
                        stream.set_nodelay(true).expect("nodelay");
                        stream.write_all(frame.as_bytes()).expect("request frame");
                        conns.push(BufReader::new(stream));
                    }
                    for reader in &mut conns {
                        line.clear();
                        reader.read_line(&mut line).expect("response");
                        assert!(line.starts_with("{\"ok\":true"), "{line}");
                    }
                }
            });
        }
    });
}

/// The engine comparison behind the reactor rewrite: 64 concurrent
/// connections of 21-app repeat (warm-store) traffic against the
/// reactor and against the legacy thread-per-connection engine. Warm
/// traffic never touches the worker pool, so this isolates exactly
/// what the rewrite changed: connection and frame handling.
fn bench_engine_swarm(c: &mut Criterion) {
    for (name, engine) in [
        ("serve/64_clients_21_apps_warm_reactor", ServerEngine::Reactor),
        ("serve/64_clients_21_apps_warm_threads", ServerEngine::Threads),
    ] {
        let session = Arc::new(Session::test());
        let jobs = session.jobs_for_all_apps();
        let config =
            ServerConfig { workers: CLIENTS, queue: 64, engine, ..ServerConfig::ephemeral() };
        let handle = serve(session, config).expect("daemon starts");
        let addr = handle.local_addr();
        // Warm the store so every benched request is a cache hit.
        sweep(addr, &jobs);
        let frames: Vec<String> = jobs
            .iter()
            .map(|job| {
                let request = gpa_serve::Request::Analyze {
                    job: job.clone(),
                    options: gpa_serve::WireOptions::default(),
                };
                format!("{}\n", request.to_wire())
            })
            .collect();
        c.bench_function(name, |b| b.iter(|| swarm_sweep(addr, &frames)));
        handle.shutdown();
        handle.join();
    }
}

/// One persistent-pipelined pass: `CLIENTS` long-lived connections,
/// each writing the whole sweep as one burst and reading the responses
/// back in order. No connection churn at all — this is the traffic
/// shape the per-reactor buffer pools and completion routing serve in
/// the steady state, and the regression guard for the 8-client
/// persistent rows.
fn pipelined_sweep(addr: std::net::SocketAddr, frames: &[String]) {
    use std::io::{BufRead, BufReader, Write};
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            scope.spawn(move || {
                let mut stream = std::net::TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).expect("nodelay");
                let burst: String = frames.concat();
                stream.write_all(burst.as_bytes()).expect("pipelined burst");
                let mut reader = BufReader::new(stream);
                let mut line = String::new();
                for _ in frames {
                    line.clear();
                    reader.read_line(&mut line).expect("response");
                    assert!(line.starts_with("{\"ok\":true"), "{line}");
                }
            });
        }
    });
}

/// The multi-reactor scaling rows: the 64-connection dial-per-request
/// swarm and the 8-client persistent-pipelined sweep, each against a
/// warm store on 1, 2 and 4 reactors. On a multi-core host the swarm
/// rows are where reactor count pays (accept + frame handling spread
/// over cores); on a single-core CI container the expectation is
/// parity — the rewrite must not cost anything when there is nothing
/// to parallelize.
fn bench_reactor_scaling(c: &mut Criterion) {
    for reactors in [1usize, 2, 4] {
        let session = Arc::new(Session::test());
        let jobs = session.jobs_for_all_apps();
        let config =
            ServerConfig { workers: CLIENTS, queue: 64, reactors, ..ServerConfig::ephemeral() };
        let handle = serve(session, config).expect("daemon starts");
        let addr = handle.local_addr();
        println!(
            "serve bench: {} reactor(s) ({} accept) on {addr}",
            handle.reactors(),
            handle.accept_path()
        );
        // Warm the store so every benched request is a cache hit.
        sweep(addr, &jobs);
        let frames: Vec<String> = jobs
            .iter()
            .map(|job| {
                let request = gpa_serve::Request::Analyze {
                    job: job.clone(),
                    options: gpa_serve::WireOptions::default(),
                };
                format!("{}\n", request.to_wire())
            })
            .collect();
        c.bench_function(&format!("serve/swarm_64_clients_reactors_{reactors}"), |b| {
            b.iter(|| swarm_sweep(addr, &frames))
        });
        c.bench_function(&format!("serve/8_clients_pipelined_warm_reactors_{reactors}"), |b| {
            b.iter(|| pipelined_sweep(addr, &frames))
        });
        handle.shutdown();
        handle.join();
    }
}

/// The robustness row behind the failure-handling work: the same
/// 64-connection warm sweep, but against a 3-shard cluster that just
/// lost a member — no leave, no drain. The queried survivor burns one
/// budgeted retry per lost key on first ask, falls back to a counted
/// local compute, and serves repeat traffic for those keys from its own
/// store, so the measured steady state is "local hits plus forwards to
/// the one live peer". The healthy-cluster pass and the first degraded
/// pass (the retry burn) are timed and printed for the record.
fn bench_owner_down_swarm(c: &mut Criterion) {
    let listeners: Vec<std::net::TcpListener> =
        (0..3).map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("bind shard")).collect();
    let addrs: Vec<String> =
        listeners.iter().map(|l| l.local_addr().expect("addr").to_string()).collect();
    let mut handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(i, listener)| {
            let peers =
                addrs.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, a)| a.clone()).collect();
            let config =
                ServerConfig { workers: CLIENTS, queue: 64, peers, ..ServerConfig::ephemeral() };
            serve_on(Arc::new(Session::test()), listener, config).expect("shard starts")
        })
        .collect();
    let session = Session::test();
    let jobs = session.jobs_for_all_apps();
    let addr = handles[0].local_addr();
    sweep(addr, &jobs); // warm every shard's slice of the store
    let frames: Vec<String> = jobs
        .iter()
        .map(|job| {
            let request = gpa_serve::Request::Analyze {
                job: job.clone(),
                options: gpa_serve::WireOptions::default(),
            };
            format!("{}\n", request.to_wire())
        })
        .collect();

    let healthy = std::time::Instant::now();
    swarm_sweep(addr, &frames);
    let healthy = healthy.elapsed();

    let dead = handles.remove(2);
    dead.shutdown();
    dead.join();

    let degraded = std::time::Instant::now();
    swarm_sweep(addr, &frames);
    let degraded = degraded.elapsed();
    println!(
        "serve bench: owner-down swarm — healthy pass {healthy:?}, \
         first degraded pass (retry burn + fallback computes) {degraded:?}"
    );

    c.bench_function("serve/swarm_64_clients_owner_down", |b| {
        b.iter(|| swarm_sweep(addr, &frames))
    });
    for handle in handles {
        handle.shutdown();
        handle.join();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serve_throughput, bench_engine_swarm, bench_reactor_scaling,
        bench_owner_down_swarm
}
criterion_main!(benches);
