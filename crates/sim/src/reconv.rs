//! Branch-reconvergence points from immediate postdominators.

use gpa_cfg::{Cfg, PostDominators};
use gpa_isa::{Module, Opcode};
use std::collections::HashMap;

/// For every conditional branch PC in the module, the PC where its two
/// sides reconverge (the start of the immediate postdominator block of the
/// branch's block).
///
/// Branches whose postdominator is the function exit map to `u64::MAX`,
/// meaning both sides run to completion independently.
pub fn build_reconvergence(module: &Module) -> HashMap<u64, u64> {
    let mut map = HashMap::new();
    for f in &module.functions {
        if f.is_empty() {
            continue;
        }
        let cfg = Cfg::build(f);
        let pdom = PostDominators::build(&cfg);
        for b in cfg.blocks() {
            let last = b.end - 1;
            let instr = &f.instrs[last];
            let conditional =
                instr.opcode == Opcode::Bra && instr.pred.is_some_and(|p| !p.always());
            if !conditional {
                continue;
            }
            let reconv = match pdom.ipdom(b.id) {
                Some(r) => f.pc_of(cfg.block(r).start),
                None => u64::MAX,
            };
            map.insert(f.pc_of(last), reconv);
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_isa::parse_module;

    #[test]
    fn diamond_reconverges_at_join() {
        let m = parse_module(
            r#"
.kernel k
  ISETP.LT.AND P0, R0, R1 {S:2}
  @P0 BRA else_part {S:5}
  MOV R2, R3 {S:1}
  BRA join {S:5}
else_part:
  MOV R2, R4 {S:1}
join:
  IADD R5, R2, 1 {S:4}
  EXIT
.endfunc
"#,
        )
        .unwrap();
        let f = m.function("k").unwrap();
        let map = build_reconvergence(&m);
        assert_eq!(map.len(), 1);
        assert_eq!(map[&f.pc_of(1)], f.pc_of(5));
    }

    #[test]
    fn loop_branch_reconverges_at_exit_block() {
        let m = parse_module(
            r#"
.kernel k
top:
  IADD R0, R0, 1 {S:4}
  ISETP.LT.AND P0, R0, 10 {S:2}
  @P0 BRA top {S:5}
  EXIT
.endfunc
"#,
        )
        .unwrap();
        let f = m.function("k").unwrap();
        let map = build_reconvergence(&m);
        assert_eq!(map[&f.pc_of(2)], f.pc_of(3));
    }
}
