//! PC-sampling profiles — the measurement layer GPA's dynamic analyzer
//! consumes.
//!
//! On real hardware this is CUPTI: samples stream out of each SM, get
//! merged, and are attributed to PCs. Here, [`Profiler`] launches a kernel
//! on the [`gpa_sim`] device and aggregates the raw samples into a
//! [`KernelProfile`]:
//!
//! * per-PC sample counts split by [`StallReason`], separately for all
//!   samples and for **latency samples** (scheduler issued nothing that
//!   cycle — the `L`/`M_L` quantities of the paper's Eqs. 3–5),
//! * kernel-level totals `T`, `A`, `L` and the issue ratio `R_I` used by
//!   the parallel estimators (Eqs. 8–9),
//! * launch statistics (grid, block, occupancy) for the Block/Thread
//!   Increase optimizers,
//! * ground-truth cycles for validating estimates against achieved
//!   speedups.
//!
//! Profiles serialize to JSON for offline analysis, mirroring how GPA dumps
//! profiles for its post-mortem dynamic analysis.

pub mod profile;
pub mod profiler;

pub use gpa_sim::{RawSample, StallReason};
pub use profile::{KernelProfile, PcStats};
pub use profiler::Profiler;
