//! A Volta-like GPU instruction set architecture.
//!
//! This crate is the substrate GPA's static analyzer works on. It models the
//! parts of NVIDIA's Volta SASS that matter for stall attribution:
//!
//! * fixed-length 128-bit instruction words ([`encode`](mod@encode)),
//! * **control codes** — stall cycles, yield flag, write/read barrier
//!   indices and a wait mask over six scoreboard barriers ([`ControlCode`]),
//! * **predicates** `P0`–`P6` plus the always-true `PT` ([`Predicate`]),
//! * register operands `R0`–`R254` with `RZ` hard-wired to zero, register
//!   pairs for 64-bit values, constant-bank and memory operands
//!   ([`Operand`]),
//! * a textual assembly format with `.kernel`/`.func`/`.line`/`.inline`
//!   directives ([`parse`]) so test kernels can be written by hand, and
//! * [`Module`]/[`Function`] containers with linked absolute PCs.
//!
//! The def/use model ([`Instruction::defs`]/[`Instruction::uses`]) exposes
//! *virtual barrier registers* `B0`–`B5` exactly as the GPA paper's
//! instruction blamer requires: a write/read-barrier association is a def of
//! the barrier register, a wait mask is a use.
//!
//! # Example
//!
//! ```
//! use gpa_isa::{parse_module, Opcode};
//!
//! let src = r#"
//! .module demo
//! .kernel main
//!   MOV32I R1, 0x10 {S:1}
//!   LDG.E.32 R0, [R2] {W:B0, S:1}
//!   IADD R3, R0, R1 {WT:[B0], S:4}
//!   EXIT
//! .endfunc
//! "#;
//! let module = parse_module(src)?;
//! let f = module.function("main").unwrap();
//! assert_eq!(f.instrs[1].opcode, Opcode::Ldg);
//! # Ok::<(), gpa_isa::IsaError>(())
//! ```

pub mod control;
pub mod encode;
pub mod instruction;
pub mod module;
pub mod opcode;
pub mod operand;
pub mod parse;
pub mod register;

pub use control::ControlCode;
pub use encode::{decode, dissect, encode, EncodedInstruction};
pub use instruction::{Instruction, Modifier, Slot};
pub use module::{
    FixupTarget, Function, InlineFrame, InstrRef, Module, SourceLoc, Visibility, INSTR_BYTES,
};
pub use opcode::{MemSpace, OpClass, Opcode, Pipe};
pub use operand::{MemRef, Operand};
pub use parse::parse_module;
pub use register::{BarrierReg, PredReg, Predicate, Register, SpecialReg};

use std::fmt;

/// Errors produced while building, encoding or parsing instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// A register index was outside `0..=255`.
    BadRegister(u32),
    /// A predicate index was outside `0..=7`.
    BadPredicate(u32),
    /// A barrier index was outside `0..=5`.
    BadBarrier(u32),
    /// The instruction does not fit in the 128-bit encoding.
    EncodingOverflow(String),
    /// Malformed binary word.
    DecodeError(String),
    /// Assembly text could not be parsed. Carries line number and message.
    ParseError { line: usize, message: String },
    /// A label or function referenced by a branch/call does not exist.
    UnresolvedSymbol(String),
    /// Module-level inconsistency (duplicate function, missing `.endfunc`, ...).
    ModuleError(String),
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::BadRegister(n) => write!(f, "register index {n} out of range"),
            IsaError::BadPredicate(n) => write!(f, "predicate index {n} out of range"),
            IsaError::BadBarrier(n) => write!(f, "barrier index {n} out of range"),
            IsaError::EncodingOverflow(s) => write!(f, "instruction too large to encode: {s}"),
            IsaError::DecodeError(s) => write!(f, "malformed instruction word: {s}"),
            IsaError::ParseError { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            IsaError::UnresolvedSymbol(s) => write!(f, "unresolved symbol `{s}`"),
            IsaError::ModuleError(s) => write!(f, "module error: {s}"),
        }
    }
}

impl std::error::Error for IsaError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, IsaError>;
