//! The architectural-features substrate of GPA.
//!
//! The paper's static analyzer reads "specific hardware configurations,
//! such as instruction latencies, warp size, and register limitations"
//! keyed by the architecture flag of each CUBIN. This crate provides:
//!
//! * [`ArchConfig`] — a Volta-V100-like machine description (SM count,
//!   schedulers, warp limits, memory latencies, cache sizes, pipe
//!   throughputs) plus a scaled-down test configuration,
//! * [`LatencyTable`] — fixed latencies for pipelined instructions
//!   (microbenchmark-style numbers) and conservative upper bounds for
//!   variable-latency instructions (the paper uses the TLB-miss latency as
//!   the global-memory upper bound for the pruning rule),
//! * [`Occupancy`] — the blocks/warps-per-SM calculator behind the Block
//!   Increase and Thread Increase optimizers,
//! * [`schedule::assign_stall_counts`] — the assembler pass that fills in
//!   Volta control-code stall cycles so fixed-latency dependencies are
//!   honored, mirroring what `ptxas` does when it schedules SASS.

pub mod config;
pub mod latency;
pub mod occupancy;
pub mod schedule;

pub use config::{ArchConfig, HierarchyConfig, MemModel};
pub use latency::LatencyTable;
pub use occupancy::{LaunchConfig, OccLimiter, Occupancy};
