//! `rodinia/lud` — `lud_diagonal`.
//!
//! The diagonal factorization runs on very few blocks, so shared-memory
//! load latency is poorly hidden; the loads sit directly in front of
//! their consumers. Hoisting them above the index bookkeeping gives the
//! scheduler slack (Code Reordering; paper: 1.36× achieved, 1.48×
//! estimated).

use crate::data::ParamBlock;
use crate::dsl::Asm;
use crate::{App, KernelSpec, Params, Stage};
use gpa_arch::LaunchConfig;

/// Builds the lud app entry.
pub fn app() -> App {
    App {
        name: "rodinia/lud",
        kernel: "lud_diagonal",
        stages: vec![Stage { name: "Code Reorder", optimizer: "GPUCodeReorderOptimizer" }],
        build,
    }
}

fn build(variant: usize, p: &Params) -> KernelSpec {
    let optimized = variant >= 1;
    let mut a = Asm::module("lud");
    a.kernel("lud_diagonal");
    a.line("lud.cu", 40);
    a.global_tid();
    a.i("LOP3.AND R1, R0, 255 {S:4}"); // thread within block
                                       // Stage the tile into shared memory.
    a.param_u64(4, 0); // matrix tile
    a.addr(6, 4, 0, 2);
    a.i("LDG.E.32 R8, [R6:R7] {W:B0, S:1}");
    a.i("SHL R9, R1, 2 {S:4}");
    a.i("STS.32 [R9], R8 {WT:[B0], R:B1, S:2}");
    a.i("BAR.SYNC {S:2}");
    // Elimination steps: each thread combines two tile values.
    a.i("MOV32I R16, 0 {S:1}"); // k
    a.i("MOV32I R22, 0x3f800000 {S:1}"); // acc = 1.0f bits
    a.param_u32(21, 8); // steps
    a.line("lud.cu", 47);
    a.label("k_loop");
    if optimized {
        // Loads first, bookkeeping in between, uses afterwards.
        a.i("SHL R10, R16, 4 {S:4}");
        a.i("IADD R11, R10, R1 {S:4}");
        a.i("LOP3.AND R11, R11, 255 {S:4}");
        a.i("SHL R12, R11, 2 {S:4}");
        a.i("LDS.32 R20, [R12] {W:B2, S:1}");
        a.i("LDS.32 R24, [R12+0x40] {W:B3, S:1}");
        // Bookkeeping between load and use.
        a.i("IADD R16, R16, 1 {S:4}");
        a.i("ISETP.LT.AND P1, R16, R21 {S:2}");
        a.i("IADD R26, R26, 1 {S:4}");
        a.i("IADD R27, R27, 2 {S:4}");
        a.line("lud.cu", 49);
        a.i("FFMA R22, R20, R22, R20 {WT:[B2], S:4}");
        a.i("FMUL R22, R24, R22 {WT:[B3], S:4}");
    } else {
        a.i("SHL R10, R16, 4 {S:4}");
        a.i("IADD R11, R10, R1 {S:4}");
        a.i("LOP3.AND R11, R11, 255 {S:4}");
        a.i("SHL R12, R11, 2 {S:4}");
        a.line("lud.cu", 49);
        // Load → immediate use, twice.
        a.i("LDS.32 R20, [R12] {W:B2, S:1}");
        a.i("FFMA R22, R20, R22, R20 {WT:[B2], S:4}");
        a.i("LDS.32 R24, [R12+0x40] {W:B3, S:1}");
        a.i("FMUL R22, R24, R22 {WT:[B3], S:4}");
        a.i("IADD R26, R26, 1 {S:4}");
        a.i("IADD R27, R27, 2 {S:4}");
        a.i("IADD R16, R16, 1 {S:4}");
        a.i("ISETP.LT.AND P1, R16, R21 {S:2}");
    }
    a.i("@P1 BRA k_loop {S:5}");
    a.param_u64(14, 16); // output
    a.addr(18, 14, 0, 2);
    a.i("STG.E.32 [R18:R19], R22 {R:B4, S:2}");
    a.i("EXIT {WT:[B4], S:1}");
    a.endfunc();
    let module = a.build();

    let blocks = 2 * p.scale.min(2); // the diagonal kernel runs on few blocks
    let threads: u32 = 256;
    let steps: u32 = 48;
    KernelSpec {
        module,
        entry: "lud_diagonal".into(),
        launch: LaunchConfig { smem_per_block: 2048, ..LaunchConfig::new(blocks, threads) },
        setup: Box::new(move |gpu| {
            let mut rng = crate::data::rng(0x5057_0004);
            let n = (blocks * threads) as u64;
            let tile = gpu.global_mut().alloc(4 * n);
            let out = gpu.global_mut().alloc(4 * n);
            gpu.global_mut()
                .write_bytes(tile, &crate::data::f32_bytes(&mut rng, n as usize, 0.1, 2.0));
            let mut pb = ParamBlock::new();
            pb.push_u64(tile);
            pb.push_u32(steps); // @8
            pb.push_u32(0); // pad @12
            pb.push_u64(out); // @16
            pb.finish()
        }),
        const_bank1: None,
    }
}
