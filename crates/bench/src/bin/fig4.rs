//! Reproduces **Figures 3 and 4**: the blame walkthrough — backward
//! slicing with predicates and virtual barrier registers, dependency-
//! graph construction, cold-edge pruning, and Eq. 1 apportioning
//! (LDC with 2x the issued samples but 2x the path length splits the
//! four stalls evenly with LDG).

use gpa_arch::{ArchConfig, LatencyTable, LaunchConfig};
use gpa_core::blamer::graph::blame_function;
use gpa_sampling::{KernelProfile, StallReason};
use gpa_sim::{LaunchResult, RawSample, SampleSet};
use gpa_structure::ProgramStructure;

fn main() {
    let src = r#"
.module fig4
.kernel k
  ISETP.LT.AND P0, R4, R5 {S:2}
  @!P0 LDC.32 R0, [R4] {W:B0, S:1}
  IADD R20, R20, 1 {S:4}
  IADD R21, R21, 1 {S:4}
  IADD R22, R22, 1 {S:4}
  IADD R23, R23, 1 {S:4}
  @P0 LDG.E.32 R0, [R2:R3] {W:B0, S:1}
  IADD R24, R24, 1 {S:4}
  IADD R25, R25, 1 {S:4}
  IADD R26, R26, 1 {S:4}
  IADD R27, R27, 1 {S:4}
  IMAD R7, R4, R5, R7 {S:5}
  IADD R8, R0, R7 {WT:[B0], S:4}
  EXIT
.endfunc
"#;
    let m = gpa_isa::parse_module(src).expect("parses");
    let f = m.function("k").unwrap();
    // Synthetic profile: 4 memory-dependency stalls at the IADD; LDC
    // issued twice, LDG once (the Figure 4d numbers).
    let mk = |pc, stall, active, count| {
        std::iter::repeat_n(
            RawSample { sm: 0, scheduler: 0, cycle: 0, pc, stall, scheduler_active: active },
            count,
        )
    };
    let samples: Vec<RawSample> = mk(f.pc_of(12), StallReason::MemoryDependency, false, 4)
        .chain(mk(f.pc_of(1), StallReason::Selected, true, 2))
        .chain(mk(f.pc_of(6), StallReason::Selected, true, 1))
        .chain(mk(f.pc_of(11), StallReason::Selected, true, 1))
        .collect();
    let arch = ArchConfig::small(1);
    let launch = LaunchConfig::new(1, 32);
    let result = LaunchResult {
        cycles: 100,
        issued: 8,
        samples: SampleSet::from_raw(&samples),
        issue_counts: Default::default(),
        mem_transactions: 0,
        l2_hits: 0,
        l2_misses: 0,
        icache_misses: 0,
        occupancy: arch.occupancy(&launch),
        launch,
        sm_stats: vec![],
    };
    let profile = KernelProfile::from_launch("k", "fig4", "volta", 64, &result);
    let structure = ProgramStructure::build(&m);
    let fb = blame_function(&m, &structure.functions()[0], &profile, &LatencyTable::default());

    println!("Figure 4 — attributing the IADD's 4 memory-dependency stalls\n");
    println!("(b) dependency graph edges into the IADD (instr 12):");
    for e in fb.graph.incoming(12, true) {
        let mark = match e.pruned {
            Some(rule) => format!("PRUNED ({rule:?})"),
            None => "kept".into(),
        };
        println!(
            "    {:<28} -> IADD   [{}]  {}",
            m.functions[0].instrs[e.def].mnemonic(),
            e.detail,
            mark
        );
    }
    println!("\n(d) apportioned blame (Eq. 1):");
    for e in &fb.edges {
        println!(
            "    {:<28} gets {:>4.1} stalls (distance {})",
            m.functions[0].instrs[e.def].mnemonic(),
            e.stalls,
            e.distance
        );
    }
}
