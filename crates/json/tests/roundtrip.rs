//! Property tests for `gpa-json` round-tripping (vendored proptest
//! shim): string escaping, integer-precision boundaries, and the
//! parser's depth limit.

use gpa_json::{Json, Num};
use proptest::prelude::*;

/// A tiny deterministic generator (SplitMix64) for building adversarial
/// strings from one drawn seed — the shim's strategies are numeric, so
/// structured values are derived in the test body.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A string mixing the troublesome cases: quotes, backslashes,
    /// every control character, non-ASCII (2-, 3- and 4-byte UTF-8),
    /// and plain ASCII.
    fn string(&mut self, len: usize) -> String {
        let alphabet: &[char] = &[
            '"',
            '\\',
            '/',
            '\n',
            '\r',
            '\t',
            '\u{0}',
            '\u{1}',
            '\u{8}',
            '\u{b}',
            '\u{c}',
            '\u{1f}',
            ' ',
            'a',
            'Z',
            '0',
            'µ',
            'é',
            '→',
            '日',
            '本',
            '\u{10348}',
            '😀',
            '\u{7f}',
            '\u{80}',
            '\u{2028}',
        ];
        (0..len).map(|_| alphabet[(self.next() as usize) % alphabet.len()]).collect()
    }
}

proptest! {
    /// Any string — including quotes, control characters, and
    /// non-ASCII — survives a pretty-print → parse round trip.
    #[test]
    fn strings_round_trip_through_pretty(seed in 0u64..u64::MAX, len in 0usize..64) {
        let s = Gen(seed).string(len);
        let doc = Json::object().with("k", s.clone());
        let back = Json::parse(&doc.pretty()).unwrap();
        prop_assert_eq!(back.field("k").unwrap().as_str().unwrap(), s.as_str());
    }

    /// The same through the compact (wire) rendering, which must also
    /// stay newline-free — it is the framing invariant of gpa-serve.
    #[test]
    fn strings_round_trip_through_compact(seed in 0u64..u64::MAX, len in 0usize..64) {
        let s = Gen(seed).string(len);
        let doc = Json::object().with("k", s.clone());
        let line = doc.compact();
        prop_assert!(!line.contains('\n'), "frame contains a raw newline: {line:?}");
        let back = Json::parse(&line).unwrap();
        prop_assert_eq!(back.field("k").unwrap().as_str().unwrap(), s.as_str());
    }

    /// Unsigned integers keep full u64 precision (no f64 detour).
    #[test]
    fn u64_precision_is_preserved(offset in 0u64..1_000_000) {
        let v = u64::MAX - offset;
        let doc = Json::object().with("v", v);
        let back = Json::parse(&doc.pretty()).unwrap();
        prop_assert_eq!(back.field("v").unwrap().as_u64().unwrap(), v);
    }

    /// Negative integers keep full i64 precision down to i64::MIN.
    #[test]
    fn i64_precision_is_preserved(offset in 0i64..1_000_000) {
        let v = i64::MIN + offset;
        let doc = Json::object().with("v", v);
        let back = Json::parse(&doc.pretty()).unwrap();
        match back.field("v").unwrap() {
            Json::Num(Num::I(parsed)) => prop_assert_eq!(*parsed, v),
            other => panic!("negative integer parsed as {other:?}"),
        }
    }

    /// Nesting up to the parser's cap parses; anything deeper is a
    /// clean error (never a stack overflow), for both arrays and
    /// objects — and mixed nesting right at the boundary.
    #[test]
    fn depth_limit_is_exact(depth in 1u32..200) {
        let arrays = "[".repeat(depth as usize) + &"]".repeat(depth as usize);
        let mut objects = String::new();
        for _ in 0..depth {
            objects.push_str("{\"k\":");
        }
        objects.push_str("null");
        objects.push_str(&"}".repeat(depth as usize));
        // MAX_DEPTH is 128 (crate-internal); the boundary is observable.
        let expect_ok = depth <= 128;
        prop_assert_eq!(Json::parse(&arrays).is_ok(), expect_ok, "arrays at depth {}", depth);
        prop_assert_eq!(Json::parse(&objects).is_ok(), expect_ok, "objects at depth {}", depth);
    }
}

#[test]
fn integer_boundaries_round_trip_exactly() {
    for v in [0u64, 1, u64::from(u32::MAX), u64::MAX - 1, u64::MAX] {
        let back = Json::parse(&Json::from(v).pretty()).unwrap();
        assert_eq!(back.as_u64().unwrap(), v);
    }
    for v in [i64::MIN, i64::MIN + 1, -1i64] {
        let back = Json::parse(&Json::from(v).pretty()).unwrap();
        assert_eq!(back, Json::Num(Num::I(v)), "{v}");
    }
    // i64::MAX + 1 .. u64::MAX parse as unsigned, not saturated floats.
    let just_past_i64 = (i64::MAX as u64) + 1;
    let back = Json::parse(&just_past_i64.to_string()).unwrap();
    assert_eq!(back.as_u64().unwrap(), just_past_i64);
}

#[test]
fn deep_nesting_error_mentions_depth() {
    let deep = "[".repeat(4096) + &"]".repeat(4096);
    let err = Json::parse(&deep).unwrap_err();
    assert!(err.to_string().contains("nesting too deep"), "{err}");
}
