//! Benches the pipeline's batch path: the 21-app sweep through
//! `run_batch` (rayon fan-out) against the serial reference. On a
//! multi-core host the parallel path should win by roughly the worker
//! count; on a single-core host the two are equivalent.
//!
//! The `dense_reference` variants run the same sweep on the dense
//! per-cycle scheduler loop — the before/after pair for the event-driven
//! core (recorded in `BENCH_3.json` at the repo root).

use criterion::{criterion_group, criterion_main, Criterion};
use gpa_pipeline::Session;
use gpa_sim::SimConfig;

fn warmed(session: Session) -> Session {
    // Warm the artifact cache so every path measures run time, not
    // module building.
    let jobs = session.jobs_for_all_apps();
    for job in &jobs {
        session.artifacts(job).expect("registry app builds");
    }
    session
}

fn bench_batch_paths(c: &mut Criterion) {
    let session = warmed(Session::test());
    let jobs = session.jobs_for_all_apps();
    println!("pipeline batch: {} jobs, {} workers", jobs.len(), session.workers());
    c.bench_function("pipeline/serial_21_apps", |b| b.iter(|| session.run_batch_serial(&jobs)));
    c.bench_function("pipeline/parallel_21_apps", |b| b.iter(|| session.run_batch(&jobs)));
}

fn bench_batch_dense_reference(c: &mut Criterion) {
    let dense = SimConfig { dense_reference: true, sampling_period: 127, ..SimConfig::default() };
    let session = warmed(Session::test().with_sim(dense));
    let jobs = session.jobs_for_all_apps();
    c.bench_function("pipeline/serial_21_apps_dense_reference", |b| {
        b.iter(|| session.run_batch_serial(&jobs))
    });
    c.bench_function("pipeline/parallel_21_apps_dense_reference", |b| {
        b.iter(|| session.run_batch(&jobs))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_batch_paths, bench_batch_dense_reference
}
criterion_main!(benches);
