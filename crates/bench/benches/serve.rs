//! Benches the daemon's multi-client throughput: 8 concurrent clients
//! sweeping the 21-app registry against a live `gpa-serve` on an
//! ephemeral port, versus the serial in-process baseline.
//!
//! Two daemon variants are measured: cold-ish (first pass computes,
//! later passes hit the report store — the steady state of an iterative
//! profile/advise workflow) and an explicit all-hits pass, which
//! isolates wire + store overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use gpa_pipeline::{AnalysisJob, Session};
use gpa_serve::{serve, ServeClient, ServerConfig};
use std::sync::Arc;

const CLIENTS: usize = 8;

fn sweep(addr: std::net::SocketAddr, jobs: &[AnalysisJob]) {
    std::thread::scope(|scope| {
        for client_idx in 0..CLIENTS {
            scope.spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                for (i, job) in jobs.iter().enumerate() {
                    if i % CLIENTS != client_idx {
                        continue;
                    }
                    let response = client.analyze(&job.app, job.variant).expect("analyze");
                    assert!(response.ok, "{}: {:?}", job, response.error);
                }
            });
        }
    });
}

fn bench_serve_throughput(c: &mut Criterion) {
    let session = Arc::new(Session::test());
    let jobs = session.jobs_for_all_apps();

    // Serial in-process baseline (no daemon, no cache reuse between
    // iterations beyond the session's artifact cache).
    let baseline = Arc::clone(&session);
    c.bench_function("serve/serial_in_process_21_apps", |b| {
        b.iter(|| baseline.run_batch_serial(&jobs))
    });

    let config = ServerConfig { workers: CLIENTS, queue: 64, ..ServerConfig::ephemeral() };
    let handle = serve(session, config).expect("daemon starts");
    let addr = handle.local_addr();
    println!("serve bench: daemon on {addr}, {CLIENTS} clients over {} jobs", jobs.len());

    // First iteration computes every report; the rest are store hits —
    // i.e. the daemon's steady-state throughput for repeat traffic.
    c.bench_function("serve/8_clients_21_apps", |b| b.iter(|| sweep(addr, &jobs)));

    // All-hits: everything is warm by now, so this isolates protocol
    // and store overhead per request.
    sweep(addr, &jobs);
    c.bench_function("serve/8_clients_21_apps_warm", |b| b.iter(|| sweep(addr, &jobs)));

    handle.shutdown();
    handle.join();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serve_throughput
}
criterion_main!(benches);
