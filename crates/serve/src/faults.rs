//! Deterministic fault injection for the peer path.
//!
//! A [`FaultPlan`] is a seeded script of failures — drop a call, delay
//! it, or sever a peer's pooled connections — evaluated every time the
//! daemon dials a peer. Chaos tests (and operators reproducing an
//! outage) gate it through [`ServerConfig::faults`] or the
//! `GPA_FAULTS` environment variable; production runs carry no plan
//! and pay one branch per peer call.
//!
//! The spec grammar is a `;`-separated list of parts:
//!
//! ```text
//! seed=42;deny:127.0.0.1:7072:after=3,count=5;delay:*:ms=10;sever:*:count=1
//! ```
//!
//! Each rule names an action (`deny`, `delay`, `sever`), a peer
//! address (or `*` for every peer), and optional windowing parameters:
//! `after=N` skips the first N matching calls, `count=N` limits the
//! rule to N firings (0 = unlimited), and `ms=N` sets the delay. The
//! address/parameter split is positional — the last `:`-segment is
//! parameters exactly when it contains `=`, so bare `host:port`
//! addresses need no escaping. Rules are checked in order; the first
//! one whose window covers the call fires. The `seed` also drives the
//! retry backoff jitter, so a failing run replays exactly.
//!
//! [`ServerConfig::faults`]: crate::server::ServerConfig::faults

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The environment variable [`FaultPlan::from_env`] reads.
pub const FAULTS_ENV: &str = "GPA_FAULTS";

/// What an active fault rule does to the current peer call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail the call outright (as a refused connection).
    Deny,
    /// Sleep this many milliseconds before proceeding.
    Delay(u64),
    /// Drop the peer's pooled connections and fail the call (as a
    /// reset connection).
    Sever,
}

#[derive(Debug)]
struct FaultRule {
    action: FaultAction,
    /// Peer address the rule applies to; `*` matches every peer.
    peer: String,
    /// Matching calls to let through before the rule starts firing.
    after: u64,
    /// Firings before the rule burns out (0 = unlimited).
    count: u64,
    /// Matching calls seen so far (shared across plan clones).
    seen: AtomicU64,
}

impl FaultRule {
    /// Whether the rule fires for this (matching) call, advancing its
    /// window.
    fn fire(&self) -> bool {
        let seen = self.seen.fetch_add(1, Ordering::Relaxed);
        seen >= self.after && (self.count == 0 || seen < self.after + self.count)
    }
}

/// A seeded, scripted set of peer-path faults.
///
/// Cloning shares the rule counters (an [`Arc`]), so the daemon's
/// threads consume one global window per rule — "fail the first 5
/// forwards" means 5 across the process, not 5 per thread.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    rules: Arc<[FaultRule]>,
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={} ({} rule(s))", self.seed, self.rules.len())
    }
}

impl FaultPlan {
    /// Parses a plan from the spec grammar above.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the malformed part.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut seed = 0u64;
        let mut rules = Vec::new();
        for part in spec.split(';').map(str::trim).filter(|p| !p.is_empty()) {
            if let Some(value) = part.strip_prefix("seed=") {
                seed = value
                    .parse()
                    .map_err(|_| format!("fault spec: seed must be a u64, got `{value}`"))?;
                continue;
            }
            let (action_name, rest) = part
                .split_once(':')
                .ok_or_else(|| format!("fault spec: `{part}` is not `action:peer[:params]`"))?;
            // The last `:`-segment is parameters exactly when it
            // contains `=`; everything before it is the peer address
            // (which legitimately contains `:`).
            let (peer, params) = match rest.rsplit_once(':') {
                Some((peer, params)) if params.contains('=') => (peer, params),
                _ => (rest, ""),
            };
            let valid_peer = peer == "*"
                || peer.rsplit_once(':').is_some_and(|(host, port)| {
                    !host.is_empty() && !port.is_empty() && port.bytes().all(|b| b.is_ascii_digit())
                });
            if !valid_peer {
                return Err(format!(
                    "fault spec: `{peer}` is not a peer address (`host:port` or `*`)"
                ));
            }
            let (mut after, mut count, mut ms) = (0u64, 0u64, None);
            for param in params.split(',').map(str::trim).filter(|p| !p.is_empty()) {
                let (key, value) = param
                    .split_once('=')
                    .ok_or_else(|| format!("fault spec: parameter `{param}` is not key=value"))?;
                let value: u64 = value
                    .parse()
                    .map_err(|_| format!("fault spec: `{key}` expects a number, got `{value}`"))?;
                match key {
                    "after" => after = value,
                    "count" => count = value,
                    "ms" => ms = Some(value),
                    other => return Err(format!("fault spec: unknown parameter `{other}`")),
                }
            }
            let action = match action_name {
                "deny" => FaultAction::Deny,
                "delay" => FaultAction::Delay(
                    ms.ok_or_else(|| format!("fault spec: `{part}` needs ms=N"))?,
                ),
                "sever" => FaultAction::Sever,
                other => return Err(format!("fault spec: unknown action `{other}`")),
            };
            if action_name != "delay" && ms.is_some() {
                return Err(format!("fault spec: ms= only applies to delay, not {action_name}"));
            }
            rules.push(FaultRule {
                action,
                peer: peer.to_string(),
                after,
                count,
                seen: AtomicU64::new(0),
            });
        }
        if rules.is_empty() {
            return Err("fault spec: no rules (expected `action:peer[:params]` parts)".to_string());
        }
        Ok(FaultPlan { seed, rules: rules.into() })
    }

    /// Reads a plan from [`FAULTS_ENV`]. `Ok(None)` when unset or
    /// empty.
    ///
    /// # Errors
    ///
    /// The parse error for a set-but-malformed spec — the daemon
    /// refuses to start on one rather than silently running without
    /// its faults.
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        match std::env::var(FAULTS_ENV) {
            Ok(spec) if !spec.trim().is_empty() => Self::parse(&spec).map(Some),
            _ => Ok(None),
        }
    }

    /// The plan's seed — shared with the retry backoff jitter so runs
    /// replay deterministically.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Evaluates the plan for one call to `peer`: the first rule whose
    /// window covers this call decides. Counters advance only on rules
    /// that match the peer, so per-peer windows are stable no matter
    /// how other peers are trafficked.
    pub fn check(&self, peer: &str) -> Option<FaultAction> {
        let mut fired = None;
        for rule in self.rules.iter() {
            if rule.peer != "*" && rule.peer != peer {
                continue;
            }
            if rule.fire() && fired.is_none() {
                fired = Some(rule.action);
            }
        }
        fired
    }

    /// Total calls that hit an active rule so far — surfaced in
    /// `status` so a chaos run can assert its plan actually fired.
    pub fn fired(&self) -> u64 {
        self.rules
            .iter()
            .map(|r| {
                let seen = r.seen.load(Ordering::Relaxed);
                let past = seen.saturating_sub(r.after);
                if r.count == 0 {
                    past
                } else {
                    past.min(r.count)
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_seed_windows_and_wildcards() {
        let plan =
            FaultPlan::parse("seed=42;deny:127.0.0.1:7072:after=1,count=2;delay:*:ms=10").unwrap();
        assert_eq!(plan.seed(), 42);
        // First call to the denied peer is within `after`, so the
        // wildcard delay (unlimited) fires instead.
        assert_eq!(plan.check("127.0.0.1:7072"), Some(FaultAction::Delay(10)));
        // The next two are denied (rule order wins over the wildcard).
        assert_eq!(plan.check("127.0.0.1:7072"), Some(FaultAction::Deny));
        assert_eq!(plan.check("127.0.0.1:7072"), Some(FaultAction::Deny));
        // The window is spent; back to the delay.
        assert_eq!(plan.check("127.0.0.1:7072"), Some(FaultAction::Delay(10)));
        // Other peers only see the wildcard and never burn the deny
        // window.
        assert_eq!(plan.check("127.0.0.1:7073"), Some(FaultAction::Delay(10)));
        assert!(plan.fired() >= 5);
    }

    #[test]
    fn windows_are_shared_across_clones() {
        let plan = FaultPlan::parse("sever:*:count=1").unwrap();
        let replica = plan.clone();
        assert_eq!(replica.check("a"), Some(FaultAction::Sever));
        assert_eq!(plan.check("a"), None, "the clone burned the only firing");
    }

    #[test]
    fn quiet_peers_pass_through() {
        let plan = FaultPlan::parse("deny:127.0.0.1:1:count=1").unwrap();
        assert_eq!(plan.check("127.0.0.1:2"), None);
    }

    #[test]
    fn rejects_malformed_specs() {
        for spec in [
            "",
            "seed=abc",
            "explode:*",
            "deny",
            "delay:*",         // delay needs ms=
            "deny:*:ms=5",     // ms= is delay-only
            "deny::after=1",   // empty peer
            "deny:*:after=x",  // non-numeric
            "deny:*:jitter=1", // unknown key
            "deny:*:after",    // not key=value
        ] {
            assert!(FaultPlan::parse(spec).is_err(), "spec `{spec}` should be rejected");
        }
    }
}
