//! Performance optimizers — the paper's Table 2 catalog.
//!
//! Each optimizer encodes rules to compute *matching stalls* from the
//! blamed dependency edges and the program structure, lifting the job of
//! associating stalls with optimizations from the user to the advisor.
//!
//! | Category | Optimizer | Matches |
//! |---|---|---|
//! | Stall elimination | Register Reuse | local-memory dependency stalls |
//! | | Strength Reduction | execution-dependency stalls of long-latency arithmetic |
//! | | Function Split | instruction-fetch stalls in large functions |
//! | | Fast Math | stalls inside CUDA math functions |
//! | | Warp Balance | synchronization stalls |
//! | | Memory Transaction Reduction | memory-throttle stalls |
//! | Latency hiding | Loop Unrolling | global-memory/execution stalls with def and use in one loop |
//! | | Code Reordering | short-distance global-memory/execution stalls |
//! | | Function Inlining | stalls in device functions and call sites |
//! | Parallel | Block Increase | fewer blocks than the device can host |
//! | | Thread Increase | occupancy limited by threads per block |

mod latency_hiding;
mod parallel;
mod stall_elim;

pub use latency_hiding::{CodeReordering, FunctionInlining, LoopUnrolling};
pub use parallel::{BlockIncrease, ThreadIncrease};
pub use stall_elim::{
    FastMath, FunctionSplit, MemoryTransactionReduction, RegisterReuse, StrengthReduction,
    WarpBalance,
};

use crate::advisor::AnalysisCtx;
use crate::estimators::ParallelParams;
use gpa_structure::Scope;
use std::fmt;

/// The three optimizer families of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptimizerCategory {
    /// Remove the stalls themselves (Eq. 2).
    StallElimination,
    /// Overlap the stalls with other work (Eqs. 4–5).
    LatencyHiding,
    /// Change the parallelism level (Eqs. 6–10).
    Parallel,
}

impl fmt::Display for OptimizerCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OptimizerCategory::StallElimination => "stall elimination",
            OptimizerCategory::LatencyHiding => "latency hiding",
            OptimizerCategory::Parallel => "parallel",
        };
        f.write_str(s)
    }
}

/// A def→use pair worth the user's attention, with its sample weight.
#[derive(Debug, Clone, PartialEq)]
pub struct Hotspot {
    /// Source (blamed) instruction PC, when the pattern has one.
    pub def_pc: Option<u64>,
    /// Stalled instruction PC.
    pub use_pc: u64,
    /// Matched samples on this pair.
    pub samples: f64,
    /// def→use distance in instructions (1 = adjacent).
    pub distance: Option<u32>,
}

/// What an optimizer matched.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MatchResult {
    /// Matched stall samples (`M` of Eq. 2).
    pub matched: f64,
    /// Matched latency samples (`M_L` of Eqs. 3–5).
    pub matched_latency: f64,
    /// Matched latency samples grouped by innermost scope (for Eq. 5).
    pub scopes: Vec<(Scope, f64)>,
    /// Ranked def/use hotspots.
    pub hotspots: Vec<Hotspot>,
    /// Optimizer-specific findings (e.g. the proposed launch config).
    pub notes: Vec<String>,
    /// Parallel-model inputs, for parallel optimizers only.
    pub parallel: Option<ParallelParams>,
}

impl MatchResult {
    /// Whether anything matched.
    pub fn is_empty(&self) -> bool {
        self.matched == 0.0 && self.matched_latency == 0.0 && self.parallel.is_none()
    }

    /// Sorts hotspots by sample weight and keeps the top `n`.
    pub fn keep_top_hotspots(&mut self, n: usize) {
        self.hotspots.sort_by(|a, b| b.samples.partial_cmp(&a.samples).expect("finite weights"));
        self.hotspots.truncate(n);
    }

    /// Adds matched latency to a scope bucket.
    pub fn add_scope(&mut self, scope: Scope, latency: f64) {
        if latency <= 0.0 {
            return;
        }
        match self.scopes.iter_mut().find(|(s, _)| *s == scope) {
            Some((_, v)) => *v += latency,
            None => self.scopes.push((scope, latency)),
        }
    }
}

/// A performance optimizer: matches an inefficiency pattern and describes
/// the fix.
///
/// `Send + Sync` so one [`Advisor`](crate::Advisor) can be shared across
/// the pipeline's worker threads; optimizers are stateless matchers.
pub trait Optimizer: Send + Sync {
    /// Paper-style name (e.g. `GPUStrengthReductionOptimizer`).
    fn name(&self) -> &'static str;

    /// Which family it belongs to.
    fn category(&self) -> OptimizerCategory;

    /// Static optimization hints shown in the report (the numbered
    /// suggestions of Figure 8).
    fn hints(&self) -> Vec<&'static str>;

    /// Computes matching stalls against an analysis context.
    fn match_stalls(&self, ctx: &AnalysisCtx<'_>) -> MatchResult;
}

/// The full Table 2 catalog.
pub fn all_optimizers() -> Vec<Box<dyn Optimizer>> {
    vec![
        Box::new(RegisterReuse),
        Box::new(StrengthReduction),
        Box::new(FunctionSplit),
        Box::new(FastMath),
        Box::new(WarpBalance),
        Box::new(MemoryTransactionReduction),
        Box::new(LoopUnrolling),
        Box::new(CodeReordering),
        Box::new(FunctionInlining),
        Box::new(BlockIncrease),
        Box::new(ThreadIncrease),
    ]
}
